"""Tests for the Clifford generative-modeling application (paper §IV-C)."""

import numpy as np
import pytest

from repro.analysis import Distribution, total_variation_distance
from repro.apps.generative import (
    BornMachine,
    model_distribution,
    refine_near_clifford,
    train_clifford,
)
from repro.core import SuperSim
from repro.statevector import StatevectorSimulator

SV = StatevectorSimulator()


class TestBornMachine:
    def test_parameter_count(self):
        assert BornMachine(4, 3).num_parameters == 24

    def test_validation(self):
        with pytest.raises(ValueError):
            BornMachine(0, 1)
        with pytest.raises(ValueError):
            BornMachine(2, 1).circuit([0.5])

    def test_clifford_points_are_clifford(self):
        model = BornMachine(3, 2)
        rng = np.random.default_rng(0)
        steps = rng.integers(0, 4, size=model.num_parameters)
        assert model.clifford_circuit(steps).is_clifford

    def test_generic_points_are_not(self):
        model = BornMachine(2, 1)
        params = np.full(model.num_parameters, 0.3)
        assert not model.circuit(params).is_clifford

    def test_distribution_normalised(self):
        model = BornMachine(3, 2)
        steps = np.ones(model.num_parameters, dtype=int)
        dist = model_distribution(model.clifford_circuit(steps))
        assert np.isclose(dist.total(), 1.0)

    def test_model_matches_statevector(self):
        model = BornMachine(3, 2)
        rng = np.random.default_rng(1)
        steps = rng.integers(0, 4, size=model.num_parameters)
        circuit = model.clifford_circuit(steps)
        a = model_distribution(circuit)
        b = SV.probabilities(circuit)
        assert total_variation_distance(a, b) < 1e-9


class TestTraining:
    def test_training_reduces_loss(self):
        target = Distribution(2, {0b00: 0.5, 0b11: 0.5})  # Bell-pair statistics
        model = BornMachine(2, 2)
        rng = np.random.default_rng(2)
        start = rng.integers(0, 4, size=model.num_parameters)
        start_loss = total_variation_distance(
            model_distribution(model.clifford_circuit(start)), target
        )
        _steps, best_loss = train_clifford(model, target, iterations=2, rng=3)
        assert best_loss <= start_loss + 1e-12

    def test_ghz_target_learnable(self):
        """GHZ statistics are stabilizer statistics: exact fit is reachable."""
        target = Distribution(3, {0b000: 0.5, 0b111: 0.5})
        model = BornMachine(3, 3)
        _steps, loss = train_clifford(model, target, iterations=4, rng=4,
                                      restarts=6)
        assert loss < 0.05

    def test_biased_target_needs_non_clifford(self):
        """A 75/25 single-qubit target is off the stabilizer polytope:
        Clifford training plateaus, one non-Clifford gate improves it."""
        target = Distribution(1, {0: 0.75, 1: 0.25})
        model = BornMachine(1, 1)
        steps, clifford_loss = train_clifford(model, target, iterations=3, rng=5,
                                              restarts=4)
        # Clifford machines only produce P(0) in {0, 1/2, 1}
        assert clifford_loss >= 0.25 - 1e-9
        params, refined_loss = refine_near_clifford(
            model, steps, target, SuperSim()
        )
        assert refined_loss < clifford_loss - 0.05

    def test_refinement_keeps_single_non_clifford(self):
        target = Distribution(2, {0b01: 1.0})
        model = BornMachine(2, 1)
        steps, _ = train_clifford(model, target, iterations=1, rng=6)
        params, _ = refine_near_clifford(model, steps, target, SV)
        assert model.circuit(params).num_non_clifford <= 1
