"""Tests for fragment evaluation and the VariantData implementations."""

import numpy as np
import pytest

from repro.analysis import Distribution, hellinger_fidelity
from repro.circuits import Circuit, gates
from repro.core import cut_circuit, find_cuts
from repro.core.evaluator import (
    AffineVariantData,
    DenseVariantData,
    FragmentEvaluator,
    SampledVariantData,
)
from repro.stabilizer import StabilizerSimulator


def fragments_of(circuit):
    return cut_circuit(circuit, find_cuts(circuit)).fragments


def bell_plus_t():
    c = Circuit(2)
    c.append(gates.H, 0).append(gates.CX, 0, 1)
    c.append(gates.T, 1)
    c.append(gates.H, 1)
    return c


class TestDispatch:
    def test_clifford_fragment_exact_is_affine(self):
        frags = fragments_of(bell_plus_t())
        clifford = next(f for f in frags if f.is_clifford)
        data = FragmentEvaluator().evaluate(clifford)
        assert all(isinstance(v, AffineVariantData) for v in data.results.values())

    def test_non_clifford_fragment_exact_is_dense(self):
        frags = fragments_of(bell_plus_t())
        ncl = next(f for f in frags if not f.is_clifford)
        data = FragmentEvaluator().evaluate(ncl)
        assert all(isinstance(v, DenseVariantData) for v in data.results.values())

    def test_clifford_fragment_sampled_is_bits(self):
        frags = fragments_of(bell_plus_t())
        clifford = next(f for f in frags if f.is_clifford)
        data = FragmentEvaluator(shots=100, rng=0).evaluate(clifford)
        assert all(isinstance(v, SampledVariantData) for v in data.results.values())

    def test_variant_count(self):
        frags = fragments_of(bell_plus_t())
        for fragment in frags:
            data = FragmentEvaluator().evaluate(fragment)
            assert data.num_variants == fragment.num_variants

    def test_clifford_shots_override(self):
        frags = fragments_of(bell_plus_t())
        clifford = next(f for f in frags if f.is_clifford)
        data = FragmentEvaluator(shots=1000, clifford_shots=16, rng=0).evaluate(
            clifford
        )
        some = next(iter(data.results.values()))
        assert some.bits.shape[0] == 16


class TestVariantDataAgreement:
    def test_affine_and_sampled_agree_in_the_limit(self):
        circuit = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        circuit.measure_all()
        affine = StabilizerSimulator().affine_distribution(circuit)
        exact = AffineVariantData(affine)
        sampled = SampledVariantData(affine.sample_bits(40000, rng=0))
        cols = [0, 1]
        f = hellinger_fidelity(exact.joint(cols), sampled.joint(cols))
        assert f > 0.999

    def test_joint_column_order(self):
        # outcome 10 on (q0, q1): selecting [1, 0] must flip the key
        bits = np.array([[1, 0]] * 5, dtype=bool)
        data = SampledVariantData(bits)
        assert data.joint([0, 1])[0b10] == 1.0
        assert data.joint([1, 0])[0b01] == 1.0

    def test_dense_joint(self):
        dist = Distribution(2, {0b10: 1.0})
        data = DenseVariantData(dist)
        assert data.joint([0])[1] == 1.0
        assert data.joint([1])[0] == 1.0

    def test_affine_marginal_subset(self):
        circuit = Circuit(3).append(gates.H, 0).append(gates.CX, 0, 1)
        circuit.measure_all()
        affine = StabilizerSimulator().affine_distribution(circuit)
        data = AffineVariantData(affine)
        joint = data.joint([0, 1])
        assert np.isclose(joint[0b00], 0.5)
        assert np.isclose(joint[0b11], 0.5)
        single = data.joint([2])
        assert single[0] == 1.0
