"""Tests for the bit-flip code with multi-round matching decoding."""

import numpy as np
import pytest

from repro.apps.qec_matching import (
    bit_flip_repetition_code,
    decode_correction,
    logical_bit_flip_error_rate,
    match_defects,
    syndrome_defects,
)
from repro.stabilizer import StabilizerSimulator

STAB = StabilizerSimulator()


class TestCircuit:
    def test_layout(self):
        circuit = bit_flip_repetition_code(3, rounds=2)
        assert circuit.n_qubits == 3 + 2 * 2
        assert circuit.is_clifford

    def test_validation(self):
        with pytest.raises(ValueError):
            bit_flip_repetition_code(1)
        with pytest.raises(ValueError):
            bit_flip_repetition_code(3, rounds=0)

    def test_noiseless_record_is_zero(self):
        circuit = bit_flip_repetition_code(4, rounds=3)
        dist = STAB.probabilities(circuit)
        assert dist[0] == 1.0


class TestSyndromes:
    def test_no_defects_without_errors(self):
        assert syndrome_defects([0] * 7, 3, 2) == []

    def test_single_data_flip(self):
        # distance 3, 1 round: data = [0,1,0]: both ancillas fire at round 0
        bits = [0, 1, 0, 1, 1]
        defects = syndrome_defects(bits, 3, 1)
        # ancilla defects at round 0; data-derived syndrome agrees so no
        # defects at the virtual final round
        assert (0, 0) in defects and (0, 1) in defects
        assert len(defects) == 2

    def test_measurement_error_creates_time_pair(self):
        # ancilla fires in round 0 but not round 1 and data is clean:
        # defects at (0, i) and (1, i)
        bits = [0, 0, 0, 1, 0, 0, 0]  # d=3, rounds=2: anc(round0)=[1,0]
        defects = syndrome_defects(bits, 3, 2)
        assert (0, 0) in defects and (1, 0) in defects

    def test_defect_count_even_including_boundaries(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            bits = rng.integers(0, 2, size=3 + 2 * 2)
            defects = syndrome_defects(list(bits), 3, 2)
            # defects pair up with each other or a boundary; matching must
            # always succeed
            pairs = match_defects(defects, 3)
            matched = [d for pair in pairs for d in pair
                       if not isinstance(d[0], str)]
            assert sorted(matched) == sorted(defects)


class TestDecoding:
    def test_single_flip_corrected(self):
        # error on middle data qubit of d=3
        bits = [0, 1, 0, 1, 1]
        defects = syndrome_defects(bits, 3, 1)
        correction = decode_correction(defects, 3)
        data = np.array(bits[:3], dtype=bool) ^ correction
        assert not data.any()

    def test_edge_flip_corrected(self):
        bits = [1, 0, 0, 1, 0]
        defects = syndrome_defects(bits, 3, 1)
        correction = decode_correction(defects, 3)
        data = np.array(bits[:3], dtype=bool) ^ correction
        assert not data.any()

    def test_no_defects_no_correction(self):
        assert not decode_correction([], 5).any()

    def test_measurement_error_does_not_flip_data(self):
        bits = [0, 0, 0, 1, 0, 0, 0]  # lone measurement error, d=3 r=2
        defects = syndrome_defects(bits, 3, 2)
        correction = decode_correction(defects, 3)
        assert not correction.any()


class TestLogicalErrorRates:
    def test_rate_monotone_in_noise(self):
        low = logical_bit_flip_error_rate(3, 0.01, rounds=2, shots=3000, rng=0)
        high = logical_bit_flip_error_rate(3, 0.15, rounds=2, shots=3000, rng=0)
        assert low < high

    def test_distance_suppresses_errors(self):
        p = 0.02
        d3 = logical_bit_flip_error_rate(3, p, rounds=2, shots=8000, rng=1)
        d7 = logical_bit_flip_error_rate(7, p, rounds=2, shots=8000, rng=1)
        assert d7 <= d3 + 0.005

    def test_zero_noise_zero_errors(self):
        assert logical_bit_flip_error_rate(3, 0.0, rounds=3, shots=500, rng=2) == 0.0
