"""End-to-end tests: cut + evaluate + reconstruct == uncut simulation.

This is the core correctness claim of the framework (paper §V): SuperSim
"does not rely on any approximations; its only source of inaccuracy is
statistical error from sampling".  In exact mode the reconstructed
distribution must match dense simulation to floating-point accuracy.
"""

import numpy as np
import pytest

from repro.analysis import hellinger_fidelity
from repro.circuits import (
    Circuit,
    gates,
    inject_t_gates,
    random_clifford_circuit,
    random_near_clifford_circuit,
)
from repro.core import (
    Cut,
    CutConfig,
    CutStrategy,
    ExecutionConfig,
    SamplingConfig,
    SuperSim,
)
from repro.statevector import StatevectorSimulator

SV = StatevectorSimulator()
EXACT = SuperSim()


def assert_matches_statevector(circuit, sim=EXACT, tol=1e-9):
    expected = SV.probabilities(circuit)
    result = sim.run(circuit)
    fidelity = hellinger_fidelity(expected, result.distribution)
    assert fidelity > 1 - tol, (fidelity, result.cut_circuit)
    return result


class TestExactReconstruction:
    def test_mid_wire_t(self):
        c = Circuit(3)
        c.append(gates.H, 0).append(gates.CX, 0, 1)
        c.append(gates.T, 1)
        c.append(gates.CX, 1, 2).append(gates.H, 2)
        result = assert_matches_statevector(c)
        assert result.num_cuts == 2
        assert result.num_fragments == 3

    def test_no_cut_clifford(self):
        c = random_clifford_circuit(4, 5, rng=0)
        result = assert_matches_statevector(c)
        assert result.num_cuts == 0

    def test_t_on_plus(self):
        c = Circuit(1).append(gates.H, 0).append(gates.T, 0)
        # T is trailing: one cut between H and T
        assert_matches_statevector(c)

    def test_t_then_h(self):
        # T first (no cut before), then Clifford tail (one cut after)
        c = Circuit(1).append(gates.T, 0).append(gates.H, 0)
        # |0> is a Z eigenstate so T acts trivially; use |+> input instead
        c2 = Circuit(2).append(gates.H, 0).append(gates.T, 0)
        c2.append(gates.H, 0).append(gates.CX, 0, 1)
        assert_matches_statevector(c)
        assert_matches_statevector(c2)

    @pytest.mark.parametrize("seed", range(15))
    def test_random_near_clifford_one_t(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        c = inject_t_gates(random_clifford_circuit(n, int(rng.integers(2, 6)), rng),
                           1, rng)
        assert_matches_statevector(c)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_near_clifford_two_t(self, seed):
        rng = np.random.default_rng(100 + seed)
        c = random_near_clifford_circuit(4, 4, num_non_clifford=2, rng=rng)
        assert_matches_statevector(c)

    @pytest.mark.parametrize("seed", range(4))
    def test_non_t_rotations(self, seed):
        rng = np.random.default_rng(200 + seed)
        c = random_clifford_circuit(3, 3, rng)
        c.append(gates.ZPow(0.3), int(rng.integers(3)))
        assert_matches_statevector(c)

    def test_two_qubit_non_clifford_gate(self):
        c = Circuit(3)
        for q in range(3):
            c.append(gates.H, q)
        c.append(gates.ZZPow(0.25), 0, 1)
        c.append(gates.CX, 1, 2)
        assert_matches_statevector(c)

    def test_measured_subset(self):
        c = Circuit(3)
        c.append(gates.H, 0).append(gates.CX, 0, 1).append(gates.T, 1)
        c.append(gates.CX, 1, 2)
        c.measure([0, 2])
        expected = SV.probabilities(c)
        got = EXACT.run(c).distribution
        assert hellinger_fidelity(expected, got) > 1 - 1e-9

    def test_greedy_merge_strategy(self):
        c = Circuit(3)
        c.append(gates.H, 0).append(gates.CX, 0, 1)
        c.append(gates.T, 1)
        c.append(gates.CX, 1, 2).append(gates.H, 2)
        sim = SuperSim(cut=CutConfig(strategy=CutStrategy.GREEDY_MERGE))
        assert_matches_statevector(c, sim=sim)

    def test_user_cuts(self):
        c = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1).append(gates.H, 1)
        result = EXACT.run(c, cuts=[Cut(1, 1)])
        expected = SV.probabilities(c)
        assert hellinger_fidelity(expected, result.distribution) > 1 - 1e-9
        assert result.num_cuts == 1

    def test_max_cuts_guard(self):
        sim = SuperSim(cut=CutConfig(max_cuts=1))
        c = Circuit(2)
        c.append(gates.H, 0).append(gates.T, 0).append(gates.H, 0)
        c.append(gates.H, 1).append(gates.T, 1).append(gates.H, 1)
        with pytest.raises(ValueError):
            sim.run(c)


class TestWideCircuits:
    def test_ghz_with_t_at_40_qubits(self):
        """Beyond statevector reach: check marginals analytically."""
        n = 40
        c = Circuit(n).append(gates.H, 0)
        for q in range(n - 1):
            c.append(gates.CX, q, q + 1)
        c = inject_t_gates(c, 1, rng=5)
        marginals = EXACT.single_qubit_marginals(c)
        # GHZ marginals are 50/50 on every qubit, T only adds phase on a
        # Z-basis-diagonal location or rotates one qubit's reduced state,
        # which stays 50/50 for the diagonal T
        assert marginals.shape == (n, 2)
        assert np.all(marginals >= -1e-9)
        assert np.allclose(marginals.sum(axis=1), 1.0, atol=1e-9)

    def test_marginals_match_statevector_when_small(self):
        rng = np.random.default_rng(7)
        c = inject_t_gates(random_clifford_circuit(5, 4, rng), 1, rng)
        expected = SV.probabilities(c).single_bit_marginals()
        got = EXACT.single_qubit_marginals(c)
        assert np.allclose(got, expected, atol=1e-8)


class TestSampledMode:
    def test_sampled_reconstruction_close(self):
        rng = np.random.default_rng(11)
        c = inject_t_gates(random_clifford_circuit(4, 4, rng), 1, rng)
        sim = SuperSim(sampling=SamplingConfig(shots=4000, seed=1))
        expected = SV.probabilities(c)
        result = sim.run(c)
        assert hellinger_fidelity(expected, result.distribution) > 0.95

    def test_snap_and_tomography_improve_or_match(self):
        rng = np.random.default_rng(13)
        c = Circuit(3)
        c.append(gates.H, 0).append(gates.CX, 0, 1).append(gates.T, 1)
        c.append(gates.CX, 1, 2)
        expected = SV.probabilities(c)
        plain = SuperSim(sampling=SamplingConfig(shots=300, seed=2)).run(c).distribution
        refined = SuperSim(
            sampling=SamplingConfig(
                shots=300, seed=2, snap_clifford=True, tomography=True
            )
        ).run(c).distribution
        f_plain = hellinger_fidelity(expected, plain)
        f_refined = hellinger_fidelity(expected, refined)
        assert f_refined > 0.9
        # refinement should not catastrophically hurt
        assert f_refined > f_plain - 0.05

    def test_clifford_shots_reduction(self):
        rng = np.random.default_rng(17)
        c = inject_t_gates(random_clifford_circuit(4, 3, rng), 1, rng)
        sim = SuperSim(sampling=SamplingConfig(
            shots=2000, clifford_shots=64, snap_clifford=True, seed=3
        ))
        expected = SV.probabilities(c)
        result = sim.run(c)
        assert hellinger_fidelity(expected, result.distribution) > 0.9


class TestSectionNineOptimizations:
    def test_zero_terms_are_pruned(self):
        c = Circuit(3)
        c.append(gates.H, 0).append(gates.CX, 0, 1).append(gates.T, 1)
        c.append(gates.CX, 1, 2)
        result = EXACT.run(c)
        # stabilizer fragments have many zero Pauli expectations
        assert result.stats.terms_skipped > 0
        assert result.stats.terms_total == 4**result.num_cuts

    def test_pruning_does_not_change_answer(self):
        rng = np.random.default_rng(23)
        c = inject_t_gates(random_clifford_circuit(4, 4, rng), 1, rng)
        with_prune = SuperSim(execution=ExecutionConfig(prune_zeros=True)).run(c).distribution
        without = SuperSim(execution=ExecutionConfig(prune_zeros=False)).run(c).distribution
        assert hellinger_fidelity(with_prune, without) > 1 - 1e-9


class TestResultMetadata:
    def test_timings_present(self):
        c = Circuit(1).append(gates.H, 0)
        result = EXACT.run(c)
        fixed = {
            "cut",
            "evaluate",
            "tomography",
            "reconstruct",
            "cache_hits",
            "cache_misses",
        }
        assert fixed <= set(result.timings)
        extras = set(result.timings) - fixed
        # per-kernel attribution entries, one per kernel that ran
        assert all(key.startswith("kernel.") for key in extras)
        assert all(
            isinstance(v, float) and v >= 0.0 for v in result.timings.values()
        )
        assert result.kernel_tier in ("numpy", "numba", "cupy")

    def test_variant_count(self):
        c = Circuit(3)
        c.append(gates.H, 0).append(gates.CX, 0, 1).append(gates.T, 1)
        c.append(gates.CX, 1, 2).append(gates.H, 2)
        result = EXACT.run(c)
        # fragments: upstream (1 q-out): 3 variants; T (1 in, 1 out): 12;
        # downstream (1 q-in): 4
        assert result.num_variants == 19

    def test_probability_of(self):
        c = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        c.append(gates.T, 1)
        p = EXACT.probability_of(c, [0, 0])
        assert np.isclose(p, 0.5, atol=1e-9)


class TestExpectationAPI:
    def test_matches_statevector(self):
        from repro.paulis import PauliString

        rng = np.random.default_rng(31)
        c = inject_t_gates(random_clifford_circuit(4, 4, rng), 1, rng)
        for label in ("ZZII", "XIXI", "IYYI"):
            pauli = PauliString.from_label(label)
            assert np.isclose(
                EXACT.expectation(c, pauli), SV.expectation(c, pauli), atol=1e-8
            )

    def test_wide_circuit_expectation(self):
        from repro.circuits import ghz_circuit
        from repro.paulis import PauliString

        n = 50
        c = ghz_circuit(n)
        c.append(gates.T, n - 1)
        zz = PauliString.from_label("ZZ" + "I" * (n - 2))
        assert np.isclose(EXACT.expectation(c, zz), 1.0, atol=1e-9)
