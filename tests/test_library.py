"""Tests for the circuit library (GHZ, brickwork, QFT) and CZPow support."""

import numpy as np
import pytest

from repro.circuits import Circuit, gates
from repro.circuits.gates import CZPow
from repro.circuits.library import brickwork_layer, ghz_circuit, qft_circuit
from repro.extended_stabilizer import ExtendedStabilizerSimulator, StabilizerSum
from repro.statevector import StatevectorSimulator

SV = StatevectorSimulator()


class TestCZPow:
    def test_cz_at_integer(self):
        assert CZPow(1.0).is_clifford
        assert np.allclose(CZPow(1.0).matrix, gates.CZ.matrix)
        assert CZPow(2.0).is_clifford

    def test_non_clifford_fractions(self):
        assert not CZPow(0.5).is_clifford
        assert not CZPow(0.25).is_clifford

    def test_decomposition_at_clifford_points(self):
        for t in (1.0, 2.0, 3.0):
            gate = CZPow(t)
            circuit = Circuit(2)
            table = {"H": gates.H, "S": gates.S, "CX": gates.CX}
            for name, wires in gate.stabilizer_decomposition():
                circuit.append(table[name], *wires)
            u = circuit.unitary()
            ratio = gate.matrix[0, 0] / u[0, 0]
            assert np.allclose(u * ratio, gate.matrix, atol=1e-9)


class TestGHZ:
    def test_state(self):
        psi = SV.state(ghz_circuit(4))
        assert np.isclose(abs(psi[0]) ** 2, 0.5)
        assert np.isclose(abs(psi[-1]) ** 2, 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ghz_circuit(0)


class TestBrickwork:
    def test_layer_offsets(self):
        a = brickwork_layer(Circuit(5), offset=0)
        b = brickwork_layer(Circuit(5), offset=1)
        assert {op.qubits for op in a} == {(0, 1), (2, 3)}
        assert {op.qubits for op in b} == {(1, 2), (3, 4)}


class TestQFT:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_matches_dft_matrix(self, n):
        """QFT (without qubit reversal) equals the DFT with reversed rows."""
        circuit = qft_circuit(n)
        u = circuit.unitary()
        dim = 2**n
        omega = np.exp(2j * np.pi / dim)
        dft = np.array(
            [[omega ** (r * c) for c in range(dim)] for r in range(dim)]
        ) / np.sqrt(dim)
        # undo the implicit bit reversal of the textbook construction
        perm = [int(f"{i:0{n}b}"[::-1], 2) for i in range(dim)]
        assert np.allclose(u[perm, :], dft, atol=1e-9)

    def test_non_clifford_count(self):
        circuit = qft_circuit(4)
        assert circuit.num_non_clifford == 3 + 2 + 1

    def test_approximate_qft_drops_small_angles(self):
        exact = qft_circuit(5)
        approx = qft_circuit(5, approximation_degree=2)
        assert len(approx) < len(exact)

    def test_extended_stabilizer_runs_qft(self):
        """Rank grows with the QFT's non-Clifford count but stays exact."""
        circuit = qft_circuit(3)
        state = StabilizerSum(3, max_terms=2**12)
        state.apply_circuit(circuit)
        assert np.allclose(state.to_statevector(), SV.state(circuit), atol=1e-8)

    def test_zzpow_costs_single_doubling(self):
        state = StabilizerSum(2)
        state.apply_operation(gates.ZZPow(0.25), (0, 1))
        assert state.num_terms == 2  # the x XOR y factorisation

    def test_generic_two_qubit_diagonal(self):
        diag = np.diag(np.exp(1j * np.array([0.0, 0.3, 0.9, 1.7])))
        gate = gates.Gate("DIAG2", diag)
        circuit = Circuit(2).append(gates.H, 0).append(gates.H, 1)
        circuit.append(gate, 0, 1)
        state = StabilizerSum(2, max_terms=64)
        state.apply_circuit(circuit)
        assert np.allclose(state.to_statevector(), SV.state(circuit), atol=1e-9)
