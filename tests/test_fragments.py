"""Unit tests for the fragment data structures."""

import pytest

from repro.circuits import Circuit, gates
from repro.core import Cut, cut_circuit, find_cuts
from repro.core.fragments import Fragment


def cut_example():
    c = Circuit(3)
    c.append(gates.H, 0).append(gates.CX, 0, 1)
    c.append(gates.T, 1)
    c.append(gates.CX, 1, 2).append(gates.H, 2)
    return cut_circuit(c, find_cuts(c))


class TestFragment:
    def test_repr_mentions_cliffordness(self):
        cc = cut_example()
        reps = [repr(f) for f in cc.fragments]
        assert any("non-Clifford" in r for r in reps)
        assert any(", Clifford" in r for r in reps)

    def test_output_qubit_for(self):
        cc = cut_example()
        for fragment in cc.fragments:
            for oq, lq in fragment.circuit_outputs:
                assert fragment.output_qubit_for(oq) == lq

    def test_output_qubit_for_missing(self):
        cc = cut_example()
        t_fragment = next(f for f in cc.fragments if not f.is_clifford)
        with pytest.raises(KeyError):
            t_fragment.output_qubit_for(0)

    def test_num_variants_formula(self):
        fragment = Fragment(index=0, circuit=Circuit(2))
        fragment.quantum_inputs = [(0, 0), (1, 1)]
        fragment.quantum_outputs = [(2, 0)]
        assert fragment.num_variants == 4 * 4 * 3

    def test_incident_cuts_deduplicated(self):
        fragment = Fragment(index=0, circuit=Circuit(1))
        fragment.quantum_inputs = [(3, 0)]
        fragment.quantum_outputs = [(3, 0), (1, 0)]
        assert fragment.incident_cuts == [1, 3]


class TestCutCircuit:
    def test_reconstruction_terms(self):
        cc = cut_example()
        assert cc.reconstruction_terms == 4**2

    def test_fragment_of_output_missing(self):
        cc = cut_example()
        with pytest.raises(KeyError):
            cc.fragment_of_output(99)

    def test_repr(self):
        cc = cut_example()
        assert "2 cuts" in repr(cc)
        assert "3 fragments" in repr(cc)

    def test_cut_frozen_and_hashable(self):
        a, b = Cut(1, 2), Cut(1, 2)
        assert a == b and hash(a) == hash(b)
        with pytest.raises(AttributeError):
            a.qubit = 5
