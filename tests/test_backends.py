"""Tests for the repro.backends subsystem: registry, router, cache, engine."""

import numpy as np
import pytest

from repro.analysis import hellinger_fidelity
from repro.backends import (
    Backend,
    BackendRouter,
    Capabilities,
    CircuitFeatures,
    NoCapableBackendError,
    VariantCache,
    as_backend,
    available_backends,
    circuit_fingerprint,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.circuits import Circuit, gates, inject_t_gates, random_clifford_circuit
from repro.core import ExecutionConfig, SamplingConfig, SuperSim
from repro.statevector import StatevectorSimulator

SV = StatevectorSimulator()


def near_clifford(seed=0, n=4):
    rng = np.random.default_rng(seed)
    return inject_t_gates(random_clifford_circuit(n, 4, rng), 1, rng)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        for name in (
            "stabilizer",
            "chform",
            "statevector",
            "mps",
            "extended_stabilizer",
        ):
            assert name in names

    def test_get_backend_by_name_and_kwargs(self):
        backend = get_backend("statevector", max_qubits=5)
        assert backend.capabilities.max_qubits == 5

    def test_get_backend_passthrough(self):
        instance = get_backend("mps")
        assert get_backend(instance) is instance

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_backend("no-such-backend")

    def test_register_and_replace_guard(self):
        class Dummy(Backend):
            name = "dummy-test"

            def probabilities(self, circuit):
                return SV.probabilities(circuit)

            def sample(self, circuit, shots, rng=None):
                return SV.sample(circuit, shots, rng)

        register_backend("dummy-test", Dummy)
        try:
            with pytest.raises(ValueError):
                register_backend("dummy-test", Dummy)
            register_backend("dummy-test", Dummy, replace=True)
            assert isinstance(get_backend("dummy-test"), Dummy)
        finally:
            unregister_backend("dummy-test")

    def test_legacy_adapter(self):
        backend = as_backend(StatevectorSimulator(max_qubits=8))
        circuit = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        circuit.measure_all()
        dist = backend.probabilities(circuit)
        assert np.isclose(dist[0b00], 0.5)


class TestFeatures:
    def test_clifford_features(self):
        c = Circuit(3).append(gates.H, 0).append(gates.CX, 0, 1)
        f = CircuitFeatures.from_circuit(c)
        assert f.is_clifford and f.t_count == 0
        assert f.two_qubit_count == 1 and f.entangling_depth == 1

    def test_t_count_and_depth(self):
        c = Circuit(3)
        c.append(gates.CX, 0, 1).append(gates.CX, 1, 2).append(gates.CX, 0, 1)
        c.append(gates.T, 0)
        f = CircuitFeatures.from_circuit(c)
        assert not f.is_clifford and f.t_count == 1
        assert f.entangling_depth == 3

    def test_nondiagonal_two_qubit_nonclifford(self):
        matrix = np.kron(gates.T.matrix, np.eye(2)) @ gates.SWAP.matrix
        weird = gates.Gate("WEIRD2Q", matrix)
        c = Circuit(2).append(weird, 0, 1)
        f = CircuitFeatures.from_circuit(c)
        assert f.has_nondiagonal_nonclifford
        assert not get_backend("extended_stabilizer").can_handle(f)


class TestRouter:
    def test_clifford_routes_to_stabilizer(self):
        c = random_clifford_circuit(6, 5, rng=0).measure_all()
        f = CircuitFeatures.from_circuit(c)
        assert BackendRouter().select(f).name == "stabilizer"

    def test_narrow_nonclifford_routes_to_statevector(self):
        c = Circuit(2).append(gates.H, 0).append(gates.T, 0)
        f = CircuitFeatures.from_circuit(c)
        assert BackendRouter().select(f).name == "statevector"

    def test_forced_backend_wins_when_capable(self):
        c = Circuit(2).append(gates.H, 0).append(gates.T, 0)
        f = CircuitFeatures.from_circuit(c)
        router = BackendRouter(forced="mps")
        assert router.select(f).name == "mps"

    def test_forced_clifford_only_falls_back(self):
        c = Circuit(2).append(gates.H, 0).append(gates.T, 0)
        f = CircuitFeatures.from_circuit(c)
        router = BackendRouter(forced="stabilizer")
        assert router.select(f).name == "statevector"

    def test_no_capable_backend(self):
        c = Circuit(2).append(gates.H, 0).append(gates.T, 0)
        f = CircuitFeatures.from_circuit(c)
        router = BackendRouter(backends=["stabilizer"])
        with pytest.raises(NoCapableBackendError):
            router.select(f)


class TestFingerprint:
    def test_identical_circuits_share_fingerprint(self):
        a = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1).measure_all()
        b = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1).measure_all()
        assert circuit_fingerprint(a) == circuit_fingerprint(b)

    def test_parameters_and_wires_matter(self):
        base = Circuit(2).append(gates.ZPow(0.3), 0).measure_all()
        other_param = Circuit(2).append(gates.ZPow(0.31), 0).measure_all()
        other_wire = Circuit(2).append(gates.ZPow(0.3), 1).measure_all()
        fps = {
            circuit_fingerprint(base),
            circuit_fingerprint(other_param),
            circuit_fingerprint(other_wire),
        }
        assert len(fps) == 3

    def test_measurement_set_matters(self):
        a = Circuit(2).append(gates.H, 0).measure_all()
        b = Circuit(2).append(gates.H, 0).measure([0])
        assert circuit_fingerprint(a) != circuit_fingerprint(b)


class TestVariantCache:
    def test_lru_eviction(self):
        cache = VariantCache(maxsize=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # refresh a
        cache.put(("c",), 3)  # evicts b
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1
        assert cache.get(("c",)) == 3

    def test_counters(self):
        cache = VariantCache()
        assert cache.get(("x",)) is None
        cache.put(("x",), 42)
        assert cache.get(("x",)) == 42
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["evictions"] == 0
        assert stats["bytes"] > 0

    def test_eviction_and_bytes_gauges(self):
        import numpy as np

        cache = VariantCache(maxsize=2)
        payload = np.zeros(1024, dtype=np.uint8)
        cache.put(("a",), payload)
        assert cache.stats()["bytes"] >= payload.nbytes
        cache.put(("b",), payload)
        cache.put(("c",), payload)  # evicts a
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        # the gauge tracks live entries, not lifetime puts
        assert stats["bytes"] < 3 * payload.nbytes + 4096
        cache.clear()
        assert cache.stats()["bytes"] == 0


class TestSuperSimIntegration:
    def test_backend_by_name_end_to_end(self):
        c = near_clifford(3)
        expected = SV.probabilities(c)
        result = SuperSim(execution=ExecutionConfig(backend="mps")).run(c)
        assert hellinger_fidelity(expected, result.distribution) > 1 - 1e-9
        assert set(result.backend_usage) == {"mps"}

    def test_custom_registered_backend_end_to_end(self):
        class TracingBackend(Backend):
            name = "tracing-sv"
            capabilities = Capabilities(max_qubits=12)
            calls = 0

            def __init__(self):
                self.simulator = StatevectorSimulator(max_qubits=12)

            def probabilities(self, circuit):
                type(self).calls += 1
                return self.simulator.probabilities(circuit)

            def sample(self, circuit, shots, rng=None):
                type(self).calls += 1
                return self.simulator.sample(circuit, shots, rng)

        register_backend("tracing-sv", TracingBackend)
        try:
            c = near_clifford(5)
            expected = SV.probabilities(c)
            result = SuperSim(execution=ExecutionConfig(backend="tracing-sv")).run(c)
            assert hellinger_fidelity(expected, result.distribution) > 1 - 1e-9
            assert set(result.backend_usage) == {"tracing-sv"}
            assert TracingBackend.calls > 0
        finally:
            unregister_backend("tracing-sv")

    def test_repeated_run_hits_cache(self):
        c = near_clifford(7)
        sim = SuperSim()
        first = sim.run(c)
        assert first.cache_hits == 0
        assert first.cache_misses > 0
        second = sim.run(c)
        assert second.cache_misses == 0
        assert second.cache_hits == first.cache_misses
        assert hellinger_fidelity(first.distribution, second.distribution) > 1 - 1e-12

    def test_cache_shared_across_parameter_sweep(self):
        # only the variants of the rotated fragment should be re-simulated
        sim = SuperSim()

        def circuit(theta):
            c = Circuit(3).append(gates.H, 0).append(gates.CX, 0, 1)
            c.append(gates.ZPow(theta), 1)
            c.append(gates.CX, 1, 2)
            return c

        first = sim.run(circuit(0.3))
        second = sim.run(circuit(0.4))
        assert second.cache_hits > 0  # unchanged Clifford fragments reused
        assert second.cache_misses < first.cache_misses

    def test_cache_disabled(self):
        c = near_clifford(9)
        sim = SuperSim(execution=ExecutionConfig(cache=False))
        sim.run(c)
        result = sim.run(c)
        assert result.cache_hits == 0

    def test_fully_cached_run_reports_no_simulated_variants(self):
        c = near_clifford(13)
        sim = SuperSim()
        first = sim.run(c)
        assert sum(first.backend_usage.values()) == first.cache_misses
        second = sim.run(c)
        assert second.backend_usage == {}  # nothing was simulated

    def test_shared_cache_distinguishes_backend_configuration(self):
        # a truncated (max_bond=1, approximate) MPS run must not poison a
        # shared cache consumed by an exact MPS run of the same circuit
        from repro.backends import VariantCache

        c = near_clifford(15)
        expected = SV.probabilities(c)
        shared = VariantCache()
        truncated = SuperSim(execution=ExecutionConfig(
            backend=get_backend("mps", max_bond=1), cache=shared
        )).run(c)
        exact = SuperSim(
            execution=ExecutionConfig(backend="mps", cache=shared)
        ).run(c)
        assert exact.cache_hits == 0  # different configuration, no aliasing
        assert hellinger_fidelity(expected, exact.distribution) > 1 - 1e-9

    def test_shared_cache_distinguishes_noise_models(self):
        # regression: keying noise by id() aliased recycled objects; the
        # content fingerprint must keep a p-sweep's entries distinct
        from repro.backends import VariantCache
        from repro.circuits import random_clifford_circuit
        from repro.stabilizer import NoiseModel, PauliChannel

        circuit = random_clifford_circuit(4, 4, rng=0).measure_all()
        shared = VariantCache()

        def run(p):
            noise = NoiseModel(after_gate_1q=PauliChannel.depolarizing(p))
            sim = SuperSim(
                sampling=SamplingConfig(shots=500, seed=7, noise=noise),
                execution=ExecutionConfig(cache=shared),
            )
            return sim.run(circuit).distribution

        clean = run(0.0)
        noisy = [run(p) for p in (0.1, 0.2, 0.3)]
        assert all(d.probs != clean.probs for d in noisy)

    def test_equal_noise_models_share_cache_entries(self):
        from repro.backends import VariantCache
        from repro.circuits import random_clifford_circuit
        from repro.stabilizer import NoiseModel, PauliChannel

        circuit = random_clifford_circuit(4, 4, rng=0).measure_all()
        shared = VariantCache()

        def run(p):
            noise = NoiseModel(after_gate_1q=PauliChannel.depolarizing(p))
            sim = SuperSim(
                sampling=SamplingConfig(shots=300, seed=7, noise=noise),
                execution=ExecutionConfig(cache=shared),
            )
            return sim.run(circuit)

        run(0.05)
        repeat = run(0.05)  # a *new* but equal NoiseModel object
        assert repeat.cache_hits > 0

    def test_clifford_shots_does_not_break_exact_mode(self):
        # regression: shots=None must stay exact even with clifford_shots set
        from repro.core.evaluator import AffineVariantData, FragmentEvaluator
        from repro.core import cut_circuit, find_cuts

        c = near_clifford(17)
        expected = SV.probabilities(c)
        result = SuperSim(sampling=SamplingConfig(clifford_shots=50)).run(c)
        assert hellinger_fidelity(expected, result.distribution) > 1 - 1e-9
        fragment = next(
            f
            for f in cut_circuit(c, find_cuts(c)).fragments
            if f.is_clifford
        )
        data = FragmentEvaluator(clifford_shots=50).evaluate(fragment)
        assert all(isinstance(v, AffineVariantData) for v in data.results.values())

    def test_legacy_nonclifford_backend_still_works(self):
        from repro.mps import MPSSimulator

        c = near_clifford(11)
        expected = SV.probabilities(c)
        result = SuperSim(
            execution=ExecutionConfig(nonclifford_backend=MPSSimulator())
        ).run(c)
        assert hellinger_fidelity(expected, result.distribution) > 1 - 1e-9
        assert "mps" in result.backend_usage
        assert "stabilizer" in result.backend_usage


class TestCostCalibration:
    def test_measure_cost_scales_returns_positive_floats(self):
        from repro.backends.calibration import measure_cost_scales

        scales = measure_cost_scales(["stabilizer", "statevector"], repeats=1)
        assert set(scales) == {"stabilizer", "statevector"}
        assert all(v > 0 for v in scales.values())

    def test_calibration_circuit_respects_capabilities(self):
        from repro.backends import get_backend
        from repro.backends.calibration import calibration_circuit

        for name in ("stabilizer", "chform", "statevector", "extended_stabilizer"):
            backend = get_backend(name)
            circuit = calibration_circuit(backend)
            from repro.backends.base import CircuitFeatures

            features = CircuitFeatures.from_circuit(circuit)
            assert backend.can_handle(features, exact=True)

    def test_router_applies_cost_scales(self):
        from repro.backends import BackendRouter, get_backend
        from repro.backends.base import CircuitFeatures

        circuit = random_clifford_circuit(6, 4, rng=0)
        features = CircuitFeatures.from_circuit(circuit)
        stab = get_backend("stabilizer")
        chform = get_backend("chform")
        router = BackendRouter([stab, chform])
        assert router.select(features).name == "stabilizer"
        # an absurd penalty on the tableau flips the routing decision
        penalised = BackendRouter(
            [stab, chform], cost_scales={"stabilizer": 1e18}
        )
        assert penalised.select(features).name == "chform"

    def test_router_rejects_nonpositive_scales(self):
        from repro.backends import BackendRouter

        with pytest.raises(ValueError):
            BackendRouter(cost_scales={"stabilizer": 0.0})

    def test_calibrated_routing_end_to_end(self):
        from repro.backends import BackendRouter
        from repro.backends.calibration import measure_cost_scales

        scales = measure_cost_scales(repeats=1)
        router = BackendRouter(cost_scales=scales)
        c = near_clifford(9)
        expected = SV.probabilities(c)
        result = SuperSim(execution=ExecutionConfig(router=router)).run(c)
        assert hellinger_fidelity(expected, result.distribution) > 1 - 1e-9
