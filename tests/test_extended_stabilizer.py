"""Tests for the extended-stabilizer (Clifford+T) simulator."""

import cmath
import math

import numpy as np
import pytest

from repro.analysis import hellinger_fidelity
from repro.circuits import (
    Circuit,
    gates,
    inject_t_gates,
    random_clifford_circuit,
    random_near_clifford_circuit,
)
from repro.extended_stabilizer import ExtendedStabilizerSimulator, StabilizerSum
from repro.extended_stabilizer.simulator import (
    _diagonal_branch_coefficients,
    _euler_zxz,
)
from repro.statevector import StatevectorSimulator

SV = StatevectorSimulator()
EXT = ExtendedStabilizerSimulator()


def sum_state(circuit: Circuit) -> np.ndarray:
    state = StabilizerSum(circuit.n_qubits)
    state.apply_circuit(circuit)
    return state.to_statevector()


class TestBranchDecompositions:
    def test_t_gate_coefficients(self):
        alpha, beta = _diagonal_branch_coefficients(1.0, cmath.exp(1j * math.pi / 4))
        # alpha*I + beta*S == T
        assert np.isclose(alpha + beta, 1.0)
        assert np.isclose(alpha + 1j * beta, cmath.exp(1j * math.pi / 4))

    @pytest.mark.parametrize("theta", [0.1, 0.25, 0.5, 1.3, -0.7])
    def test_general_diagonal(self, theta):
        d0, d1 = cmath.exp(-1j * theta / 2), cmath.exp(1j * theta / 2)
        alpha, beta = _diagonal_branch_coefficients(d0, d1)
        reconstructed = np.array([[alpha + beta, 0], [0, alpha + 1j * beta]])
        assert np.allclose(reconstructed, np.diag([d0, d1]))

    @pytest.mark.parametrize("seed", range(10))
    def test_euler_zxz_random_unitaries(self, seed):
        rng = np.random.default_rng(seed)
        # random unitary via QR of a Ginibre matrix
        m = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        q, r = np.linalg.qr(m)
        u = q @ np.diag(np.diag(r) / np.abs(np.diag(r)))
        phase, a, b, c = _euler_zxz(u)
        za = np.diag([1, cmath.exp(1j * math.pi * a)])
        xb = gates.XPow(b).matrix
        zc = np.diag([1, cmath.exp(1j * math.pi * c)])
        assert np.allclose(phase * za @ xb @ zc, u, atol=1e-9), (a, b, c)

    @pytest.mark.parametrize(
        "gate", [gates.H, gates.X, gates.T, gates.S, gates.ZPow(0.3),
                 gates.XPow(0.77), gates.YPow(0.2), gates.Rz(1.1)],
        ids=repr,
    )
    def test_euler_zxz_named_gates(self, gate):
        phase, a, b, c = _euler_zxz(gate.matrix)
        za = np.diag([1, cmath.exp(1j * math.pi * a)])
        xb = gates.XPow(b).matrix
        zc = np.diag([1, cmath.exp(1j * math.pi * c)])
        assert np.allclose(phase * za @ xb @ zc, gate.matrix, atol=1e-9)


class TestStrongSimulation:
    def test_t_on_plus(self):
        circuit = Circuit(1).append(gates.H, 0).append(gates.T, 0)
        assert np.allclose(sum_state(circuit), SV.state(circuit), atol=1e-9)

    def test_rank_doubles_per_t(self):
        circuit = Circuit(2).append(gates.H, 0).append(gates.T, 0)
        circuit.append(gates.CX, 0, 1).append(gates.T, 1)
        state = StabilizerSum(2)
        state.apply_circuit(circuit)
        assert state.num_terms == 4

    def test_clifford_keeps_rank_one(self):
        circuit = random_clifford_circuit(4, 6, rng=0)
        state = StabilizerSum(4)
        state.apply_circuit(circuit)
        assert state.num_terms == 1

    @pytest.mark.parametrize("seed", range(10))
    def test_random_near_clifford_statevector(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        circuit = random_near_clifford_circuit(n, 4, num_non_clifford=2, rng=rng)
        assert np.allclose(sum_state(circuit), SV.state(circuit), atol=1e-9)

    @pytest.mark.parametrize("seed", range(6))
    def test_arbitrary_rotation_gates(self, seed):
        rng = np.random.default_rng(50 + seed)
        circuit = random_clifford_circuit(3, 3, rng)
        circuit.append(gates.ZPow(0.3), int(rng.integers(3)))
        circuit.append(gates.XPow(0.7), int(rng.integers(3)))
        circuit.append(gates.Rz(0.9), int(rng.integers(3)))
        assert np.allclose(sum_state(circuit), SV.state(circuit), atol=1e-9)

    def test_non_clifford_zzpow(self):
        circuit = Circuit(2).append(gates.H, 0).append(gates.H, 1)
        circuit.append(gates.ZZPow(0.25), 0, 1)
        assert np.allclose(sum_state(circuit), SV.state(circuit), atol=1e-9)

    def test_probabilities_match_statevector(self):
        circuit = inject_t_gates(random_clifford_circuit(3, 4, rng=1), 1, rng=2)
        exact = SV.probabilities(circuit)
        got = EXT.probabilities(circuit)
        assert hellinger_fidelity(exact, got) > 1 - 1e-9

    def test_measured_subset(self):
        circuit = Circuit(2).append(gates.H, 0).append(gates.T, 0)
        circuit.append(gates.CX, 0, 1).measure([1])
        exact = SV.probabilities(circuit)
        got = EXT.probabilities(circuit)
        assert hellinger_fidelity(exact, got) > 1 - 1e-9

    def test_max_terms_guard(self):
        state = StabilizerSum(1, max_terms=2)
        state.apply_operation(gates.T, (0,))
        with pytest.raises(RuntimeError):
            state.apply_operation(gates.ZPow(0.3), (0,))

    def test_qubit_limit(self):
        sim = ExtendedStabilizerSimulator(max_qubits=4)
        with pytest.raises(ValueError):
            sim.run(Circuit(5))


class TestMetropolisSampling:
    def test_dense_distribution_is_accurate(self):
        # VQA-like dense output: Metropolis mixes well (paper Figs. 3, 6)
        rng = np.random.default_rng(3)
        circuit = Circuit(4)
        for q in range(4):
            circuit.append(gates.H, q)
        for q in range(3):
            circuit.append(gates.CX, q, q + 1)
        circuit.append(gates.T, 2)
        for q in range(4):
            circuit.append(gates.SX, q)
        exact = SV.probabilities(circuit)
        sampled = EXT.sample(circuit, shots=8000, rng=rng, mixing_steps=2000)
        assert hellinger_fidelity(exact, sampled) > 0.95

    def test_sparse_distribution_fails(self):
        # peaked output at |1...1>: the chain cannot find the support from a
        # random start — the Fig. 7 failure mode
        n = 16
        circuit = Circuit(n)
        for q in range(n):
            circuit.append(gates.X, q)
        circuit.append(gates.T, 0)  # T after X: still a point distribution
        exact = SV.probabilities(circuit)
        sampled = EXT.sample(circuit, shots=200, rng=0, mixing_steps=50)
        assert hellinger_fidelity(exact, sampled) < 0.5

    def test_shot_count(self):
        circuit = Circuit(2).append(gates.H, 0).append(gates.T, 0)
        dist = EXT.sample(circuit, shots=500, rng=1, mixing_steps=100)
        assert np.isclose(dist.total(), 1.0)
