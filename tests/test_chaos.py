"""Chaos suite: the fault-tolerant engine under deterministic fault injection.

The engine's headline invariant — seeded results bit-for-bit identical at
any parallelism — must hold *under* injected faults, not just without
them.  Every test here drives the real scheduler paths (retry/backoff,
soft timeouts, worker-crash healing, degrade-mode backend fallback,
per-point sweep survival) with a seeded :class:`ChaosSchedule` and
asserts both the numbers (identical to a fault-free run) and the
accounting (``result.faults`` explains every injected fault).
"""

import multiprocessing
import os
import time

import pytest

from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.core import (
    BackendExecutionError,
    ExecutionConfig,
    ReconstructionConfig,
    SamplingConfig,
    SuperSim,
    WorkerCrashError,
)
from repro.testing import ChaosBackend, ChaosSchedule, InjectedFault

#: CI's chaos leg sets REPRO_CHAOS_POOL=process to re-run this suite with
#: process pools as the engine default, so real worker crashes and pool
#: rebuilds are exercised on every commit; unset, tests run serially
#: unless they pin a pool themselves.
CHAOS_POOL = os.environ.get("REPRO_CHAOS_POOL")


def execution(**kwargs) -> ExecutionConfig:
    """An ExecutionConfig honouring the suite-wide pool override.

    Tests that *depend* on a specific pool construct ExecutionConfig
    directly instead.
    """
    if CHAOS_POOL and "pool" not in kwargs:
        kwargs["pool"] = CHAOS_POOL
        kwargs.setdefault("parallel", 2)
    return ExecutionConfig(**kwargs)


def rotated_chain(t: float, n: int = 8) -> Circuit:
    c = Circuit(n)
    for i in range(n):
        c.append(gates.H, i)
    for i in range(n - 1):
        c.append(gates.CX, i, i + 1)
    c.append(gates.ZPow(t), n // 2)
    c.measure_all()
    return c


def wide_chain(n: int) -> Circuit:
    """GHZ chain with one XPow(1/4): 4-outcome support at any width."""
    circuit = Circuit(n).append(gates.H, 0)
    for q in range(n - 1):
        circuit.append(gates.CX, q, q + 1)
    circuit.append(gates.XPow(0.25), n // 2)
    return circuit


def assert_no_leaked_workers(grace: float = 10.0) -> None:
    """Every worker process must exit shortly after its pool shut down."""
    deadline = time.monotonic() + grace
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


class TestChaosSchedule:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ChaosSchedule(exception_rate=1.5)
        with pytest.raises(ValueError):
            ChaosSchedule(exception_rate=0.6, delay_rate=0.3, crash_rate=0.3)
        with pytest.raises(ValueError):
            ChaosSchedule(delay_seconds=-1.0)

    def test_schedule_is_deterministic_and_converges(self):
        sch = ChaosSchedule(seed=3, exception_rate=0.5, fail_attempts=2)
        fp = "ab" * 32
        assert sch.action_for(fp, 0) == sch.action_for(fp, 0)
        # injections stop at fail_attempts, so retries always converge
        assert sch.action_for(fp, 2) is None

    def test_only_backends_restricts_injection(self):
        sch = ChaosSchedule(seed=0, exception_rate=1.0, only_backends=("mps",))
        fp = "cd" * 32
        assert sch.action_for(fp, 0, backend="mps") is not None
        assert sch.action_for(fp, 0, backend="stabilizer") is None

    def test_perform_action_raises_injected_fault(self):
        from repro.testing.chaos import perform_action

        with pytest.raises(InjectedFault):
            perform_action(("raise", "boom"))


class TestExecutionConfigValidation:
    def test_bad_failure_policy_rejected(self):
        with pytest.raises(ValueError):
            ExecutionConfig(failure_policy="panic")

    def test_bad_timeouts_rejected(self):
        with pytest.raises(ValueError):
            ExecutionConfig(job_timeout=0.0)
        with pytest.raises(ValueError):
            ExecutionConfig(max_job_crashes=0)


class TestRetryDeterminism:
    """failure_policy="retry": every fault survived, results untouched."""

    def _clean(self, **sampling):
        return SuperSim(sampling=SamplingConfig(**sampling)).run(rotated_chain(0.3))

    def test_retries_account_for_every_injected_fault(self):
        clean = self._clean(shots=400, seed=11)
        chaos = ChaosSchedule(seed=5, exception_rate=1.0, fail_attempts=1)
        sim = SuperSim(
            sampling=SamplingConfig(shots=400, seed=11),
            execution=execution(
                failure_policy="retry", chaos=chaos, retry_backoff=0.0
            ),
        )
        result = sim.run(rotated_chain(0.3))
        assert result.distribution.probs == clean.distribution.probs
        # every executed job faulted exactly once on its first attempt
        assert result.faults.retries == result.cache_misses > 0
        assert result.faults.summary() == {"retry": result.cache_misses}

    def test_serial_thread_process_bit_identical_under_faults(self):
        clean = self._clean(shots=400, seed=11)
        chaos = ChaosSchedule(
            seed=5,
            exception_rate=0.5,
            delay_rate=0.2,
            delay_seconds=0.02,
            fail_attempts=1,
        )
        configs = [
            ExecutionConfig(failure_policy="retry", chaos=chaos, retry_backoff=0.0),
            ExecutionConfig(
                failure_policy="retry",
                chaos=chaos,
                retry_backoff=0.0,
                pool="thread",
                parallel=4,
            ),
            ExecutionConfig(
                failure_policy="retry",
                chaos=chaos,
                retry_backoff=0.0,
                pool="process",
                parallel=2,
            ),
        ]
        for execution in configs:
            sim = SuperSim(
                sampling=SamplingConfig(shots=400, seed=11), execution=execution
            )
            result = sim.run(rotated_chain(0.3))
            assert result.distribution.probs == clean.distribution.probs
        assert_no_leaked_workers()

    def test_61q_recursive_run_identical_under_faults(self):
        # the paper-scale acceptance case: a 61-qubit recursive
        # reconstruction, bit-for-bit identical with faults injected on
        # every executed variant
        circuit = wide_chain(61)
        rc = ReconstructionConfig(qubit_limit=16, top_k=16)
        clean = SuperSim(reconstruction=rc).run(circuit)
        chaos = ChaosSchedule(seed=7, exception_rate=1.0, fail_attempts=1)
        sim = SuperSim(
            reconstruction=rc,
            execution=execution(
                failure_policy="retry", chaos=chaos, retry_backoff=0.0
            ),
        )
        result = sim.run(circuit)
        assert result.distribution.probs == clean.distribution.probs
        assert result.covered_probability == clean.covered_probability
        assert result.faults.retries == result.cache_misses > 0
        assert_no_leaked_workers()


class TestTimeouts:
    def test_soft_timeout_retries_and_converges(self):
        clean = SuperSim(sampling=SamplingConfig(shots=400, seed=11)).run(
            rotated_chain(0.3)
        )
        # every job sleeps past the deadline once, then runs clean
        chaos = ChaosSchedule(
            seed=5, delay_rate=1.0, delay_seconds=0.5, fail_attempts=1
        )
        sim = SuperSim(
            sampling=SamplingConfig(shots=400, seed=11),
            execution=ExecutionConfig(
                failure_policy="retry",
                chaos=chaos,
                retry_backoff=0.0,
                job_timeout=0.1,
                pool="thread",
                parallel=4,
            ),
        )
        result = sim.run(rotated_chain(0.3))
        assert result.distribution.probs == clean.distribution.probs
        assert result.faults.timeouts > 0

    def test_serial_records_accepted_late_results(self):
        chaos = ChaosSchedule(
            seed=5, delay_rate=1.0, delay_seconds=0.05, fail_attempts=1
        )
        sim = SuperSim(
            sampling=SamplingConfig(shots=50, seed=3),
            execution=ExecutionConfig(
                failure_policy="retry", chaos=chaos, job_timeout=0.01
            ),
        )
        result = sim.run(rotated_chain(0.3))
        # serial execution cannot cancel: the late result is kept, the
        # deadline miss is still on the ledger
        assert result.faults.timeouts > 0
        assert all(
            "late" in e.detail for e in result.faults.of_kind("timeout")
        )


class TestWorkerCrashes:
    def test_process_pool_self_heals_after_real_crashes(self):
        clean = SuperSim(sampling=SamplingConfig(shots=400, seed=11)).run(
            rotated_chain(0.3)
        )
        # some workers die for real (os._exit) on their first attempt
        chaos = ChaosSchedule(seed=5, crash_rate=0.4, fail_attempts=1)
        sim = SuperSim(
            sampling=SamplingConfig(shots=400, seed=11),
            execution=ExecutionConfig(
                failure_policy="retry",
                chaos=chaos,
                retry_backoff=0.0,
                pool="process",
                parallel=2,
            ),
        )
        result = sim.run(rotated_chain(0.3))
        assert result.distribution.probs == clean.distribution.probs
        assert result.faults.crashes > 0
        assert result.faults.pool_rebuilds > 0
        assert_no_leaked_workers()

    def test_simulated_crashes_heal_on_thread_pools(self):
        clean = SuperSim(sampling=SamplingConfig(shots=400, seed=11)).run(
            rotated_chain(0.3)
        )
        chaos = ChaosSchedule(seed=5, crash_rate=0.4, fail_attempts=1)
        sim = SuperSim(
            sampling=SamplingConfig(shots=400, seed=11),
            execution=ExecutionConfig(
                failure_policy="retry",
                chaos=chaos,
                retry_backoff=0.0,
                pool="thread",
                parallel=4,
            ),
        )
        result = sim.run(rotated_chain(0.3))
        assert result.distribution.probs == clean.distribution.probs
        assert result.faults.crashes > 0

    def test_poison_job_is_quarantined(self):
        # a job that crashes on *every* attempt is poison: after
        # max_job_crashes crashes it must be quarantined, not retried
        # forever
        chaos = ChaosSchedule(seed=5, crash_rate=1.0, fail_attempts=10**9)
        sim = SuperSim(
            sampling=SamplingConfig(shots=50, seed=3),
            execution=ExecutionConfig(
                failure_policy="retry",
                chaos=chaos,
                retry_backoff=0.0,
                max_job_crashes=2,
            ),
        )
        with pytest.raises(WorkerCrashError) as excinfo:
            sim.run(rotated_chain(0.3))
        assert "quarantined" in str(excinfo.value)
        assert excinfo.value.fragment_index is not None
        assert excinfo.value.backend is not None


class TestRaisePolicy:
    def test_fail_fast_with_job_context(self):
        chaos = ChaosSchedule(seed=5, exception_rate=1.0)
        sim = SuperSim(
            sampling=SamplingConfig(shots=50, seed=3),
            execution=execution(chaos=chaos),  # failure_policy="raise"
        )
        with pytest.raises(BackendExecutionError) as excinfo:
            sim.run(rotated_chain(0.3))
        err = excinfo.value
        assert err.fragment_index is not None
        assert err.backend is not None
        assert isinstance(err.__cause__, InjectedFault)


class TestDegrade:
    def test_mps_falls_back_to_statevector(self):
        from repro.backends import BackendRouter, get_backend

        # a persistently-down mps backend forced onto every fragment it
        # admits; the only other capable backend in the pool is
        # statevector, so degrade mode must land every variant there
        dead_mps = ChaosBackend(
            get_backend("mps"),
            ChaosSchedule(seed=1, exception_rate=1.0, fail_attempts=10**9),
        )
        router = BackendRouter([dead_mps, get_backend("statevector")])
        # the baseline runs the *fallback* backend directly: sampled
        # results are a function of (circuit, backend, shots, seed), so a
        # degrade run that lands on statevector must reproduce a clean
        # statevector run bit-for-bit
        clean = SuperSim(
            sampling=SamplingConfig(shots=400, seed=11),
            execution=ExecutionConfig(backend="statevector"),
        ).run(rotated_chain(0.3))
        sim = SuperSim(
            sampling=SamplingConfig(shots=400, seed=11),
            execution=execution(
                failure_policy="degrade",
                backend=dead_mps,
                router=router,
                max_retries=1,
                retry_backoff=0.0,
            ),
        )
        result = sim.run(rotated_chain(0.3))
        assert result.distribution.probs == clean.distribution.probs
        fallbacks = result.faults.of_kind("fallback")
        assert fallbacks
        assert all("mps -> statevector" in e.detail for e in fallbacks)

    def test_degraded_results_stay_out_of_the_cache(self):
        from repro.backends import BackendRouter, get_backend

        dead_mps = ChaosBackend(
            get_backend("mps"),
            ChaosSchedule(seed=1, exception_rate=1.0, fail_attempts=10**9),
        )
        router = BackendRouter([dead_mps, get_backend("statevector")])
        sim = SuperSim(
            sampling=SamplingConfig(shots=400, seed=11),
            execution=execution(
                failure_policy="degrade",
                backend=dead_mps,
                router=router,
                max_retries=0,
                retry_backoff=0.0,
            ),
        )
        first = sim.run(rotated_chain(0.3))
        assert first.faults.fallbacks > 0
        # a fallback-computed value must not satisfy the original
        # backend's cache key on the next run
        second = sim.run(rotated_chain(0.3))
        assert second.cache_hits == 0
        assert second.faults.fallbacks > 0

    def test_degrade_exhausted_still_raises(self):
        from repro.backends import BackendRouter, get_backend

        dead_mps = ChaosBackend(
            get_backend("mps"),
            ChaosSchedule(seed=1, exception_rate=1.0, fail_attempts=10**9),
        )
        # no fallback candidates at all: degrade must surface the error
        router = BackendRouter([dead_mps])
        sim = SuperSim(
            sampling=SamplingConfig(shots=50, seed=3),
            execution=execution(
                failure_policy="degrade",
                backend=dead_mps,
                router=router,
                max_retries=0,
                retry_backoff=0.0,
            ),
        )
        with pytest.raises(BackendExecutionError):
            sim.run(rotated_chain(0.3))


class TestSweepSurvival:
    GRID = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]

    def test_8_point_sweep_identical_under_faults(self):
        sampling = SamplingConfig(shots=300, seed=11)
        clean = list(SuperSim(sampling=sampling).sweep(rotated_chain, self.GRID))
        chaos = ChaosSchedule(seed=5, exception_rate=1.0, fail_attempts=1)
        chaotic = list(
            SuperSim(
                sampling=sampling,
                execution=execution(
                    failure_policy="retry", chaos=chaos, retry_backoff=0.0
                ),
            ).sweep(rotated_chain, self.GRID)
        )
        assert len(chaotic) == len(clean) == 8
        for a, b in zip(clean, chaotic):
            assert a.distribution.probs == b.distribution.probs
            # every executed (non-cached) job of this point faulted once
            assert b.result.faults.retries == b.result.cache_misses

    def test_failed_point_yields_error_and_sweep_continues(self):
        def factory(t):
            if t == 0.2:
                raise ValueError("bad grid point")
            return rotated_chain(t)

        sim = SuperSim(
            sampling=SamplingConfig(shots=100, seed=3),
            execution=execution(failure_policy="retry"),
        )
        points = list(sim.sweep(factory, [0.1, 0.2, 0.3]))
        assert [p.ok for p in points] == [True, False, True]
        assert isinstance(points[1].error, ValueError)
        assert points[1].result is None

    def test_failed_point_raises_under_default_policy(self):
        def factory(t):
            if t == 0.2:
                raise ValueError("bad grid point")
            return rotated_chain(t)

        sim = SuperSim(sampling=SamplingConfig(shots=100, seed=3))
        with pytest.raises(ValueError):
            list(sim.sweep(factory, [0.1, 0.2, 0.3]))

    def test_checkpoint_resume_skips_completed_points(self, tmp_path):
        sampling = SamplingConfig(shots=200, seed=11)
        reference = list(SuperSim(sampling=sampling).sweep(rotated_chain, self.GRID))
        ckpt = tmp_path / "sweep.ckpt"

        first = SuperSim(sampling=sampling)
        partial = []
        for point in first.sweep(rotated_chain, self.GRID, checkpoint=str(ckpt)):
            partial.append(point)
            if len(partial) == 3:
                break  # interrupted mid-sweep

        resumed = list(
            SuperSim(sampling=sampling).sweep(
                rotated_chain, self.GRID, checkpoint=str(ckpt)
            )
        )
        assert [p.skipped for p in resumed] == [True] * 3 + [False] * 5
        for ref, point in zip(reference[3:], resumed[3:]):
            assert point.distribution.probs == ref.distribution.probs

    def test_run_many_survives_failures(self):
        circuits = [rotated_chain(0.1), "not a circuit", rotated_chain(0.3)]
        sim = SuperSim(
            sampling=SamplingConfig(shots=100, seed=3),
            execution=execution(failure_policy="retry"),
        )
        with pytest.warns(RuntimeWarning, match="run_many circuit 1"):
            results = list(sim.run_many(circuits))
        assert results[1] is None
        assert results[0] is not None and results[2] is not None


class TestKernelDemotion:
    def test_faulting_variant_demotes_to_numpy(self, monkeypatch):
        from repro.kernels import registry

        calls = {"n": 0}

        @registry.kernel("chaos_test_kernel")
        def chaos_test_kernel(x):
            return x + 1

        def broken(x):
            calls["n"] += 1
            raise RuntimeError("device lost")

        entry = registry.get_kernel("chaos_test_kernel")
        entry.impls["numba"] = broken
        monkeypatch.setattr(registry, "_ACTIVE", "numba")
        before = len(registry.demotions())
        with pytest.warns(RuntimeWarning, match="demoted"):
            assert entry(41) == 42  # reference value, variant demoted
        assert calls["n"] == 1
        assert "numba" not in entry.impls
        new = registry.demotions()[before:]
        assert [(n, t) for n, t, _ in new] == [("chaos_test_kernel", "numba")]
        # subsequent calls dispatch straight to the reference
        assert entry(1) == 2
        assert calls["n"] == 1

    def test_input_errors_do_not_demote(self, monkeypatch):
        from repro.kernels import registry

        @registry.kernel("chaos_test_kernel_2")
        def chaos_test_kernel_2(x):
            return x / 0  # reference also fails: inputs are bad

        entry = registry.get_kernel("chaos_test_kernel_2")
        entry.impls["numba"] = lambda x: x / 0
        monkeypatch.setattr(registry, "_ACTIVE", "numba")
        before = len(registry.demotions())
        with pytest.raises(ZeroDivisionError):
            entry(1)
        assert "numba" in entry.impls  # the variant was not blamed
        assert len(registry.demotions()) == before
