"""Property-based tests (hypothesis) over the framework's core invariants.

These complement the seed-parametrised random tests elsewhere: hypothesis
explores the circuit space adversarially and shrinks failures to minimal
programs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Distribution, hellinger_fidelity
from repro.chform import CHForm
from repro.circuits import Circuit, gates
from repro.core import CutConfig, SuperSim, cut_circuit, find_cuts
from repro.extended_stabilizer import StabilizerSum
from repro.mps import MPSSimulator
from repro.stabilizer import StabilizerSimulator
from repro.statevector import StatevectorSimulator

SV = StatevectorSimulator()
STAB = StabilizerSimulator()

# -- circuit program strategies ------------------------------------------------

_CLIFFORD_1Q = [gates.H, gates.S, gates.SDG, gates.X, gates.Y, gates.Z,
                gates.SX, gates.SXDG]
_CLIFFORD_2Q = [gates.CX, gates.CZ, gates.CY, gates.SWAP]
_NON_CLIFFORD = [gates.T, gates.TDG, gates.ZPow(0.3), gates.XPow(0.7)]


def circuits(min_qubits=1, max_qubits=4, max_ops=12, allow_non_clifford=False):
    """Strategy generating (near-)Clifford circuits."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_qubits, max_qubits))
        circuit = Circuit(n)
        pool_1q = list(_CLIFFORD_1Q)
        if allow_non_clifford:
            pool_1q = pool_1q + _NON_CLIFFORD
        n_ops = draw(st.integers(0, max_ops))
        for _ in range(n_ops):
            if n >= 2 and draw(st.booleans()):
                gate = draw(st.sampled_from(_CLIFFORD_2Q))
                a = draw(st.integers(0, n - 1))
                b = draw(st.integers(0, n - 2))
                if b >= a:
                    b += 1
                circuit.append(gate, a, b)
            else:
                gate = draw(st.sampled_from(pool_1q))
                circuit.append(gate, draw(st.integers(0, n - 1)))
        return circuit

    return build()


# -- simulator equivalences ---------------------------------------------------


class TestSimulatorEquivalence:
    @given(circuits())
    @settings(max_examples=40, deadline=None)
    def test_tableau_matches_statevector(self, circuit):
        exact = SV.probabilities(circuit)
        tableau = STAB.probabilities(circuit)
        assert hellinger_fidelity(exact, tableau) > 1 - 1e-9

    @given(circuits())
    @settings(max_examples=40, deadline=None)
    def test_chform_matches_statevector_exactly(self, circuit):
        state = CHForm(circuit.n_qubits)
        state.apply_circuit(circuit)
        assert np.allclose(state.to_statevector(), SV.state(circuit), atol=1e-9)

    @given(circuits(allow_non_clifford=True))
    @settings(max_examples=30, deadline=None)
    def test_stabilizer_sum_matches_statevector(self, circuit):
        state = StabilizerSum(circuit.n_qubits, max_terms=2**14)
        state.apply_circuit(circuit)
        assert np.allclose(state.to_statevector(), SV.state(circuit), atol=1e-8)

    @given(circuits(allow_non_clifford=True))
    @settings(max_examples=30, deadline=None)
    def test_mps_matches_statevector(self, circuit):
        state = MPSSimulator().run(circuit)
        assert np.allclose(state.to_statevector(), SV.state(circuit), atol=1e-8)


class TestCuttingInvariants:
    @given(circuits(min_qubits=2, allow_non_clifford=True))
    @settings(max_examples=25, deadline=None)
    def test_cut_bound_and_op_conservation(self, circuit):
        cuts = find_cuts(circuit)
        assert len(cuts) <= 2 * circuit.num_non_clifford
        cc = cut_circuit(circuit, cuts)
        assert sum(len(f.circuit) for f in cc.fragments) == len(circuit)
        # every original qubit's terminal output lives in exactly one fragment
        owners = [
            oq for f in cc.fragments for oq, _lq in f.circuit_outputs
        ]
        assert sorted(owners) == list(range(circuit.n_qubits))

    @given(circuits(min_qubits=2, max_qubits=4, max_ops=10,
                    allow_non_clifford=True))
    @settings(max_examples=20, deadline=None)
    def test_reconstruction_matches_statevector(self, circuit):
        if len(find_cuts(circuit)) > 6:
            return  # keep runtime bounded; covered by unit tests
        result = SuperSim(cut=CutConfig(max_cuts=6)).run(circuit)
        exact = SV.probabilities(circuit)
        assert hellinger_fidelity(exact, result.distribution) > 1 - 1e-7

    @given(circuits(min_qubits=2, allow_non_clifford=True))
    @settings(max_examples=20, deadline=None)
    def test_fragment_boundary_counts(self, circuit):
        cuts = find_cuts(circuit)
        cc = cut_circuit(circuit, cuts)
        # each cut appears exactly once as an input and once as an output
        inputs = [c for f in cc.fragments for c, _ in f.quantum_inputs]
        outputs = [c for f in cc.fragments for c, _ in f.quantum_outputs]
        assert sorted(inputs) == list(range(len(cuts)))
        assert sorted(outputs) == list(range(len(cuts)))


class TestStabilizerInvariants:
    @given(circuits())
    @settings(max_examples=30, deadline=None)
    def test_expectations_in_allowed_set(self, circuit):
        tableau = STAB.run(circuit)
        rng = np.random.default_rng(0)
        from repro.paulis import PauliString

        for _ in range(5):
            label = "".join(rng.choice(list("IXYZ"))
                            for _ in range(circuit.n_qubits))
            assert tableau.expectation(PauliString.from_label(label)) in (-1, 0, 1)

    @given(circuits())
    @settings(max_examples=30, deadline=None)
    def test_affine_distribution_normalised(self, circuit):
        affine = STAB.affine_distribution(circuit)
        dist = affine.to_distribution(max_free=12)
        assert np.isclose(dist.total(), 1.0, atol=1e-12)
        # uniformity over the support
        values = set(round(v, 12) for v in dist.probs.values())
        assert len(values) == 1

    @given(circuits(), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_partial_probability_consistency(self, circuit, seed):
        affine = STAB.affine_distribution(circuit)
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=circuit.n_qubits).astype(bool)
        full = affine.probability_of(bits)
        partial = affine.probability_of_partial(list(range(circuit.n_qubits)), bits)
        assert np.isclose(full, partial, atol=1e-12)


class TestDistributionInvariants:
    @given(st.lists(st.floats(0.01, 1.0), min_size=2, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_marginal_preserves_mass(self, weights):
        size = 1 << (len(weights) - 1).bit_length()
        weights = weights + [0.0] * (size - len(weights))
        arr = np.array(weights) / sum(weights)
        dist = Distribution.from_array(arr)
        keep = list(range(dist.n_bits - 1))
        assert np.isclose(dist.marginal(keep).total(), dist.total(), atol=1e-12)

    @given(st.lists(st.floats(0.01, 1.0), min_size=4, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_single_bit_marginals_consistent(self, weights):
        size = 1 << (len(weights) - 1).bit_length()
        weights = weights + [0.0] * (size - len(weights))
        arr = np.array(weights) / sum(weights)
        dist = Distribution.from_array(arr)
        marginals = dist.single_bit_marginals()
        for i in range(dist.n_bits):
            via_marginal = dist.marginal([i])
            assert np.isclose(marginals[i, 0], via_marginal[0], atol=1e-12)
            assert np.isclose(marginals[i, 1], via_marginal[1], atol=1e-12)
