"""Tests for gate definitions, Clifford detection, and decompositions."""

import numpy as np
import pytest

from repro.circuits import Circuit, gates


def phase_equal(a: np.ndarray, b: np.ndarray, atol=1e-9) -> bool:
    """True when a == e^{i phi} b for some global phase phi."""
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(b[idx]) < atol:
        return np.allclose(a, b, atol=atol)
    ratio = a[idx] / b[idx]
    if abs(abs(ratio) - 1) > 1e-7:
        return False
    return np.allclose(a, ratio * b, atol=atol)


CLIFFORD_GATES = [
    gates.I, gates.X, gates.Y, gates.Z, gates.H, gates.S, gates.SDG,
    gates.SX, gates.SXDG, gates.CX, gates.CY, gates.CZ, gates.SWAP,
]
NON_CLIFFORD_GATES = [gates.T, gates.TDG, gates.ZPow(0.25), gates.ZPow(0.1),
                      gates.XPow(0.3), gates.Rz(0.7), gates.ZZPow(0.25)]


class TestCliffordDetection:
    @pytest.mark.parametrize("gate", CLIFFORD_GATES, ids=lambda g: g.name)
    def test_named_cliffords(self, gate):
        # force the numeric check rather than trusting the constructor flag
        fresh = gates.Gate(gate.name, gate.matrix, gate.params)
        assert fresh.is_clifford

    @pytest.mark.parametrize("gate", NON_CLIFFORD_GATES, ids=repr)
    def test_non_cliffords(self, gate):
        fresh = gates.Gate(gate.name, gate.matrix, gate.params)
        assert not fresh.is_clifford

    @pytest.mark.parametrize("t", [0.0, 0.5, 1.0, 1.5, 2.0, -0.5])
    def test_zpow_clifford_points(self, t):
        assert gates.ZPow(t).is_clifford
        assert gates.XPow(t).is_clifford
        assert gates.YPow(t).is_clifford
        assert gates.ZZPow(t).is_clifford


class TestMatrices:
    def test_zpow_quarter_is_t(self):
        assert np.allclose(gates.ZPow(0.25).matrix, gates.T.matrix)

    def test_zpow_half_is_s(self):
        assert np.allclose(gates.ZPow(0.5).matrix, gates.S.matrix)

    def test_xpow_one_is_x_up_to_phase(self):
        assert phase_equal(gates.XPow(1.0).matrix, gates.X.matrix)

    def test_ypow_one_is_y_up_to_phase(self):
        assert phase_equal(gates.YPow(1.0).matrix, gates.Y.matrix)

    def test_zzpow_diagonal(self):
        m = gates.ZZPow(0.5).matrix
        assert np.allclose(m, np.diag([1, 1j, 1j, 1]))

    def test_non_unitary_rejected(self):
        with pytest.raises(ValueError):
            gates.Gate("BAD", np.array([[1, 1], [0, 1]], dtype=complex))

    def test_sx_squares_to_x(self):
        assert phase_equal(gates.SX.matrix @ gates.SX.matrix, gates.X.matrix)


class TestDecompositions:
    @pytest.mark.parametrize("gate", CLIFFORD_GATES, ids=lambda g: g.name)
    def test_fixed_gates(self, gate):
        decomp = gate.stabilizer_decomposition()
        circuit = Circuit(gate.num_qubits)
        table = {"H": gates.H, "S": gates.S, "CX": gates.CX}
        for name, wires in decomp:
            circuit.append(table[name], *wires)
        assert phase_equal(circuit.unitary(), gate.matrix), gate.name

    @pytest.mark.parametrize("factory", [gates.ZPow, gates.XPow, gates.YPow,
                                         gates.ZZPow],
                             ids=lambda f: f.__name__)
    @pytest.mark.parametrize("t", [0.0, 0.5, 1.0, 1.5, -0.5, 2.5])
    def test_pow_gates(self, factory, t):
        gate = factory(t)
        decomp = gate.stabilizer_decomposition()
        circuit = Circuit(gate.num_qubits)
        table = {"H": gates.H, "S": gates.S, "CX": gates.CX}
        for name, wires in decomp:
            circuit.append(table[name], *wires)
        assert phase_equal(circuit.unitary(), gate.matrix), (factory.__name__, t)

    def test_non_clifford_raises(self):
        with pytest.raises(ValueError):
            gates.T.stabilizer_decomposition()
        with pytest.raises(ValueError):
            gates.ZPow(0.25).stabilizer_decomposition()


class TestInverse:
    @pytest.mark.parametrize(
        "gate",
        CLIFFORD_GATES + NON_CLIFFORD_GATES,
        ids=repr,
    )
    def test_inverse_matrix(self, gate):
        inv = gate.inverse()
        assert np.allclose(inv.matrix @ gate.matrix, np.eye(2**gate.num_qubits),
                           atol=1e-9)

    def test_t_inverse_name(self):
        assert gates.T.inverse().name == "TDG"
        assert gates.TDG.inverse().name == "T"

    def test_s_inverse_name(self):
        assert gates.S.inverse().name == "SDG"
