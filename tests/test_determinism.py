"""Determinism regression tests: seeded runs are reproducible bit-for-bit.

Per-variant seeds are derived from the evaluator's root seed and the
variant circuit's content fingerprint — never from submission order — so
the guarantee must hold at any parallelism and with the cache on or off.
"""

import numpy as np
import pytest

from repro.circuits import inject_t_gates, random_clifford_circuit
from repro.core import ExecutionConfig, SamplingConfig, SuperSim
from repro.stabilizer import NoiseModel, PauliChannel


def sim(shots=None, seed=None, noise=None, **execution):
    return SuperSim(
        sampling=SamplingConfig(shots=shots, seed=seed, noise=noise),
        execution=ExecutionConfig(**execution),
    )


def workload(seed=0):
    rng = np.random.default_rng(seed)
    return inject_t_gates(random_clifford_circuit(5, 4, rng), 1, rng)


def assert_identical(a, b):
    assert a.n_bits == b.n_bits
    assert a.probs == b.probs  # exact equality, not closeness


class TestSampledDeterminism:
    @pytest.mark.parametrize("parallel", [1, 4])
    def test_two_runs_identical(self, parallel):
        circuit = workload()
        first = sim(shots=400, seed=7, parallel=parallel).run(circuit)
        second = sim(shots=400, seed=7, parallel=parallel).run(circuit)
        assert_identical(first.distribution, second.distribution)

    def test_parallelism_does_not_change_the_answer(self):
        circuit = workload(1)
        serial = sim(shots=400, seed=7, parallel=1).run(circuit)
        threaded = sim(shots=400, seed=7, parallel=4).run(circuit)
        assert_identical(serial.distribution, threaded.distribution)

    def test_process_pool_matches_thread_pool(self):
        circuit = workload(1)
        threads = sim(shots=200, seed=7, parallel=2, pool="thread").run(circuit)
        processes = sim(shots=200, seed=7, parallel=2, pool="process").run(circuit)
        assert_identical(threads.distribution, processes.distribution)

    def test_cache_does_not_change_the_answer(self):
        circuit = workload(2)
        cached = sim(shots=400, seed=7).run(circuit)
        uncached = sim(shots=400, seed=7, cache=False).run(circuit)
        assert_identical(cached.distribution, uncached.distribution)

    def test_different_seeds_differ(self):
        circuit = workload(3)
        a = sim(shots=400, seed=7).run(circuit)
        b = sim(shots=400, seed=8).run(circuit)
        assert a.distribution.probs != b.distribution.probs


class TestExactDeterminism:
    def test_exact_mode_is_parallel_invariant(self):
        circuit = workload(4)
        serial = sim(parallel=1).run(circuit)
        threaded = sim(parallel=4).run(circuit)
        for outcome, p in serial.distribution:
            assert np.isclose(p, threaded.distribution[outcome], atol=1e-12)


class TestNoisyDeterminism:
    def test_noisy_runs_identical(self):
        circuit = random_clifford_circuit(4, 4, rng=0).measure_all()
        noise = NoiseModel(after_gate_1q=PauliChannel.depolarizing(0.01))
        first = sim(shots=300, seed=7, noise=noise).run(circuit)
        second = sim(shots=300, seed=7, noise=noise).run(circuit)
        assert_identical(first.distribution, second.distribution)
