"""Unit and property tests for the phase-tracked Pauli algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, gates
from repro.paulis import PauliString, conjugate_pauli

LETTERS = "IXYZ"


def random_label(rng, n):
    return "".join(rng.choice(list(LETTERS)) for _ in range(n))


labels = st.text(alphabet=LETTERS, min_size=1, max_size=5)
phases = st.integers(min_value=0, max_value=3)


class TestConstruction:
    def test_identity(self):
        p = PauliString.identity(3)
        assert p.label() == "III"
        assert p.is_identity()
        assert p.weight == 0

    def test_from_label_roundtrip(self):
        p = PauliString.from_label("XIZY")
        assert p.label() == "XIZY"
        assert p.scalar() == 1.0

    def test_y_convention(self):
        y = PauliString.from_label("Y")
        assert y.x[0] and y.z[0]
        assert y.phase == 1  # Y = i X Z
        assert np.allclose(y.to_matrix(), np.array([[0, -1j], [1j, 0]]))

    def test_single(self):
        p = PauliString.single(4, 2, "Z")
        assert p.label() == "IIZI"

    def test_bad_letter(self):
        with pytest.raises(ValueError):
            PauliString.from_label("XQ")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            PauliString([1, 0], [1], 0)

    def test_weight(self):
        assert PauliString.from_label("XIYZ").weight == 3


class TestAlgebra:
    @given(labels, labels, phases, phases)
    @settings(max_examples=60, deadline=None)
    def test_multiplication_matches_matrices(self, la, lb, pa, pb):
        n = min(len(la), len(lb))
        la, lb = la[:n], lb[:n]
        a = PauliString.from_label(la, pa)
        b = PauliString.from_label(lb, pb)
        product = a * b
        assert np.allclose(product.to_matrix(), a.to_matrix() @ b.to_matrix())

    @given(labels, labels)
    @settings(max_examples=60, deadline=None)
    def test_commutation_matches_matrices(self, la, lb):
        n = min(len(la), len(lb))
        la, lb = la[:n], lb[:n]
        a = PauliString.from_label(la)
        b = PauliString.from_label(lb)
        ab = a.to_matrix() @ b.to_matrix()
        ba = b.to_matrix() @ a.to_matrix()
        assert a.commutes(b) == np.allclose(ab, ba)

    def test_xz_anticommute(self):
        x = PauliString.from_label("X")
        z = PauliString.from_label("Z")
        assert not x.commutes(z)
        assert (x * z).phase != (z * x).phase

    def test_square_of_y_is_identity(self):
        y = PauliString.from_label("Y")
        sq = y * y
        assert sq.is_identity()
        assert sq.phase == 0

    def test_mismatched_sizes(self):
        with pytest.raises(ValueError):
            PauliString.from_label("X") * PauliString.from_label("XX")

    def test_hash_and_eq(self):
        a = PauliString.from_label("XZ")
        b = PauliString.from_label("XZ")
        assert a == b and hash(a) == hash(b)
        assert a != PauliString.from_label("ZX")


class TestBasisAction:
    def test_x_flips(self):
        p = PauliString.from_label("XI")
        k, bits = p.apply_to_bits(np.array([0, 0]))
        assert k == 0
        assert list(bits) == [1, 0]

    def test_z_phase(self):
        p = PauliString.from_label("Z")
        k, bits = p.apply_to_bits(np.array([1]))
        assert k == 2
        assert list(bits) == [1]

    @given(labels, st.integers(min_value=0, max_value=31))
    @settings(max_examples=40, deadline=None)
    def test_apply_to_bits_matches_matrix(self, label, bits_int):
        n = len(label)
        bits = np.array([(bits_int >> (n - 1 - i)) & 1 for i in range(n)], dtype=bool)
        p = PauliString.from_label(label)
        k, new_bits = p.apply_to_bits(bits)
        vec = np.zeros(2**n, dtype=complex)
        index = int("".join(str(int(b)) for b in bits), 2)
        vec[index] = 1.0
        out = p.to_matrix() @ vec
        new_index = int("".join(str(int(b)) for b in new_bits), 2)
        assert np.isclose(out[new_index], 1j**k)


GATE_CASES = [
    ("H", (gates.H, (0,)), 1),
    ("S", (gates.S, (0,)), 1),
    ("SDG", (gates.SDG, (0,)), 1),
    ("X", (gates.X, (0,)), 1),
    ("Y", (gates.Y, (0,)), 1),
    ("Z", (gates.Z, (0,)), 1),
    ("SX", (gates.SX, (0,)), 1),
    ("SXDG", (gates.SXDG, (0,)), 1),
    ("CX", (gates.CX, (0, 1)), 2),
    ("CZ", (gates.CZ, (0, 1)), 2),
    ("CY", (gates.CY, (0, 1)), 2),
    ("SWAP", (gates.SWAP, (0, 1)), 2),
]


class TestConjugation:
    @pytest.mark.parametrize("name,gate_and_qubits,arity", GATE_CASES)
    def test_against_matrices(self, name, gate_and_qubits, arity):
        gate, qubits = gate_and_qubits
        n = 3  # embed in 3 qubits to exercise index handling
        rng = np.random.default_rng(7)
        circuit = Circuit(n).append(gate, *qubits)
        u = circuit.unitary()
        for _ in range(10):
            label = random_label(rng, n)
            phase = int(rng.integers(4))
            p = PauliString.from_label(label, phase)
            image = conjugate_pauli(p, name, qubits)
            expected = u @ p.to_matrix() @ u.conj().T
            assert np.allclose(image.to_matrix(), expected), (name, label)

    def test_reversed_qubits(self):
        # CX with control 2, target 0 in a 3-qubit register
        n = 3
        circuit = Circuit(n).append(gates.CX, 2, 0)
        u = circuit.unitary()
        rng = np.random.default_rng(3)
        for _ in range(10):
            p = PauliString.from_label(random_label(rng, n))
            image = conjugate_pauli(p, "CX", (2, 0))
            assert np.allclose(image.to_matrix(), u @ p.to_matrix() @ u.conj().T)

    def test_unknown_gate(self):
        with pytest.raises(ValueError):
            conjugate_pauli(PauliString.identity(1), "NOPE", (0,))

    def test_s_sends_x_to_y(self):
        p = PauliString.from_label("X")
        image = conjugate_pauli(p, "S", (0,))
        assert image.label() == "Y"
        assert image.scalar() == 1.0
