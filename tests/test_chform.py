"""Tests for the CH-form phase-sensitive stabilizer state.

The CH form's whole reason to exist is the exact global phase, so these
tests compare full statevectors amplitude-by-amplitude (no phase freedom)
against the dense simulator.
"""

import numpy as np
import pytest

from repro.chform import CHForm, CTypeTableau
from repro.circuits import Circuit, gates, random_clifford_circuit
from repro.statevector import StatevectorSimulator

SV = StatevectorSimulator()


def chform_state(circuit: Circuit) -> np.ndarray:
    state = CHForm(circuit.n_qubits)
    state.apply_circuit(circuit)
    return state.to_statevector()


def assert_exact(circuit: Circuit):
    expected = SV.state(circuit)
    got = chform_state(circuit)
    assert np.allclose(got, expected, atol=1e-9), circuit.gate_counts()


class TestCTypeTableau:
    @pytest.mark.parametrize("seed", range(8))
    def test_left_multiplication_matches_matrix(self, seed):
        rng = np.random.default_rng(seed)
        n = 3
        tab = CTypeTableau(n)
        circuit = Circuit(n)
        for _ in range(12):
            choice = rng.integers(4)
            if choice == 0:
                q = int(rng.integers(n))
                tab.left_s(q)
                circuit.append(gates.S, q)
            elif choice == 1:
                q = int(rng.integers(n))
                tab.left_sdg(q)
                circuit.append(gates.SDG, q)
            elif choice == 2:
                a, b = rng.choice(n, size=2, replace=False)
                tab.left_cz(int(a), int(b))
                circuit.append(gates.CZ, int(a), int(b))
            else:
                c, t = rng.choice(n, size=2, replace=False)
                tab.left_cx(int(c), int(t))
                circuit.append(gates.CX, int(c), int(t))
        # left multiplication U <- g U matches circuit order (first gate
        # applied first), so the unitaries agree directly
        assert np.allclose(tab.to_matrix(), circuit.unitary(), atol=1e-9)

    @pytest.mark.parametrize("seed", range(8))
    def test_right_multiplication_matches_matrix(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = 3
        tab = CTypeTableau(n)
        circuit = Circuit(n)
        for _ in range(12):
            choice = rng.integers(4)
            if choice == 0:
                q = int(rng.integers(n))
                tab.right_s(q)
                circuit.append(gates.S, q)
            elif choice == 1:
                q = int(rng.integers(n))
                tab.right_sdg(q)
                circuit.append(gates.SDG, q)
            elif choice == 2:
                a, b = rng.choice(n, size=2, replace=False)
                tab.right_cz(int(a), int(b))
                circuit.append(gates.CZ, int(a), int(b))
            else:
                c, t = rng.choice(n, size=2, replace=False)
                tab.right_cx(int(c), int(t))
                circuit.append(gates.CX, int(c), int(t))
        # circuit order: first-appended acts first, so matrix = later @ earlier;
        # right-multiplication builds U = g1 g2 ... in operator order too
        matrix = Circuit(n, circuit.ops[::-1]).unitary()
        assert np.allclose(tab.to_matrix(), matrix, atol=1e-9)

    def test_mixed_left_right(self):
        tab = CTypeTableau(2)
        tab.left_cx(0, 1)   # U = CX
        tab.right_s(0)      # U = CX . S_0
        tab.left_cz(0, 1)   # U = CZ . CX . S_0
        circuit = Circuit(2).append(gates.S, 0).append(gates.CX, 0, 1)
        circuit.append(gates.CZ, 0, 1)
        assert np.allclose(tab.to_matrix(), circuit.unitary(), atol=1e-9)

    def test_z_right(self):
        tab = CTypeTableau(1)
        tab.right_z(0)
        assert np.allclose(tab.to_matrix(), np.diag([1, -1]))


class TestCHFormBasics:
    def test_initial_state(self):
        state = CHForm(2)
        vec = state.to_statevector()
        assert np.isclose(vec[0], 1.0)
        assert np.allclose(vec[1:], 0.0)

    def test_plus_state(self):
        assert_exact(Circuit(1).append(gates.H, 0))

    def test_double_h_is_identity(self):
        assert_exact(Circuit(1).append(gates.H, 0).append(gates.H, 0))

    def test_bell(self):
        assert_exact(Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1))

    def test_s_phase_exact(self):
        # S|+> = (|0> + i|1>)/sqrt2 with *no* global phase freedom
        circuit = Circuit(1).append(gates.H, 0).append(gates.S, 0)
        assert_exact(circuit)

    def test_h_after_s(self):
        assert_exact(
            Circuit(1).append(gates.H, 0).append(gates.S, 0).append(gates.H, 0)
        )

    def test_x_gate(self):
        assert_exact(Circuit(2).append(gates.X, 1))
        assert_exact(Circuit(2).append(gates.H, 0).append(gates.X, 0))

    def test_y_gate_phase(self):
        # Y|0> = i|1> — the global i must be tracked
        assert_exact(Circuit(1).append(gates.Y, 0))

    def test_z_on_plus(self):
        assert_exact(Circuit(1).append(gates.H, 0).append(gates.Z, 0))

    def test_swap(self):
        assert_exact(Circuit(2).append(gates.H, 0).append(gates.SWAP, 0, 1))

    def test_ghz(self):
        c = Circuit(3).append(gates.H, 0).append(gates.CX, 0, 1).append(gates.CX, 1, 2)
        assert_exact(c)

    def test_case_b_desuperposition(self):
        # two H's entangled by CZ then another H: forces the all-Hadamard case
        c = Circuit(2).append(gates.H, 0).append(gates.H, 1).append(gates.CZ, 0, 1)
        c.append(gates.H, 0)
        assert_exact(c)

    def test_case_b_odd_delta(self):
        c = Circuit(2).append(gates.H, 0).append(gates.H, 1).append(gates.CZ, 0, 1)
        c.append(gates.S, 0).append(gates.H, 0)
        assert_exact(c)

    def test_norm_invariant(self):
        rng = np.random.default_rng(0)
        circuit = random_clifford_circuit(4, 10, rng)
        state = CHForm(4)
        state.apply_circuit(circuit)
        assert np.isclose(state.norm_squared(), 1.0)

    def test_rejects_non_clifford(self):
        state = CHForm(1)
        with pytest.raises(ValueError):
            state.apply_circuit(Circuit(1).append(gates.T, 0))

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            CHForm(2).apply_circuit(Circuit(3))


class TestCHFormRandom:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_clifford_exact_statevector(self, seed):
        rng = np.random.default_rng(1000 + seed)
        n = int(rng.integers(1, 6))
        depth = int(rng.integers(1, 12))
        circuit = random_clifford_circuit(n, depth, rng)
        assert_exact(circuit)

    @pytest.mark.parametrize("seed", range(10))
    def test_h_heavy_circuits(self, seed):
        # stress the desuperposition paths with many interleaved H gates
        rng = np.random.default_rng(2000 + seed)
        n = 4
        circuit = Circuit(n)
        for _ in range(30):
            choice = rng.integers(5)
            if choice <= 1:
                circuit.append(gates.H, int(rng.integers(n)))
            elif choice == 2:
                circuit.append(gates.S, int(rng.integers(n)))
            elif choice == 3:
                a, b = rng.choice(n, size=2, replace=False)
                circuit.append(gates.CZ, int(a), int(b))
            else:
                c, t = rng.choice(n, size=2, replace=False)
                circuit.append(gates.CX, int(c), int(t))
        assert_exact(circuit)

    @pytest.mark.parametrize("seed", range(6))
    def test_amplitude_queries(self, seed):
        rng = np.random.default_rng(3000 + seed)
        circuit = random_clifford_circuit(5, 8, rng)
        expected = SV.state(circuit)
        state = CHForm(5)
        state.apply_circuit(circuit)
        for index in rng.integers(0, 32, size=8):
            bits = np.array([(int(index) >> (4 - i)) & 1 for i in range(5)], bool)
            assert np.isclose(state.amplitude(bits), expected[int(index)], atol=1e-9)

    def test_copy_is_independent(self):
        state = CHForm(2)
        state.apply_h(0)
        clone = state.copy()
        clone.apply_cx(0, 1)
        assert not np.allclose(state.to_statevector(), clone.to_statevector())
