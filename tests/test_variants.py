"""Tests for variant generation and the prepared-state decomposition."""

import itertools

import numpy as np
import pytest

from repro.circuits import Circuit, gates
from repro.core import cut_circuit, find_cuts
from repro.core.variants import (
    BASIS_FOR_PAULI,
    MEAS_BASES,
    PAULIS,
    PREP_COEFFICIENTS,
    PREP_STATES,
    all_variants,
    prep_state_vector,
    variant_circuit,
)
from repro.statevector import StatevectorSimulator

SV = StatevectorSimulator()

_PAULI_MATS = {
    "I": np.eye(2),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.diag([1, -1]).astype(complex),
}


def t_fragment():
    c = Circuit(2)
    c.append(gates.H, 0).append(gates.CX, 0, 1)
    c.append(gates.T, 1)
    c.append(gates.H, 1)
    cc = cut_circuit(c, find_cuts(c))
    return next(f for f in cc.fragments if not f.is_clifford)


class TestPrepDecomposition:
    def test_coefficients_reconstruct_paulis(self):
        """Every Pauli equals its PREP_COEFFICIENTS combination of projectors."""
        for p_index, pauli in enumerate(PAULIS):
            combo = np.zeros((2, 2), dtype=complex)
            for s_index in range(4):
                vec = prep_state_vector(s_index)
                combo += PREP_COEFFICIENTS[p_index][s_index] * np.outer(
                    vec, vec.conj()
                )
            assert np.allclose(combo, _PAULI_MATS[pauli]), pauli

    def test_prep_states_normalised(self):
        for s in range(4):
            vec = prep_state_vector(s)
            assert np.isclose(np.vdot(vec, vec).real, 1.0)

    def test_prep_states_informationally_complete(self):
        """The four projectors span the space of Hermitian 2x2 matrices."""
        mats = [
            np.outer(prep_state_vector(s), prep_state_vector(s).conj())
            for s in range(4)
        ]
        basis = np.array([m.reshape(-1) for m in mats])
        assert np.linalg.matrix_rank(basis) == 4

    def test_basis_for_pauli(self):
        assert [MEAS_BASES[BASIS_FOR_PAULI[i]] for i in range(4)] == [
            "Z", "X", "Y", "Z",
        ]


class TestPrepCircuits:
    @pytest.mark.parametrize("s_index,label", enumerate(PREP_STATES))
    def test_prep_ops_produce_states(self, s_index, label):
        fragment = t_fragment()
        circuit = variant_circuit(fragment, (s_index,), (0,))
        # the prep ops appear before the fragment's own gates; build just the
        # prep prefix on a fresh 1-qubit circuit and check the state
        from repro.core.variants import _PREP_OPS

        prep = Circuit(1)
        for op_gates in _PREP_OPS[s_index]:
            prep.append(op_gates[0], 0)
        state = SV.state(prep)
        assert np.allclose(state, prep_state_vector(s_index), atol=1e-12), label


class TestBasisRotations:
    @pytest.mark.parametrize("b_index,letter", enumerate(MEAS_BASES))
    def test_rotation_diagonalises_pauli(self, b_index, letter):
        """R P R^dag == Z for the rotation R attached to basis `letter`."""
        from repro.core.variants import _BASIS_OPS

        rotation = Circuit(1)
        for op_gates in _BASIS_OPS[b_index]:
            rotation.append(op_gates[0], 0)
        r = rotation.unitary()
        assert np.allclose(
            r @ _PAULI_MATS[letter] @ r.conj().T, _PAULI_MATS["Z"], atol=1e-12
        )


class TestVariantEnumeration:
    def test_variant_count(self):
        fragment = t_fragment()
        combos = list(all_variants(fragment))
        assert len(combos) == fragment.num_variants == 12
        assert len(set(combos)) == 12

    def test_variant_circuit_measures_everything(self):
        fragment = t_fragment()
        circuit = variant_circuit(fragment, (0,), (0,))
        assert circuit.measured_qubits == tuple(range(fragment.n_qubits))

    def test_variant_circuit_gate_budget(self):
        fragment = t_fragment()
        base_ops = len(fragment.circuit)
        for preps, bases in all_variants(fragment):
            circuit = variant_circuit(fragment, preps, bases)
            assert base_ops <= len(circuit) <= base_ops + 4

    def test_fragment_without_cuts_has_one_variant(self):
        c = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        cc = cut_circuit(c, [])
        (fragment,) = cc.fragments
        assert list(all_variants(fragment)) == [((), ())]
