"""Host-keyed calibration persistence and per-mode cost models."""

import json

import pytest

from repro.backends import get_backend
from repro.backends.base import Backend, Capabilities, CircuitFeatures
from repro.backends.calibration import (
    calibrated_router,
    default_cache_path,
    host_fingerprint,
    measure_cost_scales,
)
from repro.backends.router import BackendRouter
from repro.circuits import Circuit, gates


class TestHostKeyedCache:
    BACKENDS = ["stabilizer", "statevector"]

    def test_fingerprint_is_stable_and_informative(self):
        assert host_fingerprint() == host_fingerprint()
        assert "cpus=" in host_fingerprint()

    def test_measurement_persists_under_host_fingerprint(self, tmp_path):
        path = tmp_path / "scales.json"
        scales = measure_cost_scales(self.BACKENDS, repeats=1, cache_path=path)
        payload = json.loads(path.read_text())
        assert payload["host"] == host_fingerprint()
        assert set(payload["scales"]) == set(self.BACKENDS)
        assert all(v > 0 for v in scales.values())

    def test_same_host_reuses_cached_scales(self, tmp_path):
        path = tmp_path / "scales.json"
        measure_cost_scales(self.BACKENDS, repeats=1, cache_path=path)
        # plant sentinel values: a second call must read, not re-measure
        payload = json.loads(path.read_text())
        payload["scales"] = {name: 123.0 for name in self.BACKENDS}
        path.write_text(json.dumps(payload))
        reused = measure_cost_scales(self.BACKENDS, repeats=1, cache_path=path)
        assert reused == {name: 123.0 for name in self.BACKENDS}

    def test_host_change_triggers_remeasurement(self, tmp_path):
        path = tmp_path / "scales.json"
        payload = {
            "host": "some-other-machine|cpus=9999",
            "scales": {name: 123.0 for name in self.BACKENDS},
        }
        path.write_text(json.dumps(payload))
        remeasured = measure_cost_scales(
            self.BACKENDS, repeats=1, cache_path=path
        )
        assert remeasured != {name: 123.0 for name in self.BACKENDS}
        # and the file now carries this host's fingerprint
        assert json.loads(path.read_text())["host"] == host_fingerprint()

    def test_cache_missing_a_backend_remeasures(self, tmp_path):
        path = tmp_path / "scales.json"
        measure_cost_scales(["stabilizer"], repeats=1, cache_path=path)
        wider = measure_cost_scales(self.BACKENDS, repeats=1, cache_path=path)
        assert set(wider) == set(self.BACKENDS)
        # the merged file keeps every measured backend
        assert set(json.loads(path.read_text())["scales"]) >= set(self.BACKENDS)

    def test_corrupt_cache_is_ignored(self, tmp_path):
        path = tmp_path / "scales.json"
        path.write_text("{not json")
        scales = measure_cost_scales(self.BACKENDS, repeats=1, cache_path=path)
        assert all(v > 0 for v in scales.values())

    def test_no_cache_path_touches_no_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        measure_cost_scales(self.BACKENDS, repeats=1)
        assert not (tmp_path / "repro-supersim").exists()

    def test_default_path_respects_env_override(self, tmp_path, monkeypatch):
        target = tmp_path / "custom" / "scales.json"
        monkeypatch.setenv("REPRO_CALIBRATION_CACHE", str(target))
        assert default_cache_path() == target

    def test_calibrated_router_end_to_end(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_CALIBRATION_CACHE", str(tmp_path / "scales.json")
        )
        router = calibrated_router()
        assert isinstance(router, BackendRouter)
        assert router.cost_scales
        assert (tmp_path / "scales.json").exists()


class TestPerModeCostModels:
    def narrow_nonclifford(self):
        c = Circuit(8)
        for q in range(8):
            c.append(gates.H, q)
        c.append(gates.T, 0)
        c.measure_all()
        return CircuitFeatures.from_circuit(c)

    def test_statevector_sampled_cheaper_than_exact(self):
        features = self.narrow_nonclifford()
        backend = get_backend("statevector")
        assert backend.estimate_cost(features, "sampled") < backend.estimate_cost(
            features, "exact"
        )

    def test_extended_stabilizer_mode_crossover(self):
        # the sampler pays a fixed mixing chain, exact readout pays 2^n
        # enumeration: narrow fragments favour exact, wide ones sampled
        backend = get_backend("extended_stabilizer")
        narrow = self.narrow_nonclifford()
        assert backend.estimate_cost(narrow, "exact") < backend.estimate_cost(
            narrow, "sampled"
        )
        c = Circuit(24)
        for q in range(24):
            c.append(gates.H, q)
        c.append(gates.T, 0)
        c.measure_all()
        wide = CircuitFeatures.from_circuit(c)
        assert backend.estimate_cost(wide, "sampled") < backend.estimate_cost(
            wide, "exact"
        )

    def test_default_mode_is_exact(self):
        features = self.narrow_nonclifford()
        backend = get_backend("statevector")
        assert backend.estimate_cost(features) == backend.estimate_cost(
            features, "exact"
        )

    def test_router_passes_mode_and_tolerates_legacy_signature(self):
        class OldStyle(Backend):
            name = "old-style"
            capabilities = Capabilities(max_qubits=30)

            def probabilities(self, circuit):
                raise NotImplementedError

            def sample(self, circuit, shots, rng=None):
                raise NotImplementedError

            def estimate_cost(self, features):  # pre-mode signature
                return 7.0

        router = BackendRouter([OldStyle()])
        features = self.narrow_nonclifford()
        assert router.scored_cost(OldStyle(), features, "sampled") == 7.0

    def test_legacy_backend_with_extra_defaulted_param_still_routes(self):
        # pre-mode signatures are not always exactly one-argument; a
        # second non-mode defaulted parameter must fall back cleanly
        class Fudged(Backend):
            name = "fudged-legacy"
            capabilities = Capabilities(max_qubits=30)

            def probabilities(self, circuit):
                raise NotImplementedError

            def sample(self, circuit, shots, rng=None):
                raise NotImplementedError

            def estimate_cost(self, features, fudge=2.0):
                return 3.0 * fudge

        router = BackendRouter([Fudged()])
        features = self.narrow_nonclifford()
        assert router.scored_cost(Fudged(), features, "sampled") == 6.0

    def test_router_propagates_internal_typeerrors(self):
        # a TypeError raised *inside* a mode-aware cost model must not be
        # mistaken for a legacy one-argument signature
        class Broken(Backend):
            name = "broken-cost"
            capabilities = Capabilities(max_qubits=30)

            def probabilities(self, circuit):
                raise NotImplementedError

            def sample(self, circuit, shots, rng=None):
                raise NotImplementedError

            def estimate_cost(self, features, mode="exact"):
                return None + 1  # the genuine bug

        router = BackendRouter([Broken()])
        with pytest.raises(TypeError, match="NoneType"):
            router.scored_cost(Broken(), self.narrow_nonclifford())

    def test_unhashable_legacy_backend_still_routes(self):
        import dataclasses

        @dataclasses.dataclass(eq=True)  # eq=True sets __hash__ = None
        class Unhashable(Backend):
            name: str = "unhashable-legacy"
            capabilities: Capabilities = dataclasses.field(
                default_factory=lambda: Capabilities(max_qubits=30)
            )

            def probabilities(self, circuit):
                raise NotImplementedError

            def sample(self, circuit, shots, rng=None):
                raise NotImplementedError

            def estimate_cost(self, features):  # legacy one-arg signature
                return 5.0

        backend = Unhashable()
        with pytest.raises(TypeError):
            hash(backend)  # precondition for the regression
        router = BackendRouter([backend])
        features = self.narrow_nonclifford()
        # must not crash on the memoisation membership test, twice over
        assert router.scored_cost(backend, features, "sampled") == 5.0
        assert router.scored_cost(backend, features, "exact") == 5.0

    def test_sampled_routing_prefers_cheap_sampler(self):
        # a wide diagonal-non-Clifford fragment: exact readout enumeration
        # makes the extended stabilizer look enormous, but its sampler does
        # not enumerate, so sampled routing may keep it competitive; at
        # minimum the scored costs must differ between the modes
        c = Circuit(20)
        for q in range(20):
            c.append(gates.H, q)
        c.append(gates.T, 0)
        c.measure_all()
        features = CircuitFeatures.from_circuit(c)
        backend = get_backend("extended_stabilizer")
        router = BackendRouter([backend])
        assert router.scored_cost(backend, features, "sampled") < router.scored_cost(
            backend, features, "exact"
        )
