"""Resilience suite: the service survives process death and network faults.

PR 8 proved the single-host engine fault-tolerant and the service suite
proved distribution exact; this suite proves the *service* machinery
survives what distribution adds — coordinator death (durable journal
recovery with bit-identical re-execution), silently dead workers
(heartbeat liveness), dropped connections (reconnecting client/worker
with idempotent resends that never double-charge admission), corrupt
peers (frame errors isolated per connection), and graceful drain.
Network faults are injected deterministically through
:class:`~repro.testing.ChaosTransport`, so every scenario here is a
seeded, reproducible schedule — and the engine's headline invariant
holds throughout: the numbers never move, only the fault ledger does.
"""

import os
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core import (
    ExecutionConfig,
    ReconstructionConfig,
    SamplingConfig,
    SuperSim,
)
from repro.errors import QuotaExceededError
from repro.service import Coordinator, CoordinatorJournal, ServiceClient
from repro.service.protocol import backoff_delay, connect
from repro.testing import ChaosSchedule, ChaosTransportFactory

from test_service import (
    SRC,
    Fleet,
    rotated_chain,
    spawn_workers,
    stop_workers,
    wait_for_workers,
    wide_chain,
)


# -- plumbing ----------------------------------------------------------------


def free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def spawn_coordinator(port: int, journal=None, extra=()) -> subprocess.Popen:
    """A coordinator subprocess (the thing we can really SIGKILL)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    args = [
        sys.executable,
        "-m",
        "repro.service.coordinator",
        "--port",
        str(port),
        "--heartbeat-interval",
        "0.5",
    ]
    if journal is not None:
        args += ["--journal-db", str(journal)]
    args += list(extra)
    proc = subprocess.Popen(args, env=env, stdout=subprocess.PIPE, text=True)
    line = proc.stdout.readline()
    assert "listening" in line, f"coordinator failed to start: {line!r}"
    return proc


def wait_for_coordinator(address: str, timeout: float = 15.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with ServiceClient(address, reconnect=False):
                return
        except (ConnectionError, OSError):
            time.sleep(0.05)
    raise AssertionError(f"no coordinator at {address} within {timeout}s")


def poll_until(client: ServiceClient, ticket: str, timeout: float = 120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        result = client.poll(ticket)
        if result is not None:
            return result
        time.sleep(0.05)
    raise AssertionError(f"ticket {ticket} never completed within {timeout}s")


# -- unit: journal, backoff --------------------------------------------------


def test_journal_roundtrip_quota_and_ttl(tmp_path):
    path = tmp_path / "journal.db"
    journal = CoordinatorJournal(path)
    journal.record_request("t-1", "submit", "alice", {"type": "submit", "n": 1},
                           idempotency="k1")
    journal.record_request("t-2", "run", "bob", {"type": "run"})
    assert journal.lookup_idempotency("k1") == "t-1"
    assert journal.lookup_idempotency("nope") is None
    journal.record_reply("t-1", {"type": "result", "value": (1, 2)})
    journal.abandon("t-2")
    journal.save_quota({"alice": {"tokens": 3.5, "admitted": 2, "rejected": 1,
                                  "spent": 7.0}})
    journal.flush()
    journal.close()

    # durability: a fresh handle (the restarted coordinator) sees it all
    reopened = CoordinatorJournal(path)
    entries = {t: (kind, tenant, idem, state, msg, reply)
               for t, kind, tenant, idem, state, msg, reply
               in reopened.entries()}
    assert entries["t-1"][3] == "done"
    assert entries["t-1"][4] == {"type": "submit", "n": 1}
    assert entries["t-1"][5] == {"type": "result", "value": (1, 2)}
    assert entries["t-2"][3] == "abandoned"
    assert reopened.load_quota()["alice"]["tokens"] == 3.5
    assert reopened.stats()["done"] == 1

    # acknowledge deletes; expire only touches finished entries
    reopened.acknowledge("t-1")
    assert reopened.lookup_idempotency("k1") is None
    reopened.record_request("t-3", "submit", "alice", {"type": "submit"})
    removed = reopened.expire(ttl=0.0, now=time.time() + 60)
    assert removed == 1  # t-2 (abandoned); t-3 is pending and immortal
    assert reopened.stats()["pending"] == 1
    reopened.close()


def test_backoff_delay_is_jittered_and_capped():
    import random

    rng = random.Random(7)
    delays = [backoff_delay(n, base=0.5, cap=4.0, rng=rng) for n in range(1, 8)]
    for n, delay in enumerate(delays, start=1):
        ceiling = min(4.0, 0.5 * 2 ** (n - 1))
        assert ceiling * 0.5 <= delay <= ceiling
    assert max(delays) <= 4.0


def test_admission_snapshot_restore_is_conservative():
    from repro.service.admission import AdmissionController

    clock = [0.0]
    ctl = AdmissionController(rate=1.0, capacity=10.0, clock=lambda: clock[0])
    assert ctl.admit("a", 4.0)[0]
    snapshot = ctl.snapshot()
    assert snapshot["a"]["tokens"] == pytest.approx(6.0)

    clock[0] += 100.0  # "downtime" between snapshot and restore
    fresh = AdmissionController(rate=1.0, capacity=10.0,
                                clock=lambda: clock[0])
    fresh.restore(snapshot)
    # no refill credited for the downtime: the restart minted nothing
    assert fresh.admit("a", 6.5)[1] > 0  # rejected: only 6.0 tokens held
    assert fresh.admit("a", 5.0)[0]


# -- ticket lifecycle: kept until acknowledged or TTL ------------------------


def test_ticket_survives_repeated_polls_until_acknowledged():
    with Fleet(n_workers=0) as fleet:
        with fleet.client(sampling=SamplingConfig(shots=150, seed=3)) as client:
            ticket = client.submit(rotated_chain(0.4))

            def raw_poll():
                with client._lock:
                    return client._exchange({"type": "poll", "ticket": ticket})

            deadline = time.monotonic() + 60
            while raw_poll()["type"] == "pending":
                assert time.monotonic() < deadline
                time.sleep(0.05)
            # a dropped poll reply means the client re-polls: the result
            # must still be there (the old code popped it on first poll)
            replay = raw_poll()
            assert replay["type"] == "result"
            # the acknowledging poll delivers the same result, then frees it
            result = client.poll(ticket)
            assert (replay["result"].distribution.probs
                    == result.distribution.probs)
            gone = raw_poll()
            assert gone["type"] == "error"
            assert "unknown ticket" in gone["error"]
            assert client.stats()["acks"] >= 1


def test_unclaimed_tickets_are_garbage_collected():
    coordinator = Coordinator(ticket_ttl=0.3)
    with coordinator:
        with ServiceClient(
            coordinator.address, sampling=SamplingConfig(shots=100, seed=4)
        ) as client:
            ticket = client.submit(rotated_chain(0.5))
            deadline = time.monotonic() + 30
            while (coordinator.counters["expired_tickets"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            # never polled, never acknowledged: the TTL sweep reclaimed it
            assert coordinator.counters["expired_tickets"] >= 1
            assert ticket not in coordinator._tickets
            with pytest.raises(Exception, match="unknown ticket"):
                client.poll(ticket)


# -- journal recovery: coordinator kill + restart ----------------------------


def test_coordinator_restart_recovers_tickets_bit_identically(tmp_path):
    port = free_port()
    address = f"127.0.0.1:{port}"
    journal = tmp_path / "coordinator.db"
    # first attempts stall long enough for the kill to land mid-execution
    slow = ExecutionConfig(
        failure_policy="retry",
        chaos=ChaosSchedule(seed=11, delay_rate=1.0, delay_seconds=1.0,
                            fail_attempts=1),
    )
    sampling = SamplingConfig(shots=400, seed=23)
    reconstruction = ReconstructionConfig(qubit_limit=16, top_k=16)

    first = spawn_coordinator(port, journal=journal)
    try:
        wait_for_coordinator(address)
        exact_client = ServiceClient(address, sampling=sampling,
                                     execution=slow)
        wide_client = ServiceClient(address, execution=slow,
                                    reconstruction=reconstruction)
        exact_ticket = exact_client.submit(rotated_chain(0.37))
        wide_ticket = wide_client.submit(wide_chain(61))
        # SIGKILL mid-execution: both tickets are journaled but pending
        first.kill()
        first.wait(timeout=10)

        second = spawn_coordinator(port, journal=journal)
        try:
            # the reconnecting clients poll the successor; it re-executes
            # the journaled requests and serves bit-identical results
            exact_remote = poll_until(exact_client, exact_ticket)
            wide_remote = poll_until(wide_client, wide_ticket)
            assert exact_client.reconnects >= 1

            exact_local = SuperSim(sampling=sampling).run(rotated_chain(0.37))
            wide_local = SuperSim(reconstruction=reconstruction).run(
                wide_chain(61)
            )
            assert (exact_remote.distribution.probs
                    == exact_local.distribution.probs)
            assert (wide_remote.distribution.probs
                    == wide_local.distribution.probs)
            assert wide_remote.stats.mode == "recursive"

            stats = exact_client.stats()
            assert stats["recovered_tickets"] == 2
            assert stats["faults"].get("recovery", 0) == 2
            # both replies were delivered and acknowledged: journal clean
            assert stats["journal"]["pending"] == 0
        finally:
            exact_client.close()
            wide_client.close()
            second.kill()
            second.wait(timeout=10)
    finally:
        if first.poll() is None:  # pragma: no cover - assertion failures
            first.kill()
            first.wait(timeout=10)


def test_restart_restores_quota_without_minting_tokens(tmp_path):
    port = free_port()
    address = f"127.0.0.1:{port}"
    journal = tmp_path / "quota.db"
    quota = ["--quota-rate", "1e-6", "--quota-capacity", "1e-9"]
    sampling = SamplingConfig(shots=100, seed=1)

    first = spawn_coordinator(port, journal=journal, extra=quota)
    try:
        wait_for_coordinator(address)
        with ServiceClient(address, sampling=sampling) as client:
            client.run(rotated_chain(0.2))  # burst: drives the bucket to debt
        first.kill()
        first.wait(timeout=10)

        second = spawn_coordinator(port, journal=journal, extra=quota)
        try:
            # without the journal a restart would refill the burst; with it
            # the debt survives and the follow-up is still rejected
            with ServiceClient(address, sampling=sampling) as client:
                with pytest.raises(QuotaExceededError):
                    client.run(rotated_chain(0.3))
        finally:
            second.kill()
            second.wait(timeout=10)
    finally:
        if first.poll() is None:  # pragma: no cover - assertion failures
            first.kill()
            first.wait(timeout=10)


# -- heartbeat liveness ------------------------------------------------------


def test_heartbeat_declares_zombie_worker_dead_and_requeues():
    sampling = SamplingConfig(shots=250, seed=13)
    circuit = rotated_chain(0.44)
    local = SuperSim(sampling=sampling).run(circuit)
    coordinator = Coordinator(heartbeat_interval=0.1, heartbeat_misses=3)
    with coordinator:
        # a zombie: registers with four slots, swallows jobs and pings,
        # never answers — the TCP connection stays up the whole time
        zombie = connect(coordinator.address)
        zombie.send({"type": "hello", "role": "worker", "name": "zombie",
                     "slots": 4, "pid": 0})
        assert zombie.recv()["type"] == "welcome"
        try:
            with ServiceClient(
                coordinator.address,
                sampling=sampling,
                execution=ExecutionConfig(failure_policy="retry"),
            ) as client:
                deadline = time.monotonic() + 10
                while (not coordinator._workers
                       and time.monotonic() < deadline):
                    time.sleep(0.01)
                result = client.run(circuit)
                stats = client.stats()
            # the numbers never move; the ledger shows the whole story:
            # jobs stuck on the zombie were charged a crash and requeued,
            # and with no live workers left they completed locally
            assert result.distribution.probs == local.distribution.probs
            assert result.faults.crashes >= 1
            assert stats["heartbeat_deaths"] >= 1
            assert stats["faults"].get("heartbeat_miss", 0) >= 1
            assert stats["jobs_requeued"] >= 1 or stats["jobs_local"] >= 1
        finally:
            zombie.close()


# -- reconnect + idempotency -------------------------------------------------


def test_submit_retry_after_dropped_reply_is_idempotent():
    sampling = SamplingConfig(shots=300, seed=7)
    circuit = rotated_chain(0.66)
    local = SuperSim(sampling=sampling).run(circuit)
    coordinator = Coordinator(quota_rate=1000.0, quota_capacity=100000.0)
    with coordinator:
        # ops 0-2 run clean (hello, welcome, submit-send); op 3 — the
        # submitted-reply recv — drops the connection: the classic lost
        # reply after the server already accepted the request
        factory = ChaosTransportFactory(
            ChaosSchedule(seed=1, crash_rate=1.0, fail_attempts=1),
            connect_factory=lambda: connect(coordinator.address),
            skip=3,
            max_faults=1,
        )
        with ServiceClient(
            coordinator.address, sampling=sampling, transport_factory=factory
        ) as client:
            ticket = client.submit(circuit)
            result = poll_until(client, ticket)
            stats = client.stats()
        assert factory.faults_injected == 1
        assert client.reconnects == 1
        assert result.distribution.probs == local.distribution.probs
        # the resent submit was recognised: one ticket, one execution,
        # one admission charge — nothing doubled
        assert stats["idempotent_hits"] >= 1
        assert stats["requests"] == 1
        bucket = stats["admission"]["tenants"]["default"]
        assert bucket["admitted"] == 1
        assert stats["admission"]["admitted"] == 1


def test_chaos_transport_runs_identical_to_fault_free():
    sampling = SamplingConfig(shots=300, seed=5)
    grid = [0.1, 0.25, 0.4]
    circuit = rotated_chain(0.52)
    local_run = SuperSim(sampling=sampling).run(circuit)
    local_points = list(SuperSim(sampling=sampling).sweep(rotated_chain, grid))
    coordinator = Coordinator()
    with coordinator:
        factory = ChaosTransportFactory(
            ChaosSchedule(seed=3, crash_rate=0.25, fail_attempts=1),
            connect_factory=lambda: connect(coordinator.address),
            skip=2,  # let the first handshake through
            max_faults=3,
        )
        with ServiceClient(
            coordinator.address, sampling=sampling, transport_factory=factory
        ) as client:
            remote_run = client.run(circuit)
            remote_points = list(client.sweep(rotated_chain, grid))
        assert factory.faults_injected >= 1  # the chaos really fired
        assert remote_run.distribution.probs == local_run.distribution.probs
        assert [p.params for p in remote_points] == grid
        for local_point, remote_point in zip(local_points, remote_points):
            assert (remote_point.result.distribution.probs
                    == local_point.result.distribution.probs)


# -- peer-level frame errors are non-fatal -----------------------------------


def test_malformed_frames_disconnect_only_that_peer():
    coordinator = Coordinator()
    with coordinator:
        # peer 1: garbage before the handshake (unknown frame tag)
        raw = socket.create_connection(
            ("127.0.0.1", int(coordinator.address.rsplit(":", 1)[1]))
        )
        raw.sendall(struct.pack(">BI", 9, 4) + b"junk")
        assert raw.recv(1024) == b""  # that peer is disconnected...
        raw.close()

        # peer 2: a valid handshake, then an oversize frame header
        evil = connect(coordinator.address)
        evil.send({"type": "hello", "role": "client"})
        assert evil.recv()["type"] == "welcome"
        evil._sock.sendall(struct.pack(">BI", 1, (1 << 30) + 1))
        assert evil.recv() is None  # ...and so is this one
        evil.close()

        deadline = time.monotonic() + 10
        while (coordinator.counters["peer_errors"] < 2
               and time.monotonic() < deadline):
            time.sleep(0.02)
        assert coordinator.counters["peer_errors"] >= 2
        assert coordinator.faults.count("peer_error") >= 2

        # ...but the coordinator never went down: a well-behaved client
        # connects and runs as if nothing happened
        with ServiceClient(
            coordinator.address, sampling=SamplingConfig(shots=100, seed=2)
        ) as client:
            result = client.run(rotated_chain(0.3))
            assert result.distribution.probs
            assert client.stats()["faults"].get("peer_error", 0) >= 2


# -- worker auto-reconnect ---------------------------------------------------


def test_worker_reconnects_after_coordinator_restart():
    port = free_port()
    address = f"127.0.0.1:{port}"
    first = spawn_coordinator(port)
    workers = []
    second = None
    try:
        wait_for_coordinator(address)
        workers = spawn_workers(address, 1)
        wait_for_workers(address, 1)
        first.kill()
        first.wait(timeout=10)

        second = spawn_coordinator(port)
        # the orphaned worker rejoins by itself (jittered backoff)
        wait_for_workers(address, 1, timeout=30)
        sampling = SamplingConfig(shots=200, seed=9)
        with ServiceClient(address, sampling=sampling) as client:
            remote = client.run(rotated_chain(0.7))
            stats = client.stats()
        local = SuperSim(sampling=sampling).run(rotated_chain(0.7))
        assert remote.distribution.probs == local.distribution.probs
        assert stats["jobs_completed"] >= 1
        # the rejoined worker really served the jobs (no local fallback)
        assert stats["jobs_local"] == 0
        # SIGTERM = graceful drain: the worker is told to stop and obeys
        second.terminate()
        second.wait(timeout=30)
        deadline = time.monotonic() + 15
        while (any(w.poll() is None for w in workers)
               and time.monotonic() < deadline):
            time.sleep(0.05)
    finally:
        for proc in (first, second):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        stop_workers(workers)
    # the worker exited via the coordinator's stop, not a kill
    assert all(w.returncode == 0 for w in workers)


# -- graceful drain ----------------------------------------------------------


def test_drain_rejects_new_work_but_finishes_inflight():
    slow = ExecutionConfig(
        failure_policy="retry",
        chaos=ChaosSchedule(seed=2, delay_rate=1.0, delay_seconds=0.5,
                            fail_attempts=1),
    )
    sampling = SamplingConfig(shots=150, seed=6)
    coordinator = Coordinator()
    with coordinator:
        with ServiceClient(
            coordinator.address, sampling=sampling, execution=slow
        ) as client:
            ticket = client.submit(rotated_chain(0.35))
            drained: list = []
            drainer = threading.Thread(
                target=lambda: drained.append(coordinator.drain(timeout=60))
            )
            drainer.start()
            deadline = time.monotonic() + 10
            while not coordinator._draining and time.monotonic() < deadline:
                time.sleep(0.01)
            # during the drain: new work bounces with a retryable reason...
            with ServiceClient(
                coordinator.address, sampling=sampling, reconnect=False
            ) as latecomer:
                with pytest.raises(QuotaExceededError, match="draining"):
                    latecomer.run(rotated_chain(0.9))
            drainer.join(timeout=60)
            assert not drainer.is_alive()
            # ...but accepted work finished and stays collectable
            result = poll_until(client, ticket)
            assert result.distribution.probs
            stats = client.stats()
            assert stats["draining"] is True
            assert stats["jobs_pending"] == 0


# -- shutdown leaks ----------------------------------------------------------


def test_shutdown_leaves_no_leaked_processes_or_threads():
    import multiprocessing

    before = {p.pid for p in multiprocessing.active_children()}
    coordinator = Coordinator()
    with coordinator:
        with ServiceClient(
            coordinator.address, sampling=SamplingConfig(shots=150, seed=8)
        ) as client:
            points = list(client.sweep(rotated_chain, [0.2, 0.6]))
            assert len(points) == 2
    # the bounded joins in _shutdown_async really reaped everything
    leaked = {
        p.pid for p in multiprocessing.active_children()
    } - before
    assert not leaked
    assert all(not t.is_alive() for t in coordinator._executor._threads)


# -- acceptance: sweep survives restart + chaos-killed worker ----------------


def test_sweep_survives_coordinator_restart_and_chaos_worker(tmp_path):
    chaos = ChaosSchedule(seed=5, crash_rate=0.2, fail_attempts=1)
    execution = ExecutionConfig(failure_policy="retry", chaos=chaos)
    sampling = SamplingConfig(shots=400, seed=3)
    grid = [0.3, 0.45, 0.6]
    local_points = list(
        SuperSim(sampling=sampling, execution=ExecutionConfig(
            failure_policy="retry", chaos=chaos
        )).sweep(rotated_chain, grid)
    )

    port = free_port()
    address = f"127.0.0.1:{port}"
    journal = tmp_path / "acceptance.db"
    first = spawn_coordinator(port, journal=journal)
    workers = []
    second = None
    try:
        wait_for_coordinator(address)
        workers = spawn_workers(address, 2)
        wait_for_workers(address, 2)
        client = ServiceClient(address, sampling=sampling,
                               execution=execution)
        try:
            stream = client.sweep(rotated_chain, grid)
            points = [next(stream)]
            # kill the coordinator mid-sweep; its successor adopts the
            # journal and the surviving workers rejoin it
            first.kill()
            first.wait(timeout=10)
            second = spawn_coordinator(port, journal=journal)
            points.extend(stream)

            assert client.reconnects >= 1
            assert [p.params for p in points] == grid
            for local_point, remote_point in zip(local_points, points):
                assert (remote_point.result.distribution.probs
                        == local_point.result.distribution.probs)

            # the chaos schedule really killed a worker along the way
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                if 17 in [w.poll() for w in workers]:
                    break
                time.sleep(0.1)
            assert 17 in [w.poll() for w in workers]

            with ServiceClient(address) as probe:
                stats = probe.stats()
            assert stats["journal"]["pending"] == 0
        finally:
            client.close()
    finally:
        for proc in (first, second):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        stop_workers(workers)
