"""Tests for fragment tensor construction and physicality projection."""

import numpy as np
import pytest

from repro.circuits import Circuit, gates
from repro.core import cut_circuit, find_cuts
from repro.core.evaluator import FragmentEvaluator
from repro.core.tomography import (
    _snap,
    build_fragment_tensor,
    build_sparse_fragment_tensor,
    project_physical,
)
from repro.statevector import StatevectorSimulator

SV = StatevectorSimulator()


def evaluated_fragments(circuit, shots=None, rng=None):
    cc = cut_circuit(circuit, find_cuts(circuit))
    evaluator = FragmentEvaluator(shots=shots, rng=rng)
    return cc, [evaluator.evaluate(f) for f in cc.fragments]


def t_mid_circuit():
    c = Circuit(2)
    c.append(gates.H, 0).append(gates.CX, 0, 1)
    c.append(gates.T, 1)
    c.append(gates.H, 1)
    return c


class TestSnap:
    @pytest.mark.parametrize(
        "value,expected",
        [(0.9, 1.0), (1.0, 1.0), (0.3, 0.0), (0.0, 0.0), (-0.4, 0.0),
         (-0.8, -1.0), (0.51, 1.0), (-0.51, -1.0)],
    )
    def test_values(self, value, expected):
        assert _snap(value) == expected


class TestFragmentTensor:
    def test_identity_slice_is_probability_distribution(self):
        """T[I..., I...] marginalises to the variant's output distribution."""
        circuit = t_mid_circuit()
        cc, data = evaluated_fragments(circuit)
        for frag_data in data:
            fragment = frag_data.fragment
            kept = [lq for _oq, lq in fragment.circuit_outputs]
            tensor = build_fragment_tensor(frag_data, kept)
            identity_index = (0,) * (
                len(fragment.quantum_inputs) + len(fragment.quantum_outputs)
            )
            vec = tensor[identity_index]
            assert np.all(vec >= -1e-9)
            # total probability: 2 per quantum input (I = r0 + r1 has trace 2)
            expected_total = 2.0 ** len(fragment.quantum_inputs)
            assert np.isclose(vec.sum(), expected_total, atol=1e-9)

    def test_pauli_entries_bounded(self):
        circuit = t_mid_circuit()
        _cc, data = evaluated_fragments(circuit)
        for frag_data in data:
            fragment = frag_data.fragment
            kept = [lq for _oq, lq in fragment.circuit_outputs]
            tensor = build_fragment_tensor(frag_data, kept)
            bound = 2.0 ** len(fragment.quantum_inputs) + 1e-9
            assert np.all(np.abs(tensor) <= bound)

    def test_sparse_matches_dense(self):
        circuit = t_mid_circuit()
        _cc, data = evaluated_fragments(circuit)
        for frag_data in data:
            fragment = frag_data.fragment
            kept = [lq for _oq, lq in fragment.circuit_outputs]
            dense = build_fragment_tensor(frag_data, kept)
            sparse = build_sparse_fragment_tensor(frag_data, kept)
            for combo, vec in sparse.items():
                dense_vec = dense[combo]
                for x, v in vec.items():
                    assert np.isclose(v, dense_vec[x], atol=1e-9)
                # entries absent from the sparse dict must be zero
                present = set(vec)
                for x in range(len(dense_vec)):
                    if x not in present:
                        assert abs(dense_vec[x]) < 1e-9

    def test_clifford_fragment_entries_snap_invariant(self):
        """On exact Clifford data, snapping must be a no-op."""
        circuit = t_mid_circuit()
        _cc, data = evaluated_fragments(circuit)
        clifford = [d for d in data if d.fragment.is_clifford]
        assert clifford
        for frag_data in clifford:
            kept = [lq for _oq, lq in frag_data.fragment.circuit_outputs]
            plain = build_fragment_tensor(frag_data, kept, snap_clifford=False)
            snapped = build_fragment_tensor(frag_data, kept, snap_clifford=True)
            assert np.allclose(plain, snapped, atol=1e-9)


class TestPhysicalityProjection:
    def test_exact_data_unchanged(self):
        """Exact fragment models are already physical: projection is identity."""
        circuit = t_mid_circuit()
        _cc, data = evaluated_fragments(circuit)
        for frag_data in data:
            fragment = frag_data.fragment
            qi = len(fragment.quantum_inputs)
            qo = len(fragment.quantum_outputs)
            if qi + qo == 0:
                continue
            kept = [lq for _oq, lq in fragment.circuit_outputs]
            tensor = build_fragment_tensor(frag_data, kept)
            projected = project_physical(tensor, qi, qo)
            assert np.allclose(projected, tensor, atol=1e-8)

    def test_idempotent(self):
        circuit = t_mid_circuit()
        _cc, data = evaluated_fragments(circuit, shots=200, rng=0)
        for frag_data in data:
            fragment = frag_data.fragment
            qi = len(fragment.quantum_inputs)
            qo = len(fragment.quantum_outputs)
            if qi + qo == 0:
                continue
            kept = [lq for _oq, lq in fragment.circuit_outputs]
            tensor = build_fragment_tensor(frag_data, kept)
            once = project_physical(tensor, qi, qo)
            twice = project_physical(once, qi, qo)
            assert np.allclose(once, twice, atol=1e-8)

    def test_projection_moves_toward_truth_on_noisy_data(self):
        rng = np.random.default_rng(5)
        circuit = t_mid_circuit()
        cc_exact, exact_data = evaluated_fragments(circuit)
        _cc, noisy_data = evaluated_fragments(circuit, shots=150, rng=rng)
        for exact, noisy in zip(exact_data, noisy_data):
            fragment = noisy.fragment
            qi = len(fragment.quantum_inputs)
            qo = len(fragment.quantum_outputs)
            if qi + qo == 0:
                continue
            kept = [lq for _oq, lq in fragment.circuit_outputs]
            truth = build_fragment_tensor(exact, kept)
            raw = build_fragment_tensor(noisy, kept)
            fixed = project_physical(raw, qi, qo)
            # Frobenius distance to the true tensor must not grow much
            assert np.linalg.norm(fixed - truth) <= np.linalg.norm(raw - truth) + 1e-6
