"""Tests for the QEC, VQE/CAFQA, and fingerprinting applications."""

import numpy as np
import pytest

from repro.analysis import hellinger_fidelity
from repro.apps.fingerprint import (
    fingerprint_circuit,
    fingerprints_equal,
    incremental_update,
    near_clifford_fingerprint,
)
from repro.apps.hwea import HWEA
from repro.apps.qec import (
    decode_majority,
    logical_phase_error_rate,
    near_clifford_phase_code,
    phase_flip_repetition_code,
)
from repro.apps.vqe import (
    cafqa_search,
    energy,
    h2_hamiltonian,
    pauli_expectation,
    transverse_field_ising,
    Hamiltonian,
)
from repro.circuits import Circuit, gates
from repro.core import SuperSim
from repro.paulis import PauliString
from repro.stabilizer import StabilizerSimulator
from repro.statevector import StatevectorSimulator

SV = StatevectorSimulator()
STAB = StabilizerSimulator()


class TestRepetitionCode:
    def test_qubit_count(self):
        circuit = phase_flip_repetition_code(5)
        assert circuit.n_qubits == 9

    def test_is_clifford(self):
        assert phase_flip_repetition_code(4).is_clifford

    def test_distance_validation(self):
        with pytest.raises(ValueError):
            phase_flip_repetition_code(1)

    def test_noiseless_syndromes_trivial(self):
        """Without errors all ancillas read 0 and data reads |+> (X basis 0)."""
        circuit = phase_flip_repetition_code(3)
        dist = STAB.probabilities(circuit)
        assert dist[0] == 1.0

    def test_single_phase_flip_detected(self):
        d = 3
        circuit = Circuit(2 * d - 1)
        for q in range(d):
            circuit.append(gates.H, q)
        circuit.append(gates.Z, 1)  # inject a phase flip on data qubit 1
        base = phase_flip_repetition_code(d)
        # splice: prep + error + syndrome extraction of the base circuit
        circuit.extend(base.ops[d:])
        circuit.measure_all()
        dist = STAB.probabilities(circuit)
        (outcome,) = [k for k in dist.probs]
        bits = dist.bits(outcome)
        # both adjacent ancillas fire
        assert bits[d] == 1 and bits[d + 1] == 1

    def test_decoder_majority(self):
        assert decode_majority([0, 0, 0, 0, 0]) == 0
        assert decode_majority([1, 1, 0, 0, 0]) == 1  # d=3: two of three data

    def test_logical_error_rate_monotone(self):
        low = logical_phase_error_rate(3, 0.01, shots=4000, rng=0)
        high = logical_phase_error_rate(3, 0.2, shots=4000, rng=0)
        assert low < high

    def test_code_distance_helps_at_low_noise(self):
        p = 0.02
        d3 = logical_phase_error_rate(3, p, shots=20000, rng=1)
        d7 = logical_phase_error_rate(7, p, shots=20000, rng=1)
        assert d7 <= d3 + 0.01

    def test_near_clifford_instance(self):
        circuit = near_clifford_phase_code(3, num_t=1, rng=2)
        assert circuit.num_non_clifford == 1

    def test_supersim_matches_statevector(self):
        circuit = near_clifford_phase_code(3, num_t=1, rng=3)
        expected = SV.probabilities(circuit)
        got = SuperSim().run(circuit).distribution
        assert hellinger_fidelity(expected, got) > 1 - 1e-9


class TestHamiltonians:
    def test_tfim_terms(self):
        h = transverse_field_ising(3)
        assert len(h.terms) == 2 + 3

    def test_width_validation(self):
        with pytest.raises(ValueError):
            Hamiltonian(2, ((1.0, "XXX"),))

    def test_h2_ground_energy(self):
        """Exact diagonalisation of the textbook H2 Hamiltonian."""
        h = h2_hamiltonian()
        matrix = sum(c * p.to_matrix() for c, p in h.paulis())
        ground = float(np.linalg.eigvalsh(matrix)[0])
        assert np.isclose(ground, -1.8572750302023786, atol=1e-6)


class TestExpectations:
    def test_stabilizer_energy_fast_path(self):
        h = transverse_field_ising(3, j=1.0, h=0.0)
        circuit = Circuit(3)  # |000>: all ZZ terms +1
        assert np.isclose(energy(circuit, h), -2.0)

    def test_pauli_expectation_via_supersim(self):
        circuit = Circuit(2).append(gates.H, 0).append(gates.T, 0)
        circuit.append(gates.CX, 0, 1)
        pauli = PauliString.from_label("XX")
        expected = SV.expectation(circuit, pauli)
        got = pauli_expectation(circuit, pauli, SuperSim())
        assert np.isclose(got, expected, atol=1e-8)

    def test_pauli_expectation_identity(self):
        circuit = Circuit(1)
        assert pauli_expectation(circuit, PauliString.identity(1), SV) == 1.0

    @pytest.mark.parametrize("label", ["ZI", "IZ", "XX", "YY", "ZZ"])
    def test_expectation_backends_agree(self, label):
        circuit = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        pauli = PauliString.from_label(label)
        assert np.isclose(
            pauli_expectation(circuit, pauli, SV),
            STAB.expectation(circuit, pauli),
            atol=1e-9,
        )

    def test_energy_with_statevector_backend(self):
        h = h2_hamiltonian()
        circuit = Circuit(2)
        direct = sum(c * SV.expectation(circuit, p) for c, p in h.paulis())
        assert np.isclose(energy(circuit, h, SV), direct, atol=1e-9)


class TestCAFQA:
    def test_search_improves_h2(self):
        ansatz = HWEA(2, 1)
        h = h2_hamiltonian()
        rng = np.random.default_rng(0)
        start = rng.integers(0, 4, size=ansatz.num_parameters)
        e_start = energy(ansatz.clifford_circuit(start), h)
        steps, e_best = cafqa_search(ansatz, h, iterations=3, rng=1,
                                     initial_steps=start)
        assert e_best <= e_start + 1e-12
        # CAFQA on H2 reaches the Hartree-Fock-like Clifford minimum
        assert e_best < -1.0

    def test_search_returns_valid_steps(self):
        ansatz = HWEA(2, 1)
        steps, _ = cafqa_search(ansatz, h2_hamiltonian(), iterations=1, rng=2)
        assert steps.shape == (ansatz.num_parameters,)
        assert set(np.unique(steps)) <= {0, 1, 2, 3}

    def test_cafqa_energy_close_to_true_ground(self):
        """CAFQA gets within chemical-accuracy-ish distance for H2 (per [42])."""
        ansatz = HWEA(2, 2)
        _, e_best = cafqa_search(ansatz, h2_hamiltonian(), iterations=4, rng=3)
        assert e_best < -1.7


class TestFingerprinting:
    def test_equal_files_equal_fingerprints(self):
        a = fingerprint_circuit([1, 0, 1, 1], 4, seed=0)
        b = fingerprint_circuit([1, 0, 1, 1], 4, seed=0)
        assert fingerprints_equal(a, b)

    def test_different_files_differ(self):
        a = fingerprint_circuit([1, 0, 1, 1], 4, seed=0)
        b = fingerprint_circuit([1, 0, 0, 1], 4, seed=0)
        assert not fingerprints_equal(a, b)

    def test_incremental_matches_batch(self):
        batch = fingerprint_circuit([1, 0, 1], 4, seed=5)
        inc = fingerprint_circuit([1, 0], 4, seed=5)
        inc = incremental_update(inc, 1, seed=5)
        assert fingerprints_equal(batch, inc)

    def test_width_mismatch(self):
        a = fingerprint_circuit([1], 3, seed=0)
        b = fingerprint_circuit([1], 4, seed=0)
        assert not fingerprints_equal(a, b)

    def test_near_clifford_fingerprint_runs_on_supersim(self):
        circuit = near_clifford_fingerprint([1, 0], 3, num_t=1, seed=1)
        assert circuit.num_non_clifford == 1
        expected = SV.probabilities(circuit)
        got = SuperSim().run(circuit).distribution
        assert hellinger_fidelity(expected, got) > 1 - 1e-9

    def test_canonicalisation_invariant_to_generator_choice(self):
        # same state prepared by different circuits
        a = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        b = Circuit(2).append(gates.H, 1).append(gates.CX, 1, 0)
        assert fingerprints_equal(a, b)
