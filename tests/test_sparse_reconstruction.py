"""Tests for the sparse (dictionary-valued) reconstruction path."""

import numpy as np
import pytest

from repro.analysis import hellinger_fidelity
from repro.apps.qec import near_clifford_phase_code
from repro.circuits import Circuit, gates, inject_t_gates, random_clifford_circuit
from repro.core import SamplingConfig, SuperSim
from repro.statevector import StatevectorSimulator

SV = StatevectorSimulator()
EXACT = SuperSim()


class TestSparseMatchesDense:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_near_clifford(self, seed):
        rng = np.random.default_rng(seed)
        c = inject_t_gates(random_clifford_circuit(4, 4, rng), 1, rng)
        dense = EXACT.run(c).distribution
        sparse = EXACT.sparse_probabilities(c)
        assert hellinger_fidelity(dense, sparse) > 1 - 1e-9

    def test_matches_statevector(self):
        rng = np.random.default_rng(100)
        c = inject_t_gates(random_clifford_circuit(5, 4, rng), 1, rng)
        expected = SV.probabilities(c)
        sparse = EXACT.sparse_probabilities(c)
        assert hellinger_fidelity(expected, sparse) > 1 - 1e-9

    def test_measured_subset(self):
        c = Circuit(3).append(gates.H, 0).append(gates.CX, 0, 1)
        c.append(gates.T, 1).append(gates.CX, 1, 2).measure([0, 2])
        expected = SV.probabilities(c)
        sparse = EXACT.sparse_probabilities(c)
        assert hellinger_fidelity(expected, sparse) > 1 - 1e-9


class TestSparseAtScale:
    def test_repetition_code_at_41_qubits(self):
        """Far beyond any dense 2^n object: distance-21 phase code."""
        circuit = near_clifford_phase_code(21, num_t=1, rng=0)
        assert circuit.n_qubits == 41
        dist = EXACT.sparse_probabilities(circuit)
        assert np.isclose(dist.total(), 1.0, atol=1e-6)
        # noiseless code: the all-zero record dominates (T only adds phase
        # or a small rotation)
        assert dist[0] > 0.4

    def test_ghz_with_t_sparse(self):
        n = 30
        c = Circuit(n).append(gates.H, 0)
        for q in range(n - 1):
            c.append(gates.CX, q, q + 1)
        c.append(gates.T, n - 1)
        dist = EXACT.sparse_probabilities(c)
        assert len(dist) == 2
        assert np.isclose(dist[0], 0.5, atol=1e-9)
        assert np.isclose(dist[2**n - 1], 0.5, atol=1e-9)

    def test_support_guard(self):
        rng = np.random.default_rng(3)
        c = inject_t_gates(random_clifford_circuit(24, 8, rng), 1, rng)
        with pytest.raises(ValueError):
            EXACT.sparse_probabilities(c, max_support=16)

    def test_sampled_sparse(self):
        circuit = near_clifford_phase_code(6, num_t=1, rng=1)
        sim = SuperSim(sampling=SamplingConfig(shots=3000, seed=2))
        dist = sim.sparse_probabilities(circuit)
        exact = EXACT.sparse_probabilities(circuit)
        assert hellinger_fidelity(exact, dist) > 0.9
