"""Tests for the MPS simulator."""

import numpy as np
import pytest

from repro.analysis import hellinger_fidelity
from repro.circuits import (
    Circuit,
    gates,
    random_clifford_circuit,
    random_near_clifford_circuit,
)
from repro.mps import MPSSimulator, MPSState
from repro.statevector import StatevectorSimulator

SV = StatevectorSimulator()
MPS = MPSSimulator()


def phase_equal(a, b, atol=1e-8):
    i = np.argmax(np.abs(b))
    if abs(b[i]) < atol:
        return np.allclose(a, b, atol=atol)
    ratio = a[i] / b[i]
    return np.allclose(a, ratio * b, atol=atol) and abs(abs(ratio) - 1) < 1e-6


class TestStateEvolution:
    def test_initial_state(self):
        state = MPSState(3)
        vec = state.to_statevector()
        assert np.isclose(vec[0], 1.0)

    def test_single_qubit_gates(self):
        c = Circuit(2).append(gates.H, 0).append(gates.T, 1)
        assert np.allclose(MPS.run(c).to_statevector(), SV.state(c), atol=1e-10)

    def test_bell(self):
        c = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        assert np.allclose(MPS.run(c).to_statevector(), SV.state(c), atol=1e-10)

    def test_nonadjacent_gate(self):
        c = Circuit(4).append(gates.H, 0).append(gates.CX, 0, 3)
        assert np.allclose(MPS.run(c).to_statevector(), SV.state(c), atol=1e-10)

    def test_reversed_qubit_order_gate(self):
        c = Circuit(3).append(gates.H, 2).append(gates.CX, 2, 0)
        assert np.allclose(MPS.run(c).to_statevector(), SV.state(c), atol=1e-10)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_clifford(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        c = random_clifford_circuit(n, int(rng.integers(2, 7)), rng)
        assert np.allclose(MPS.run(c).to_statevector(), SV.state(c), atol=1e-8)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_near_clifford(self, seed):
        rng = np.random.default_rng(100 + seed)
        c = random_near_clifford_circuit(4, 4, 2, rng)
        assert np.allclose(MPS.run(c).to_statevector(), SV.state(c), atol=1e-8)

    def test_norm_preserved(self):
        c = random_clifford_circuit(5, 6, rng=0)
        assert np.isclose(MPS.run(c).norm_squared(), 1.0, atol=1e-9)

    def test_three_qubit_gate_rejected(self):
        ccx = np.eye(8, dtype=complex)
        ccx[6:, 6:] = np.array([[0, 1], [1, 0]])
        gate = gates.Gate("CCX", ccx)
        with pytest.raises(ValueError):
            MPS.run(Circuit(3).append(gate, 0, 1, 2))


class TestTruncation:
    def test_bond_growth_with_entanglement(self):
        n = 8
        c = Circuit(n)
        for layer in range(3):
            for q in range(n):
                c.append(gates.H, q)
            for q in range(0, n - 1, 2):
                c.append(gates.CZ, q, q + 1)
            for q in range(1, n - 1, 2):
                c.append(gates.CZ, q, q + 1)
        state = MPS.run(c)
        assert state.max_bond_dimension > 1

    def test_max_bond_caps_dimension(self):
        sim = MPSSimulator(max_bond=2)
        c = random_clifford_circuit(6, 8, rng=1)
        state = sim.run(c)
        assert state.max_bond_dimension <= 2

    def test_truncation_error_recorded(self):
        sim = MPSSimulator(max_bond=1)
        c = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        state = sim.run(c)
        assert state.truncation_error > 0.1  # Bell state truncated to product

    def test_product_state_stays_bond_one(self):
        c = Circuit(5)
        for q in range(5):
            c.append(gates.H, q)
        assert MPS.run(c).max_bond_dimension == 1


class TestSampling:
    def test_deterministic(self):
        c = Circuit(3).append(gates.X, 1)
        dist = MPS.sample(c, shots=50, rng=0)
        assert dist[0b010] == 1.0

    def test_bell_sampling(self):
        c = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        dist = MPS.sample(c, shots=4000, rng=0)
        assert set(dist.probs) == {0b00, 0b11}
        assert np.isclose(dist[0b00], 0.5, atol=0.03)

    @pytest.mark.parametrize("seed", range(5))
    def test_sampling_matches_exact(self, seed):
        rng = np.random.default_rng(200 + seed)
        c = random_near_clifford_circuit(4, 4, 1, rng)
        exact = SV.probabilities(c)
        sampled = MPS.sample(c, shots=6000, rng=rng)
        assert hellinger_fidelity(exact, sampled) > 0.97

    def test_measured_subset(self):
        c = Circuit(3).append(gates.H, 0).append(gates.CX, 0, 2).measure([2])
        dist = MPS.sample(c, shots=2000, rng=0)
        assert dist.n_bits == 1
        assert np.isclose(dist[0], 0.5, atol=0.05)

    def test_amplitude(self):
        c = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        state = MPS.run(c)
        assert np.isclose(state.amplitude([0, 0]), 1 / np.sqrt(2))
        assert np.isclose(state.amplitude([0, 1]), 0.0)


class TestMarginals:
    def test_single_bit_marginals(self):
        c = Circuit(2).append(gates.H, 0)
        marg = MPS.run(c).single_bit_marginals()
        assert np.allclose(marg[0], [0.5, 0.5], atol=1e-10)
        assert np.allclose(marg[1], [1.0, 0.0], atol=1e-10)

    @pytest.mark.parametrize("seed", range(4))
    def test_marginals_match_statevector(self, seed):
        rng = np.random.default_rng(300 + seed)
        c = random_clifford_circuit(4, 5, rng)
        expected = SV.probabilities(c).single_bit_marginals()
        got = MPS.run(c).single_bit_marginals()
        assert np.allclose(got, expected, atol=1e-8)

    def test_probabilities_exact(self):
        c = random_near_clifford_circuit(3, 3, 1, rng=4)
        assert hellinger_fidelity(SV.probabilities(c), MPS.probabilities(c)) > 1 - 1e-8
