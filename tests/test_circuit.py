"""Tests for the circuit IR."""

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    Operation,
    gates,
    inject_t_gates,
    random_clifford_circuit,
    random_near_clifford_circuit,
)


class TestConstruction:
    def test_append_chain(self):
        c = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        assert len(c) == 2
        assert c.ops[1].qubits == (0, 1)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            Circuit(2).append(gates.H, 2)

    def test_repeated_qubits(self):
        with pytest.raises(ValueError):
            Circuit(2).append(gates.CX, 1, 1)

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            Circuit(2).append(gates.CX, 0)

    def test_measure_defaults_to_all(self):
        c = Circuit(3)
        assert c.measured_qubits == (0, 1, 2)
        assert not c.has_explicit_measurements

    def test_measure_subset(self):
        c = Circuit(3).measure([2, 0])
        assert c.measured_qubits == (0, 2)
        assert c.has_explicit_measurements

    def test_bad_measurement(self):
        with pytest.raises(ValueError):
            Circuit(2).measure([3])


class TestQueries:
    def test_depth(self):
        c = Circuit(3)
        c.append(gates.H, 0).append(gates.H, 1).append(gates.CX, 0, 1)
        c.append(gates.H, 2)
        assert c.depth == 2

    def test_clifford_flags(self):
        c = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        assert c.is_clifford
        c.append(gates.T, 1)
        assert not c.is_clifford
        assert c.non_clifford_indices == [2]
        assert c.num_non_clifford == 1

    def test_gate_counts(self):
        c = Circuit(2).append(gates.H, 0).append(gates.H, 1).append(gates.CX, 0, 1)
        assert c.gate_counts() == {"H": 2, "CX": 1}


class TestUnitary:
    def test_bell_circuit(self):
        c = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        u = c.unitary()
        state = u[:, 0]
        expected = np.zeros(4, dtype=complex)
        expected[0b00] = expected[0b11] = 1 / np.sqrt(2)
        assert np.allclose(state, expected)

    def test_qubit_order_convention(self):
        # X on qubit 0 of 2 flips the most significant bit
        c = Circuit(2).append(gates.X, 0)
        u = c.unitary()
        state = u[:, 0]
        assert np.isclose(state[0b10], 1.0)

    def test_nonadjacent_gate(self):
        c = Circuit(3).append(gates.CX, 2, 0)
        u = c.unitary()
        # control = qubit 2 (LSB), target = qubit 0 (MSB)
        state = u[:, 0b001]
        assert np.isclose(state[0b101], 1.0)

    def test_matches_kron_composition(self):
        rng = np.random.default_rng(0)
        c = random_clifford_circuit(3, 4, rng)
        u = c.unitary()
        assert np.allclose(u @ u.conj().T, np.eye(8), atol=1e-9)


class TestTransformations:
    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(5)
        c = random_near_clifford_circuit(3, 3, 2, rng)
        ident = (c + c.inverse()).unitary()
        assert np.allclose(ident / ident[0, 0], np.eye(8), atol=1e-8)

    def test_map_qubits(self):
        c = Circuit(2).append(gates.CX, 0, 1).measure([1])
        mapped = c.map_qubits({0: 2, 1: 0}, 3)
        assert mapped.ops[0].qubits == (2, 0)
        assert mapped.measured_qubits == (0,)

    def test_add(self):
        a = Circuit(2).append(gates.H, 0)
        b = Circuit(2).append(gates.CX, 0, 1)
        c = a + b
        assert len(c) == 2

    def test_add_mismatch(self):
        with pytest.raises(ValueError):
            Circuit(2) + Circuit(3)

    def test_copy_independent(self):
        a = Circuit(2).append(gates.H, 0)
        b = a.copy()
        b.append(gates.H, 1)
        assert len(a) == 1 and len(b) == 2

    def test_slicing(self):
        c = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1).append(gates.H, 1)
        assert len(c[:2]) == 2
        assert isinstance(c[0], Operation)


class TestRandomGenerators:
    def test_random_clifford_is_clifford(self):
        c = random_clifford_circuit(6, 6, rng=1)
        assert c.is_clifford
        assert c.n_qubits == 6

    def test_inject_t(self):
        base = random_clifford_circuit(4, 4, rng=2)
        injected = inject_t_gates(base, 3, rng=3)
        assert injected.num_non_clifford == 3
        assert len(injected) == len(base) + 3
        # base circuit unchanged
        assert base.num_non_clifford == 0

    def test_near_clifford_count(self):
        c = random_near_clifford_circuit(5, 5, num_non_clifford=2, rng=4)
        assert c.num_non_clifford == 2

    def test_determinism(self):
        a = random_clifford_circuit(5, 5, rng=42)
        b = random_clifford_circuit(5, 5, rng=42)
        assert [op.gate.name for op in a] == [op.gate.name for op in b]
        assert [op.qubits for op in a] == [op.qubits for op in b]
