"""Kernel-tier parity, dispatch fallback, and end-to-end determinism.

The contract under test (see ``repro/kernels/registry.py``): every
registered tier must reproduce the pure-NumPy reference bit-for-bit on
integer/bit kernels and within 1e-12 on float accumulation, a requested
tier whose optional dependency is absent silently falls back to NumPy,
and seeded end-to-end ``run()`` results are identical across tiers.

The accelerated numba bodies are additionally verified *as algorithms*
through their pure-Python twins (``repro.kernels._numba.PY_IMPLS``), so
the parity property holds on hosts without numba installed too — the
twins are byte-for-byte the functions numba compiles.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.kernels as rk
from repro.kernels import _numba, registry
from repro.kernels._numba import PY_IMPLS


@pytest.fixture(autouse=True)
def _restore_tier():
    requested = registry.get_kernel_tier()
    yield
    registry.set_kernel_tier(requested)


def _tier_impls(name):
    """Every distinct implementation of a kernel: registered tiers + twins."""
    entry = rk.get_kernel(name)
    impls = {tier: entry.impl_for(tier) for tier in entry.tiers()}
    if name in PY_IMPLS:
        impls["python-twin"] = PY_IMPLS[name]
    return impls


# -- strategies ---------------------------------------------------------------

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _rng(seed):
    return np.random.default_rng(seed)


# -- gf2_matmul ---------------------------------------------------------------


@given(seed=seeds, m=st.integers(1, 20), k=st.integers(1, 40), n=st.integers(1, 20))
@settings(max_examples=40, deadline=None)
def test_gf2_matmul_parity(seed, m, k, n):
    rng = _rng(seed)
    a = rng.integers(0, 2, size=(m, k)).astype(bool)
    b = rng.integers(0, 2, size=(k, n)).astype(bool)
    expected = rk.get_kernel("gf2_matmul").impl_for("numpy")(a, b)
    naive = (a.astype(np.int64) @ b.astype(np.int64)) % 2
    assert np.array_equal(expected, naive.astype(bool))
    for tier, impl in _tier_impls("gf2_matmul").items():
        assert np.array_equal(impl(a, b), expected), tier


# -- bit_gather ---------------------------------------------------------------


@given(seed=seeds, n=st.integers(0, 200), nbits=st.integers(1, 64))
@settings(max_examples=40, deadline=None)
def test_bit_gather_parity(seed, n, nbits):
    rng = _rng(seed)
    keys = rng.integers(0, 1 << min(nbits, 63), size=n, dtype=np.uint64)
    nk = rng.integers(1, nbits + 1)
    srcs = rng.choice(nbits, size=nk, replace=False).astype(np.uint64)
    dsts = np.arange(nk - 1, -1, -1, dtype=np.uint64)
    expected = rk.get_kernel("bit_gather").impl_for("numpy")(keys, srcs, dsts)
    for tier, impl in _tier_impls("bit_gather").items():
        assert np.array_equal(impl(keys, srcs, dsts), expected), tier


# -- inverse_cdf_indices ------------------------------------------------------


@given(seed=seeds, m=st.integers(1, 50), shots=st.integers(0, 300))
@settings(max_examples=40, deadline=None)
def test_inverse_cdf_parity(seed, m, shots):
    rng = _rng(seed)
    weights = rng.random(m) + 1e-9
    cdf = np.cumsum(weights)
    uniforms = np.sort(rng.random(shots)) * cdf[-1]
    expected = rk.get_kernel("inverse_cdf_indices").impl_for("numpy")(
        cdf, uniforms
    )
    assert (expected < m).all()
    for tier, impl in _tier_impls("inverse_cdf_indices").items():
        assert np.array_equal(impl(cdf, uniforms), expected), tier


def test_inverse_cdf_clamps_total_mass_hit():
    # a uniform exactly equal to the total mass must not index past the
    # support on any tier
    cdf = np.array([0.25, 0.5, 1.0])
    uniforms = np.array([1.0])
    for tier, impl in _tier_impls("inverse_cdf_indices").items():
        assert impl(cdf, uniforms).tolist() == [2], tier


# -- apply_layers (row-packed Clifford layers) --------------------------------


def _random_layers(rng, n_qubits, n_layers):
    names = ["CX", "H", "S", "X", "Z", "Y"]
    layers = []
    for _ in range(n_layers):
        name = names[rng.integers(0, len(names))]
        width = 2 if name == "CX" else 1
        max_gates = n_qubits // width
        count = int(rng.integers(1, max_gates + 1))
        qubits = rng.choice(n_qubits, size=count * width, replace=False)
        layers.append((name, qubits.reshape(count, width).astype(np.int64)))
    return layers


@given(
    seed=seeds,
    n_qubits=st.integers(2, 40),
    words=st.integers(1, 3),
    n_layers=st.integers(1, 6),
)
@settings(max_examples=40, deadline=None)
def test_apply_layers_parity(seed, n_qubits, words, n_layers):
    rng = _rng(seed)
    layers = _random_layers(rng, n_qubits, n_layers)
    x0 = rng.integers(0, 2**63, size=(words, n_qubits), dtype=np.uint64)
    z0 = rng.integers(0, 2**63, size=(words, n_qubits), dtype=np.uint64)
    s0 = rng.integers(0, 2**63, size=words, dtype=np.uint64)
    ref = rk.get_kernel("apply_layers").impl_for("numpy")
    x_ref, z_ref, s_ref = x0.copy(), z0.copy(), s0.copy()
    ref(layers, x_ref, z_ref, s_ref)
    for tier, impl in _tier_impls("apply_layers").items():
        x, z, s = x0.copy(), z0.copy(), s0.copy()
        impl(layers, x, z, s)
        assert np.array_equal(x, x_ref), tier
        assert np.array_equal(z, z_ref), tier
        assert np.array_equal(s, s_ref), tier


# -- row_mul (tableau row products) -------------------------------------------


@given(
    seed=seeds,
    rows=st.integers(2, 24),
    words=st.integers(1, 3),
)
@settings(max_examples=40, deadline=None)
def test_row_mul_parity(seed, rows, words):
    rng = _rng(seed)
    x0 = rng.integers(0, 2**63, size=(rows, words), dtype=np.uint64)
    z0 = rng.integers(0, 2**63, size=(rows, words), dtype=np.uint64)
    s0 = rng.integers(0, 2, size=rows).astype(bool)
    source = int(rng.integers(0, rows))
    others = np.array([r for r in range(rows) if r != source])
    n_targets = int(rng.integers(1, len(others) + 1))
    targets = rng.choice(others, size=n_targets, replace=False)
    ref = rk.get_kernel("row_mul").impl_for("numpy")
    x_ref, z_ref, s_ref = x0.copy(), z0.copy(), s0.copy()
    ref(x_ref, z_ref, s_ref, targets, source)
    for tier, impl in _tier_impls("row_mul").items():
        x, z, s = x0.copy(), z0.copy(), s0.copy()
        impl(x, z, s, targets, source)
        assert np.array_equal(x, x_ref), tier
        assert np.array_equal(z, z_ref), tier
        assert np.array_equal(s, s_ref), tier


# -- dense_contract / window_reduce (float accumulation: 1e-12) ---------------


@given(seed=seeds, k=st.integers(1, 3), kept=st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_dense_contract_matches_plain_einsum(seed, k, kept):
    rng = _rng(seed)
    # two fragments sharing all k cut axes, each with its own kept axis
    t0 = rng.standard_normal((4,) * k + (2**kept,))
    t1 = rng.standard_normal((4,) * k + (2**kept,))
    subs = list(range(k))
    operands = [t0, subs + [k], t1, subs + [k + 1], [k, k + 1]]
    expected = np.einsum(t0, subs + [k], t1, subs + [k + 1], [k, k + 1])
    path = np.einsum_path(*operands, optimize="greedy")[0]
    for tier, impl in _tier_impls("dense_contract").items():
        got = impl(operands, path)
        np.testing.assert_allclose(got, expected, atol=1e-12, err_msg=tier)


@given(seed=seeds, m=st.integers(1, 5))
@settings(max_examples=25, deadline=None)
def test_window_reduce_matches_manual(seed, m):
    rng = _rng(seed)
    head = (4,)
    t = rng.standard_normal(head + (2,) * m)
    bits_spec = [int(b) for b in rng.integers(-1, 2, size=m)]
    axes = [1 + j for j in range(m - 1, -1, -1)]
    bits = [bits_spec[j] for j in range(m - 1, -1, -1)]
    expected = t
    for j in range(m - 1, -1, -1):
        if bits_spec[j] < 0:
            expected = expected.sum(axis=1 + j)
        else:
            expected = np.take(expected, bits_spec[j], axis=1 + j)
    for tier, impl in _tier_impls("window_reduce").items():
        got = impl(t, axes, bits)
        np.testing.assert_allclose(got, expected, atol=1e-12, err_msg=tier)


# -- dispatch and fallback ----------------------------------------------------


class TestDispatch:
    def test_numpy_always_available(self):
        assert "numpy" in rk.available_tiers()
        for entry in rk.all_kernels().values():
            assert "numpy" in entry.tiers()

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel tier"):
            rk.set_kernel_tier("tpu")

    def test_missing_tier_falls_back_to_numpy(self, monkeypatch):
        monkeypatch.setitem(registry._DETECTED, "numba", False)
        monkeypatch.setitem(registry._DETECTED, "cupy", False)
        assert rk.set_kernel_tier("numba") == "numpy"
        assert rk.set_kernel_tier("cupy") == "numpy"
        assert rk.set_kernel_tier("auto") == "numpy"
        assert registry.active_tier() == "numpy"
        # dispatch still works end to end on the fallback
        a = np.eye(3, dtype=bool)
        assert np.array_equal(rk.gf2_matmul(a, a), a)

    def test_auto_prefers_best_available(self, monkeypatch):
        monkeypatch.setitem(registry._DETECTED, "numba", True)
        monkeypatch.setitem(registry._DETECTED, "cupy", False)
        assert rk.set_kernel_tier("auto") == "numba"
        monkeypatch.setitem(registry._DETECTED, "cupy", True)
        assert rk.set_kernel_tier("auto") == "cupy"

    def test_kernel_without_variant_uses_numpy_impl(self, monkeypatch):
        # window_reduce has no numba variant: under the numba tier it must
        # dispatch to the reference implementation rather than fail
        monkeypatch.setitem(registry._DETECTED, "numba", True)
        rk.set_kernel_tier("numba")
        entry = rk.get_kernel("window_reduce")
        assert entry.impl_for("numba") is entry.impls["numpy"]
        t = np.arange(8.0).reshape(2, 2, 2)
        out = rk.window_reduce(t, [2, 1], [-1, 1])
        np.testing.assert_allclose(out, t[:, 1, :].sum(axis=1))

    def test_invalid_environment_value_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "quantum")
        with pytest.warns(RuntimeWarning, match="REPRO_KERNELS"):
            registry._init_from_environment()
        assert registry.get_kernel_tier() == "auto"

    def test_counters_accumulate(self):
        snap = rk.counters_snapshot()
        a = np.eye(2, dtype=bool)
        rk.gf2_matmul(a, a)
        delta = rk.timings_since(snap)
        assert "gf2_matmul" in delta
        assert delta["gf2_matmul"] >= 0.0
        assert "row_mul" not in delta


# -- tier-aware calibration fingerprint ---------------------------------------


class TestFingerprint:
    def test_fingerprint_embeds_active_tier(self):
        from repro.backends.calibration import host_fingerprint

        assert f"kernels={registry.active_tier()}" in host_fingerprint()

    def test_fingerprint_changes_with_tier(self, monkeypatch):
        from repro.backends.calibration import host_fingerprint

        before = host_fingerprint()
        monkeypatch.setitem(registry._DETECTED, "numba", True)
        rk.set_kernel_tier("numba")
        after = host_fingerprint()
        assert before != after
        assert "kernels=numba" in after


# -- end-to-end determinism across tiers --------------------------------------


def _run_supersim(seed):
    from repro.circuits import gates
    from repro.circuits.circuit import Circuit
    from repro.core.config import SamplingConfig
    from repro.core.supersim import SuperSim

    c = Circuit(4)
    c.append(gates.H, 0).append(gates.CX, 0, 1).append(gates.T, 1)
    c.append(gates.CX, 1, 2).append(gates.H, 2).append(gates.CX, 2, 3)
    sim = SuperSim(sampling=SamplingConfig(shots=256, seed=seed))
    return sim.run(c)


class TestEndToEnd:
    def test_seeded_run_identical_across_tiers(self):
        results = []
        for tier in rk.available_tiers():
            rk.set_kernel_tier(tier)
            results.append((tier, _run_supersim(seed=7)))
        (tier0, base), *rest = results
        assert base.kernel_tier == tier0
        for tier, result in rest:
            assert result.kernel_tier == tier
            assert result.distribution.probs == base.distribution.probs

    def test_e2e_with_twin_variants_matches_numpy(self, monkeypatch):
        # install the pure-Python twins as the numba variants and run the
        # full pipeline under the numba tier: exercises accelerated-variant
        # dispatch end-to-end even on hosts without numba installed
        monkeypatch.setitem(registry._DETECTED, "numba", True)
        for name, impl in PY_IMPLS.items():
            monkeypatch.setitem(rk.get_kernel(name).impls, "numba", impl)
        rk.set_kernel_tier("numpy")
        base = _run_supersim(seed=11)
        rk.set_kernel_tier("numba")
        accel = _run_supersim(seed=11)
        assert accel.kernel_tier == "numba"
        assert accel.distribution.probs == base.distribution.probs

    def test_result_records_tier_and_kernel_timings(self):
        result = _run_supersim(seed=3)
        assert result.kernel_tier == registry.active_tier()
        kernel_keys = [
            key for key in result.timings if key.startswith("kernel.")
        ]
        assert kernel_keys, "no per-kernel timings recorded"
        assert all(result.timings[key] >= 0.0 for key in kernel_keys)


# -- einsum path cache --------------------------------------------------------


class TestPathCache:
    def test_repeated_contraction_hits_cache(self):
        from repro.core import reconstruction as rec
        from repro.circuits import gates
        from repro.circuits.circuit import Circuit
        from repro.core.supersim import SuperSim

        rec.clear_einsum_path_cache()
        c = Circuit(4)
        c.append(gates.H, 0).append(gates.CX, 0, 1).append(gates.T, 1)
        c.append(gates.CX, 1, 2).append(gates.CX, 2, 3)
        sim = SuperSim()
        first = sim.run(c)
        assert first.stats.path_cache_misses >= 1
        second = sim.run(c)
        assert second.stats.path_cache_misses == 0
        assert second.stats.path_cache_hits >= 1

    def test_clear_resets_counters(self):
        from repro.core import reconstruction as rec

        rec.clear_einsum_path_cache()
        assert rec.einsum_path_cache_counters() == (0, 0)
        assert rec._EINSUM_PATH_CACHE == {}


# -- numba module internals ---------------------------------------------------


def test_numba_twins_cover_all_variant_kernels():
    # the twins are the exact bodies numba compiles; every kernel that
    # registers a numba variant must expose one for absent-numba parity
    expected = {
        "apply_layers",
        "row_mul",
        "gf2_matmul",
        "bit_gather",
        "inverse_cdf_indices",
    }
    assert set(PY_IMPLS) == expected


@given(seed=seeds)
@settings(max_examples=30, deadline=None)
def test_swar_popcount_matches_numpy(seed):
    rng = _rng(seed)
    values = rng.integers(0, 2**64, size=64, dtype=np.uint64)
    for v in values:
        assert int(_numba._popcount_py(int(v))) == int(np.bitwise_count(v))
