"""Tests for parallel fragment evaluation (paper §X)."""

import numpy as np
import pytest

from repro.analysis import hellinger_fidelity
from repro.circuits import inject_t_gates, random_clifford_circuit
from repro.core import ExecutionConfig, SamplingConfig, SuperSim
from repro.core.cutter import cut_circuit, find_cuts
from repro.core.evaluator import FragmentEvaluator
from repro.statevector import StatevectorSimulator

SV = StatevectorSimulator()


def workload(seed=0):
    rng = np.random.default_rng(seed)
    return inject_t_gates(random_clifford_circuit(5, 4, rng), 1, rng)


class TestParallelEvaluator:
    def test_parallel_exact_matches_serial(self):
        circuit = workload()
        cc = cut_circuit(circuit, find_cuts(circuit))
        serial = FragmentEvaluator(parallel=1)
        threaded = FragmentEvaluator(parallel=4)
        for fragment in cc.fragments:
            a = serial.evaluate(fragment)
            b = threaded.evaluate(fragment)
            assert set(a.results) == set(b.results)
            cols = list(range(fragment.n_qubits))
            for key in a.results:
                da = a.results[key].joint(cols)
                db = b.results[key].joint(cols)
                assert hellinger_fidelity(da, db) > 1 - 1e-12

    def test_parallel_supersim_matches_statevector(self):
        circuit = workload(3)
        sim = SuperSim(execution=ExecutionConfig(parallel=4))
        expected = SV.probabilities(circuit)
        got = sim.run(circuit).distribution
        assert hellinger_fidelity(expected, got) > 1 - 1e-9

    def test_parallel_sampled_runs(self):
        circuit = workload(5)
        sim = SuperSim(
            sampling=SamplingConfig(shots=2000, seed=1),
            execution=ExecutionConfig(parallel=3),
        )
        expected = SV.probabilities(circuit)
        got = sim.run(circuit).distribution
        assert hellinger_fidelity(expected, got) > 0.9

    def test_parallel_floor(self):
        evaluator = FragmentEvaluator(parallel=0)
        assert evaluator.parallel == 1
