"""Typed configs and the legacy-kwarg deprecation shim.

The flat ``SuperSim(shots=..., backend=...)`` kwargs must keep working —
mapped onto :class:`CutConfig` / :class:`SamplingConfig` /
:class:`ExecutionConfig` with exactly one :class:`DeprecationWarning` —
while the new config objects are the primary surface, validated and
immutable, and threaded through the evaluator and the apps layer.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.analysis import hellinger_fidelity
from repro.circuits import Circuit, gates, inject_t_gates, random_clifford_circuit
from repro.core import (
    CutConfig,
    CutStrategy,
    ExecutionConfig,
    SamplingConfig,
    SuperSim,
)
from repro.statevector import StatevectorSimulator

SV = StatevectorSimulator()


def near_clifford(seed=0, n=4):
    rng = np.random.default_rng(seed)
    return inject_t_gates(random_clifford_circuit(n, 4, rng), 1, rng)


class TestLegacyShim:
    def test_legacy_kwargs_warn_once_and_map(self):
        with pytest.warns(DeprecationWarning) as record:
            sim = SuperSim(shots=500, rng=3, backend="mps", max_cuts=8)
        assert len(record) == 1  # one warning, not one per kwarg
        message = str(record[0].message)
        for name in ("shots", "rng", "backend", "max_cuts"):
            assert name in message
        assert sim.sampling.shots == 500
        assert sim.sampling.seed == 3
        assert sim.execution.backend == "mps"
        assert sim.cut_config.max_cuts == 8

    def test_new_api_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            SuperSim(
                cut=CutConfig(max_cuts=8),
                sampling=SamplingConfig(shots=500, seed=3),
                execution=ExecutionConfig(backend="mps"),
            )
            SuperSim()

    def test_legacy_and_new_results_agree(self):
        c = near_clifford(21)
        with pytest.warns(DeprecationWarning):
            legacy = SuperSim(shots=400, rng=9).run(c)
        modern = SuperSim(sampling=SamplingConfig(shots=400, seed=9)).run(c)
        assert legacy.distribution.probs == modern.distribution.probs

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="bogus"):
            SuperSim(bogus=1)

    def test_positional_legacy_call_rejected_immediately(self):
        # the pre-pipeline signature was SuperSim(shots, ...); a stale
        # positional call must fail at construction with a clear message,
        # not deep inside run() with an AttributeError
        with pytest.raises(TypeError, match="CutConfig"):
            SuperSim(4000)
        with pytest.raises(TypeError, match="SamplingConfig"):
            SuperSim(sampling=4000)

    def test_mixing_config_and_legacy_kwarg_rejected(self):
        with pytest.raises(TypeError, match="cannot mix"):
            SuperSim(sampling=SamplingConfig(shots=10), shots=20)

    def test_legacy_attribute_surface_preserved(self):
        with pytest.warns(DeprecationWarning):
            sim = SuperSim(
                shots=100,
                clifford_shots=10,
                snap_clifford=True,
                tomography=True,
                strategy=CutStrategy.GREEDY_MERGE,
                max_cuts=6,
                prune_zeros=False,
                rng=1,
                parallel=2,
                pool="thread",
            )
        assert sim.shots == 100
        assert sim.clifford_shots == 10
        assert sim.snap_clifford is True
        assert sim.tomography is True
        assert sim.strategy is CutStrategy.GREEDY_MERGE
        assert sim.max_cuts == 6
        assert sim.prune_zeros is False
        assert sim.rng == 1
        assert sim.parallel == 2
        assert sim.pool == "thread"


class TestConfigObjects:
    def test_configs_are_frozen(self):
        for config in (CutConfig(), SamplingConfig(), ExecutionConfig()):
            with pytest.raises(dataclasses.FrozenInstanceError):
                config.anything = 1

    def test_replace_helper(self):
        base = SamplingConfig(shots=100)
        derived = base.replace(shots=200, snap_clifford=True)
        assert base.shots == 100 and derived.shots == 200
        assert derived.snap_clifford is True

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingConfig(shots=0)
        with pytest.raises(ValueError):
            SamplingConfig(noise=object())  # noise needs finite shots
        with pytest.raises(ValueError):
            ExecutionConfig(pool="fibers")
        with pytest.raises(ValueError):
            ExecutionConfig(parallel=0)
        with pytest.raises(ValueError):
            CutConfig(max_cuts=-1)

    def test_cut_config_accepts_strategy_string(self):
        assert CutConfig(strategy="greedy_merge").strategy is CutStrategy.GREEDY_MERGE

    def test_sampling_exact_flag(self):
        assert SamplingConfig().exact
        assert not SamplingConfig(shots=10).exact


class TestConfigThreading:
    def test_evaluator_from_configs(self):
        from repro.core import cut_circuit, find_cuts
        from repro.core.evaluator import FragmentEvaluator

        c = near_clifford(23)
        fragments = cut_circuit(c, find_cuts(c)).fragments
        evaluator = FragmentEvaluator.from_configs(
            SamplingConfig(shots=64, seed=0), ExecutionConfig(parallel=2)
        )
        assert evaluator.shots == 64
        assert evaluator.parallel == 2
        data = evaluator.evaluate_all(fragments)
        assert len(data) == len(fragments)

    def test_find_cuts_accepts_cut_config(self):
        from repro.core import find_cuts

        c = near_clifford(25)
        by_enum = find_cuts(c, CutStrategy.ISOLATE)
        by_config = find_cuts(c, CutConfig(strategy=CutStrategy.ISOLATE))
        by_string = find_cuts(c, "isolate")
        assert by_enum == by_config == by_string

    def test_supersim_full_config_run(self):
        c = near_clifford(27)
        expected = SV.probabilities(c)
        sim = SuperSim(
            cut=CutConfig(strategy=CutStrategy.GREEDY_MERGE),
            sampling=SamplingConfig(),
            execution=ExecutionConfig(parallel=2, pool="thread"),
        )
        assert hellinger_fidelity(expected, sim.run(c).distribution) > 1 - 1e-9


class TestAppsAcceptConfigs:
    def test_vqe_energy_accepts_execution_config(self):
        from repro.apps.vqe import energy, transverse_field_ising
        from repro.circuits import ghz_circuit

        h = transverse_field_ising(3)
        c = ghz_circuit(3)
        via_config = energy(c, h, (ExecutionConfig(), SamplingConfig()))
        via_supersim = energy(c, h, SuperSim())
        assert np.isclose(via_config, via_supersim, atol=1e-9)

    def test_vqe_as_scorer_coercions(self):
        from repro.apps.vqe import as_scorer
        from repro.backends.base import Backend

        assert isinstance(as_scorer("statevector"), Backend)
        assert isinstance(as_scorer(ExecutionConfig()), SuperSim)
        assert isinstance(as_scorer(SamplingConfig(shots=10, seed=0)), SuperSim)
        sim = SuperSim()
        assert as_scorer(sim) is sim

    def test_qec_accepts_sampling_config(self):
        from repro.apps.qec import logical_phase_error_rate

        loose = logical_phase_error_rate(3, 0.05, shots=800, rng=0)
        typed = logical_phase_error_rate(
            3, 0.05, sampling=SamplingConfig(shots=800, seed=0)
        )
        assert loose == typed
        via_exec = logical_phase_error_rate(
            3,
            0.05,
            backend=ExecutionConfig(backend="stabilizer"),
            sampling=SamplingConfig(shots=800, seed=0),
        )
        assert via_exec == typed

    def test_qec_rejects_mixed_sampling_and_loose_kwargs(self):
        from repro.apps.qec import logical_phase_error_rate

        with pytest.raises(TypeError, match="not both"):
            logical_phase_error_rate(
                3, 0.05, shots=500, sampling=SamplingConfig(shots=800)
            )

    def test_qec_rejects_execution_config_with_unused_fields(self):
        # this entry point samples directly (no router/pool/cache), so a
        # config carrying those fields must fail loudly, not silently
        from repro.apps.qec import logical_phase_error_rate

        with pytest.raises(TypeError, match="only consumes"):
            logical_phase_error_rate(
                3, 0.05, backend=ExecutionConfig(backend="stabilizer", parallel=8)
            )

    def test_as_scorer_rejects_bad_config_tuples(self):
        from repro.apps.vqe import as_scorer

        with pytest.raises(TypeError, match="at most one"):
            as_scorer((ExecutionConfig(), ExecutionConfig()))
        # an empty tuple is not a config spec and passes through untouched
        assert as_scorer(()) == ()

    def test_qaoa_expected_cut_from_correlations(self):
        from repro.apps.qaoa import (
            clifford_qaoa_circuit,
            expected_cut,
            expected_cut_from_correlations,
            sk_model,
        )

        n = 4
        couplings = sk_model(n, rng=0)
        circuit = clifford_qaoa_circuit(n, couplings)
        circuit.measure_all()
        reference = expected_cut(couplings, SV.probabilities(circuit))
        via_supersim = expected_cut_from_correlations(
            couplings, circuit, SuperSim()
        )
        via_default = expected_cut_from_correlations(couplings, circuit)
        assert np.isclose(via_supersim, reference, atol=1e-8)
        assert np.isclose(via_default, reference, atol=1e-8)
