"""Backend conformance suite: every registered backend vs ground truth.

Parametrized over the registry, so a newly registered backend is tested
automatically: GHZ, random Clifford circuits, and (for universal backends)
Clifford+T circuits are cross-checked against statevector simulation.
"""

import numpy as np
import pytest

from repro.analysis import hellinger_fidelity
from repro.backends import available_backends, get_backend
from repro.circuits import (
    Circuit,
    gates,
    ghz_circuit,
    inject_t_gates,
    random_clifford_circuit,
)
from repro.statevector import StatevectorSimulator

SV = StatevectorSimulator()

BACKENDS = available_backends()


def make_backend(name):
    return get_backend(name)


def ghz(n=4):
    return ghz_circuit(n).measure_all()


def clifford(seed, n=4):
    return random_clifford_circuit(n, 5, rng=seed).measure_all()


def clifford_plus_t(seed, n=3):
    rng = np.random.default_rng(seed)
    return inject_t_gates(random_clifford_circuit(n, 4, rng), 1, rng).measure_all()


@pytest.mark.parametrize("name", BACKENDS)
class TestExactConformance:
    def test_ghz_probabilities(self, name):
        backend = make_backend(name)
        dist = backend.probabilities(ghz())
        expected = SV.probabilities(ghz())
        assert hellinger_fidelity(expected, dist) > 1 - 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_random_clifford_probabilities(self, name, seed):
        backend = make_backend(name)
        circuit = clifford(seed)
        expected = SV.probabilities(circuit)
        assert hellinger_fidelity(expected, backend.probabilities(circuit)) > 1 - 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_clifford_plus_t_probabilities(self, name, seed):
        backend = make_backend(name)
        circuit = clifford_plus_t(seed)
        if backend.capabilities.clifford_only:
            pytest.skip(f"{name} is Clifford-only")
        expected = SV.probabilities(circuit)
        assert hellinger_fidelity(expected, backend.probabilities(circuit)) > 1 - 1e-9


@pytest.mark.parametrize("name", BACKENDS)
class TestSampledConformance:
    def test_ghz_sampling(self, name):
        backend = make_backend(name)
        if name == "extended_stabilizer":
            # its Metropolis sampler provably cannot cross between the two
            # GHZ peaks through zero-probability states — the sparse-support
            # collapse the paper observes in Fig. 7; exact readout is tested
            # above instead
            pytest.skip("Metropolis sampling collapses on sparse supports")
        expected = SV.probabilities(ghz())
        dist = backend.sample(ghz(), 4000, rng=0)
        assert hellinger_fidelity(expected, dist) > 0.9

    def test_clifford_sampling(self, name):
        backend = make_backend(name)
        if name == "extended_stabilizer":
            pytest.skip("Metropolis sampling collapses on sparse supports")
        circuit = clifford(7)
        expected = SV.probabilities(circuit)
        dist = backend.sample(circuit, 4000, rng=0)
        assert hellinger_fidelity(expected, dist) > 0.9


class TestExtendedStabilizerDenseSampling:
    def test_dense_distribution_mixes(self):
        # a dense (all-outcomes-populated) distribution, where the
        # Metropolis chain is known to mix well (VQA-style outputs)
        circuit = Circuit(3)
        for q in range(3):
            circuit.append(gates.H, q).append(gates.T, q).append(gates.H, q)
        circuit.measure_all()
        backend = make_backend("extended_stabilizer")
        expected = SV.probabilities(circuit)
        dist = backend.sample(circuit, 4000, rng=0)
        assert hellinger_fidelity(expected, dist) > 0.9


@pytest.mark.parametrize("name", BACKENDS)
class TestCapabilityHonesty:
    def test_affine_capability_is_real(self, name):
        backend = make_backend(name)
        if not backend.capabilities.affine:
            return
        affine = backend.affine_distribution(ghz())
        expected = SV.probabilities(ghz())
        assert hellinger_fidelity(expected, affine.to_distribution()) > 1 - 1e-9

    def test_noise_capability_is_real(self, name):
        backend = make_backend(name)
        if not backend.capabilities.supports_noise:
            return
        from repro.stabilizer import NoiseModel, PauliChannel

        noise = NoiseModel(after_gate_1q=PauliChannel.depolarizing(0.0))
        bits = backend.sample_noisy_bits(clifford(3), noise, 50, rng=0)
        assert bits.shape == (50, 4)

    def test_measured_subset_respected(self, name):
        backend = make_backend(name)
        circuit = Circuit(3).append(gates.H, 0).append(gates.CX, 0, 1)
        circuit.measure([0, 1])
        dist = backend.probabilities(circuit)
        assert dist.n_bits == 2
        assert np.isclose(dist[0b00], 0.5) and np.isclose(dist[0b11], 0.5)
