"""Tests for Pauli channels and the Pauli-frame noisy sampler."""

import itertools

import numpy as np
import pytest

from repro.analysis import Distribution, hellinger_fidelity
from repro.circuits import Circuit, gates
from repro.paulis import PauliString
from repro.stabilizer import FrameSampler, NoiseModel, PauliChannel
from repro.statevector import StatevectorSimulator

SV = StatevectorSimulator()


def exact_noisy_distribution(circuit, noise):
    """Reference: enumerate every noise realisation with dense simulation."""
    sites = noise.locations(circuit)
    term_lists = []
    for _, channel, qubits in sites:
        options = [(channel.identity_probability, None, qubits)]
        options += [(p, label, qubits) for p, label in channel.terms]
        term_lists.append(options)
    accumulator: dict[int, float] = {}
    n_bits = len(circuit.measured_qubits)
    for combo in itertools.product(*term_lists):
        weight = 1.0
        noisy = Circuit(circuit.n_qubits)
        site_index = 0
        for i, op in enumerate(circuit.ops):
            noisy.append(op.gate, *op.qubits)
            while site_index < len(sites) and sites[site_index][0] == i:
                prob, label, qubits = combo[site_index]
                weight *= prob
                if label is not None:
                    for w, q in enumerate(qubits):
                        letter = label[w]
                        if letter != "I":
                            noisy.append(getattr(gates, letter), q)
                site_index += 1
        while site_index < len(sites):
            prob, label, qubits = combo[site_index]
            weight *= prob
            if label is not None:
                for w, q in enumerate(qubits):
                    if label[w] != "I":
                        noisy.append(getattr(gates, label[w]), q)
            site_index += 1
        if weight == 0.0:
            continue
        noisy.measure(circuit.measured_qubits)
        dist = SV.probabilities(noisy)
        for outcome, p in dist:
            accumulator[outcome] = accumulator.get(outcome, 0.0) + weight * p
    return Distribution(n_bits, accumulator)


class TestPauliChannel:
    def test_bit_flip(self):
        ch = PauliChannel.bit_flip(0.1)
        assert ch.terms == [(0.1, "X")]
        assert np.isclose(ch.identity_probability, 0.9)

    def test_depolarizing_mass(self):
        ch = PauliChannel.depolarizing(0.3)
        assert np.isclose(sum(p for p, _ in ch.terms), 0.3)
        assert len(ch.terms) == 3

    def test_depolarizing2(self):
        ch = PauliChannel.depolarizing2(0.15)
        assert len(ch.terms) == 15
        assert np.isclose(ch.identity_probability, 0.85)

    def test_identity_dropped(self):
        ch = PauliChannel(1, [(0.2, "I"), (0.1, "X")])
        assert len(ch.terms) == 1
        assert np.isclose(ch.identity_probability, 0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            PauliChannel(1, [(0.5, "XX")])
        with pytest.raises(ValueError):
            PauliChannel(1, [(-0.1, "X")])
        with pytest.raises(ValueError):
            PauliChannel(1, [(0.7, "X"), (0.7, "Z")])
        with pytest.raises(ValueError):
            PauliChannel(1, [(0.5, "Q")])

    def test_xz_masks(self):
        ch = PauliChannel(2, [(0.1, "XZ"), (0.1, "YI")])
        xm, zm = ch.xz_masks()
        assert xm.tolist() == [[True, False], [True, False]]
        assert zm.tolist() == [[False, True], [True, False]]

    def test_sample_indices_distribution(self):
        ch = PauliChannel.bit_flip(0.25)
        rng = np.random.default_rng(0)
        idx = ch.sample_indices(40000, rng)
        assert np.isclose((idx == 0).mean(), 0.25, atol=0.02)


class TestNoiseModel:
    def test_locations(self):
        circuit = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        model = NoiseModel(
            after_gate_1q=PauliChannel.depolarizing(0.01),
            after_gate_2q=PauliChannel.depolarizing2(0.02),
            before_measure=PauliChannel.bit_flip(0.03),
        )
        sites = model.locations(circuit)
        assert [s[0] for s in sites] == [0, 1, 2, 2]

    def test_arity_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(after_gate_1q=PauliChannel.depolarizing2(0.1))
        with pytest.raises(ValueError):
            NoiseModel(after_gate_2q=PauliChannel.bit_flip(0.1))


class TestFrameSampler:
    def test_requires_clifford(self):
        with pytest.raises(ValueError):
            FrameSampler(Circuit(1).append(gates.T, 0), NoiseModel())

    def test_measurement_flip_rate(self):
        circuit = Circuit(1)
        noise = NoiseModel(before_measure=PauliChannel.bit_flip(0.2))
        dist = FrameSampler(circuit, noise).sample(50000, rng=0)
        assert np.isclose(dist[1], 0.2, atol=0.01)

    def test_phase_flip_invisible_in_z(self):
        circuit = Circuit(1).append(gates.X, 0)
        noise = NoiseModel(before_measure=PauliChannel.phase_flip(0.5))
        dist = FrameSampler(circuit, noise).sample(2000, rng=0)
        assert dist[1] == 1.0

    def test_noiseless_matches_exact(self):
        circuit = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        dist = FrameSampler(circuit, NoiseModel()).sample(40000, rng=0)
        assert np.isclose(dist[0b00], 0.5, atol=0.02)
        assert dist[0b01] == 0.0

    @pytest.mark.parametrize("seed", range(4))
    def test_against_exact_noisy_enumeration(self, seed):
        rng = np.random.default_rng(seed)
        circuit = Circuit(2)
        circuit.append(gates.H, 0).append(gates.CX, 0, 1).append(gates.S, 1)
        noise = NoiseModel(
            after_gate_1q=PauliChannel.depolarizing(0.15),
            after_gate_2q=PauliChannel.depolarizing2(0.2),
        )
        expected = exact_noisy_distribution(circuit, noise)
        sampled = FrameSampler(circuit, noise).sample(60000, rng=rng)
        assert hellinger_fidelity(expected, sampled) > 0.999

    def test_error_propagates_through_cx(self):
        # X error on control after H propagates to both qubits through CX
        circuit = Circuit(2).append(gates.I, 0).append(gates.CX, 0, 1)
        noise = NoiseModel(after_gate_1q=PauliChannel.bit_flip(1.0))
        dist = FrameSampler(circuit, noise).sample(500, rng=0)
        assert dist[0b11] == 1.0
