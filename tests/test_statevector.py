"""Tests for the dense statevector simulator."""

import numpy as np
import pytest

from repro.analysis import Distribution, hellinger_fidelity
from repro.circuits import Circuit, gates, random_clifford_circuit
from repro.paulis import PauliString
from repro.statevector import StatevectorSimulator

SIM = StatevectorSimulator()


class TestState:
    def test_zero_state(self):
        psi = SIM.state(Circuit(2))
        assert np.isclose(psi[0], 1.0)

    def test_ghz(self):
        c = Circuit(3).append(gates.H, 0).append(gates.CX, 0, 1).append(gates.CX, 1, 2)
        psi = SIM.state(c)
        assert np.isclose(abs(psi[0b000]) ** 2, 0.5)
        assert np.isclose(abs(psi[0b111]) ** 2, 0.5)

    def test_t_gate_phase(self):
        c = Circuit(1).append(gates.H, 0).append(gates.T, 0)
        psi = SIM.state(c)
        assert np.isclose(psi[1], np.exp(1j * np.pi / 4) / np.sqrt(2))

    def test_initial_state(self):
        init = np.zeros(4, dtype=complex)
        init[0b01] = 1.0
        psi = SIM.state(Circuit(2).append(gates.X, 0), initial_state=init)
        assert np.isclose(psi[0b11], 1.0)

    def test_qubit_limit(self):
        sim = StatevectorSimulator(max_qubits=3)
        with pytest.raises(ValueError):
            sim.state(Circuit(4))

    def test_norm_preserved(self):
        c = random_clifford_circuit(5, 8, rng=0)
        psi = SIM.state(c)
        assert np.isclose(np.vdot(psi, psi).real, 1.0)


class TestProbabilities:
    def test_bell_distribution(self):
        c = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        dist = SIM.probabilities(c)
        assert np.isclose(dist[0b00], 0.5)
        assert np.isclose(dist[0b11], 0.5)
        assert dist[0b01] == 0.0

    def test_measured_subset(self):
        c = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1).measure([1])
        dist = SIM.probabilities(c)
        assert dist.n_bits == 1
        assert np.isclose(dist[0], 0.5)
        assert np.isclose(dist[1], 0.5)

    def test_normalised(self):
        c = random_clifford_circuit(4, 5, rng=1)
        dist = SIM.probabilities(c)
        assert np.isclose(dist.total(), 1.0)


class TestSampling:
    def test_deterministic_outcome(self):
        c = Circuit(2).append(gates.X, 1)
        dist = SIM.sample(c, shots=100, rng=0)
        assert dist[0b01] == 1.0

    def test_sampling_close_to_exact(self):
        c = Circuit(3).append(gates.H, 0).append(gates.H, 1).append(gates.CX, 1, 2)
        exact = SIM.probabilities(c)
        sampled = SIM.sample(c, shots=20000, rng=0)
        assert hellinger_fidelity(exact, sampled) > 0.995


class TestExpectation:
    def test_z_on_zero(self):
        assert np.isclose(SIM.expectation(Circuit(1), PauliString.from_label("Z")), 1.0)

    def test_z_on_one(self):
        c = Circuit(1).append(gates.X, 0)
        assert np.isclose(SIM.expectation(c, PauliString.from_label("Z")), -1.0)

    def test_x_on_plus(self):
        c = Circuit(1).append(gates.H, 0)
        assert np.isclose(SIM.expectation(c, PauliString.from_label("X")), 1.0)

    def test_bell_zz(self):
        c = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        assert np.isclose(SIM.expectation(c, PauliString.from_label("ZZ")), 1.0)
        assert np.isclose(SIM.expectation(c, PauliString.from_label("XX")), 1.0)
        assert np.isclose(SIM.expectation(c, PauliString.from_label("YY")), -1.0)

    def test_t_rotated_expectation(self):
        c = Circuit(1).append(gates.H, 0).append(gates.T, 0)
        assert np.isclose(
            SIM.expectation(c, PauliString.from_label("X")), 1 / np.sqrt(2)
        )
        assert np.isclose(
            SIM.expectation(c, PauliString.from_label("Y")), 1 / np.sqrt(2)
        )

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            SIM.expectation(Circuit(2), PauliString.from_label("Z"))
