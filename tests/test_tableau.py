"""Tests for the Aaronson-Gottesman tableau simulator."""

import numpy as np
import pytest

from repro.analysis import Distribution, hellinger_fidelity
from repro.circuits import Circuit, gates, random_clifford_circuit
from repro.paulis import PauliString
from repro.stabilizer import StabilizerSimulator, Tableau
from repro.statevector import StatevectorSimulator

STAB = StabilizerSimulator()
SV = StatevectorSimulator()


class TestGateAction:
    def test_initial_stabilizers(self):
        t = Tableau(2)
        labels = [p.label() for p in t.stabilizers()]
        assert labels == ["ZI", "IZ"]

    def test_h_maps_z_to_x(self):
        t = Tableau(1)
        t.h(0)
        assert t.stabilizers()[0] == PauliString.from_label("X")

    def test_s_on_plus_gives_y_stabilizer(self):
        t = Tableau(1)
        t.h(0)
        t.s(0)
        assert t.stabilizers()[0] == PauliString.from_label("Y")

    def test_bell_stabilizers(self):
        t = Tableau(2)
        t.h(0)
        t.cx(0, 1)
        stabs = {p.label(): p.phase for p in t.stabilizers()}
        assert set(stabs) == {"XX", "ZZ"}
        assert all(phase == 0 for phase in stabs.values())

    def test_x_gate_flips_sign(self):
        t = Tableau(1)
        t.x_gate(0)
        assert t.stabilizers()[0].phase == 2  # -Z

    def test_non_clifford_rejected(self):
        with pytest.raises(ValueError):
            STAB.run(Circuit(1).append(gates.T, 0))

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            Tableau(2).apply_circuit(Circuit(3))


class TestAgainstStatevector:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_circuit_distribution(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        circuit = random_clifford_circuit(n, int(rng.integers(2, 8)), rng)
        exact = SV.probabilities(circuit)
        tableau_dist = STAB.probabilities(circuit)
        assert hellinger_fidelity(exact, tableau_dist) > 1 - 1e-9

    @pytest.mark.parametrize("seed", range(12))
    def test_random_expectations(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(1, 5))
        circuit = random_clifford_circuit(n, int(rng.integers(1, 7)), rng)
        for _ in range(8):
            label = "".join(rng.choice(list("IXYZ")) for _ in range(n))
            pauli = PauliString.from_label(label)
            expected = SV.expectation(circuit, pauli)
            got = STAB.expectation(circuit, pauli)
            assert got in (-1, 0, 1)
            assert np.isclose(got, expected, atol=1e-9), label

    @pytest.mark.parametrize("seed", range(6))
    def test_measured_subset(self, seed):
        rng = np.random.default_rng(200 + seed)
        circuit = random_clifford_circuit(4, 5, rng)
        keep = sorted(rng.choice(4, size=2, replace=False).tolist())
        circuit.measure(keep)
        exact = SV.probabilities(circuit)
        got = STAB.probabilities(circuit)
        assert hellinger_fidelity(exact, got) > 1 - 1e-9

    def test_all_stabilizer_expectations_are_plus_one(self):
        rng = np.random.default_rng(0)
        circuit = random_clifford_circuit(5, 6, rng)
        tableau = STAB.run(circuit)
        for stab in tableau.stabilizers():
            assert tableau.expectation(stab) == 1


class TestMeasurement:
    def test_deterministic_zero(self):
        t = Tableau(1)
        assert t.measure(0, rng=0) == 0

    def test_deterministic_one(self):
        t = Tableau(1)
        t.h(0)
        t.s(0)
        t.s(0)
        t.h(0)  # = X up to phase
        assert t.measure(0, rng=0) == 1

    def test_random_then_repeatable(self):
        rng = np.random.default_rng(1)
        t = Tableau(1)
        t.h(0)
        first = t.measure(0, rng)
        for _ in range(5):
            assert t.measure(0, rng) == first

    def test_bell_correlations(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            t = Tableau(2)
            t.h(0)
            t.cx(0, 1)
            a = t.measure(0, rng)
            b = t.measure(1, rng)
            assert a == b

    def test_ghz_randomness(self):
        rng = np.random.default_rng(3)
        outcomes = set()
        for _ in range(30):
            t = Tableau(3)
            t.h(0)
            t.cx(0, 1)
            t.cx(1, 2)
            bits = tuple(t.measure(q, rng) for q in range(3))
            outcomes.add(bits)
        assert outcomes == {(0, 0, 0), (1, 1, 1)}


class TestAffineDistribution:
    def test_bell(self):
        circuit = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        affine = STAB.affine_distribution(circuit)
        assert affine.n_free == 1
        dist = affine.to_distribution()
        assert np.isclose(dist[0b00], 0.5)
        assert np.isclose(dist[0b11], 0.5)

    def test_probability_of(self):
        circuit = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        affine = STAB.affine_distribution(circuit)
        assert np.isclose(affine.probability_of([0, 0]), 0.5)
        assert np.isclose(affine.probability_of([1, 1]), 0.5)
        assert affine.probability_of([0, 1]) == 0.0

    def test_marginals(self):
        circuit = Circuit(2).append(gates.H, 0)
        affine = STAB.affine_distribution(circuit)
        marg = affine.single_bit_marginals()
        assert np.allclose(marg[0], [0.5, 0.5])
        assert np.allclose(marg[1], [1.0, 0.0])

    def test_sampling_matches_exact(self):
        rng = np.random.default_rng(4)
        circuit = random_clifford_circuit(4, 5, rng)
        exact = STAB.probabilities(circuit)
        sampled = STAB.sample(circuit, shots=20000, rng=rng)
        assert hellinger_fidelity(exact, sampled) > 0.99

    def test_deterministic_circuit(self):
        circuit = Circuit(2).append(gates.X, 1)
        affine = STAB.affine_distribution(circuit)
        assert affine.n_free == 0
        assert affine.to_distribution()[0b01] == 1.0

    @pytest.mark.parametrize("seed", range(5))
    def test_probability_of_matches_statevector(self, seed):
        rng = np.random.default_rng(300 + seed)
        circuit = random_clifford_circuit(3, 5, rng)
        exact = SV.probabilities(circuit)
        affine = STAB.affine_distribution(circuit)
        for outcome in range(8):
            bits = [(outcome >> (2 - i)) & 1 for i in range(3)]
            assert np.isclose(affine.probability_of(bits), exact[outcome], atol=1e-9)


class TestLargeScale:
    def test_wide_ghz(self):
        n = 200
        circuit = Circuit(n).append(gates.H, 0)
        for q in range(n - 1):
            circuit.append(gates.CX, q, q + 1)
        affine = STAB.affine_distribution(circuit)
        bits = affine.sample_bits(50, rng=0)
        # every shot is all-zeros or all-ones
        assert np.all((bits.sum(axis=1) == 0) | (bits.sum(axis=1) == n))

    def test_wide_random_runs(self):
        circuit = random_clifford_circuit(120, 20, rng=7)
        affine = STAB.affine_distribution(circuit)
        bits = affine.sample_bits(10, rng=1)
        assert bits.shape == (10, 120)
