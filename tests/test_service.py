"""Service suite: the distributed coordinator/worker/client stack.

The service's headline invariant mirrors the engine's: a seeded run
through a coordinator and real worker subprocesses is **bit-for-bit**
identical to a local ``SuperSim`` run — including under chaos that
``os._exit``s a worker mid-batch (the faults land in the ledger, the
numbers never move).  Around that invariant: the wire protocol, the
token-bucket admission control with 429-style rejections, per-worker
back-pressure bounds, the shared variant-cache tier across clients, and
the lifecycle satellites (``SuperSim.close()``, ``CostEstimate``
round-trips, unbound-plan pickling).
"""

import os
import pickle
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.backends import (
    RemoteCacheTier,
    SQLiteCacheTier,
    TieredCache,
    VariantCache,
)
from repro.backends.tiers import CacheTier, cache_key_token
from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.core import (
    ExecutionConfig,
    ReconstructionConfig,
    SamplingConfig,
    SuperSim,
)
from repro.core.plan import CostEstimate
from repro.errors import QuotaExceededError
from repro.service import Coordinator, ServiceClient
from repro.service.admission import AdmissionController, TokenBucket
from repro.service.protocol import TcpTransport, encode_frame, parse_address
from repro.testing import ChaosSchedule

SRC = str(Path(__file__).resolve().parents[1] / "src")


# -- circuit factories -------------------------------------------------------


def rotated_chain(t: float, n: int = 8) -> Circuit:
    c = Circuit(n)
    for i in range(n):
        c.append(gates.H, i)
    for i in range(n - 1):
        c.append(gates.CX, i, i + 1)
    c.append(gates.ZPow(t), n // 2)
    c.measure_all()
    return c


def wide_chain(n: int) -> Circuit:
    """GHZ chain with one XPow(1/4): 4-outcome support at any width."""
    circuit = Circuit(n).append(gates.H, 0)
    for q in range(n - 1):
        circuit.append(gates.CX, q, q + 1)
    circuit.append(gates.XPow(0.25), n // 2)
    return circuit


# -- fleet plumbing ----------------------------------------------------------


def spawn_workers(address: str, n: int, slots: int = 2) -> list:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    return [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service.worker",
                "--connect",
                address,
                "--slots",
                str(slots),
                "--name",
                f"w{i}",
            ],
            env=env,
        )
        for i in range(n)
    ]


def wait_for_workers(address: str, n: int, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    with ServiceClient(address) as probe:
        while time.monotonic() < deadline:
            if len(probe.stats()["workers"]) >= n:
                return
            time.sleep(0.05)
    raise AssertionError(f"{n} workers never registered within {timeout}s")


def stop_workers(workers, timeout: float = 10.0) -> None:
    for worker in workers:
        try:
            worker.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            worker.kill()
            worker.wait(timeout=timeout)


class Fleet:
    """One coordinator plus worker subprocesses, torn down deterministically."""

    def __init__(self, n_workers: int = 2, slots: int = 2, **coordinator_kwargs):
        self.coordinator = Coordinator(**coordinator_kwargs)
        self.address = self.coordinator.start_in_thread()
        self.workers = spawn_workers(self.address, n_workers, slots=slots)
        if n_workers:
            wait_for_workers(self.address, n_workers)

    def client(self, **kwargs) -> ServiceClient:
        return ServiceClient(self.address, **kwargs)

    def close(self) -> None:
        self.coordinator.shutdown()
        stop_workers(self.workers)

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


@pytest.fixture(scope="module")
def fleet():
    """The module-wide fleet: one coordinator, two 2-slot workers."""
    f = Fleet(n_workers=2)
    yield f
    f.close()


# -- wire protocol -----------------------------------------------------------


def test_transport_roundtrip_json_and_pickle():
    a, b = socket.socketpair()
    ta, tb = TcpTransport(a), TcpTransport(b)
    try:
        ta.send({"type": "hello", "n": 3})  # JSON-safe
        assert tb.recv() == {"type": "hello", "n": 3}
        payload = {"type": "data", "key": ("fp", 1, None), "arr": b"\x00\xff"}
        tb.send(payload)  # tuples/bytes force the pickle codec
        assert ta.recv() == payload
    finally:
        ta.close()
        tb.close()


def test_transport_eof_and_frame_tags():
    a, b = socket.socketpair()
    ta, tb = TcpTransport(a), TcpTransport(b)
    ta.close()
    assert tb.recv() is None  # clean EOF on a frame boundary
    tb.close()
    assert encode_frame({"x": 1})[0] == 1  # JSON tag
    assert encode_frame({"x": (1,)})[0] == 2  # pickle tag
    assert parse_address("127.0.0.1:99") == ("127.0.0.1", 99)
    with pytest.raises(ValueError):
        parse_address("nocolon")


# -- admission control -------------------------------------------------------


def test_token_bucket_burst_debt_and_retry_after():
    clock = [0.0]
    bucket = TokenBucket(rate=2.0, capacity=10.0, clock=lambda: clock[0])
    # a request dearer than capacity admits on a full bucket (burst)...
    ok, _ = bucket.admit(25.0)
    assert ok
    # ...and leaves debt that rejects the follow-up with a refill hint
    ok, retry_after = bucket.admit(4.0)
    assert not ok
    assert retry_after == pytest.approx((4.0 - (-15.0)) / 2.0)
    clock[0] += retry_after
    ok, _ = bucket.admit(4.0)
    assert ok
    stats = bucket.stats()
    assert stats["admitted"] == 2 and stats["rejected"] == 1


def test_admission_controller_isolates_tenants():
    clock = [0.0]
    ctl = AdmissionController(rate=1.0, capacity=1.0, clock=lambda: clock[0])
    assert ctl.admit("a", 50.0) == (True, 0.0)
    ok, retry_after = ctl.admit("a", 1.0)
    assert not ok and retry_after > 0
    assert ctl.admit("b", 1.0)[0]  # tenant b has its own bucket
    assert AdmissionController().admit("anyone", 1e9)[0]  # disabled admits all


# -- cache tiers -------------------------------------------------------------


def test_sqlite_tier_lru_and_stats(tmp_path):
    tier = SQLiteCacheTier(tmp_path / "variants.db", max_entries=2)
    key = ("fp", ("backend",), None, ("shots", 100, 7))
    tier.put(key, {"v": 1})
    assert tier.get(key) == {"v": 1}
    assert key in tier and len(tier) == 1
    tier.put(("k2",), 2)
    tier.get(key)  # touch: key becomes most-recent
    tier.put(("k3",), 3)  # evicts k2, the least-recently-used
    assert ("k2",) not in tier and key in tier
    stats = tier.stats()
    assert stats["evictions"] == 1 and stats["entries"] == 2
    assert stats["bytes"] > 0 and stats["hits"] == 2 and stats["misses"] == 0
    # durability: a fresh handle on the same file sees the entries
    tier.close()
    reopened = SQLiteCacheTier(tmp_path / "variants.db")
    assert reopened.get(key) == {"v": 1}
    reopened.close()


def test_tiered_cache_promotes_and_conforms():
    back = SQLiteCacheTier(":memory:")
    cache = TieredCache(VariantCache(maxsize=8), back)
    cache.put(("k",), "v")
    cache.front.clear()  # drop the front copy only
    assert cache.get(("k",)) == "v"  # back tier hit...
    assert cache.front.get(("k",)) == "v"  # ...promoted forward
    for tier in (cache, back, VariantCache()):
        assert isinstance(tier, CacheTier)
    assert cache_key_token(("a", 1)) == cache_key_token(("a", 1))
    assert cache_key_token(("a", 1)) != cache_key_token(("a", 2))


def test_remote_cache_tier(fleet):
    tier = RemoteCacheTier(fleet.address)
    try:
        key = ("remote-test-fp", ("token",), None, "exact")
        assert tier.get(key) is None
        tier.put(key, {"payload": [1, 2, 3]})
        assert key in tier
        assert tier.get(key) == {"payload": [1, 2, 3]}
        stats = tier.stats()
        assert stats["remote_hits"] == 1 and stats["remote_misses"] == 1
        assert stats["entries"] >= 1
    finally:
        tier.close()


# -- bit-identity: service == local ------------------------------------------


def test_service_run_matches_local_exact(fleet):
    circuit = rotated_chain(0.37)
    local = SuperSim().run(circuit)
    with fleet.client() as client:
        remote = client.run(circuit)
    assert remote.distribution.probs == local.distribution.probs
    assert not remote.faults


def test_service_run_matches_local_sampled(fleet):
    sampling = SamplingConfig(shots=700, seed=17)
    circuit = rotated_chain(0.61)
    local = SuperSim(sampling=sampling).run(circuit)
    with fleet.client(sampling=sampling) as client:
        remote = client.run(circuit)
    assert remote.distribution.probs == local.distribution.probs


def test_service_wide_recursive_matches_local(fleet):
    reconstruction = ReconstructionConfig(qubit_limit=16, top_k=16)
    circuit = wide_chain(61)
    local = SuperSim(reconstruction=reconstruction).run(circuit)
    with fleet.client(reconstruction=reconstruction) as client:
        remote = client.run(circuit)
    assert remote.stats.mode == "recursive"
    assert remote.distribution.probs == local.distribution.probs


def test_service_sweep_matches_local(fleet):
    sampling = SamplingConfig(shots=300, seed=5)
    grid = [0.1, 0.25, 0.4]
    local_points = list(
        SuperSim(sampling=sampling).sweep(rotated_chain, grid)
    )
    with fleet.client(sampling=sampling) as client:
        remote_points = list(client.sweep(rotated_chain, grid))
    assert [p.params for p in remote_points] == grid
    for local_point, remote_point in zip(local_points, remote_points):
        assert remote_point.ok
        assert (
            remote_point.result.distribution.probs
            == local_point.result.distribution.probs
        )


def test_submit_poll_and_estimate(fleet):
    circuit = rotated_chain(0.81)
    with fleet.client() as client:
        quote = client.estimate(circuit)
        assert isinstance(quote, CostEstimate)
        assert quote.total_cost > 0 and quote.num_variants > 0
        ticket = client.submit(circuit)
        deadline = time.monotonic() + 60
        result = None
        while result is None and time.monotonic() < deadline:
            result = client.poll(ticket)
            if result is None:
                time.sleep(0.05)
        assert result is not None
        local = SuperSim().run(circuit)
        assert result.distribution.probs == local.distribution.probs


# -- admission + back-pressure through the service ---------------------------


def test_quota_rejection_with_retry_after():
    with Fleet(n_workers=0, quota_rate=1e-6, quota_capacity=1e-9) as fleet:
        sampling = SamplingConfig(shots=100, seed=1)
        with fleet.client(sampling=sampling) as client:
            client.run(rotated_chain(0.2))  # burst: first request admits
            with pytest.raises(QuotaExceededError) as info:
                client.run(rotated_chain(0.3))
            assert info.value.retry_after > 0
            assert info.value.estimate is not None
            assert info.value.estimate.total_cost > 0
            stats = client.stats()["admission"]
            assert stats["rejected"] == 1
        # a different tenant's bucket is untouched
        with fleet.client(tenant="other", sampling=sampling) as client:
            client.run(rotated_chain(0.2))


def test_backpressure_bounds_inflight_per_worker():
    # one 4-slot worker, but the coordinator only allows 1 in flight:
    # peak in-flight must respect the coordinator's bound, not the
    # worker's appetite
    with Fleet(n_workers=1, slots=4, max_inflight_per_worker=1) as fleet:
        with fleet.client(sampling=SamplingConfig(shots=200, seed=2)) as client:
            client.run(rotated_chain(0.33))
            stats = client.stats()
            worker_stats = list(stats["workers"].values())
            assert worker_stats, "worker vanished"
            assert worker_stats[0]["peak_inflight"] == 1
            assert stats["jobs_dispatched"] >= 4  # real queuing happened
            assert stats["jobs_completed"] == stats["jobs_dispatched"]


# -- fault tolerance ---------------------------------------------------------


def test_chaos_worker_exit_mid_batch_completes_with_fault_accounting():
    chaos = ChaosSchedule(seed=5, crash_rate=0.2, fail_attempts=1)
    execution = ExecutionConfig(failure_policy="retry", chaos=chaos)
    sampling = SamplingConfig(shots=400, seed=3)
    circuit = rotated_chain(0.3)
    clean = SuperSim(sampling=sampling).run(circuit)
    with Fleet(n_workers=2) as fleet:
        with fleet.client(sampling=sampling, execution=execution) as client:
            result = client.run(circuit)
            stats = client.stats()
        # the numbers never move, even though a worker really died
        assert result.distribution.probs == clean.distribution.probs
        # ...and the ledger says exactly what happened
        assert result.faults.crashes >= 1
        assert stats["workers_lost"] >= 1
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            codes = [w.poll() for w in fleet.workers]
            if 17 in codes:  # the chaos harness's os._exit status
                break
            time.sleep(0.1)
        assert 17 in [w.poll() for w in fleet.workers]


def test_no_workers_degrades_to_local_with_fallback_events():
    sampling = SamplingConfig(shots=250, seed=13)
    circuit = rotated_chain(0.44)
    clean = SuperSim(sampling=sampling).run(circuit)
    with Fleet(n_workers=0) as fleet:
        with fleet.client(sampling=sampling) as client:
            result = client.run(circuit)
    assert result.distribution.probs == clean.distribution.probs
    assert result.faults.fallbacks >= 1
    details = [e.detail for e in result.faults.of_kind("fallback")]
    assert any("no live workers" in d for d in details)


# -- shared cache across clients ---------------------------------------------


def test_shared_cache_across_clients():
    sampling = SamplingConfig(shots=300, seed=9)
    circuit = rotated_chain(0.55)
    with Fleet(n_workers=2) as fleet:
        with fleet.client(sampling=sampling) as first:
            first_result = first.run(circuit)
            after_first = first.cache_stats()
        with fleet.client(sampling=sampling) as second:
            second_result = second.run(circuit)
            after_second = second.cache_stats()
        assert first_result.distribution.probs == second_result.distribution.probs
        # the second client's evaluation was served entirely from the tier
        assert second_result.timings["cache_misses"] == 0
        assert second_result.timings["cache_hits"] > 0
        assert after_second["hits"] > after_first["hits"]
        # concurrent clients also agree (and share the tier)
        results = {}

        def run_client(name):
            with fleet.client(sampling=sampling, tenant=name) as client:
                results[name] = client.run(rotated_chain(0.77))

        threads = [
            threading.Thread(target=run_client, args=(f"c{i}",))
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert (
            results["c0"].distribution.probs == results["c1"].distribution.probs
        )


# -- lifecycle satellites ----------------------------------------------------


def test_supersim_close_and_context_manager():
    class Resource:
        closed = 0

        def close(self):
            Resource.closed += 1

    with SuperSim() as sim:
        sim.adopt_resource(Resource())
        sim.run(rotated_chain(0.5, n=4))
    assert Resource.closed == 1
    # idempotent, and the engine stays usable after close()
    sim.close()
    assert Resource.closed == 1
    assert sim.run(rotated_chain(0.5, n=4)).distribution.probs


def test_cost_estimate_dict_roundtrip():
    plan = SuperSim().plan(rotated_chain(0.2))
    estimate = plan.estimate()
    data = estimate.to_dict()
    import json

    restored = CostEstimate.from_dict(json.loads(json.dumps(data)))
    assert restored == estimate
    assert restored.backends == estimate.backends


def test_execution_plan_pickles_unbound():
    sim = SuperSim()
    plan = sim.plan(rotated_chain(0.9))
    clone = pickle.loads(pickle.dumps(plan))
    with pytest.raises(RuntimeError, match="unbound"):
        clone.execute()
    with pytest.raises(RuntimeError, match="unbound"):
        clone.estimate()
    local = plan.execute()
    rebound = clone.bind(sim).execute()
    assert rebound.distribution.probs == local.distribution.probs
