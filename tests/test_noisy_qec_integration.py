"""Integration: QEC under realistic noise through SuperSim (paper §IV-A).

The paper's headline QEC use case combines two error families in one
simulation:

* *stochastic Pauli noise* — expressible in stabilizer simulation, handled
  on Clifford fragments by Pauli-frame sampling;
* *coherent errors* (over-rotations) — inexpressible in stabilizer
  simulation, carried as explicit non-Clifford gates that the cutter
  isolates.

These tests run a phase-repetition-code round with both at once.
"""

import numpy as np
import pytest

from repro.apps.qec import phase_flip_repetition_code
from repro.circuits import Circuit, gates
from repro.core import SamplingConfig, SuperSim
from repro.stabilizer import NoiseModel, PauliChannel
from repro.statevector import StatevectorSimulator


def noisy_sim(shots, noise, seed):
    return SuperSim(sampling=SamplingConfig(shots=shots, noise=noise, seed=seed))


SV = StatevectorSimulator()


def coherent_code_round(distance: int, angle: float, data_qubit: int = 1):
    base = phase_flip_repetition_code(distance)
    prep = distance
    circuit = Circuit(base.n_qubits, base.ops[:prep])
    circuit.append(gates.ZPow(angle), data_qubit)
    circuit.extend(base.ops[prep:])
    circuit.measure_all()
    return circuit


class TestCoherentPlusStochastic:
    def test_runs_and_normalises(self):
        circuit = coherent_code_round(3, 0.12)
        noise = NoiseModel(after_gate_1q=PauliChannel.depolarizing(0.01))
        sim = noisy_sim(4000, noise, 0)
        dist = sim.run(circuit).distribution
        assert np.isclose(dist.total(), 1.0, atol=1e-9)

    def test_zero_rate_noise_matches_coherent_only(self):
        from repro.analysis import hellinger_fidelity

        circuit = coherent_code_round(3, 0.12)
        exact = SV.probabilities(circuit)
        noisy_zero = noisy_sim(40000, NoiseModel(), 1).run(circuit).distribution
        assert hellinger_fidelity(exact, noisy_zero) > 0.99

    def test_stochastic_noise_raises_syndrome_rate(self):
        circuit = coherent_code_round(3, 0.08)
        d = 3

        def fire_rate(dist):
            return sum(
                p for outcome, p in dist if any(dist.bits(outcome)[d:])
            )

        clean = noisy_sim(30000, NoiseModel(), 2).run(circuit)
        noisy = noisy_sim(
            30000, NoiseModel(after_gate_2q=PauliChannel.depolarizing2(0.05)), 2
        ).run(circuit)
        assert fire_rate(noisy.distribution) > fire_rate(clean.distribution) + 0.02

    def test_coherent_error_still_detected_under_noise(self):
        # the coherent rotation's syndrome signature survives modest noise
        circuit = coherent_code_round(3, 0.25)
        noise = NoiseModel(after_gate_1q=PauliChannel.phase_flip(0.002))
        dist = noisy_sim(30000, noise, 3).run(circuit).distribution
        analytic = float(np.sin(0.25 * np.pi / 2) ** 2)
        d = 3
        both_fire = sum(
            p
            for outcome, p in dist
            if dist.bits(outcome)[d] and dist.bits(outcome)[d + 1]
        )
        assert np.isclose(both_fire, analytic, atol=0.02)
