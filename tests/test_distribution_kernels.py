"""Array-native Distribution kernels vs the legacy dict implementation.

The distribution layer stores packed key/probability arrays; these
property tests pin every hot kernel — ``marginal``,
``single_bit_marginals``, ``sample``, ``hellinger_fidelity`` — to a
straightforward dict-based reference (the pre-refactor implementation) on
random sparse distributions up to 128 bits, plus regression tests for the
sampling hot loop and determinism of the process-pool default.
"""

import math
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.distributions import (
    Distribution,
    chunked_keys_to_ints,
    hellinger_fidelity,
    ints_to_chunked_keys,
    pack_bit_cols,
    pack_bit_rows,
    pack_bit_rows_chunked,
)


# -- the dict-based reference (the old implementation, verbatim in spirit) --


def ref_marginal(probs: dict[int, float], n_bits: int, keep: list[int]):
    out: dict[int, float] = {}
    for outcome, p in probs.items():
        bits = [(outcome >> (n_bits - 1 - i)) & 1 for i in range(n_bits)]
        key = 0
        for b in (bits[i] for i in keep):
            key = (key << 1) | b
        out[key] = out.get(key, 0.0) + p
    return out


def ref_single_bit_marginals(probs: dict[int, float], n_bits: int):
    out = np.zeros((n_bits, 2))
    for outcome, p in probs.items():
        for i in range(n_bits):
            out[i, (outcome >> (n_bits - 1 - i)) & 1] += p
    return out


def ref_hellinger(p: dict[int, float], q: dict[int, float]) -> float:
    overlap = 0.0
    for outcome, pv in p.items():
        qv = q.get(outcome, 0.0)
        if pv > 0 and qv > 0:
            overlap += math.sqrt(pv * qv)
    return overlap**2


def random_sparse(rng: np.random.Generator, n_bits: int, support: int):
    support = min(support, 2 ** min(n_bits, 10))
    keys = set()
    while len(keys) < support:
        key = 0
        for _ in range((n_bits + 62) // 63):
            key = (key << 63) | int(rng.integers(0, 1 << 63))
        keys.add(key & ((1 << n_bits) - 1))
    weights = rng.random(len(keys)) + 1e-3
    weights /= weights.sum()
    return dict(zip(sorted(keys), weights.tolist()))


WIDTHS = st.sampled_from([1, 3, 8, 30, 62, 63, 100, 128])


class TestKernelsMatchDictReference:
    @given(st.integers(0, 2**32 - 1), WIDTHS, st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_marginal(self, seed, n_bits, support):
        rng = np.random.default_rng(seed)
        probs = random_sparse(rng, n_bits, support)
        dist = Distribution(n_bits, probs)
        keep = list(rng.permutation(n_bits)[: max(1, n_bits // 2)])
        keep = [int(i) for i in keep]
        got = dist.marginal(keep)
        expected = ref_marginal(probs, n_bits, keep)
        assert set(got.probs) == set(expected)
        for key, value in expected.items():
            assert got[key] == pytest.approx(value, abs=1e-12)

    @given(st.integers(0, 2**32 - 1), WIDTHS, st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_single_bit_marginals(self, seed, n_bits, support):
        rng = np.random.default_rng(seed)
        probs = random_sparse(rng, n_bits, support)
        dist = Distribution(n_bits, probs)
        assert np.allclose(
            dist.single_bit_marginals(),
            ref_single_bit_marginals(probs, n_bits),
            atol=1e-12,
        )

    @given(st.integers(0, 2**32 - 1), WIDTHS, st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_hellinger(self, seed, n_bits, support):
        rng = np.random.default_rng(seed)
        p = random_sparse(rng, n_bits, support)
        q = random_sparse(rng, n_bits, support)
        # overlap the supports so the intersection kernel is exercised
        q.update({k: v for k, v in list(p.items())[: support // 2]})
        total = sum(q.values())
        q = {k: v / total for k, v in q.items()}
        got = hellinger_fidelity(Distribution(n_bits, p), Distribution(n_bits, q))
        assert got == pytest.approx(ref_hellinger(p, q), abs=1e-12)
        assert hellinger_fidelity(
            Distribution(n_bits, p), Distribution(n_bits, p)
        ) == pytest.approx(1.0, abs=1e-12)

    @given(st.integers(0, 2**32 - 1), WIDTHS, st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_sample_statistics_and_exactness(self, seed, n_bits, support):
        """Sampled counts land on support keys and sum to the shot count."""
        rng = np.random.default_rng(seed)
        probs = random_sparse(rng, n_bits, support)
        dist = Distribution(n_bits, probs)
        counts = dist.sample(500, rng=np.random.default_rng(seed))
        assert sum(counts.values()) == 500
        assert set(counts) <= set(probs)

    @given(st.integers(0, 2**32 - 1), WIDTHS, st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_mapping_surface(self, seed, n_bits, support):
        """probs / __getitem__ / iteration / total agree with the dict."""
        rng = np.random.default_rng(seed)
        probs = random_sparse(rng, n_bits, support)
        dist = Distribution(n_bits, probs)
        assert len(dist) == len(probs)
        assert dist.probs == pytest.approx(probs)
        assert dist.total() == pytest.approx(sum(probs.values()))
        for key, value in probs.items():
            assert dist[key] == pytest.approx(value)
        missing = next(
            (k for k in range(2 ** min(n_bits, 40)) if k not in probs), None
        )
        if missing is not None:
            assert dist[missing] == 0.0
        assert dict(iter(dist)) == pytest.approx(probs)


class TestPackedKeyHelpers:
    @given(st.integers(0, 2**32 - 1), WIDTHS, st.integers(1, 50))
    @settings(max_examples=40, deadline=None)
    def test_chunked_roundtrip(self, seed, n_bits, rows):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(rows, n_bits)).astype(bool)
        ints = [int(k) for k in pack_bit_rows(bits)]
        chunked = pack_bit_rows_chunked(bits)
        assert chunked_keys_to_ints(chunked, n_bits) == ints
        assert np.array_equal(ints_to_chunked_keys(ints, n_bits), chunked)

    @given(st.integers(0, 2**32 - 1), WIDTHS, st.integers(1, 50))
    @settings(max_examples=40, deadline=None)
    def test_bit_cols_matches_bit_rows(self, seed, n_bits, rows):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(rows, n_bits)).astype(bool)
        cols = pack_bit_cols(np.ascontiguousarray(bits.T))
        if n_bits <= 62:
            assert np.array_equal(cols, pack_bit_rows(bits))
        else:
            assert np.array_equal(cols, pack_bit_rows_chunked(bits))
        a = Distribution.from_bit_rows(bits)
        b = Distribution.from_bit_cols(np.ascontiguousarray(bits.T))
        assert a.probs == b.probs


class TestSamplingHotLoop:
    def test_million_shots_is_fast(self):
        """10^6 shots from a 4-outcome distribution: one vectorised pass.

        The pre-refactor per-draw Python loop took seconds at this size;
        the ``np.unique`` kernel takes milliseconds.  The ceiling is
        generous (shared CI runners) but far below the loop's cost.
        """
        dist = Distribution(2, {0: 0.4, 1: 0.3, 2: 0.2, 3: 0.1})
        start = time.perf_counter()
        counts = dist.sample(1_000_000, rng=0)
        elapsed = time.perf_counter() - start
        assert sum(counts.values()) == 1_000_000
        assert elapsed < 2.0

    def test_mps_batched_sampling_is_fast(self):
        """MPS shot sampling is per-site vectorised, not per-shot."""
        from repro.circuits import Circuit, gates
        from repro.mps.simulator import MPSSimulator

        n = 24
        c = Circuit(n).append(gates.H, 0)
        for q in range(n - 1):
            c.append(gates.CX, q, q + 1)
        c.measure_all()
        sim = MPSSimulator()
        state = sim.run(c)
        state.sample_bits(10, rng=0)  # warm-up
        start = time.perf_counter()
        bits = state.sample_bits(20_000, rng=1)
        elapsed = time.perf_counter() - start
        assert bits.shape == (20_000, n)
        assert elapsed < 2.0
        dist = sim.sample(c, 4000, rng=2)
        assert set(dist.probs) == {0, 2**n - 1}


class TestProcessPoolDefaultDeterminism:
    """The process-pool default must reproduce serial/thread results exactly."""

    def _run(self, **execution):
        from repro.circuits import Circuit, gates
        from repro.core import ExecutionConfig, SamplingConfig, SuperSim

        c = Circuit(5).append(gates.H, 0)
        for q in range(4):
            c.append(gates.CX, q, q + 1)
        c.append(gates.T, 2)
        c.measure_all()
        sim = SuperSim(
            sampling=SamplingConfig(shots=300, seed=11),
            execution=ExecutionConfig(backend="mps", **execution),
        )
        return sim.run(c).distribution

    def test_auto_pool_matches_serial_and_threads(self):
        auto = self._run()  # pool=None: mps resolves to the process default
        serial = self._run(pool="thread", parallel=1)
        threads = self._run(pool="thread", parallel=3)
        processes = self._run(pool="process", parallel=2)
        assert auto.probs == serial.probs
        assert auto.probs == threads.probs
        assert auto.probs == processes.probs

    def test_python_bound_backends_resolve_to_process_pool(self):
        from repro.backends import get_backend

        for name in ("chform", "mps", "extended_stabilizer"):
            assert get_backend(name).capabilities.pool == "process"
        for name in ("stabilizer", "statevector"):
            assert get_backend(name).capabilities.pool == "thread"
