"""Property tests: packed engines match the legacy reference bit-for-bit.

The bit-packed word-parallel tableau must be indistinguishable from the
byte-per-bit :class:`~repro.stabilizer._reference.ReferenceTableau` — same
generator bits, same signs, same symbolic affine form, same measurement
outcomes for the same rng stream — and the einsum reconstruction must
reproduce the legacy assignment loop to machine precision on random cut
placements.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.distributions import (
    counts_from_bit_rows,
    pack_bit_rows,
)
from repro.circuits import (
    Circuit,
    gates,
    inject_t_gates,
    random_clifford_circuit,
)
from repro.core import SuperSim, cut_circuit
from repro.core.fragments import Cut
from repro.core.reconstruction import reconstruct_distribution
from repro.core.tomography import build_fragment_tensor
from repro.paulis import PauliString
from repro.stabilizer._reference import ReferenceTableau
from repro.stabilizer.tableau import (
    Tableau,
    _compile_ops,
    _unpack_bits,
    compile_clifford_layers,
)

# -- packed tableau vs reference ----------------------------------------------


def _random_pair(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 14))
    circuit = random_clifford_circuit(n, int(rng.integers(1, 20)), rng)
    packed = Tableau(n)
    packed.apply_circuit(circuit)
    reference = ReferenceTableau(n)
    reference.apply_circuit(circuit)
    return n, circuit, packed, reference, rng


class TestPackedTableauEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_state_bits_match(self, seed):
        n, _, packed, reference, _ = _random_pair(seed)
        assert np.array_equal(_unpack_bits(packed.x, n), reference.x)
        assert np.array_equal(_unpack_bits(packed.z, n), reference.z)
        assert np.array_equal(packed.sign, reference.sign)

    @pytest.mark.parametrize("seed", range(25))
    def test_stabilizers_match_with_phases(self, seed):
        _, _, packed, reference, _ = _random_pair(seed)
        for ours, theirs in zip(
            packed.stabilizers() + packed.destabilizers(),
            reference.stabilizers() + reference.destabilizers(),
        ):
            assert ours == theirs

    @pytest.mark.parametrize("seed", range(25))
    def test_affine_distribution_bit_for_bit(self, seed):
        n, _, packed, reference, _ = _random_pair(seed)
        ours = packed.measurement_distribution(tuple(range(n)))
        theirs = reference.measurement_distribution(tuple(range(n)))
        assert np.array_equal(ours.A, theirs.A)
        assert np.array_equal(ours.b, theirs.b)

    @pytest.mark.parametrize("seed", range(25))
    def test_measurements_match_same_rng(self, seed):
        n, _, packed, reference, _ = _random_pair(seed)
        ours_rng = np.random.default_rng(1000 + seed)
        theirs_rng = np.random.default_rng(1000 + seed)
        for q in range(n):
            assert packed.measure(q, ours_rng) == reference.measure(
                q, theirs_rng
            )

    @pytest.mark.parametrize("seed", range(15))
    def test_expectations_match(self, seed):
        n, _, packed, reference, rng = _random_pair(seed)
        for _ in range(12):
            label = "".join(rng.choice(list("IXYZ")) for _ in range(n))
            pauli = PauliString.from_label(label)
            assert packed.expectation(pauli) == reference.expectation(pauli)

    @pytest.mark.parametrize("seed", range(10))
    def test_single_gate_api_matches_layered(self, seed):
        """Per-gate calls and fused apply_circuit agree exactly."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 10))
        circuit = random_clifford_circuit(n, int(rng.integers(2, 12)), rng)
        layered = Tableau(n)
        layered.apply_circuit(circuit)
        stepped = Tableau(n)
        for op in circuit.ops:
            stepped.apply_operation(op.gate, op.qubits)
        assert np.array_equal(layered.x, stepped.x)
        assert np.array_equal(layered.z, stepped.z)
        assert np.array_equal(layered.sign, stepped.sign)

    def test_non_clifford_rejected(self):
        circuit = Circuit(1).append(gates.T, 0)
        with pytest.raises(ValueError):
            Tableau(1).apply_circuit(circuit)

    def test_wide_tableau_crosses_word_boundaries(self):
        """>64 qubits exercises multi-word rows."""
        n = 130
        circuit = Circuit(n).append(gates.H, 0)
        for q in range(n - 1):
            circuit.append(gates.CX, q, q + 1)
        packed = Tableau(n)
        packed.apply_circuit(circuit)
        reference = ReferenceTableau(n)
        reference.apply_circuit(circuit)
        assert np.array_equal(_unpack_bits(packed.x, n), reference.x)
        ours = packed.measurement_distribution(tuple(range(n)))
        theirs = reference.measurement_distribution(tuple(range(n)))
        assert np.array_equal(ours.A, theirs.A)
        assert np.array_equal(ours.b, theirs.b)


class TestLayerCompiler:
    @pytest.mark.parametrize("seed", range(10))
    def test_layers_partition_ops_and_stay_disjoint(self, seed):
        rng = np.random.default_rng(seed)
        circuit = random_clifford_circuit(8, 10, rng)
        layers = _compile_ops(circuit.ops)
        for name, qarr in layers:
            flat = qarr.reshape(-1)
            assert len(set(flat.tolist())) == flat.size, "layer qubits collide"

    def test_cache_invalidates_on_append(self):
        circuit = Circuit(2).append(gates.H, 0)
        first = compile_clifford_layers(circuit)
        assert len(first) == 1
        circuit.append(gates.CX, 0, 1)
        second = compile_clifford_layers(circuit)
        assert len(second) == 2

    def test_cache_reused_when_unchanged(self):
        circuit = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        assert compile_clifford_layers(circuit) is compile_clifford_layers(circuit)

    def test_cache_invalidates_on_inplace_replacement(self):
        """Same-length in-place op mutation must not reuse stale layers."""
        from repro.circuits.circuit import Operation

        circuit = Circuit(1).append(gates.H, 0)
        stale = compile_clifford_layers(circuit)
        circuit.ops[0] = Operation(gates.S, (0,))
        fresh = compile_clifford_layers(circuit)
        assert fresh is not stale
        assert fresh[0][0] == "S"
        tableau = Tableau(1)
        tableau.apply_circuit(circuit)
        assert tableau.stabilizers()[0] == PauliString.from_label("Z")


# -- einsum reconstruction vs legacy loop -------------------------------------


def _tensors_for(circuit, cuts=None):
    sim = SuperSim()
    cc = sim.cut(circuit, cuts)
    data = sim._evaluator().evaluate_all(cc.fragments)
    keep = list(circuit.measured_qubits)
    keep_set = set(keep)
    kept_locals = [
        [lq for oq, lq in f.circuit_outputs if oq in keep_set]
        for f in cc.fragments
    ]
    tensors = [
        build_fragment_tensor(d, kl) for d, kl in zip(data, kept_locals)
    ]
    return cc, tensors, kept_locals, keep


def _chain_workload(blocks, width, depth, seed):
    """A chain of Clifford blocks linked by one cut qubit each."""
    rng = np.random.default_rng(seed)
    total = blocks * (width - 1) + 1
    circuit = Circuit(total)
    cuts = []
    for b in range(blocks):
        lo = b * (width - 1)
        if b > 0:
            boundary_ops = sum(1 for op in circuit.ops if lo in op.qubits)
            if boundary_ops == 0:
                circuit.append(gates.H, lo)
                boundary_ops = 1
            cuts.append(Cut(lo, boundary_ops))
        sub = random_clifford_circuit(width, depth, rng)
        circuit.extend(
            sub.map_qubits({i: lo + i for i in range(width)}, total).ops
        )
    circuit.measure_all()
    return circuit, cuts


def _assert_reconstructions_match(cc, tensors, kept_locals, keep, prune):
    loop_dist, loop_stats = reconstruct_distribution(
        cc, tensors, kept_locals, keep, prune_zeros=prune, method="loop"
    )
    einsum_dist, einsum_stats = reconstruct_distribution(
        cc, tensors, kept_locals, keep, prune_zeros=prune, method="einsum"
    )
    auto_dist, _ = reconstruct_distribution(
        cc, tensors, kept_locals, keep, prune_zeros=prune, method="auto"
    )
    assert einsum_stats.terms_total == loop_stats.terms_total
    assert einsum_stats.terms_skipped == loop_stats.terms_skipped
    for dist in (einsum_dist, auto_dist):
        keys = set(dist.probs) | set(loop_dist.probs)
        for key in keys:
            assert abs(dist[key] - loop_dist[key]) < 1e-9


class TestEinsumMatchesLoop:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("prune", [True, False])
    def test_random_isolate_cuts(self, seed, prune):
        rng = np.random.default_rng(seed)
        circuit = inject_t_gates(
            random_clifford_circuit(int(rng.integers(4, 8)), 5, rng),
            int(rng.integers(1, 3)),
            rng,
        )
        cc, tensors, kept_locals, keep = _tensors_for(circuit)
        _assert_reconstructions_match(cc, tensors, kept_locals, keep, prune)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("prune", [True, False])
    def test_random_chain_cuts(self, seed, prune):
        rng = np.random.default_rng(100 + seed)
        circuit, cuts = _chain_workload(
            blocks=int(rng.integers(3, 5)),
            width=int(rng.integers(3, 5)),
            depth=5,
            seed=200 + seed,
        )
        cc, tensors, kept_locals, keep = _tensors_for(circuit, cuts)
        assert cc.num_cuts >= 2
        _assert_reconstructions_match(cc, tensors, kept_locals, keep, prune)

    def test_distribution_has_no_explicit_near_zeros(self):
        rng = np.random.default_rng(5)
        circuit = inject_t_gates(random_clifford_circuit(5, 5, rng), 1, rng)
        cc, tensors, kept_locals, keep = _tensors_for(circuit)
        dist, _ = reconstruct_distribution(cc, tensors, kept_locals, keep)
        assert all(abs(v) > 1e-12 for v in dist.probs.values())


# -- packed-bit helpers --------------------------------------------------------


class TestPackedBitHelpers:
    @given(
        st.integers(0, 2**32 - 1),
        st.integers(1, 40),
        st.integers(1, 80),
    )
    @settings(max_examples=40, deadline=None)
    def test_pack_bit_rows_matches_loop(self, seed, width, rows):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(rows, width)).astype(bool)
        keys = pack_bit_rows(bits)
        for row, key in zip(bits, keys):
            expected = 0
            for bit in row:
                expected = (expected << 1) | int(bit)
            assert int(key) == expected

    def test_pack_bit_rows_wide_uses_python_ints(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(5, 80)).astype(bool)
        keys = pack_bit_rows(bits)
        assert keys.dtype == object
        assert int(keys[0]) < 2**80

    def test_counts_from_bit_rows(self):
        bits = np.array([[1, 0], [1, 0], [0, 1]], dtype=bool)
        assert counts_from_bit_rows(bits) == {2: 2, 1: 1}


class TestSparseCompaction:
    def test_compaction_preserves_results(self, monkeypatch):
        """The sparse path's periodic buffer fold must not change output."""
        import repro.core.reconstruction as recon
        from repro.core.tomography import build_sparse_fragment_tensor
        from repro.core.reconstruction import reconstruct_sparse_distribution

        rng = np.random.default_rng(9)
        circuit = inject_t_gates(random_clifford_circuit(5, 4, rng), 1, rng)
        sim = SuperSim()
        cc = sim.cut(circuit)
        data = sim._evaluator().evaluate_all(cc.fragments)
        keep = list(circuit.measured_qubits)
        keep_set = set(keep)
        kept_locals = [
            [lq for oq, lq in f.circuit_outputs if oq in keep_set]
            for f in cc.fragments
        ]
        tensors = [
            build_sparse_fragment_tensor(d, kl)
            for d, kl in zip(data, kept_locals)
        ]
        baseline, _ = reconstruct_sparse_distribution(
            cc, tensors, kept_locals, keep
        )
        # a floor of 2 forces a fold after nearly every surviving term
        monkeypatch.setattr(recon, "_SPARSE_COMPACT_FLOOR", 2)
        compacted, _ = reconstruct_sparse_distribution(
            cc, tensors, kept_locals, keep
        )
        keys = set(baseline.probs) | set(compacted.probs)
        for key in keys:
            assert abs(baseline[key] - compacted[key]) < 1e-12
