"""Tests for text diagrams and OpenQASM export."""

import numpy as np
import pytest

from repro.circuits import Circuit, gates, random_near_clifford_circuit
from repro.circuits.diagram import text_diagram
from repro.circuits.qasm import to_qasm


class TestTextDiagram:
    def test_bell(self):
        c = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        art = text_diagram(c)
        lines = art.splitlines()
        assert lines[0].startswith("0: ")
        assert "H" in lines[0] and "@" in lines[0]
        assert "|" in lines[1]
        assert "X" in lines[2]

    def test_measure_markers(self):
        c = Circuit(2).append(gates.H, 0).measure([0])
        art = text_diagram(c)
        lines = art.splitlines()
        assert lines[0].rstrip().endswith("M")
        assert not lines[2].rstrip().endswith("M")

    def test_parameterised_label(self):
        c = Circuit(1).append(gates.ZPow(0.25), 0)
        assert "ZP(0.25)" in text_diagram(c)

    def test_swap_symbols(self):
        c = Circuit(2).append(gates.SWAP, 0, 1)
        art = text_diagram(c)
        assert art.count("x") >= 2

    def test_empty_circuit(self):
        art = text_diagram(Circuit(2))
        assert "0:" in art and "1:" in art

    def test_column_packing(self):
        # H(0) and H(1) are parallel: single column
        c = Circuit(2).append(gates.H, 0).append(gates.H, 1)
        lines = text_diagram(c).splitlines()
        assert len(lines[0]) == len(lines[2])

    def test_wide_circuit_renders(self):
        c = random_near_clifford_circuit(5, 6, 1, rng=0)
        art = text_diagram(c)
        assert len(art.splitlines()) == 2 * 5 - 1


class TestQasmExport:
    def test_header_and_registers(self):
        c = Circuit(3).append(gates.H, 0).measure([0, 2])
        qasm = to_qasm(c)
        assert qasm.startswith("OPENQASM 2.0;")
        assert "qreg q[3];" in qasm
        assert "creg c[2];" in qasm
        assert "measure q[0] -> c[0];" in qasm
        assert "measure q[2] -> c[1];" in qasm

    def test_basic_gates(self):
        c = Circuit(2)
        c.append(gates.H, 0).append(gates.S, 1).append(gates.CX, 0, 1)
        c.append(gates.T, 0).append(gates.SDG, 1)
        qasm = to_qasm(c)
        for expected in ("h q[0];", "s q[1];", "cx q[0],q[1];", "t q[0];",
                         "sdg q[1];"):
            assert expected in qasm

    def test_rotation_gates(self):
        c = Circuit(1).append(gates.ZPow(0.25), 0)
        qasm = to_qasm(c)
        assert "rz(" in qasm

    def test_zzpow_decomposition(self):
        c = Circuit(2).append(gates.ZZPow(0.5), 0, 1)
        qasm = to_qasm(c)
        assert qasm.count("cx q[0],q[1];") == 2
        assert "rz(" in qasm

    def test_sxdg_decomposition_is_exact(self):
        # h sdg h must reproduce the SXDG matrix exactly
        h, sdg = gates.H.matrix, gates.SDG.matrix
        assert np.allclose(h @ sdg @ h, gates.SXDG.matrix)

    def test_unknown_gate_rejected(self):
        weird = gates.Gate("WEIRD", np.eye(2, dtype=complex))
        c = Circuit(1).append(weird, 0)
        with pytest.raises(ValueError):
            to_qasm(c)

    def test_every_random_circuit_exports(self):
        for seed in range(5):
            c = random_near_clifford_circuit(4, 5, 1, rng=seed)
            qasm = to_qasm(c)
            assert qasm.count("\n") >= len(c)
