"""Tests for cut finding and circuit fragmentation."""

import numpy as np
import pytest

from repro.circuits import Circuit, gates, inject_t_gates, random_clifford_circuit
from repro.core import Cut, CutStrategy, cut_circuit, find_cuts


def three_fragment_circuit():
    """H(0) CX(0,1) T(1) CX(1,2) H(2) — T isolated mid-wire on qubit 1."""
    c = Circuit(3)
    c.append(gates.H, 0).append(gates.CX, 0, 1)
    c.append(gates.T, 1)
    c.append(gates.CX, 1, 2).append(gates.H, 2)
    return c


class TestCutValidation:
    def test_position_zero_rejected(self):
        with pytest.raises(ValueError):
            Cut(0, 0)

    def test_cut_after_last_op_rejected(self):
        c = Circuit(1).append(gates.H, 0)
        with pytest.raises(ValueError):
            cut_circuit(c, [Cut(0, 1)])

    def test_cut_ordering(self):
        assert Cut(0, 1) < Cut(0, 2) < Cut(1, 1)


class TestFindCuts:
    def test_clifford_circuit_needs_no_cuts(self):
        c = random_clifford_circuit(4, 5, rng=0)
        assert find_cuts(c) == []

    def test_mid_wire_t_needs_two_cuts(self):
        cuts = find_cuts(three_fragment_circuit())
        assert cuts == [Cut(1, 1), Cut(1, 2)]

    def test_leading_t_needs_one_cut(self):
        c = Circuit(2)
        c.append(gates.T, 0)
        c.append(gates.H, 0).append(gates.CX, 0, 1)
        cuts = find_cuts(c)
        assert cuts == [Cut(0, 1)]

    def test_trailing_t_needs_one_cut(self):
        c = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        c.append(gates.T, 0)
        cuts = find_cuts(c)
        assert cuts == [Cut(0, 2)]

    def test_lone_t_needs_no_cuts(self):
        c = Circuit(1).append(gates.T, 0)
        assert find_cuts(c) == []

    def test_adjacent_ts_share_fragment(self):
        c = Circuit(1).append(gates.H, 0).append(gates.T, 0)
        c.append(gates.T, 0).append(gates.H, 0)
        cuts = find_cuts(c)
        assert cuts == [Cut(0, 1), Cut(0, 3)]

    @pytest.mark.parametrize("seed", range(10))
    def test_cut_bound(self, seed):
        """Paper bound: cuts <= 2 x (number of non-Clifford gates)."""
        rng = np.random.default_rng(seed)
        n_t = int(rng.integers(1, 4))
        c = inject_t_gates(random_clifford_circuit(5, 5, rng), n_t, rng)
        assert len(find_cuts(c)) <= 2 * n_t

    def test_two_qubit_non_clifford(self):
        c = Circuit(2)
        c.append(gates.H, 0).append(gates.H, 1)
        c.append(gates.ZZPow(0.25), 0, 1)
        c.append(gates.H, 0).append(gates.H, 1)
        cuts = find_cuts(c)
        assert len(cuts) == 4  # two wires in, two wires out


class TestCutCircuit:
    def test_three_fragments(self):
        c = three_fragment_circuit()
        cc = cut_circuit(c, find_cuts(c))
        assert len(cc.fragments) == 3
        kinds = sorted((f.n_qubits, f.is_clifford) for f in cc.fragments)
        assert kinds == [(1, False), (2, True), (2, True)]

    def test_fragment_boundaries(self):
        c = three_fragment_circuit()
        cc = cut_circuit(c, find_cuts(c))
        t_fragment = next(f for f in cc.fragments if not f.is_clifford)
        assert len(t_fragment.quantum_inputs) == 1
        assert len(t_fragment.quantum_outputs) == 1
        assert t_fragment.circuit_inputs == []
        assert t_fragment.circuit_outputs == []
        assert t_fragment.num_variants == 12

    def test_upstream_fragment(self):
        c = three_fragment_circuit()
        cc = cut_circuit(c, find_cuts(c))
        upstream = cc.fragments[0]
        assert upstream.circuit_inputs != []
        assert len(upstream.quantum_outputs) == 1
        # qubit 0 ends inside the upstream fragment
        assert any(oq == 0 for oq, _ in upstream.circuit_outputs)

    def test_ops_preserved(self):
        c = three_fragment_circuit()
        cc = cut_circuit(c, find_cuts(c))
        total_ops = sum(len(f.circuit) for f in cc.fragments)
        assert total_ops == len(c)

    def test_no_cuts_single_fragment(self):
        c = random_clifford_circuit(3, 4, rng=1)
        cc = cut_circuit(c, [])
        assert len(cc.fragments) == 1
        assert cc.reconstruction_terms == 1

    def test_idle_qubit_becomes_own_fragment(self):
        c = Circuit(3).append(gates.H, 0).append(gates.CX, 0, 1)  # qubit 2 idle
        cc = cut_circuit(c, [])
        assert len(cc.fragments) == 2
        idle = [f for f in cc.fragments if len(f.circuit) == 0]
        assert len(idle) == 1
        assert idle[0].n_qubits == 1

    def test_fragment_of_output(self):
        c = three_fragment_circuit()
        cc = cut_circuit(c, find_cuts(c))
        fragment, local = cc.fragment_of_output(2)
        assert (2, local) in fragment.circuit_outputs

    def test_user_specified_cuts(self):
        c = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1).append(gates.H, 1)
        cc = cut_circuit(c, [Cut(1, 1)])
        assert len(cc.fragments) == 2
        assert cc.num_cuts == 1

    def test_incident_cuts(self):
        c = three_fragment_circuit()
        cc = cut_circuit(c, find_cuts(c))
        t_fragment = next(f for f in cc.fragments if not f.is_clifford)
        assert t_fragment.incident_cuts == [0, 1]


class TestGreedyMerge:
    def test_merge_reduces_cuts_on_small_circuits(self):
        c = three_fragment_circuit()
        isolate = find_cuts(c, CutStrategy.ISOLATE)
        merged = find_cuts(c, CutStrategy.GREEDY_MERGE)
        assert len(merged) <= len(isolate)

    def test_merged_cuts_still_valid(self):
        c = three_fragment_circuit()
        merged = find_cuts(c, CutStrategy.GREEDY_MERGE)
        cc = cut_circuit(c, merged)
        assert sum(len(f.circuit) for f in cc.fragments) == len(c)
