"""Tests for strong simulation and the extension backends (paper §V-C, §XI)."""

import numpy as np
import pytest

from repro.analysis import hellinger_fidelity
from repro.circuits import Circuit, gates, inject_t_gates, random_clifford_circuit
from repro.core import ExecutionConfig, SamplingConfig, SuperSim
from repro.mps import MPSSimulator
from repro.stabilizer import NoiseModel, PauliChannel
from repro.statevector import StatevectorSimulator

SV = StatevectorSimulator()
EXACT = SuperSim()


class TestStrongSimulation:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_statevector_pointwise(self, seed):
        rng = np.random.default_rng(seed)
        n = 4
        circuit = inject_t_gates(random_clifford_circuit(n, 4, rng), 1, rng)
        expected = SV.probabilities(circuit)
        for outcome in rng.integers(0, 2**n, size=6):
            bits = [(int(outcome) >> (n - 1 - i)) & 1 for i in range(n)]
            p = EXACT.probability_of(circuit, bits)
            assert np.isclose(p, expected[int(outcome)], atol=1e-9)

    def test_wide_ghz_point_query(self):
        """Point queries stay cheap at widths where 2^n is unthinkable."""
        n = 60
        circuit = Circuit(n).append(gates.H, 0)
        for q in range(n - 1):
            circuit.append(gates.CX, q, q + 1)
        circuit.append(gates.T, n // 2)
        assert np.isclose(EXACT.probability_of(circuit, [0] * n), 0.5, atol=1e-9)
        assert np.isclose(EXACT.probability_of(circuit, [1] * n), 0.5, atol=1e-9)
        assert EXACT.probability_of(circuit, [1] + [0] * (n - 1)) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_bitstring_length_validation(self):
        circuit = Circuit(2).append(gates.H, 0)
        with pytest.raises(ValueError):
            EXACT.probability_of(circuit, [0])

    def test_measured_subset_point_query(self):
        circuit = Circuit(3).append(gates.H, 0).append(gates.CX, 0, 1)
        circuit.append(gates.T, 1).append(gates.CX, 1, 2)
        circuit.measure([0, 2])
        expected = SV.probabilities(circuit)
        for key in range(4):
            bits = [(key >> 1) & 1, key & 1]
            assert np.isclose(
                EXACT.probability_of(circuit, bits), expected[key], atol=1e-9
            )


class TestPluggableBackends:
    def test_mps_as_nonclifford_backend(self):
        rng = np.random.default_rng(9)
        circuit = inject_t_gates(random_clifford_circuit(4, 4, rng), 1, rng)
        sim = SuperSim(execution=ExecutionConfig(nonclifford_backend=MPSSimulator()))
        expected = SV.probabilities(circuit)
        got = sim.run(circuit).distribution
        assert hellinger_fidelity(expected, got) > 1 - 1e-8

    def test_mps_backend_sampled(self):
        rng = np.random.default_rng(10)
        circuit = inject_t_gates(random_clifford_circuit(3, 3, rng), 1, rng)
        sim = SuperSim(
            sampling=SamplingConfig(shots=4000, seed=1),
            execution=ExecutionConfig(nonclifford_backend=MPSSimulator()),
        )
        expected = SV.probabilities(circuit)
        got = sim.run(circuit).distribution
        assert hellinger_fidelity(expected, got) > 0.95


class TestNoisySuperSim:
    def test_noise_requires_shots(self):
        with pytest.raises(ValueError):
            SamplingConfig(noise=NoiseModel())  # exact mode cannot be noisy

    def test_noiseless_noise_model_matches_exact(self):
        rng = np.random.default_rng(11)
        circuit = inject_t_gates(random_clifford_circuit(3, 3, rng), 1, rng)
        sim = SuperSim(sampling=SamplingConfig(shots=20000, noise=NoiseModel(), seed=2))
        expected = SV.probabilities(circuit)
        got = sim.run(circuit).distribution
        assert hellinger_fidelity(expected, got) > 0.99

    def test_noise_changes_output(self):
        # |0> -> H T H ... with heavy depolarizing noise flattens outcomes
        circuit = Circuit(2)
        circuit.append(gates.X, 0).append(gates.X, 1)
        circuit.append(gates.T, 0)
        noise = NoiseModel(before_measure=PauliChannel.bit_flip(0.4))
        noiseless = SuperSim(sampling=SamplingConfig(shots=30000, seed=3)).run(circuit).distribution
        noisy = SuperSim(
            sampling=SamplingConfig(shots=30000, noise=noise, seed=3)
        ).run(circuit).distribution
        assert noiseless[0b11] > 0.99
        # the T-gate fragment is noiseless, but the Clifford fragment's
        # measured qubits flip with probability 0.4
        assert noisy[0b11] < 0.75

    def test_noisy_rates_quantitative(self):
        """Readout flip on a 1-fragment Clifford circuit matches analytics."""
        circuit = Circuit(1).append(gates.T, 0)  # single non-Clifford fragment
        circuit2 = Circuit(2).append(gates.CX, 0, 1).append(gates.T, 1)
        noise = NoiseModel(before_measure=PauliChannel.bit_flip(0.25))
        dist = SuperSim(
            sampling=SamplingConfig(shots=60000, noise=noise, seed=4)
        ).run(circuit2).distribution
        # qubit 0 lives in the Clifford fragment: P(1) = 0.25
        marginals = dist.single_bit_marginals()
        assert np.isclose(marginals[0, 1], 0.25, atol=0.02)
