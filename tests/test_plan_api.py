"""The staged pipeline API: plan → estimate → override → execute, and sweeps.

Covers the ExecutionPlan contract (immutability, override semantics,
zero-simulation dry runs), the consistency of ``run()`` with
``plan().execute()``, and the batch layer (``sweep`` / ``run_many``):
shared-cache amortisation and bit-identical reproduction of independent
runs.
"""

import dataclasses
import json
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import hellinger_fidelity
from repro.backends import get_backend
from repro.backends.base import CircuitFeatures
from repro.circuits import Circuit, gates, inject_t_gates, random_clifford_circuit
from repro.core import (
    CostEstimate,
    ExecutionConfig,
    ExecutionPlan,
    SamplingConfig,
    SuperSim,
    SweepResult,
)
from repro.statevector import StatevectorSimulator

SV = StatevectorSimulator()


def near_clifford(seed=0, n=4):
    rng = np.random.default_rng(seed)
    return inject_t_gates(random_clifford_circuit(n, 4, rng), 1, rng)


def ghz_with_t(n=8):
    c = Circuit(n).append(gates.H, 0)
    for q in range(n - 1):
        c.append(gates.CX, q, q + 1)
    return inject_t_gates(c, 1, rng=7)


def rotated_chain(theta, n=5):
    c = Circuit(n).append(gates.H, 0)
    for q in range(n - 1):
        c.append(gates.CX, q, q + 1)
    c.append(gates.ZPow(theta), n // 2)
    c.append(gates.CX, 0, 1)
    return c


class TestPlan:
    def test_plan_captures_decisions(self):
        plan = SuperSim().plan(ghz_with_t())
        assert isinstance(plan, ExecutionPlan)
        assert plan.num_fragments == len(plan.cut_circuit.fragments)
        assert len(plan.backend_names) == plan.num_fragments
        assert len(plan.fragment_modes) == plan.num_fragments
        assert all(mode == "exact" for mode in plan.fragment_modes)
        # the Clifford bulk routes to the tableau, the T fragment cannot
        assert "stabilizer" in plan.backend_names
        for index in range(plan.num_fragments):
            assert plan.backend_for(index) == plan.backend_names[index]

    def test_plan_modes_follow_sampling_config(self):
        plan = SuperSim(sampling=SamplingConfig(shots=100, seed=0)).plan(
            ghz_with_t()
        )
        assert all(mode == "sampled" for mode in plan.fragment_modes)

    def test_execute_matches_run(self):
        c = near_clifford(3)
        from_plan = SuperSim().plan(c).execute()
        from_run = SuperSim().run(c)
        assert from_plan.distribution.probs == from_run.distribution.probs
        expected = SV.probabilities(c)
        assert hellinger_fidelity(expected, from_plan.distribution) > 1 - 1e-9

    def test_plan_keep_qubits(self):
        c = near_clifford(5)
        plan = SuperSim().plan(c, keep_qubits=[0, 1])
        assert plan.keep_qubits == (0, 1)
        result = plan.execute()
        assert result.distribution.n_bits == 2

    def test_run_is_plan_execute(self):
        # timing of the cut stage must survive the staged path
        result = SuperSim().run(near_clifford(9))
        assert result.timings["cut"] > 0


class TestEstimate:
    def test_estimate_runs_zero_simulations(self, monkeypatch):
        import repro.core.evaluator as evaluator_module

        def boom(job):
            raise AssertionError("estimate() must not simulate")

        plan = SuperSim().plan(ghz_with_t())
        monkeypatch.setattr(evaluator_module, "_execute_job", boom)
        estimate = plan.estimate()
        assert isinstance(estimate, CostEstimate)
        assert estimate.total_cost > 0
        assert estimate.num_variants == plan.num_variants
        assert estimate.reconstruction_terms == 4**plan.num_cuts

    def test_estimate_counts_fragments_and_backends(self):
        plan = SuperSim().plan(ghz_with_t())
        estimate = plan.estimate()
        assert len(estimate.fragments) == plan.num_fragments
        assert set(estimate.backends) == set(plan.backend_names)
        assert estimate.reconstruction_cost > 0
        assert sum(f.cost for f in estimate.fragments) == pytest.approx(
            estimate.total_cost - estimate.reconstruction_cost
        )

    def test_estimate_predicts_cache_hits(self):
        sim = SuperSim()
        c = ghz_with_t()
        before = sim.plan(c).estimate()
        assert before.cached_variants == 0
        sim.run(c)
        after = sim.plan(c).estimate()
        assert after.cached_variants == after.unique_variants > 0

    def test_estimate_cost_ranks_backends_consistently_with_bench(self):
        # BENCH_core.json measures the packed tableau sweeping hundreds of
        # qubits in milliseconds — far below any 2^n-shaped backend on the
        # same Clifford workload.  The models must reproduce that ranking
        # so `estimate()` orders backends the way wall clocks do.
        c = random_clifford_circuit(20, 40, rng=0).measure_all()
        features = CircuitFeatures.from_circuit(c)
        stab = get_backend("stabilizer").estimate_cost(features)
        sv = get_backend("statevector", max_qubits=26).estimate_cost(features)
        chform = get_backend("chform").estimate_cost(features)
        assert stab < sv
        assert stab < chform
        bench_path = Path(__file__).resolve().parents[1] / "BENCH_core.json"
        if bench_path.exists():
            bench = json.loads(bench_path.read_text())
            # measured ground truth: the packed tableau clears a 200-qubit
            # workload in well under a second — the 2^20-amplitude model
            # costs above would be minutes — so the ranking is real
            assert bench["tableau_200q"]["packed_seconds"] < 1.0

    def test_forcing_a_worse_backend_raises_predicted_cost(self):
        sim = SuperSim()
        plan = sim.plan(ghz_with_t(n=10))
        clifford_index = next(
            f.index
            for f in plan.cut_circuit.fragments
            if f.is_clifford and f.n_qubits > 2
        )
        worse = plan.with_backend(clifford_index, "statevector")
        assert worse.estimate().total_cost > plan.estimate().total_cost


class TestOverrides:
    def test_with_backend_returns_new_plan(self):
        plan = SuperSim().plan(near_clifford(3))
        target = next(
            f.index for f in plan.cut_circuit.fragments if not f.is_clifford
        )
        overridden = plan.with_backend(target, "mps")
        assert overridden is not plan
        assert overridden.backend_names[target] == "mps"
        assert plan.backend_names[target] != "mps"  # original untouched

    def test_with_backend_executes_through_override(self):
        c = near_clifford(3)
        plan = SuperSim().plan(c)
        target = next(
            f.index for f in plan.cut_circuit.fragments if not f.is_clifford
        )
        result = plan.with_backend(target, "mps").execute()
        assert "mps" in result.backend_usage
        expected = SV.probabilities(c)
        assert hellinger_fidelity(expected, result.distribution) > 1 - 1e-9

    def test_with_backend_rejects_incapable_backend(self):
        plan = SuperSim().plan(near_clifford(3))
        target = next(
            f.index for f in plan.cut_circuit.fragments if not f.is_clifford
        )
        with pytest.raises(ValueError, match="cannot evaluate"):
            plan.with_backend(target, "stabilizer")  # Clifford-only

    def test_with_backend_rejects_bad_index(self):
        plan = SuperSim().plan(near_clifford(3))
        with pytest.raises(IndexError):
            plan.with_backend(99, "mps")

    def test_with_cuts_replans(self):
        c = Circuit(2).append(gates.H, 0).append(gates.CX, 0, 1)
        c.append(gates.H, 1)
        from repro.core import Cut

        sim = SuperSim()
        plan = sim.plan(c)
        assert plan.num_cuts == 0
        recut = plan.with_cuts([Cut(1, 1)])
        assert recut.num_cuts == 1
        expected = SV.probabilities(c)
        assert hellinger_fidelity(expected, recut.execute().distribution) > 1 - 1e-9

    def test_plan_is_frozen(self):
        plan = SuperSim().plan(near_clifford(3))
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.backend_names = ("statevector",)
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.keep_qubits = (0,)

    def test_plan_reexecutes_identically(self):
        plan = SuperSim(sampling=SamplingConfig(shots=300, seed=5)).plan(
            near_clifford(7)
        )
        first = plan.execute()
        second = plan.execute()
        assert first.distribution.probs == second.distribution.probs


class TestSweep:
    # avoids multiples of 0.5, where ZPow degenerates to a Clifford gate
    # and an independently-planned run would place no cuts at all
    GRID = [round(0.04 + 0.09 * i, 3) for i in range(10)]

    def test_sweep_streams_lazily(self):
        sweep = SuperSim().sweep(rotated_chain, self.GRID)
        first = next(sweep)
        assert isinstance(first, SweepResult)
        assert first.index == 0 and first.params == self.GRID[0]

    def test_sweep_hits_cache_after_first_point(self):
        results = list(SuperSim().sweep(rotated_chain, self.GRID))
        assert len(results) == len(self.GRID)
        assert results[0].cache_hits == 0
        assert all(r.cache_hits > 0 for r in results[1:])

    def test_sweep_matches_independent_runs_exact(self):
        swept = list(SuperSim().sweep(rotated_chain, self.GRID))
        for point in swept:
            independent = SuperSim().run(rotated_chain(point.params))
            assert point.distribution.probs == independent.distribution.probs

    def test_sweep_matches_independent_runs_sampled(self):
        sampling = SamplingConfig(shots=400, seed=7)
        swept = list(SuperSim(sampling=sampling).sweep(rotated_chain, self.GRID))
        for point in swept:
            independent = SuperSim(sampling=sampling).run(
                rotated_chain(point.params)
            )
            assert point.distribution.probs == independent.distribution.probs

    def test_sweep_parallel_matches_serial(self):
        parallel = SuperSim(
            sampling=SamplingConfig(shots=200, seed=3),
            execution=ExecutionConfig(parallel=4),
        )
        serial = SuperSim(sampling=SamplingConfig(shots=200, seed=3))
        swept_parallel = list(parallel.sweep(rotated_chain, self.GRID[:4]))
        swept_serial = list(serial.sweep(rotated_chain, self.GRID[:4]))
        for a, b in zip(swept_parallel, swept_serial):
            assert a.distribution.probs == b.distribution.probs

    def test_sweep_dict_and_tuple_params(self):
        def factory(theta, n):
            return rotated_chain(theta, n=n)

        as_tuples = list(SuperSim().sweep(factory, [(0.3, 4), (0.4, 4)]))
        as_dicts = list(
            SuperSim().sweep(
                factory, [{"theta": 0.3, "n": 4}, {"theta": 0.4, "n": 4}]
            )
        )
        for a, b in zip(as_tuples, as_dicts):
            assert a.distribution.probs == b.distribution.probs

    def test_sweep_without_cut_reuse_is_unconditionally_equivalent(self):
        # with reuse_cuts=False every point plans independently, so even a
        # Clifford-degenerate grid point matches its independent run in
        # sampled mode
        sampling = SamplingConfig(shots=300, seed=11)
        grid = [0.3, 0.5, 0.7]  # 0.5 degenerates ZPow to Clifford S
        swept = list(
            SuperSim(sampling=sampling).sweep(
                rotated_chain, grid, reuse_cuts=False
            )
        )
        for point in swept:
            independent = SuperSim(sampling=sampling).run(
                rotated_chain(point.params)
            )
            assert point.distribution.probs == independent.distribution.probs

    def test_sweep_clifford_first_point_does_not_pin_empty_cuts(self):
        # theta=0.5 degenerates ZPow to a Clifford S gate: the first plan
        # finds zero cuts, which must NOT be adopted as the shared cut set
        # — later non-Clifford points still get their own cut search
        grid = [0.5, 0.3, 0.4]
        swept = list(SuperSim().sweep(rotated_chain, grid))
        assert swept[0].result.num_cuts == 0
        for point in swept[1:]:
            independent = SuperSim().run(rotated_chain(point.params))
            assert point.result.num_cuts == independent.num_cuts > 0
            assert point.distribution.probs == independent.distribution.probs

    def test_sweep_survives_structural_change(self):
        # a grid point whose circuit shape differs forces a fresh cut
        # search instead of failing on the reused cut set
        def factory(width):
            return ghz_with_t(n=width)

        results = list(SuperSim().sweep(factory, [4, 6, 8]))
        assert [r.result.distribution.n_bits for r in results] == [4, 6, 8]

    def test_run_many_shares_cache(self):
        circuits = [rotated_chain(t) for t in (0.3, 0.4, 0.45)]
        sim = SuperSim()
        results = list(sim.run_many(circuits))
        assert len(results) == 3
        assert results[0].cache_hits == 0
        assert all(r.cache_hits > 0 for r in results[1:])
        for circuit, result in zip(circuits, results):
            independent = SuperSim().run(circuit)
            assert result.distribution.probs == independent.distribution.probs


class TestTimingsAlwaysComplete:
    def test_all_stage_keys_on_fresh_and_cached_runs(self):
        sim = SuperSim()
        c = near_clifford(11)
        for result in (sim.run(c), sim.run(c)):  # second run is fully cached
            for stage in ("cut", "evaluate", "tomography", "reconstruct"):
                assert stage in result.timings

    def test_result_backfills_missing_stage_keys(self):
        from repro.core.supersim import SuperSimResult

        result = SuperSimResult(
            distribution=None, cut_circuit=None, stats=None, timings={"cut": 1.0}
        )
        assert result.timings["tomography"] == 0.0
        assert result.timings["evaluate"] == 0.0
        assert result.timings["reconstruct"] == 0.0
        assert result.timings["cut"] == 1.0
