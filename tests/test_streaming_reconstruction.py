"""Bounded-memory reconstruction: windowed, recursive, and streaming.

Property-tests pin the windowed and recursive dynamic-definition engines
against the dense reference on small cut circuits (exact marginal
equality, top-k containment, a total-variation bound from the covered
mass), and the streaming accumulator is checked for bit-for-bit
determinism under thread and process pools.
"""

import concurrent.futures

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    Distribution,
    StreamingAccumulator,
    hellinger_fidelity,
    total_variation_distance,
)
from repro.apps.qaoa import (
    expected_cut,
    expected_cut_from_marginals,
    expected_cut_from_samples,
    sk_model,
)
from repro.circuits import Circuit, gates, inject_t_gates, random_clifford_circuit
from repro.core import (
    ReconstructionConfig,
    ReconstructionMemoryError,
    SamplingConfig,
    SuperSim,
)
from repro.core.reconstruction import (
    estimate_reconstruction_cost,
    reconstruct_distribution,
    reconstruct_dynamic,
    reconstruct_marginal,
)
from repro.core.tomography import build_fragment_tensor

EXACT = SuperSim()


def _cut_workload(seed: int, n: int = 6, depth: int = 5):
    """A near-Clifford circuit plus its evaluated fragment artifacts."""
    rng = np.random.default_rng(seed)
    circuit = inject_t_gates(random_clifford_circuit(n, depth, rng), 1, rng)
    cc = EXACT.cut(circuit)
    data = EXACT._evaluator().evaluate_all(cc.fragments)
    keep = list(circuit.measured_qubits)
    keep_set = set(keep)
    kept_locals = [
        [lq for oq, lq in f.circuit_outputs if oq in keep_set]
        for f in cc.fragments
    ]
    tensors = [build_fragment_tensor(d, kl) for d, kl in zip(data, kept_locals)]
    return circuit, cc, tensors, kept_locals, keep


def _wide_chain(n: int = 61) -> Circuit:
    """GHZ chain with one non-Clifford rotation: 4-outcome support at any n."""
    circuit = Circuit(n).append(gates.H, 0)
    for q in range(n - 1):
        circuit.append(gates.CX, q, q + 1)
    circuit.append(gates.XPow(0.25), n // 2)
    return circuit


class TestWindowedMarginal:
    @given(
        seed=st.integers(0, 10_000),
        start=st.integers(0, 3),
        width=st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_dense_marginal_exactly(self, seed, start, width):
        circuit, cc, tensors, kept_locals, keep = _cut_workload(seed)
        window = keep[start : start + width]
        dense, _ = reconstruct_distribution(cc, tensors, kept_locals, keep)
        reference = dense.marginal(range(start, start + len(window)))
        windowed, stats = reconstruct_marginal(cc, tensors, kept_locals, window)
        assert stats.mode == "windowed"
        assert stats.peak_window_entries == 2 ** len(window)
        assert total_variation_distance(windowed, reference) < 1e-9

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_non_contiguous_and_reordered_windows(self, seed):
        circuit, cc, tensors, kept_locals, keep = _cut_workload(seed)
        window = [keep[4], keep[0], keep[2]]
        dense, _ = reconstruct_distribution(cc, tensors, kept_locals, keep)
        reference = dense.marginal([4, 0, 2])
        windowed, _ = reconstruct_marginal(cc, tensors, kept_locals, window)
        assert total_variation_distance(windowed, reference) < 1e-9

    def test_fixed_bits_give_joint_probabilities(self):
        circuit, cc, tensors, kept_locals, keep = _cut_workload(3)
        dense, _ = reconstruct_distribution(cc, tensors, kept_locals, keep)
        pair = dense.marginal([0, 1])
        conditioned, _ = reconstruct_marginal(
            cc, tensors, kept_locals, [keep[1]], fixed={keep[0]: 1}
        )
        # values are joint P(q0=1, q1=b), not conditional
        assert conditioned[0] == pytest.approx(pair[0b10], abs=1e-12)
        assert conditioned[1] == pytest.approx(pair[0b11], abs=1e-12)

    def test_window_validation(self):
        circuit, cc, tensors, kept_locals, keep = _cut_workload(0)
        with pytest.raises(ValueError):
            reconstruct_marginal(cc, tensors, kept_locals, [])
        with pytest.raises(ValueError):
            reconstruct_marginal(cc, tensors, kept_locals, [keep[0], keep[0]])
        with pytest.raises(ValueError):
            reconstruct_marginal(
                cc, tensors, kept_locals, [keep[0]], fixed={keep[0]: 1}
            )
        with pytest.raises(ValueError):
            reconstruct_marginal(cc, tensors, kept_locals, [10**6])


class TestRecursiveReconstruction:
    @given(
        seed=st.integers(0, 10_000),
        qubit_limit=st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_full_beam_matches_dense(self, seed, qubit_limit):
        """With top_k >= support the recursion loses nothing: exact match."""
        circuit, cc, tensors, kept_locals, keep = _cut_workload(seed)
        dense, _ = reconstruct_distribution(cc, tensors, kept_locals, keep)
        sim = SuperSim(
            reconstruction=ReconstructionConfig(
                mode="recursive", qubit_limit=qubit_limit, top_k=2 ** len(keep)
            )
        )
        result = sim.run(circuit)
        assert result.reconstruction_mode == "recursive"
        assert result.covered_probability == pytest.approx(1.0, abs=1e-9)
        assert result.stats.peak_window_entries <= 2**qubit_limit
        assert (
            total_variation_distance(result.raw_distribution, dense) < 1e-9
        )

    @given(seed=st.integers(0, 10_000), top_k=st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_topk_containment_and_tv_bound(self, seed, top_k):
        """Truncated beams return true heavy outcomes with true masses."""
        circuit, cc, tensors, kept_locals, keep = _cut_workload(seed)
        dense, _ = reconstruct_distribution(cc, tensors, kept_locals, keep)
        sim = SuperSim(
            reconstruction=ReconstructionConfig(
                mode="recursive", qubit_limit=2, top_k=top_k
            )
        )
        result = sim.run(circuit)
        got = dict(result.distribution)
        assert len(got) <= top_k
        for outcome, prob in got.items():
            # every reported outcome carries its exact dense probability
            assert prob == pytest.approx(dense[outcome], abs=1e-9)
        # calibrated top-k: TV to the dense answer is bounded by the
        # truncated mass (all error is missing outcomes, never wrong ones)
        missing = 1.0 - result.covered_probability
        tv = total_variation_distance(result.raw_distribution, dense)
        assert tv <= missing + 1e-9

    def test_beam_keeps_heaviest_bins(self):
        """top_k=1 must follow the single heaviest branch at every level."""
        circuit = _wide_chain(12)
        sim = SuperSim(
            reconstruction=ReconstructionConfig(
                mode="recursive", qubit_limit=4, top_k=1
            )
        )
        result = sim.run(circuit)
        assert len(result.distribution) == 1
        ((outcome, prob),) = list(result.distribution)
        dense = EXACT.run(circuit).distribution
        heaviest = max(dense, key=lambda kv: kv[1])
        assert prob == pytest.approx(heaviest[1], abs=1e-9)

    def test_recursion_depth_truncates_definition(self):
        circuit, cc, tensors, kept_locals, keep = _cut_workload(5)
        dense, _ = reconstruct_distribution(cc, tensors, kept_locals, keep)
        sim = SuperSim(
            reconstruction=ReconstructionConfig(
                mode="recursive", qubit_limit=2, top_k=64, recursion_depth=2
            )
        )
        result = sim.run(circuit)
        assert result.distribution.n_bits == 4
        reference = dense.marginal(range(4))
        assert total_variation_distance(result.raw_distribution, reference) < 1e-9

    def test_builder_validation(self):
        circuit, cc, tensors, kept_locals, keep = _cut_workload(0)
        builder = SuperSim()._dynamic_tensor_builder(
            cc, EXACT._evaluator().evaluate_all(cc.fragments)
        )
        with pytest.raises(ValueError):
            reconstruct_dynamic(cc, builder, keep, qubit_limit=0)
        with pytest.raises(ValueError):
            reconstruct_dynamic(cc, builder, keep, top_k=0)
        with pytest.raises(ValueError):
            reconstruct_dynamic(cc, builder, [])
        with pytest.raises(ValueError):
            reconstruct_dynamic(cc, builder, [keep[0], keep[0]])


class TestWideCircuits:
    def test_61_qubit_chain_recursive(self):
        """The acceptance case: dense-infeasible width, exact top-k answer."""
        circuit = _wide_chain(61)
        sim = SuperSim(
            reconstruction=ReconstructionConfig(qubit_limit=16, top_k=16)
        )
        result = sim.run(circuit)
        assert result.reconstruction_mode == "recursive"  # auto-selected
        assert result.stats.peak_window_entries <= 2**16
        assert result.distribution.n_bits == 61
        assert result.covered_probability == pytest.approx(1.0, abs=1e-6)
        reference = EXACT.sparse_probabilities(circuit)
        fidelity = hellinger_fidelity(result.distribution.normalized(), reference)
        assert fidelity > 1 - 1e-9

    def test_61_qubit_exact_marginals(self):
        circuit = _wide_chain(61)
        mid = circuit.n_qubits // 2
        single, pair = EXACT.marginal_probabilities(circuit, [[mid], [0, mid]])
        assert single[0] == pytest.approx(0.5, abs=1e-9)
        # GHZ + XPow(1/4) on mid: P(flip) = sin^2(pi/8)
        flip = np.sin(np.pi / 8) ** 2
        assert pair[0b01] == pytest.approx(flip * 0.5, abs=1e-9)
        assert pair[0b00] + pair[0b11] == pytest.approx(1 - flip, abs=1e-9)

    def test_sampled_recursive_mode(self):
        circuit = _wide_chain(31)
        sim = SuperSim(
            sampling=SamplingConfig(shots=4000, seed=7, snap_clifford=True),
            reconstruction=ReconstructionConfig(
                mode="recursive", qubit_limit=8, top_k=8
            ),
        )
        result = sim.run(circuit)
        reference = EXACT.sparse_probabilities(circuit)
        assert (
            hellinger_fidelity(result.distribution.normalized(), reference)
            > 0.95
        )


class TestMemoryGuard:
    def test_reconstruct_distribution_guard_names_escape_hatch(self):
        circuit, cc, tensors, kept_locals, keep = _cut_workload(0)
        with pytest.raises(ReconstructionMemoryError, match="qubit_limit"):
            reconstruct_distribution(
                cc, tensors, kept_locals, keep, max_dense_bits=3
            )

    def test_guard_is_a_memory_error(self):
        # callers guarding `except MemoryError` keep working
        assert issubclass(ReconstructionMemoryError, MemoryError)

    def test_execute_full_mode_raises_on_wide_output(self):
        circuit = _wide_chain(31)
        sim = SuperSim(reconstruction=ReconstructionConfig(mode="full"))
        with pytest.raises(ReconstructionMemoryError):
            sim.run(circuit)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReconstructionConfig(mode="nope")
        with pytest.raises(ValueError):
            ReconstructionConfig(qubit_limit=0)
        with pytest.raises(ValueError):
            ReconstructionConfig(qubit_limit=27)
        with pytest.raises(ValueError):
            ReconstructionConfig(top_k=0)
        with pytest.raises(ValueError):
            ReconstructionConfig(recursion_depth=0)
        with pytest.raises(TypeError):
            SuperSim(reconstruction="recursive")


class TestWindowedExecuteMode:
    def test_windowed_mode_returns_marginal(self):
        circuit, cc, tensors, kept_locals, keep = _cut_workload(2)
        dense = EXACT.run(circuit).distribution
        sim = SuperSim(
            reconstruction=ReconstructionConfig(
                mode="windowed", window=tuple(keep[:2])
            )
        )
        result = sim.run(circuit)
        assert result.reconstruction_mode == "windowed"
        assert result.distribution.n_bits == 2
        reference = dense.marginal(range(2))
        assert total_variation_distance(result.distribution, reference) < 1e-9

    def test_windowed_mode_rejects_unknown_window(self):
        circuit, *_ = _cut_workload(2)
        sim = SuperSim(
            reconstruction=ReconstructionConfig(mode="windowed", window=(99,))
        )
        with pytest.raises(ValueError):
            sim.run(circuit)


class TestCostEstimate:
    def test_estimate_charges_output_width(self):
        narrow = estimate_reconstruction_cost(2, 10)
        wide = estimate_reconstruction_cost(2, 60)
        # wide quotes the recursive engine, not an impossible 4^k * 2^60
        assert wide < 4.0**2 * 2.0**60 * 1e-12
        assert wide > narrow

    def test_mode_specific_costs(self):
        dense = estimate_reconstruction_cost(2, 20, mode="full")
        windowed = estimate_reconstruction_cost(2, 20, mode="windowed")
        recursive = estimate_reconstruction_cost(2, 20, mode="recursive")
        auto = estimate_reconstruction_cost(2, 20)
        assert windowed < recursive
        assert auto == pytest.approx(min(dense, recursive))

    def test_plan_estimate_includes_reconstruction_cost(self):
        circuit, *_ = _cut_workload(1)
        estimate = SuperSim().plan(circuit).estimate()
        assert estimate.reconstruction_cost > 0
        fragment_cost = sum(f.cost for f in estimate.fragments)
        assert estimate.total_cost == pytest.approx(
            fragment_cost + estimate.reconstruction_cost
        )

    def test_wide_plan_estimate_is_finite_and_small(self):
        circuit = _wide_chain(61)
        estimate = SuperSim().plan(circuit).estimate()
        # the old dense charge would be 4^k * 2^61 * scale ~ 10^10 seconds
        assert estimate.reconstruction_cost < 60.0


def _serial_accumulator(batches, marginals, top_k):
    accumulator = StreamingAccumulator(
        batches[0].shape[1], marginals=marginals, top_k=top_k
    )
    for batch in batches:
        accumulator.update(bits=batch)
    return accumulator


def _partial_accumulator(args):
    batch, marginals, top_k = args
    accumulator = StreamingAccumulator(
        batch.shape[1], marginals=marginals, top_k=top_k
    )
    accumulator.update(bits=batch)
    return accumulator


def _pooled_accumulator(batches, marginals, top_k, executor_cls, workers=4):
    """Per-batch partials built in a pool, merged in batch-index order."""
    with executor_cls(max_workers=workers) as pool:
        partials = list(
            pool.map(
                _partial_accumulator,
                [(batch, marginals, top_k) for batch in batches],
            )
        )
    merged = partials[0]
    for partial in partials[1:]:
        merged.merge(partial)
    return merged


def _assert_identical_state(a: StreamingAccumulator, b: StreamingAccumulator):
    assert a.total_weight == b.total_weight
    assert a.num_records == b.num_records
    assert set(a._marginals) == set(b._marginals)
    for key in a._marginals:
        assert np.array_equal(a._marginals[key], b._marginals[key])
    assert a._top == b._top


class TestStreamingAccumulator:
    MARGINALS = [(0, 3), (7,), (2, 5, 9)]

    def _batches(self, seed=0, rows=3000, width=10, n_batches=7):
        rng = np.random.default_rng(seed)
        bits = rng.random((rows, width)) < 0.35
        edges = np.linspace(0, rows, n_batches + 1).astype(int)
        return [bits[a:b] for a, b in zip(edges, edges[1:])], bits

    def test_marginals_match_dense_reference(self):
        batches, bits = self._batches()
        accumulator = _serial_accumulator(batches, self.MARGINALS, top_k=8)
        reference = Distribution.from_bit_rows(bits)
        for positions in self.MARGINALS:
            expected = reference.marginal(positions)
            got = accumulator.marginal(positions)
            assert total_variation_distance(got, expected) < 1e-12

    def test_top_k_matches_dense_reference(self):
        batches, bits = self._batches()
        accumulator = _serial_accumulator(batches, self.MARGINALS, top_k=5)
        reference = Distribution.from_bit_rows(bits)
        ranked = sorted(reference, key=lambda kv: (-kv[1], kv[0]))[:5]
        got = accumulator.top_distribution()
        for outcome, prob in ranked:
            assert got[outcome] == pytest.approx(prob, abs=1e-12)

    def test_thread_pool_determinism(self):
        batches, _ = self._batches()
        serial = _serial_accumulator(batches, self.MARGINALS, top_k=8)
        pooled = _pooled_accumulator(
            batches, self.MARGINALS, 8, concurrent.futures.ThreadPoolExecutor
        )
        _assert_identical_state(serial, pooled)

    def test_process_pool_determinism(self):
        batches, _ = self._batches()
        serial = _serial_accumulator(batches, self.MARGINALS, top_k=8)
        pooled = _pooled_accumulator(
            batches, self.MARGINALS, 8, concurrent.futures.ProcessPoolExecutor,
            workers=2,
        )
        _assert_identical_state(serial, pooled)

    @given(seed=st.integers(0, 10_000), n_batches=st.integers(1, 9))
    @settings(max_examples=15, deadline=None)
    def test_batch_split_invariance(self, seed, n_batches):
        """Any batching of the same stream gives bit-identical state."""
        batches, bits = self._batches(seed=seed, n_batches=n_batches)
        whole = _serial_accumulator([bits], self.MARGINALS, top_k=8)
        split = _serial_accumulator(
            [b for b in batches if len(b)], self.MARGINALS, top_k=8
        )
        _assert_identical_state(whole, split)

    def test_keys_path_matches_bits_path(self):
        batches, bits = self._batches(rows=500)
        from repro.analysis.distributions import pack_bit_rows

        by_bits = _serial_accumulator(batches, self.MARGINALS, top_k=4)
        by_keys = StreamingAccumulator(10, marginals=self.MARGINALS, top_k=4)
        for batch in batches:
            by_keys.update(keys=[int(k) for k in pack_bit_rows(batch)])
        _assert_identical_state(by_bits, by_keys)

    def test_wide_outcomes_beyond_62_bits(self):
        width = 80
        rng = np.random.default_rng(1)
        bits = rng.random((200, width)) < 0.5
        accumulator = StreamingAccumulator(
            width, marginals=[(0, 79)], top_k=4
        )
        accumulator.update(bits=bits)
        top = accumulator.top_distribution()
        assert top.n_bits == width
        assert accumulator.marginal((0, 79)).total() == pytest.approx(1.0)

    def test_bounded_capacity_evicts_and_bounds_error(self):
        rng = np.random.default_rng(2)
        # heavy hitter at key 0 plus a long uniform tail
        heavy = np.zeros((400, 8), dtype=bool)
        tail = rng.random((1600, 8)) < 0.5
        accumulator = StreamingAccumulator(8, top_k=2, capacity=16)
        for start in range(0, 2000, 100):
            block = np.vstack([heavy, tail])[start : start + 100]
            accumulator.update(bits=block)
        assert len(accumulator._top) <= 16
        assert accumulator.evicted_weight > 0
        top = accumulator.top_distribution()
        # the heavy hitter survives eviction; its reported mass undercounts
        # the true 400/2000 by at most the space-saving error bound
        error_bound = accumulator.evicted_weight / accumulator.total_weight
        assert top[0] >= 400 / 2000 - error_bound - 1e-12

    def test_validation(self):
        accumulator = StreamingAccumulator(8, marginals=[(0, 1)], top_k=2)
        with pytest.raises(ValueError):
            accumulator.update()
        with pytest.raises(ValueError):
            accumulator.update(bits=np.zeros((2, 4), dtype=bool))
        with pytest.raises(ValueError):
            accumulator.update(
                bits=np.zeros((2, 8), dtype=bool), weights=np.ones(3)
            )
        with pytest.raises(KeyError):
            accumulator.marginal((5, 6))
        with pytest.raises(ValueError):
            StreamingAccumulator(8, marginals=[list(range(30))])
        with pytest.raises(ValueError):
            StreamingAccumulator(8, marginals=[(0, 0)])
        other = StreamingAccumulator(9, marginals=[(0, 1)], top_k=2)
        with pytest.raises(ValueError):
            accumulator.merge(other)


class TestQaoaConsumers:
    def test_expected_cut_from_marginals_matches_dense(self):
        from repro.apps.qaoa import near_clifford_qaoa

        circuit = near_clifford_qaoa(6, rng=3)
        couplings = sk_model(6, 3)
        dense = EXACT.run(circuit).distribution
        assert expected_cut_from_marginals(
            couplings, circuit
        ) == pytest.approx(expected_cut(couplings, dense), abs=1e-9)

    def test_expected_cut_from_samples_matches_dense(self):
        rng = np.random.default_rng(4)
        bits = rng.random((4000, 8)) < 0.4
        couplings = sk_model(8, 4)
        streamed = expected_cut_from_samples(
            couplings, [bits[:1000], bits[1000:]], 8
        )
        dense = expected_cut(couplings, Distribution.from_bit_rows(bits))
        assert streamed == pytest.approx(dense, abs=1e-9)
