"""Tests for distribution containers and fidelity metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    Distribution,
    hellinger_fidelity,
    mean_marginal_fidelity,
    total_variation_distance,
)


class TestConstruction:
    def test_from_counts(self):
        d = Distribution.from_counts(2, {0b00: 3, 0b11: 1})
        assert np.isclose(d[0b00], 0.75)
        assert np.isclose(d[0b11], 0.25)

    def test_from_array(self):
        d = Distribution.from_array(np.array([0.5, 0, 0, 0.5]))
        assert d.n_bits == 2
        assert np.isclose(d[0b11], 0.5)

    def test_from_array_bad_length(self):
        with pytest.raises(ValueError):
            Distribution.from_array(np.array([0.5, 0.25, 0.25]))

    def test_point(self):
        d = Distribution.point(3, 0b101)
        assert d[0b101] == 1.0
        assert len(d) == 1

    def test_zero_entries_dropped(self):
        d = Distribution(1, {0: 1.0, 1: 0.0})
        assert len(d) == 1


class TestTransforms:
    def test_bits(self):
        d = Distribution.point(3, 0b110)
        assert d.bits(0b110) == (1, 1, 0)

    def test_marginal(self):
        d = Distribution(2, {0b00: 0.5, 0b11: 0.5})
        m = d.marginal([0])
        assert m.n_bits == 1
        assert np.isclose(m[0], 0.5)

    def test_marginal_reorders(self):
        d = Distribution.point(2, 0b10)
        m = d.marginal([1, 0])
        assert m[0b01] == 1.0

    def test_single_bit_marginals(self):
        d = Distribution(2, {0b00: 0.5, 0b11: 0.5})
        m = d.single_bit_marginals()
        assert np.allclose(m, [[0.5, 0.5], [0.5, 0.5]])

    def test_clipped_removes_negatives(self):
        d = Distribution(1, {0: 1.1, 1: -0.1})
        c = d.clipped()
        assert c[0] == 1.0
        assert c[1] == 0.0

    def test_normalized(self):
        d = Distribution(1, {0: 2.0, 1: 2.0})
        n = d.normalized()
        assert np.isclose(n[0], 0.5)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            Distribution(1, {}).normalized()

    def test_sample_counts(self):
        d = Distribution(1, {0: 0.5, 1: 0.5})
        counts = d.sample(1000, rng=0)
        assert sum(counts.values()) == 1000
        assert set(counts) <= {0, 1}

    def test_to_array_roundtrip(self):
        arr = np.array([0.25, 0.25, 0.5, 0.0])
        assert np.allclose(Distribution.from_array(arr).to_array(), arr)


class TestMetrics:
    def test_identical(self):
        d = Distribution(2, {0: 0.3, 3: 0.7})
        assert np.isclose(hellinger_fidelity(d, d), 1.0)
        assert total_variation_distance(d, d) == 0.0
        assert np.isclose(mean_marginal_fidelity(d, d), 1.0)

    def test_disjoint(self):
        a = Distribution.point(1, 0)
        b = Distribution.point(1, 1)
        assert hellinger_fidelity(a, b) == 0.0
        assert total_variation_distance(a, b) == 1.0

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            hellinger_fidelity(Distribution.point(1, 0), Distribution.point(2, 0))

    def test_known_value(self):
        a = Distribution(1, {0: 0.5, 1: 0.5})
        b = Distribution(1, {0: 1.0})
        assert np.isclose(hellinger_fidelity(a, b), 0.5)

    @given(st.lists(st.floats(min_value=0.01, max_value=1), min_size=4, max_size=4),
           st.lists(st.floats(min_value=0.01, max_value=1), min_size=4, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_fidelity_bounds(self, pa, qa):
        p = Distribution.from_array(np.array(pa) / sum(pa))
        q = Distribution.from_array(np.array(qa) / sum(qa))
        f = hellinger_fidelity(p, q)
        assert 0.0 <= f <= 1.0 + 1e-9
        assert np.isclose(hellinger_fidelity(p, q), hellinger_fidelity(q, p))


class TestInformationMetrics:
    def test_kl_zero_for_identical(self):
        from repro.analysis import kl_divergence

        d = Distribution(2, {0: 0.25, 1: 0.75})
        assert np.isclose(kl_divergence(d, d), 0.0)

    def test_kl_infinite_outside_support(self):
        from repro.analysis import kl_divergence

        p = Distribution(1, {0: 0.5, 1: 0.5})
        q = Distribution(1, {0: 1.0})
        assert kl_divergence(p, q) == float("inf")

    def test_kl_known_value(self):
        from repro.analysis import kl_divergence

        p = Distribution(1, {0: 0.75, 1: 0.25})
        q = Distribution(1, {0: 0.5, 1: 0.5})
        expected = 0.75 * np.log(1.5) + 0.25 * np.log(0.5)
        assert np.isclose(kl_divergence(p, q), expected)

    def test_cross_entropy_decomposition(self):
        # H(p, q) = H(p) + D(p || q)
        from repro.analysis import cross_entropy, kl_divergence

        p = Distribution(1, {0: 0.3, 1: 0.7})
        q = Distribution(1, {0: 0.6, 1: 0.4})
        entropy = -(0.3 * np.log(0.3) + 0.7 * np.log(0.7))
        assert np.isclose(cross_entropy(p, q), entropy + kl_divergence(p, q))

    def test_width_validation(self):
        from repro.analysis import cross_entropy, kl_divergence

        with pytest.raises(ValueError):
            kl_divergence(Distribution.point(1, 0), Distribution.point(2, 0))
        with pytest.raises(ValueError):
            cross_entropy(Distribution.point(1, 0), Distribution.point(2, 0))
