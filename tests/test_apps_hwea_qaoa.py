"""Tests for the HWEA and QAOA benchmark generators."""

import numpy as np
import pytest

from repro.analysis import hellinger_fidelity
from repro.apps.hwea import HWEA
from repro.apps.qaoa import (
    clifford_qaoa_circuit,
    expected_cut,
    maxcut_value,
    near_clifford_qaoa,
    qaoa_circuit,
    sk_model,
)
from repro.core import SuperSim
from repro.statevector import StatevectorSimulator

SV = StatevectorSimulator()


class TestHWEA:
    def test_parameter_count(self):
        assert HWEA(4, 5).num_parameters == 5 * 4 * 4

    def test_wrong_parameter_count(self):
        with pytest.raises(ValueError):
            HWEA(2, 1).circuit([0.5])

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            HWEA(0, 1)

    def test_clifford_instance_is_clifford(self):
        ansatz = HWEA(4, 3)
        circuit = ansatz.random_clifford_instance(rng=0)
        assert circuit.is_clifford
        assert circuit.n_qubits == 4

    def test_entangler_structure(self):
        ansatz = HWEA(3, 1)
        circuit = ansatz.clifford_circuit(np.zeros(12, dtype=int))
        # all-zero parameters leave only the CX ladder
        assert [op.gate.name for op in circuit] == ["CX", "CX"]

    def test_near_clifford_instance(self):
        circuit = HWEA(4, 2).near_clifford_instance(num_t=1, rng=1)
        assert circuit.num_non_clifford == 1

    def test_generic_parameters_not_clifford(self):
        ansatz = HWEA(2, 1)
        params = np.full(ansatz.num_parameters, 0.3)
        assert not ansatz.circuit(params).is_clifford

    def test_deterministic_generation(self):
        a = HWEA(3, 2).near_clifford_instance(1, rng=7)
        b = HWEA(3, 2).near_clifford_instance(1, rng=7)
        assert [op.qubits for op in a] == [op.qubits for op in b]

    def test_supersim_matches_statevector_on_hwea(self):
        circuit = HWEA(4, 2).near_clifford_instance(num_t=1, rng=3)
        expected = SV.probabilities(circuit)
        got = SuperSim().run(circuit).distribution
        assert hellinger_fidelity(expected, got) > 1 - 1e-9


class TestSKModel:
    def test_complete_graph(self):
        couplings = sk_model(5, rng=0)
        assert len(couplings) == 10
        assert set(couplings.values()) <= {-1, 1}

    def test_deterministic(self):
        assert sk_model(4, rng=1) == sk_model(4, rng=1)


class TestQAOACircuit:
    def test_clifford_at_clifford_points(self):
        couplings = sk_model(4, rng=0)
        circuit = clifford_qaoa_circuit(4, couplings, gamma_steps=1, beta_steps=2)
        assert circuit.is_clifford

    def test_non_clifford_at_generic_angles(self):
        couplings = sk_model(3, rng=0)
        circuit = qaoa_circuit(3, couplings, [0.3], [0.7])
        assert not circuit.is_clifford

    def test_all_to_all_connectivity(self):
        couplings = sk_model(4, rng=2)
        circuit = clifford_qaoa_circuit(4, couplings)
        pairs = {op.qubits for op in circuit if op.gate.num_qubits == 2}
        assert len(pairs) == 6

    def test_round_count_mismatch(self):
        with pytest.raises(ValueError):
            qaoa_circuit(2, sk_model(2, rng=0), [0.1, 0.2], [0.1])

    def test_near_clifford_qaoa(self):
        circuit = near_clifford_qaoa(5, rounds=1, num_t=1, rng=4)
        assert circuit.num_non_clifford == 1
        assert circuit.n_qubits == 5

    def test_supersim_matches_statevector_on_qaoa(self):
        circuit = near_clifford_qaoa(4, rounds=1, num_t=1, rng=5)
        expected = SV.probabilities(circuit)
        got = SuperSim().run(circuit).distribution
        assert hellinger_fidelity(expected, got) > 1 - 1e-9


class TestMaxCut:
    def test_cut_value(self):
        couplings = {(0, 1): 1, (1, 2): -1, (0, 2): 1}
        assert maxcut_value(couplings, [0, 1, 0]) == 1 + (-1)
        assert maxcut_value(couplings, [0, 0, 0]) == 0

    def test_expected_cut_from_distribution(self):
        couplings = {(0, 1): 1}
        from repro.analysis import Distribution

        dist = Distribution(2, {0b01: 0.5, 0b00: 0.5})
        assert np.isclose(expected_cut(couplings, dist), 0.5)

    def test_qaoa_beats_random_guessing(self):
        """A tuned Clifford QAOA point should beat the uniform-guess cut."""
        rng = np.random.default_rng(6)
        n = 5
        couplings = sk_model(n, rng)
        uniform_cut = sum(couplings.values()) / 2
        best = -np.inf
        for g in range(1, 4):
            for b in range(1, 4):
                circuit = clifford_qaoa_circuit(n, couplings, g, b)
                dist = SV.probabilities(circuit)
                best = max(best, expected_cut(couplings, dist))
        assert best >= uniform_cut - 1e-9
