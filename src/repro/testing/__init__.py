"""Testing utilities that ship with the library.

:mod:`repro.testing.chaos` — the deterministic fault-injection harness
(seeded exception / delay / worker-crash schedules, the
:class:`~repro.testing.chaos.ChaosBackend` persistent-failure wrapper,
and the :class:`~repro.testing.chaos.ChaosTransport` network-fault
wrapper) that the chaos test suite and the distributed-service
resilience/soak tests drive against the fault-tolerant execution engine.
"""

from repro.testing.chaos import (
    ChaosBackend,
    ChaosSchedule,
    ChaosTransport,
    ChaosTransportFactory,
    InjectedFault,
    SimulatedWorkerCrash,
)

__all__ = [
    "ChaosBackend",
    "ChaosSchedule",
    "ChaosTransport",
    "ChaosTransportFactory",
    "InjectedFault",
    "SimulatedWorkerCrash",
]
