"""Testing utilities that ship with the library.

:mod:`repro.testing.chaos` — the deterministic fault-injection harness
(seeded exception / delay / worker-crash schedules, and the
:class:`~repro.testing.chaos.ChaosBackend` persistent-failure wrapper)
that the chaos test suite and future distributed-service soak tests
drive against the fault-tolerant execution engine.
"""

from repro.testing.chaos import (
    ChaosBackend,
    ChaosSchedule,
    InjectedFault,
    SimulatedWorkerCrash,
)

__all__ = [
    "ChaosBackend",
    "ChaosSchedule",
    "InjectedFault",
    "SimulatedWorkerCrash",
]
