"""Deterministic chaos injection for the fault-tolerant execution engine.

Fault-tolerance code that is only exercised by real hardware failures is
untested code.  This module injects failures *deterministically* — from a
seeded schedule keyed by content fingerprints, never from wall-clock or
shared mutable state — so chaos runs are reproducible and the engine's
headline invariant (seeded results bit-for-bit identical at any
parallelism) can be asserted *under* injected faults, not just without
them.

Two injection points:

* **Scheduler-level** (transient faults): pass a :class:`ChaosSchedule`
  as ``ExecutionConfig(chaos=...)`` and the engine consults it before
  every job attempt.  The schedule maps ``(variant fingerprint,
  attempt)`` to an action — raise an :class:`InjectedFault`, sleep (to
  trip the soft-timeout path), or crash the worker (a *real*
  ``os._exit`` inside process-pool workers, so ``BrokenProcessPool``
  healing is exercised for real; a :class:`SimulatedWorkerCrash`
  exception under threads / serial execution).  Because injections stop
  after ``fail_attempts`` attempts, a retrying engine always converges —
  and, since per-variant seeds are fingerprint-derived, converges on
  bit-identical results.

* **Backend-level** (persistent faults): :class:`ChaosBackend` wraps a
  real backend and fails *every* call on scheduled circuits — attempt
  count never rescues it — which is what drives the
  ``failure_policy="degrade"`` fallback path (e.g. a dying ``mps``
  backend falling back to ``statevector``).

* **Transport-level** (network faults): :class:`ChaosTransport` wraps a
  service :class:`~repro.service.protocol.Transport` and injects drops,
  delays, partitions and truncated frames from the same seeded schedule,
  keyed by a deterministic per-operation sequence shared across
  reconnects by its :class:`ChaosTransportFactory`.  This is what drives
  the service-resilience paths — client/worker reconnect, idempotent
  resends, peer-level frame-error isolation — under reproducible faults.

Everything here is picklable, so schedules travel into process-pool
workers unchanged (the transport wrapper, which holds a live socket, is
the one deliberate exception).
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass

from repro.backends.base import Backend


class InjectedFault(RuntimeError):
    """A failure raised on purpose by a chaos schedule."""


class SimulatedWorkerCrash(RuntimeError):
    """A worker crash simulated where a real one is impossible.

    Raised by chaos injection under thread pools and serial execution
    (where ``os._exit`` would kill the interpreter, not a worker); the
    scheduler routes it through the same crash-handling path a
    ``BrokenProcessPool`` takes.
    """


@dataclass(frozen=True)
class ChaosSchedule:
    """A seeded, content-addressed fault schedule.

    Each variant fingerprint is hashed (with ``seed``) to one uniform
    draw in ``[0, 1)``; the draw lands in the (disjoint) ``crash`` /
    ``exception`` / ``delay`` rate bands or in the no-fault remainder.
    The same job therefore receives the same fault on every host, in
    every pool, on every run — and a job never flips between fault
    kinds.

    ``fail_attempts`` bounds injection per job: attempts at or beyond it
    run clean, so a retrying engine converges (set it no higher than the
    engine's retry budget).  ``only_backends`` restricts injection to
    jobs routed to the named backends.
    """

    seed: int = 0
    exception_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.25
    crash_rate: float = 0.0
    fail_attempts: int = 1
    only_backends: tuple[str, ...] | None = None

    def __post_init__(self):
        total = self.exception_rate + self.delay_rate + self.crash_rate
        for name in ("exception_rate", "delay_rate", "crash_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if total > 1.0 + 1e-12:
            raise ValueError(
                f"fault rates must sum to at most 1, got {total}"
            )
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be non-negative")
        if self.fail_attempts < 0:
            raise ValueError("fail_attempts must be non-negative")
        if self.only_backends is not None:
            object.__setattr__(
                self, "only_backends", tuple(str(b) for b in self.only_backends)
            )

    def draw(self, fingerprint: str) -> float:
        """The deterministic uniform draw in ``[0, 1)`` for a fingerprint."""
        digest = hashlib.sha256(
            f"{self.seed}|{fingerprint}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    def action_for(
        self,
        fingerprint: str,
        attempt: int = 0,
        backend: str | None = None,
    ) -> tuple | None:
        """The fault to inject for one job attempt, or ``None``.

        Returns ``("crash",)``, ``("raise", message)`` or
        ``("delay", seconds)``.
        """
        if attempt >= self.fail_attempts:
            return None
        if self.only_backends is not None and backend not in self.only_backends:
            return None
        u = self.draw(fingerprint)
        if u < self.crash_rate:
            return ("crash",)
        if u < self.crash_rate + self.exception_rate:
            return (
                "raise",
                f"injected fault (seed={self.seed}, attempt={attempt}, "
                f"fp={fingerprint[:12]})",
            )
        if u < self.crash_rate + self.exception_rate + self.delay_rate:
            return ("delay", self.delay_seconds)
        return None

    def faulted_fingerprints(self, fingerprints) -> list[str]:
        """The subset of ``fingerprints`` this schedule faults on attempt 0.

        Exact fault accounting for tests: with ``fail_attempts >= 1``,
        every returned fingerprint produces exactly one first-attempt
        fault event in a retrying run.
        """
        return [fp for fp in fingerprints if self.action_for(fp, 0) is not None]


def perform_action(action: tuple, in_process_worker: bool = False) -> None:
    """Carry out one scheduled fault (called inside the worker).

    ``in_process_worker`` selects a *real* crash (``os._exit``) for the
    crash action — only safe inside a process-pool worker, where dying
    breaks the pool instead of the interpreter.
    """
    kind = action[0]
    if kind == "delay":
        time.sleep(action[1])
        return
    if kind == "raise":
        raise InjectedFault(action[1])
    if kind == "crash":
        if in_process_worker:
            os._exit(17)  # a genuine worker death: the pool breaks
        raise SimulatedWorkerCrash(
            "simulated worker crash (thread/serial execution)"
        )
    raise ValueError(f"unknown chaos action {action!r}")


class ChaosBackend(Backend):
    """A backend wrapper that persistently fails on scheduled circuits.

    Every entry point (``probabilities``, ``sample``,
    ``affine_distribution``, ``sample_noisy_bits``) consults the schedule
    with the circuit's content fingerprint at attempt 0 — so, unlike the
    scheduler-level injection, retries never rescue a scheduled circuit.
    This models a backend that is *down*, not flaky, and is the driver
    for ``failure_policy="degrade"`` backend-fallback tests.

    The wrapper advertises the inner backend's name and capabilities, so
    routing, forcing and fault attribution all behave as if the real
    backend were failing.
    """

    def __init__(self, inner: Backend, schedule: ChaosSchedule):
        self.inner = inner
        self.schedule = schedule
        self.name = inner.name
        self.capabilities = inner.capabilities

    def _maybe_fail(self, circuit) -> None:
        from repro.backends.cache import circuit_fingerprint

        action = self.schedule.action_for(
            circuit_fingerprint(circuit), 0, backend=self.name
        )
        if action is not None:
            perform_action(action, in_process_worker=False)

    def probabilities(self, circuit):
        self._maybe_fail(circuit)
        return self.inner.probabilities(circuit)

    def sample(self, circuit, shots, rng=None):
        self._maybe_fail(circuit)
        return self.inner.sample(circuit, shots, rng)

    def affine_distribution(self, circuit):
        self._maybe_fail(circuit)
        return self.inner.affine_distribution(circuit)

    def sample_noisy_bits(self, circuit, noise, shots, rng=None):
        self._maybe_fail(circuit)
        return self.inner.sample_noisy_bits(circuit, noise, shots, rng)

    def can_handle(self, features, exact=True, noisy=False) -> bool:
        return self.inner.can_handle(features, exact=exact, noisy=noisy)

    def estimate_cost(self, features, mode: str = "exact") -> float:
        return self.inner.estimate_cost(features, mode)

    def cache_token(self) -> tuple:
        # never share cache entries with the unwrapped backend
        return ("chaos", self.schedule.seed, self.inner.cache_token())

    def __repr__(self) -> str:
        return f"<ChaosBackend around {self.inner!r}>"


class ChaosTransportFactory:
    """Deterministic network-fault injection for the execution service.

    The factory owns the state that must span *connections*: one
    monotone operation counter (every ``send``/``recv`` on any transport
    it built draws the next sequence number), a fault budget, and an
    optional clean prefix.  Because a service exchange is a
    deterministic sequence of operations, hashing ``label|direction|seq``
    through the :class:`ChaosSchedule` faults the same operations on
    every run — a seeded chaos test is exactly reproducible.

    * ``skip`` — the first ``skip`` operations run clean, which places a
      fault precisely ("drop the reply to the submit, not the
      handshake").
    * ``max_faults`` — once this many faults have fired, every later
      operation passes through, so retrying peers always converge
      (``None`` = unbounded).

    Use :meth:`wrap` around an existing transport, or call the factory
    with no arguments (``connect_factory`` supplies the inner transport)
    — the call form is what ``ServiceClient(transport_factory=...)``
    expects, and keeps injecting across the client's reconnects.
    """

    def __init__(
        self,
        schedule: ChaosSchedule,
        connect_factory=None,
        label: str = "chaos",
        max_faults: int | None = None,
        skip: int = 0,
    ):
        self.schedule = schedule
        self.connect_factory = connect_factory
        self.label = str(label)
        self.max_faults = max_faults
        self.skip = max(0, int(skip))
        self.faults_injected = 0
        self.operations = 0
        self._lock = threading.Lock()

    def decide(self, direction: str) -> tuple | None:
        """The fault (if any) for the next operation in ``direction``."""
        with self._lock:
            seq = self.operations
            self.operations += 1
            if seq < self.skip:
                return None
            if (
                self.max_faults is not None
                and self.faults_injected >= self.max_faults
            ):
                return None
            action = self.schedule.action_for(
                f"{self.label}|{direction}|{seq}", 0
            )
            if action is not None:
                self.faults_injected += 1
            return action

    def wrap(self, inner) -> "ChaosTransport":
        return ChaosTransport(inner, self)

    def __call__(self) -> "ChaosTransport":
        if self.connect_factory is None:
            raise ValueError(
                "ChaosTransportFactory needs connect_factory to build "
                "transports itself"
            )
        return self.wrap(self.connect_factory())


class ChaosTransport:
    """A :class:`~repro.service.protocol.Transport` wrapper injecting
    seeded network faults (build via :class:`ChaosTransportFactory`).

    The schedule's bands map onto network failure modes:

    * ``crash`` — partition/drop: the connection closes *before* the
      operation; a scheduled ``send`` never reaches the peer and a
      scheduled ``recv`` loses the in-flight reply (the dropped-reply
      idempotency scenario).
    * ``exception`` — a truncated frame: half the encoded frame hits the
      wire, then a hard close, so the peer observes a mid-frame
      disconnect (the coordinator's peer-error isolation path).
    * ``delay`` — the operation completes after ``delay_seconds``.
    """

    def __init__(self, inner, control: ChaosTransportFactory):
        self._inner = inner
        self._control = control

    def send(self, message: dict) -> None:
        action = self._control.decide("send")
        if action is None:
            return self._inner.send(message)
        kind = action[0]
        if kind == "delay":
            time.sleep(action[1])
            return self._inner.send(message)
        if kind == "raise":
            # truncated frame: leak half the bytes, then die mid-frame
            from repro.service.protocol import encode_frame

            frame = encode_frame(message)
            sock = getattr(self._inner, "_sock", None)
            if sock is not None:
                try:
                    sock.sendall(frame[: max(1, len(frame) // 2)])
                except OSError:
                    pass
            self._inner.close()
            raise ConnectionError("chaos: frame truncated mid-send")
        self._inner.close()
        raise ConnectionError("chaos: connection dropped before send")

    def recv(self) -> dict | None:
        action = self._control.decide("recv")
        if action is None:
            return self._inner.recv()
        if action[0] == "delay":
            time.sleep(action[1])
            return self._inner.recv()
        # raise & crash both mean the same thing on the read side: the
        # in-flight reply is lost and the connection is gone
        self._inner.close()
        raise ConnectionError("chaos: connection dropped before receive")

    def set_deadline(self, seconds: float | None) -> None:
        set_deadline = getattr(self._inner, "set_deadline", None)
        if set_deadline is not None:
            set_deadline(seconds)

    def close(self) -> None:
        self._inner.close()

    def __repr__(self) -> str:
        return (
            f"<ChaosTransport around {self._inner!r} "
            f"({self._control.faults_injected} faults injected)>"
        )
