"""Matrix product state simulator with SVD truncation and swap routing.

The state is a chain of tensors ``A_i`` of shape ``(D_left, 2, D_right)``.
Two-qubit gates act on adjacent sites by contraction + SVD; non-adjacent
gates are routed with SWAP chains (as the Qiskit MPS backend does), which is
what makes all-to-all circuits like SK-model QAOA expensive in this
representation.  Singular values below ``cutoff`` (relative to the largest)
are discarded; with the default tight cutoff the simulation is numerically
exact and the bond dimension — and hence runtime — grows exponentially with
entangling depth, reproducing the paper's Fig. 4 blow-up.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.distributions import Distribution
from repro.circuits.circuit import Circuit


class MPSState:
    """An n-qubit matrix product state, initialised to |0...0>."""

    def __init__(self, n: int, cutoff: float = 1e-12, max_bond: int | None = None):
        self.n = int(n)
        self.cutoff = float(cutoff)
        self.max_bond = max_bond
        self.tensors: list[np.ndarray] = []
        for _ in range(self.n):
            t = np.zeros((1, 2, 1), dtype=complex)
            t[0, 0, 0] = 1.0
            self.tensors.append(t)
        self.truncation_error = 0.0

    @property
    def bond_dimensions(self) -> list[int]:
        return [t.shape[2] for t in self.tensors[:-1]]

    @property
    def max_bond_dimension(self) -> int:
        return max(self.bond_dimensions, default=1)

    # -- gates ----------------------------------------------------------------

    def apply_1q(self, matrix: np.ndarray, q: int) -> None:
        self.tensors[q] = np.einsum("ab,ibj->iaj", matrix, self.tensors[q])

    def apply_2q_adjacent(self, matrix: np.ndarray, q: int) -> None:
        """Apply a 4x4 gate on sites (q, q+1)."""
        a, b = self.tensors[q], self.tensors[q + 1]
        dl, dr = a.shape[0], b.shape[2]
        theta = np.einsum("isj,jtk->istk", a, b)
        gate = matrix.reshape(2, 2, 2, 2)
        theta = np.einsum("stuv,iuvk->istk", gate, theta)
        theta = theta.reshape(dl * 2, 2 * dr)
        u, s, vh = np.linalg.svd(theta, full_matrices=False)
        keep = s > (self.cutoff * s[0] if len(s) and s[0] > 0 else 0.0)
        k = int(np.count_nonzero(keep))
        if self.max_bond is not None and k > self.max_bond:
            k = self.max_bond
        if k == 0:
            k = 1
        self.truncation_error += float(np.sum(s[k:] ** 2))
        u, s, vh = u[:, :k], s[:k], vh[:k]
        self.tensors[q] = u.reshape(dl, 2, k)
        self.tensors[q + 1] = (s[:, None] * vh).reshape(k, 2, dr)

    def apply_2q(self, matrix: np.ndarray, a: int, b: int) -> None:
        """Apply a two-qubit gate, routing with SWAPs if non-adjacent."""
        swap = np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]],
            dtype=complex,
        )
        if a > b:
            # reorder wires via permutation of the gate matrix
            matrix = matrix.reshape(2, 2, 2, 2).transpose(1, 0, 3, 2).reshape(4, 4)
            a, b = b, a
        # bring b next to a
        for site in range(b - 1, a, -1):
            self.apply_2q_adjacent(swap, site)
        self.apply_2q_adjacent(matrix, a)
        for site in range(a + 1, b):
            self.apply_2q_adjacent(swap, site)

    def apply_circuit(self, circuit: Circuit) -> None:
        if circuit.n_qubits != self.n:
            raise ValueError("circuit width does not match MPS")
        for op in circuit.ops:
            if op.gate.num_qubits == 1:
                self.apply_1q(op.gate.matrix, op.qubits[0])
            elif op.gate.num_qubits == 2:
                self.apply_2q(op.gate.matrix, *op.qubits)
            else:
                raise ValueError(f"{op.gate!r}: only 1- and 2-qubit gates supported")

    # -- readout ------------------------------------------------------------------

    def _right_environments(self) -> list[np.ndarray]:
        """``R[i]`` contracts sites i..n-1 of <psi|psi> over the bond at i."""
        right = [np.ones((1, 1), dtype=complex)]
        for t in reversed(self.tensors):
            r = right[-1]
            # sum_s A[:,s,:] R A[:,s,:]^dag
            m = np.einsum("isj,jk,lsk->il", t, r, t.conj())
            right.append(m)
        right.reverse()
        return right

    def norm_squared(self) -> float:
        return float(self._right_environments()[0].real[0, 0])

    def sample_bits(
        self, shots: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Exact conditional sampling, vectorised over shots; (shots, n) bits."""
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        right = self._right_environments()
        out = np.zeros((shots, self.n), dtype=bool)
        left = np.ones((shots, 1), dtype=complex)  # per-shot bond vector
        for i, tensor in enumerate(self.tensors):
            r = right[i + 1]
            v0 = left @ tensor[:, 0, :]   # (shots, D')
            v1 = left @ tensor[:, 1, :]
            p0 = np.einsum("si,ij,sj->s", v0, r, v0.conj()).real
            p1 = np.einsum("si,ij,sj->s", v1, r, v1.conj()).real
            total = p0 + p1
            bits = rng.random(shots) * total >= p0
            out[:, i] = bits
            chosen = np.where(bits[:, None], v1, v0)
            norms = np.sqrt(np.maximum(np.where(bits, p1, p0), 1e-300))
            left = chosen / norms[:, None]
        return out

    def amplitude(self, bits) -> complex:
        value = np.ones(1, dtype=complex)
        for i, bit in enumerate(bits):
            value = value @ self.tensors[i][:, int(bit), :]
        return complex(value[0])

    def to_statevector(self) -> np.ndarray:
        if self.n > 14:
            raise ValueError("to_statevector limited to 14 qubits")
        psi = np.ones((1, 1), dtype=complex)
        for t in self.tensors:
            psi = np.einsum("xi,isj->xsj", psi, t).reshape(-1, t.shape[2])
        return psi.reshape(-1)

    def single_bit_marginals(self) -> np.ndarray:
        """(n, 2) exact per-qubit outcome probabilities."""
        right = self._right_environments()
        out = np.zeros((self.n, 2))
        left = np.ones((1, 1), dtype=complex)
        for i, tensor in enumerate(self.tensors):
            for s in (0, 1):
                m = tensor[:, s, :]
                val = np.einsum("ab,ai,bj,ij->", left, m, m.conj(), right[i + 1])
                out[i, s] = float(val.real)
            left = np.einsum("ab,asi,bsj->ij", left, tensor, tensor.conj())
        norm = out.sum(axis=1, keepdims=True)
        return out / norm


class MPSSimulator:
    """MPS simulation facade mirroring the other backends."""

    name = "mps"

    def __init__(self, cutoff: float = 1e-12, max_bond: int | None = None):
        self.cutoff = cutoff
        self.max_bond = max_bond

    def run(self, circuit: Circuit) -> MPSState:
        state = MPSState(circuit.n_qubits, cutoff=self.cutoff, max_bond=self.max_bond)
        state.apply_circuit(circuit)
        return state

    def sample(
        self,
        circuit: Circuit,
        shots: int,
        rng: np.random.Generator | int | None = None,
    ) -> Distribution:
        state = self.run(circuit)
        measured = list(circuit.measured_qubits)
        return Distribution.from_bit_rows(state.sample_bits(shots, rng)[:, measured])

    def probabilities(self, circuit: Circuit) -> Distribution:
        """Exact distribution via dense conversion (small circuits only)."""
        state = self.run(circuit)
        probs = np.abs(state.to_statevector()) ** 2
        full = Distribution.from_array(probs)
        measured = circuit.measured_qubits
        if measured == tuple(range(circuit.n_qubits)):
            return full
        return full.marginal(list(measured))
