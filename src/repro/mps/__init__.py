"""Matrix-product-state simulation (the paper's Qiskit MPS baseline).

MPS simulators trade accuracy for scalability: cost is polynomial in the
bond dimension, which stays small for low-entanglement circuits (where MPS
beats everything — paper Fig. 7) and grows exponentially with entangling
depth (where MPS collapses — paper Fig. 4).
"""

from repro.mps.simulator import MPSSimulator, MPSState

__all__ = ["MPSSimulator", "MPSState"]
