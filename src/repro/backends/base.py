"""The backend protocol: capabilities, circuit features, and cost models.

A *backend* is anything that can turn a circuit into outcome statistics.
The paper's central trick (§V-B) is routing each fragment variant to the
cheapest simulator that can handle it; this module defines the vocabulary
that makes the routing decision explicit instead of a hard-coded branch:

* :class:`Capabilities` — a static record of what a backend can do
  (Clifford-only?, width limits, exactness, noise support, preferred
  worker pool);
* :class:`CircuitFeatures` — the per-circuit facts the router scores
  against (width, Clifford-ness, T-count, entangling depth);
* :class:`Backend` — the abstract interface every simulator adapter
  implements: ``probabilities`` / ``sample`` plus optional
  ``affine_distribution`` (exact Clifford output at any width) and
  ``sample_noisy_bits`` (Pauli-frame noisy sampling), and an
  ``estimate_cost`` model used to pick the cheapest capable backend.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.analysis.distributions import Distribution
from repro.circuits.circuit import Circuit


@dataclass(frozen=True)
class Capabilities:
    """Static description of a backend's admissible workloads.

    ``max_qubits`` limits every mode; ``max_qubits_exact`` further limits
    exact (``probabilities``) evaluation when enumeration is the only
    readout (``None`` means the same as ``max_qubits``).  ``pool`` is the
    executor the backend prefers for parallel variant evaluation:
    ``"thread"`` when its kernels release the GIL (numpy), ``"process"``
    when they are Python-bound.  ``kernel_tiers`` lists the
    :mod:`repro.kernels` tiers the backend's hot loops can exploit when
    available (``"numpy"`` always; backends built on the packed tableau
    or the shared data plane also benefit from ``"numba"``/``"cupy"``).
    """

    clifford_only: bool = False
    max_qubits: int | None = None
    max_qubits_exact: int | None = None
    exact: bool = True
    supports_noise: bool = False
    affine: bool = False
    diagonal_nonclifford_only: bool = False
    pool: str = "thread"
    kernel_tiers: tuple[str, ...] = ("numpy",)


@dataclass(frozen=True)
class CircuitFeatures:
    """The facts about a circuit that drive backend selection."""

    n_qubits: int
    num_ops: int
    is_clifford: bool
    t_count: int
    two_qubit_count: int
    entangling_depth: int
    has_nondiagonal_nonclifford: bool

    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "CircuitFeatures":
        t_count = 0
        two_qubit_count = 0
        nondiag = False
        level = [0] * circuit.n_qubits
        for op in circuit.ops:
            if op.gate.num_qubits >= 2:
                two_qubit_count += 1
                new = max(level[q] for q in op.qubits) + 1
                for q in op.qubits:
                    level[q] = new
            if not op.gate.is_clifford:
                t_count += 1
                matrix = op.gate.matrix
                if not np.allclose(
                    matrix, np.diag(np.diag(matrix)), atol=1e-12
                ):
                    if op.gate.num_qubits >= 2:
                        nondiag = True
        return cls(
            n_qubits=circuit.n_qubits,
            num_ops=len(circuit.ops),
            is_clifford=t_count == 0,
            t_count=t_count,
            two_qubit_count=two_qubit_count,
            entangling_depth=max(level, default=0),
            has_nondiagonal_nonclifford=nondiag,
        )


class Backend(abc.ABC):
    """Abstract simulator interface consumed by the router and the engine.

    Concrete adapters wrap the existing simulator classes (which remain the
    implementation core) — see :mod:`repro.backends.adapters`.
    """

    name: str = "backend"
    capabilities: Capabilities = Capabilities()

    @abc.abstractmethod
    def probabilities(self, circuit: Circuit) -> Distribution:
        """Exact outcome distribution over the circuit's measured qubits."""

    @abc.abstractmethod
    def sample(
        self,
        circuit: Circuit,
        shots: int,
        rng: np.random.Generator | int | None = None,
    ) -> Distribution:
        """Empirical outcome distribution from ``shots`` samples."""

    # -- optional capabilities ------------------------------------------------

    def affine_distribution(self, circuit: Circuit):
        """Exact Clifford output in affine-subspace form (any width).

        Only meaningful when ``capabilities.affine`` is true.
        """
        raise NotImplementedError(f"{self.name} has no affine readout")

    def sample_noisy_bits(
        self,
        circuit: Circuit,
        noise,
        shots: int,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        """(shots, m) outcome bits under a Pauli noise model.

        Only meaningful when ``capabilities.supports_noise`` is true.
        """
        raise NotImplementedError(f"{self.name} does not support noise")

    # -- routing ------------------------------------------------------------

    def can_handle(
        self, features: CircuitFeatures, exact: bool = True, noisy: bool = False
    ) -> bool:
        """Whether this backend admits the circuit at all."""
        caps = self.capabilities
        if caps.clifford_only and not features.is_clifford:
            return False
        if noisy and not caps.supports_noise:
            return False
        if exact and not caps.exact:
            return False
        if caps.diagonal_nonclifford_only and features.has_nondiagonal_nonclifford:
            return False
        limit = caps.max_qubits
        if exact and caps.max_qubits_exact is not None:
            limit = caps.max_qubits_exact
        if limit is not None and features.n_qubits > limit:
            return False
        return True

    def estimate_cost(
        self, features: CircuitFeatures, mode: str = "exact"
    ) -> float:
        """Rough per-variant cost estimate; lower wins at routing time.

        ``mode`` is ``"exact"`` (full ``probabilities`` readout) or
        ``"sampled"`` (``sample`` / noisy bit sampling) — backends whose
        exact readout enumerates the output space are much cheaper when
        only samples are needed, and modelling that keeps the router from
        over-charging them for sampled fragments.  Units are arbitrary but
        must be comparable across backends.  Implementations written
        before the mode split (single-argument signatures) are still
        accepted by the router.
        """
        return float(features.num_ops + 1) * float(features.n_qubits + 1)

    def cache_token(self) -> tuple:
        """A stable, hashable description of this backend's configuration.

        Used as the backend component of variant-cache keys: two instances
        with equal tokens must produce identical results for identical
        circuits.  The default captures the class identity plus every
        scalar attribute of the backend and of a wrapped ``simulator``
        (which covers knobs like ``max_bond`` or ``mixing_steps`` that
        change results).  Override when configuration lives elsewhere.
        """

        def scalars(obj) -> tuple:
            attrs = getattr(obj, "__dict__", None) or {}
            return tuple(
                sorted(
                    (k, v)
                    for k, v in attrs.items()
                    if isinstance(v, (int, float, str, bool, type(None)))
                )
            )

        token: tuple = (
            type(self).__module__,
            type(self).__qualname__,
            self.name,
            scalars(self),
        )
        simulator = getattr(self, "simulator", None)
        if simulator is not None:
            token += (type(simulator).__qualname__, scalars(simulator))
        return token

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
