"""Backend adapters wrapping the five simulator families.

Each adapter keeps the existing simulator class as its implementation core
and adds the three things the routing layer needs: a
:class:`~repro.backends.base.Capabilities` record, a cost model, and a
uniform ``probabilities`` / ``sample`` surface.  The cost models encode the
paper's scaling facts (tableau ~ n^2, statevector ~ 2^n, MPS ~ chi^3 with
chi growing with entangling depth, extended stabilizer ~ 2^T), which is
what makes "cheapest capable backend" reproduce — and generalise — the old
``if fragment.is_clifford`` dispatch.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.distributions import Distribution, enumerated_bit_rows
from repro.backends.base import Backend, Capabilities, CircuitFeatures
from repro.circuits.circuit import Circuit


class StabilizerBackend(Backend):
    """Tableau simulation: exact affine output at any width, Clifford only."""

    name = "stabilizer"
    capabilities = Capabilities(
        clifford_only=True,
        exact=True,
        supports_noise=True,
        affine=True,
        # packed tableau + shared data plane: every repro.kernels tier helps
        kernel_tiers=("numpy", "numba", "cupy"),
    )

    def __init__(self):
        from repro.stabilizer.simulator import StabilizerSimulator

        self.simulator = StabilizerSimulator()

    def probabilities(self, circuit: Circuit) -> Distribution:
        return self.simulator.probabilities(circuit)

    def sample(self, circuit, shots, rng=None) -> Distribution:
        return self.simulator.sample(circuit, shots, rng)

    def affine_distribution(self, circuit: Circuit):
        return self.simulator.affine_distribution(circuit)

    def sample_noisy_bits(self, circuit, noise, shots, rng=None) -> np.ndarray:
        from repro.stabilizer.frames import FrameSampler

        return FrameSampler(circuit, noise).sample_bits(shots, rng)

    def estimate_cost(
        self, features: CircuitFeatures, mode: str = "exact"
    ) -> float:
        # bit-packed word-parallel tableau: 64 rows advance per machine
        # word, so gates cost ~n/64 per column layer and the measurement
        # sweep ~n^2/64 — the cheapest Clifford engine by a wide margin,
        # exact at any width, and its affine readout makes sampling no
        # more expensive than exact evaluation (mode-independent)
        n = features.n_qubits
        return (
            float(n) * float(features.num_ops + 1) + float(n * n)
        ) / 64.0


class CHFormBackend(Backend):
    """Phase-exact stabilizer simulation through a single CH form.

    Functionally a (narrower) alternative to the tableau: it tracks the
    global phase, and readout enumerates amplitudes, so exact evaluation is
    limited to small registers.  Registered mainly as the routing target
    for phase-sensitive Clifford work and as the simplest template for
    plugging in a new backend.
    """

    name = "chform"
    capabilities = Capabilities(
        clifford_only=True,
        max_qubits=16,
        exact=True,
        pool="process",
    )

    def __init__(self, max_qubits: int = 16):
        self.max_qubits = max_qubits

    def _state(self, circuit: Circuit):
        from repro.chform.state import CHForm

        if circuit.n_qubits > self.max_qubits:
            raise ValueError(
                f"{circuit.n_qubits} qubits exceeds the CH-form enumeration "
                f"limit of {self.max_qubits}"
            )
        state = CHForm(circuit.n_qubits)
        state.apply_circuit(circuit)
        return state

    def probabilities(self, circuit: Circuit) -> Distribution:
        state = self._state(circuit)
        n = circuit.n_qubits
        probs = np.abs(state.amplitudes(enumerated_bit_rows(n))) ** 2
        full = Distribution.from_array(probs)
        measured = circuit.measured_qubits
        if measured == tuple(range(n)):
            return full
        return full.marginal(list(measured))

    def sample(self, circuit, shots, rng=None) -> Distribution:
        return self.probabilities(circuit).resample(shots, rng)

    def estimate_cost(
        self, features: CircuitFeatures, mode: str = "exact"
    ) -> float:
        n = features.n_qubits
        # gate cost ~ tableau (with a phase-tracking constant); readout
        # enumerates 2^n amplitudes at O(n^2) each — in both modes, since
        # sample() draws from the enumerated distribution
        return 8.0 * float(n * n) * float(features.num_ops + 1) + float(
            n * n
        ) * float(2 ** min(n, 26))


class StatevectorBackend(Backend):
    """Dense exact simulation; the ground-truth backend for narrow circuits."""

    name = "statevector"
    capabilities = Capabilities(max_qubits=26, exact=True)

    def __init__(self, max_qubits: int = 26):
        from repro.statevector.simulator import StatevectorSimulator

        self.simulator = StatevectorSimulator(max_qubits=max_qubits)
        self.capabilities = Capabilities(max_qubits=max_qubits, exact=True)

    def probabilities(self, circuit: Circuit) -> Distribution:
        return self.simulator.probabilities(circuit)

    def sample(self, circuit, shots, rng=None) -> Distribution:
        return self.simulator.sample(circuit, shots, rng)

    def estimate_cost(
        self, features: CircuitFeatures, mode: str = "exact"
    ) -> float:
        # 2^n amplitudes touched per gate; exact readout additionally
        # builds and marginalises the dense 2^n distribution, while
        # sampling just draws indices from the amplitude array — charging
        # the full exact constant to sampled fragments over-penalised the
        # statevector at routing time
        scale = 4.0 if mode == "exact" else 1.0
        return scale * float(2**features.n_qubits) * float(features.num_ops + 1)


class MPSBackend(Backend):
    """Matrix-product-state simulation: wide but shallow-entanglement work."""

    name = "mps"
    capabilities = Capabilities(
        max_qubits=None, max_qubits_exact=14, exact=True, pool="process"
    )

    def __init__(self, cutoff: float = 1e-12, max_bond: int | None = None):
        from repro.mps.simulator import MPSSimulator

        self.simulator = MPSSimulator(cutoff=cutoff, max_bond=max_bond)

    def probabilities(self, circuit: Circuit) -> Distribution:
        return self.simulator.probabilities(circuit)

    def sample(self, circuit, shots, rng=None) -> Distribution:
        return self.simulator.sample(circuit, shots, rng)

    def estimate_cost(
        self, features: CircuitFeatures, mode: str = "exact"
    ) -> float:
        # bond dimension grows with entangling depth, capped by width;
        # SVD per two-qubit gate carries a heavy constant.  The chain
        # dominates in both modes (exact readout is width-capped anyway).
        chi = 2.0 ** min(features.entangling_depth, features.n_qubits // 2, 10)
        return 64.0 * float(features.num_ops + 1) * float(features.n_qubits) * chi**3


class ExtendedStabilizerBackend(Backend):
    """Low-rank stabilizer (Clifford+T) simulation; cost doubles per T gate."""

    name = "extended_stabilizer"
    capabilities = Capabilities(
        max_qubits=63,
        max_qubits_exact=16,
        exact=True,
        diagonal_nonclifford_only=True,
        pool="process",
    )

    def __init__(
        self,
        max_qubits: int = 63,
        mixing_steps: int = 5000,
        max_terms: int = 4096,
    ):
        from repro.extended_stabilizer.simulator import ExtendedStabilizerSimulator

        self.simulator = ExtendedStabilizerSimulator(
            max_qubits=max_qubits,
            mixing_steps=mixing_steps,
            max_terms=max_terms,
        )

    def probabilities(self, circuit: Circuit) -> Distribution:
        return self.simulator.probabilities(circuit)

    def sample(self, circuit, shots, rng=None) -> Distribution:
        return self.simulator.sample(circuit, shots, rng)

    def can_handle(self, features, exact=True, noisy=False) -> bool:
        if not super().can_handle(features, exact=exact, noisy=noisy):
            return False
        # each non-Clifford diagonal doubles the stabilizer rank
        return 2**features.t_count <= self.simulator.max_terms

    def estimate_cost(
        self, features: CircuitFeatures, mode: str = "exact"
    ) -> float:
        # rank = 2^T terms, each tableau-like per gate; exact readout
        # costs rank * n^2 per amplitude over an effectively-2^n support,
        # while the sampled path mixes a norm-estimation chain whose
        # length is fixed (mixing_steps), not exponential in width
        n = features.n_qubits
        rank = float(2 ** min(features.t_count, 12))
        gate_cost = 16.0 * rank * float(n * n) * float(features.num_ops + 1)
        if mode == "exact":
            readout = rank * float(n * n) * float(2 ** min(n, 26))
        else:
            readout = rank * float(n * n) * float(self.simulator.mixing_steps)
        return gate_cost + readout


class LegacyBackendAdapter(Backend):
    """Wraps a bare duck-typed simulator (``probabilities`` + ``sample``).

    This is what keeps the original ``nonclifford_backend=`` extension
    point working: any object exposing the old informal protocol becomes a
    routable backend with permissive capabilities.
    """

    def __init__(self, simulator, name: str | None = None):
        self.simulator = simulator
        self.name = name or getattr(simulator, "name", type(simulator).__name__)
        self.capabilities = Capabilities(exact=True)

    def probabilities(self, circuit: Circuit) -> Distribution:
        return self.simulator.probabilities(circuit)

    def sample(self, circuit, shots, rng=None) -> Distribution:
        return self.simulator.sample(circuit, shots, rng)


def as_backend(obj, name: str | None = None) -> Backend:
    """Coerce an object to a :class:`Backend` (identity for real backends)."""
    if isinstance(obj, Backend):
        return obj
    return LegacyBackendAdapter(obj, name=name)
