"""Cost-model calibration: measure the router's constants on this machine.

The backend cost models (:meth:`Backend.estimate_cost`) fix each
simulator's *scaling shape* — tableau ``n^2/64``, statevector ``2^n``, MPS
``chi^3``, extended stabilizer ``2^T`` — in arbitrary comparable units.
Routing only needs the models' *ratios* to be right, and those ratios
depend on machine constants (numpy dispatch overhead, BLAS speed, cache
sizes) the analytic models cannot know.

:func:`measure_cost_scales` closes that gap: it times every backend on a
small canonical workload its capabilities admit, divides measured seconds
by the model's prediction, and returns per-backend multipliers.  Feed the
result straight to the router::

    from repro.backends import BackendRouter
    from repro.backends.calibration import measure_cost_scales

    router = BackendRouter(cost_scales=measure_cost_scales())
    SuperSim(execution=ExecutionConfig(router=router))

With calibrated scales, a backend's scored cost is (roughly) predicted
wall-clock seconds on this machine, so "cheapest capable backend" becomes
"fastest capable backend".

The constants are measured *per machine*, not per repo, so
``measure_cost_scales(cache_path=...)`` persists them keyed by a host
fingerprint (platform + CPU count): a later call on the same host reads
the file back instead of re-timing, and a call on a *different* host
(changed container image, new CPU count) auto-remeasures and overwrites.
``calibrated_router()`` wraps the whole recipe in one call.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.backends.base import Backend, CircuitFeatures
from repro.backends.registry import available_backends, get_backend
from repro.circuits.circuit import Circuit
from repro.circuits.gates import T
from repro.circuits.random import random_clifford_circuit


def calibration_circuit(backend: Backend, seed: int = 0) -> Circuit:
    """A small canonical workload admitted by ``backend``'s capabilities.

    Clifford-only backends get a pure random Clifford circuit; everyone
    else gets the same circuit with a diagonal non-Clifford (T) gate
    appended, which also satisfies ``diagonal_nonclifford_only`` backends.
    """
    caps = backend.capabilities
    width = 8
    for limit in (caps.max_qubits, caps.max_qubits_exact):
        if limit is not None:
            width = min(width, limit)
    width = max(2, width)
    circuit = random_clifford_circuit(width, 2 * width, rng=seed)
    if not caps.clifford_only:
        circuit.append(T, 0)
    circuit.measure_all()
    return circuit


def host_fingerprint() -> str:
    """A stable identifier of the machine the constants were measured on.

    Covers the facts that move the measured ratios: CPU architecture and
    platform, logical CPU count, the Python/numpy major environment, and
    the active :mod:`repro.kernels` tier (constants measured under numba
    must never be reused for a NumPy-only run, and vice versa — a tier
    change therefore auto-remeasures).  Deliberately excludes anything
    repo- or checkout-specific.
    """
    from repro.kernels import active_tier

    return "|".join(
        (
            platform.system(),
            platform.machine(),
            f"cpus={os.cpu_count()}",
            f"py={platform.python_version_tuple()[0]}.{platform.python_version_tuple()[1]}",
            f"numpy={np.__version__.split('.')[0]}.{np.__version__.split('.')[1]}",
            f"kernels={active_tier()}",
        )
    )


def default_cache_path() -> Path:
    """Where calibration constants persist by default.

    ``$REPRO_CALIBRATION_CACHE`` overrides; otherwise the XDG cache dir
    (``$XDG_CACHE_HOME`` or ``~/.cache``) under ``repro-supersim/``.
    """
    override = os.environ.get("REPRO_CALIBRATION_CACHE")
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or str(Path.home() / ".cache")
    return Path(base) / "repro-supersim" / "cost_scales.json"


def _same_host_scales(path: Path) -> dict[str, float]:
    """Every valid cached scale measured on *this* host (possibly empty).

    A file from a different host, an unreadable file, or entries that are
    not positive floats all contribute nothing.
    """
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        return {}  # no cache yet: the normal first-run case, stay quiet
    except (OSError, ValueError) as exc:
        # a cache that exists but cannot be read is worth a warning:
        # silently re-measuring makes startup mysteriously slow
        import warnings

        warnings.warn(
            f"ignoring unreadable calibration cache {path} "
            f"({type(exc).__name__}: {exc}); re-measuring cost scales",
            RuntimeWarning,
            stacklevel=3,
        )
        return {}
    if payload.get("host") != host_fingerprint():
        return {}  # measured on a different machine: remeasure
    scales = payload.get("scales")
    if not isinstance(scales, dict):
        return {}
    valid: dict[str, float] = {}
    for name, value in scales.items():
        try:
            value = float(value)
        except (TypeError, ValueError):
            continue
        if value > 0:
            valid[name] = value
    return valid


def _load_cached_scales(path: Path, wanted: list[str]) -> dict[str, float]:
    """Cached same-host scales restricted to ``wanted`` (possibly partial)."""
    scales = _same_host_scales(path)
    return {name: scales[name] for name in wanted if name in scales}


def _store_scales(path: Path, scales: dict[str, float]) -> None:
    payload = {"host": host_fingerprint(), "scales": scales}
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(tmp, path)
    except OSError:
        pass  # persistence is best-effort; the measurement still returns


def measure_cost_scales(
    backends: list[Backend | str] | None = None,
    repeats: int = 3,
    seed: int = 0,
    cache_path: str | Path | bool | None = None,
) -> dict[str, float]:
    """Measured seconds-per-model-unit for each backend.

    Each backend runs its calibration workload ``repeats`` times (best
    time wins, to shed warm-up noise) through the same entry point the
    evaluator uses — ``affine_distribution`` for affine-capable backends,
    ``probabilities`` otherwise.  The returned mapping plugs into
    ``BackendRouter(cost_scales=...)``.

    ``cache_path`` persists the constants keyed by :func:`host_fingerprint`:
    ``True`` uses :func:`default_cache_path`, a path uses that file, and
    ``None``/``False`` (default) measures fresh without touching disk.
    A cached entry from a different host is ignored wholesale; on the same
    host only the backends the cache does not yet cover are re-timed.
    """
    if backends is None:
        backends = available_backends()
    resolved = [
        get_backend(b) if isinstance(b, str) else b for b in backends
    ]
    path: Path | None = None
    if cache_path is True:
        path = default_cache_path()
    elif cache_path not in (None, False):
        path = Path(cache_path)
    cached: dict[str, float] = {}
    if path is not None:
        cached = _load_cached_scales(path, [b.name for b in resolved])
        if all(b.name in cached for b in resolved):
            return cached
        resolved = [b for b in resolved if b.name not in cached]
    scales: dict[str, float] = {}
    for backend in resolved:
        circuit = calibration_circuit(backend, seed=seed)
        features = CircuitFeatures.from_circuit(circuit)
        predicted = float(backend.estimate_cost(features))
        if predicted <= 0:  # defensive: degenerate model
            continue

        def run() -> None:
            if backend.capabilities.affine:
                backend.affine_distribution(circuit)
            else:
                backend.probabilities(circuit)

        run()  # warm caches (compiled layers, lazy imports)
        best = np.inf
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - start)
        scales[backend.name] = best / predicted
    if path is not None:
        # keep same-host constants for backends not re-measured now
        _store_scales(path, {**_same_host_scales(path), **scales})
    return {**cached, **scales}


def calibrated_router(
    cache_path: str | Path | bool | None = True, **router_kwargs
):
    """A :class:`~repro.backends.router.BackendRouter` with measured scales.

    Persists the measurement under the host fingerprint by default
    (``cache_path=True``), so repeated sessions on one machine pay the
    timing cost once and a moved checkout (different host) re-calibrates
    automatically::

        SuperSim(execution=ExecutionConfig(router=calibrated_router()))
    """
    from repro.backends.router import BackendRouter

    scales = measure_cost_scales(cache_path=cache_path)
    return BackendRouter(cost_scales=scales, **router_kwargs)
