"""Cost-model calibration: measure the router's constants on this machine.

The backend cost models (:meth:`Backend.estimate_cost`) fix each
simulator's *scaling shape* — tableau ``n^2/64``, statevector ``2^n``, MPS
``chi^3``, extended stabilizer ``2^T`` — in arbitrary comparable units.
Routing only needs the models' *ratios* to be right, and those ratios
depend on machine constants (numpy dispatch overhead, BLAS speed, cache
sizes) the analytic models cannot know.

:func:`measure_cost_scales` closes that gap: it times every backend on a
small canonical workload its capabilities admit, divides measured seconds
by the model's prediction, and returns per-backend multipliers.  Feed the
result straight to the router::

    from repro.backends import BackendRouter
    from repro.backends.calibration import measure_cost_scales

    router = BackendRouter(cost_scales=measure_cost_scales())
    SuperSim(router=router)

With calibrated scales, a backend's scored cost is (roughly) predicted
wall-clock seconds on this machine, so "cheapest capable backend" becomes
"fastest capable backend".
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends.base import Backend, CircuitFeatures
from repro.backends.registry import available_backends, get_backend
from repro.circuits.circuit import Circuit
from repro.circuits.gates import T
from repro.circuits.random import random_clifford_circuit


def calibration_circuit(backend: Backend, seed: int = 0) -> Circuit:
    """A small canonical workload admitted by ``backend``'s capabilities.

    Clifford-only backends get a pure random Clifford circuit; everyone
    else gets the same circuit with a diagonal non-Clifford (T) gate
    appended, which also satisfies ``diagonal_nonclifford_only`` backends.
    """
    caps = backend.capabilities
    width = 8
    for limit in (caps.max_qubits, caps.max_qubits_exact):
        if limit is not None:
            width = min(width, limit)
    width = max(2, width)
    circuit = random_clifford_circuit(width, 2 * width, rng=seed)
    if not caps.clifford_only:
        circuit.append(T, 0)
    circuit.measure_all()
    return circuit


def measure_cost_scales(
    backends: list[Backend | str] | None = None,
    repeats: int = 3,
    seed: int = 0,
) -> dict[str, float]:
    """Measured seconds-per-model-unit for each backend.

    Each backend runs its calibration workload ``repeats`` times (best
    time wins, to shed warm-up noise) through the same entry point the
    evaluator uses — ``affine_distribution`` for affine-capable backends,
    ``probabilities`` otherwise.  The returned mapping plugs into
    ``BackendRouter(cost_scales=...)``.
    """
    if backends is None:
        backends = available_backends()
    resolved = [
        get_backend(b) if isinstance(b, str) else b for b in backends
    ]
    scales: dict[str, float] = {}
    for backend in resolved:
        circuit = calibration_circuit(backend, seed=seed)
        features = CircuitFeatures.from_circuit(circuit)
        predicted = float(backend.estimate_cost(features))
        if predicted <= 0:  # defensive: degenerate model
            continue

        def run() -> None:
            if backend.capabilities.affine:
                backend.affine_distribution(circuit)
            else:
                backend.probabilities(circuit)

        run()  # warm caches (compiled layers, lazy imports)
        best = np.inf
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - start)
        scales[backend.name] = best / predicted
    return scales
