"""The backend registry: string names usable everywhere a backend is.

``register_backend("mps", factory)`` makes ``get_backend("mps")`` — and
therefore ``SuperSim(backend="mps")``, the benchmark CLIs and the apps —
construct that backend on demand.  Factories (not instances) are stored so
every caller gets a fresh, independently configurable backend; passing an
already-built :class:`~repro.backends.base.Backend` through
:func:`get_backend` is the identity, which is what keeps explicit instance
overrides working.
"""

from __future__ import annotations

from typing import Callable

from repro.backends.base import Backend

_REGISTRY: dict[str, Callable[..., Backend]] = {}


def register_backend(
    name: str, factory: Callable[..., Backend], replace: bool = False
) -> None:
    """Register a backend factory under ``name``.

    ``factory(**kwargs)`` must return a :class:`Backend`.  Re-registering an
    existing name raises unless ``replace=True`` (so tests can stub).
    """
    key = name.lower()
    if key in _REGISTRY and not replace:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[key] = factory


def unregister_backend(name: str) -> None:
    _REGISTRY.pop(name.lower(), None)


def get_backend(backend: str | Backend, **kwargs) -> Backend:
    """Resolve a backend name (or pass an instance through).

    ``kwargs`` are forwarded to the factory, e.g.
    ``get_backend("statevector", max_qubits=20)``.
    """
    if isinstance(backend, Backend):
        return backend
    key = str(backend).lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown backend {backend!r}; registered: {sorted(_REGISTRY)}"
        )
    instance = _REGISTRY[key](**kwargs)
    if not isinstance(instance, Backend):
        raise TypeError(
            f"factory for {backend!r} returned {type(instance).__name__}, "
            "not a Backend"
        )
    return instance


def available_backends() -> list[str]:
    """Sorted names of every registered backend."""
    return sorted(_REGISTRY)


def default_backend_pool(statevector_max_qubits: int = 20) -> list[Backend]:
    """One instance of each built-in backend — the default routing pool.

    The single source of truth for what ``SuperSim`` and
    ``FragmentEvaluator`` route over when no explicit router is given.
    """
    return [
        get_backend("stabilizer"),
        get_backend("chform"),
        get_backend("statevector", max_qubits=statevector_max_qubits),
        get_backend("mps"),
        get_backend("extended_stabilizer"),
    ]
