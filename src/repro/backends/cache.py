"""Content-addressed variant cache.

Parameter sweeps (VQE/QAOA coordinate descent) and QEC trial loops change a
few rotation angles between calls while most fragments — in particular all
the wide Clifford ones — stay byte-identical.  The :class:`VariantCache`
memoises variant results across ``run()`` calls keyed by a structural
*fingerprint* of the variant circuit plus the evaluation mode, so repeated
evaluation of an identical variant is a dictionary lookup instead of a
simulation.

The fingerprint is content-addressed (SHA-256 over gate names, exact
parameter bytes, wire indices and measured qubits), so two circuits built
independently but identical gate-for-gate share an entry.  Eviction is LRU
with a bounded entry count; hit/miss counters feed the engine's stats.
"""

from __future__ import annotations

import hashlib
import struct
import sys
import threading
from collections import OrderedDict

from repro.circuits.circuit import Circuit


def approx_result_bytes(value, _depth: int = 2) -> int:
    """A cheap size estimate of a cached variant result, in bytes.

    Sums the ``nbytes`` of numpy arrays reachable through at most two
    levels of instance attributes (``SampledVariantData.bits``,
    ``DenseVariantData.distribution.keys/probs``, the affine form's
    matrices, ...) plus ``sys.getsizeof`` of the objects themselves.
    Deliberately approximate — it feeds the cache's ``bytes`` gauge, not
    an allocator — and never serialises the value to measure it.
    """
    total = 0
    seen: set[int] = set()
    stack = [(value, _depth)]
    while stack:
        obj, depth = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        nbytes = getattr(obj, "nbytes", None)
        if isinstance(nbytes, int):
            total += nbytes
            continue
        try:
            total += sys.getsizeof(obj)
        except TypeError:  # pragma: no cover - exotic objects
            pass
        if depth <= 0:
            continue
        attrs = getattr(obj, "__dict__", None)
        if attrs:
            stack.extend((child, depth - 1) for child in attrs.values())
        elif isinstance(obj, (tuple, list)):
            stack.extend((child, depth - 1) for child in obj)
    return total


def circuit_fingerprint(circuit: Circuit) -> str:
    """A content hash of a circuit's exact structure.

    Covers width, every operation (gate name, float parameters at full
    precision, wires) and the measured-qubit set — everything that affects
    simulation output.
    """
    h = hashlib.sha256()
    h.update(struct.pack("<q", circuit.n_qubits))
    for op in circuit.ops:
        h.update(op.gate.name.encode())
        h.update(struct.pack(f"<{len(op.gate.params)}d", *op.gate.params))
        h.update(struct.pack(f"<{len(op.qubits)}q", *op.qubits))
        h.update(b";")
    h.update(b"|m")
    measured = circuit.measured_qubits
    h.update(struct.pack(f"<{len(measured)}q", *measured))
    return h.hexdigest()


def noise_fingerprint(noise) -> tuple | None:
    """A content-based key component for a noise model.

    Keys a :class:`repro.stabilizer.NoiseModel` by its channels' terms, so
    two models with equal noise share cache entries and — crucially — a
    *recycled object address* never aliases a different model (``id()`` is
    unsafe across garbage collection).  Models with a custom ``locations``
    override (or unknown shapes) fall back to a unique token, disabling
    cross-run caching for them rather than risking stale hits.
    """
    if noise is None:
        return None

    def channel_key(channel):
        if channel is None:
            return None
        return (channel.num_qubits, tuple(sorted(channel.terms)))

    def opaque_token() -> tuple:
        # unknown noise shape: a fresh token per call still allows in-run
        # deduplication but never matches a previous run's entries
        return ("opaque-noise", id(noise), object())

    if "locations" in (getattr(noise, "__dict__", None) or {}):
        # an instance-level `locations` override changes where channels
        # apply in ways the channel terms cannot capture: keep it opaque
        return opaque_token()
    try:
        return (
            "noise",
            channel_key(noise.after_gate_1q),
            channel_key(noise.after_gate_2q),
            channel_key(noise.before_measure),
        )
    except (AttributeError, TypeError):
        return opaque_token()


def resolve_cache(spec) -> "VariantCache | None":
    """Coerce a cache spec to an instance or ``None``.

    ``True`` builds a fresh private :class:`VariantCache`, ``False`` /
    ``None`` disables caching, and an existing instance passes through —
    the one rule shared by ``SuperSim`` and ``FragmentEvaluator``.
    """
    if spec is True:
        return VariantCache()
    if spec is False or spec is None:
        return None
    return spec


class VariantCache:
    """A bounded LRU mapping (fingerprint, mode) -> variant result.

    Thread-safe: the distributed service shares one instance across
    concurrent client requests executing on different threads, so every
    mutation happens under a lock.  ``stats()`` reports the LRU's
    lifetime ``evictions`` and an approximate ``bytes`` gauge of the
    live entries (see :func:`approx_result_bytes`) alongside the
    hit/miss/entry counters.
    """

    def __init__(self, maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._data: OrderedDict[tuple, object] = OrderedDict()
        self._sizes: dict[tuple, int] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._bytes = 0

    def get(self, key: tuple):
        """The cached value, or ``None`` (counts a hit/miss)."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: tuple, value) -> None:
        size = approx_result_bytes(value)
        with self._lock:
            if key in self._data:
                self._bytes -= self._sizes.get(key, 0)
            self._data[key] = value
            self._sizes[key] = size
            self._bytes += size
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                evicted, _ = self._data.popitem(last=False)
                self._bytes -= self._sizes.pop(evicted, 0)
                self.evictions += 1

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: tuple) -> bool:
        return key in self._data

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._sizes.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self._bytes = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._data),
                "evictions": self.evictions,
                "bytes": self._bytes,
            }

    def __repr__(self) -> str:
        return (
            f"VariantCache({len(self._data)}/{self.maxsize} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )
