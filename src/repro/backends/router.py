"""Capability-based backend routing (paper §V-B, generalised).

The old dispatch was a hard-coded branch: Clifford fragments to the
stabilizer simulator, everything else to the statevector simulator.  The
:class:`BackendRouter` replaces it with scoring: every registered backend
reports whether it *can* run a circuit (:meth:`Backend.can_handle`, from
its :class:`~repro.backends.base.Capabilities`) and what it would roughly
*cost* (:meth:`Backend.estimate_cost`, a function of the circuit's width,
T-count and entangling depth); the cheapest capable backend wins.

With the default cost models this reproduces the paper's dispatch exactly —
tableau for Clifford fragments, statevector for narrow non-Clifford ones —
while automatically picking up MPS for wide low-entanglement fragments and
the extended stabilizer for wide diagonal-non-Clifford fragments, the §XI
extension points.

Explicit overrides are preserved: a forced backend
(``ExecutionConfig(backend="mps")`` or the legacy ``nonclifford_backend=``)
short-circuits scoring for every circuit it can handle, and a plan-level
``ExecutionPlan.with_backend(i, name)`` pins a single fragment.
"""

from __future__ import annotations

from repro.backends.base import Backend, CircuitFeatures
from repro.backends.registry import available_backends, get_backend


class NoCapableBackendError(RuntimeError):
    """No registered backend can run the circuit under the given mode."""


class BackendRouter:
    """Scores candidate backends against circuit features.

    Parameters
    ----------
    backends:
        Candidate pool — backend instances or registered names.  Defaults
        to one instance of every registered backend.
    forced:
        Optional backend (instance or name) that wins for every circuit it
        can handle; incapable circuits fall back to scoring.
    cost_scales:
        Optional per-backend multipliers applied to ``estimate_cost`` at
        scoring time, mapping backend name to a positive float.  The
        analytic cost models fix each backend's *shape* (``n^2/64``,
        ``2^n``, ``chi^3``, ``2^T``); these constants pin down the
        relative units — measure them on this machine with
        :func:`repro.backends.calibration.measure_cost_scales`.
    """

    def __init__(
        self,
        backends: list[Backend | str] | None = None,
        forced: Backend | str | None = None,
        cost_scales: dict[str, float] | None = None,
        **factory_kwargs,
    ):
        if backends is None:
            backends = available_backends()
        self.backends: list[Backend] = [
            get_backend(b, **factory_kwargs) if isinstance(b, str) else b
            for b in backends
        ]
        self.forced: Backend | None = (
            get_backend(forced) if forced is not None else None
        )
        self.cost_scales: dict[str, float] = dict(cost_scales or {})
        for name, scale in self.cost_scales.items():
            if not (scale > 0):  # also rejects NaN
                raise ValueError(
                    f"cost scale for {name!r} must be positive, got {scale}"
                )
        import weakref

        from repro.kernels import active_tier

        # backends whose estimate_cost predates the mode argument, learned
        # once per instance so routing does not re-inspect signatures
        self._legacy_cost_model: "weakref.WeakSet" = weakref.WeakSet()
        # the repro.kernels tier the router was built under; cost_scales
        # calibrated under a different tier are stale (host_fingerprint
        # embeds the tier, so calibrated_router() re-measures on change)
        self.kernel_tier: str = active_tier()

    def scored_cost(
        self,
        backend: Backend,
        features: CircuitFeatures,
        mode: str = "exact",
    ) -> float:
        """A backend's model cost with this router's calibration applied.

        ``mode`` ("exact" or "sampled") reaches the backend's per-mode
        cost model; backends written against the old single-argument
        ``estimate_cost(features)`` signature are still accepted.
        """
        try:
            known_legacy = backend in self._legacy_cost_model
        except TypeError:
            known_legacy = False  # unhashable backend: re-detect below
        if known_legacy:
            cost = backend.estimate_cost(features)
        else:
            try:
                # keyword call: a second positional parameter that is not
                # a mode (e.g. estimate_cost(features, scale=1.0)) fails
                # loudly here instead of silently binding the mode string
                cost = backend.estimate_cost(features, mode=mode)
            except TypeError:
                # distinguish a legacy one-argument signature from a
                # genuine TypeError raised *inside* a two-argument
                # implementation; remember the verdict per instance
                import inspect

                try:
                    parameters = inspect.signature(
                        backend.estimate_cost
                    ).parameters
                except (TypeError, ValueError):
                    raise
                # the call above passes mode by keyword, so only a
                # signature that can actually bind `mode` (named param or
                # **kwargs) makes the TypeError a genuine internal error;
                # anything else — one-arg legacy, or extra non-mode
                # defaulted params — falls back to the one-argument call
                accepts_mode = "mode" in parameters or any(
                    p.kind is p.VAR_KEYWORD for p in parameters.values()
                )
                if accepts_mode:
                    raise
                try:
                    self._legacy_cost_model.add(backend)
                except TypeError:
                    pass  # unhashable/unweakrefable: just re-detect later
                cost = backend.estimate_cost(features)
        return cost * self.cost_scales.get(backend.name, 1.0)

    def ranked(
        self,
        features: CircuitFeatures,
        exact: bool = True,
        noisy: bool = False,
    ) -> list[Backend]:
        """Every capable backend, cheapest first.

        This is the fallback ordering ``failure_policy="degrade"`` walks
        when a backend fails mid-run: the next entry is the cheapest
        *remaining* backend whose capabilities admit the fragment.
        """
        mode = "exact" if exact else "sampled"
        candidates = [
            b
            for b in self.backends
            if b.can_handle(features, exact=exact, noisy=noisy)
        ]
        return sorted(
            candidates, key=lambda b: self.scored_cost(b, features, mode)
        )

    def select(
        self,
        features: CircuitFeatures,
        exact: bool = True,
        noisy: bool = False,
    ) -> Backend:
        """The cheapest backend capable of the circuit (forced one first)."""
        if self.forced is not None and self.forced.can_handle(
            features, exact=exact, noisy=noisy
        ):
            return self.forced
        candidates = [
            b
            for b in self.backends
            if b.can_handle(features, exact=exact, noisy=noisy)
        ]
        if self.forced is not None and not candidates:
            # an incapable pool but a forced backend: surface the forced
            # backend's own failure rather than a routing error
            return self.forced
        if not candidates:
            raise NoCapableBackendError(
                f"no backend can evaluate this circuit "
                f"(features={features}, exact={exact}, noisy={noisy}); "
                f"pool={[b.name for b in self.backends]}"
            )
        mode = "exact" if exact else "sampled"
        return min(candidates, key=lambda b: self.scored_cost(b, features, mode))
