"""Pluggable simulation backends: protocol, registry, routing, caching.

This package turns the framework's simulators into a first-class subsystem
(paper §V-B dispatch + the §XI extension points):

* :mod:`repro.backends.base` — the :class:`Backend` protocol, its
  :class:`Capabilities` record and the :class:`CircuitFeatures` the router
  scores against;
* :mod:`repro.backends.registry` — string-named backend factories
  (``get_backend("mps")``), so backends are selectable from ``SuperSim``,
  the apps and the benchmark CLIs without imports;
* :mod:`repro.backends.adapters` — adapters for the five simulator
  families (stabilizer tableau, CH form, statevector, MPS, extended
  stabilizer), each with a capability record and cost model;
* :mod:`repro.backends.router` — :class:`BackendRouter`, which picks the
  cheapest capable backend per fragment;
* :mod:`repro.backends.cache` — the content-addressed
  :class:`VariantCache` that deduplicates variant simulations across
  fragments and across ``run()`` calls.

Plugging in a new backend::

    from repro.backends import Backend, Capabilities, register_backend

    class MyBackend(Backend):
        name = "mine"
        capabilities = Capabilities(max_qubits=30)
        def probabilities(self, circuit): ...
        def sample(self, circuit, shots, rng=None): ...

    register_backend("mine", MyBackend)
    SuperSim(execution=ExecutionConfig(backend="mine"))
    # ... or let the router score it, or pin one fragment after planning:
    # SuperSim().plan(circuit).with_backend(0, "mine").execute()
"""

from repro.backends.adapters import (
    CHFormBackend,
    ExtendedStabilizerBackend,
    LegacyBackendAdapter,
    MPSBackend,
    StabilizerBackend,
    StatevectorBackend,
    as_backend,
)
from repro.backends.base import Backend, Capabilities, CircuitFeatures
from repro.backends.calibration import (
    calibrated_router,
    calibration_circuit,
    default_cache_path,
    host_fingerprint,
    measure_cost_scales,
)
from repro.backends.cache import (
    VariantCache,
    approx_result_bytes,
    circuit_fingerprint,
    noise_fingerprint,
)
from repro.backends.registry import (
    available_backends,
    default_backend_pool,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.backends.router import BackendRouter, NoCapableBackendError
from repro.backends.tiers import (
    CacheTier,
    RemoteCacheTier,
    SQLiteCacheTier,
    TieredCache,
    cache_key_token,
)

register_backend("stabilizer", StabilizerBackend)
register_backend("chform", CHFormBackend)
register_backend("statevector", StatevectorBackend)
register_backend("mps", MPSBackend)
register_backend("extended_stabilizer", ExtendedStabilizerBackend)

__all__ = [
    "Backend",
    "Capabilities",
    "CircuitFeatures",
    "BackendRouter",
    "NoCapableBackendError",
    "calibration_circuit",
    "calibrated_router",
    "default_cache_path",
    "host_fingerprint",
    "measure_cost_scales",
    "VariantCache",
    "CacheTier",
    "SQLiteCacheTier",
    "RemoteCacheTier",
    "TieredCache",
    "cache_key_token",
    "approx_result_bytes",
    "circuit_fingerprint",
    "noise_fingerprint",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "available_backends",
    "default_backend_pool",
    "as_backend",
    "StabilizerBackend",
    "CHFormBackend",
    "StatevectorBackend",
    "MPSBackend",
    "ExtendedStabilizerBackend",
    "LegacyBackendAdapter",
]
