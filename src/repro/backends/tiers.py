"""Cache tiers: the content-addressed variant cache as a shared service.

The in-memory :class:`~repro.backends.cache.VariantCache` deduplicates
simulation work within one process.  The distributed execution service
(:mod:`repro.service`) promotes it to a *shared* tier so concurrent
sweeps from many clients share work — the cache keys are already content
hashes (variant fingerprint + backend token + evaluation mode), so any
key-value store is a valid tier.  This module defines the tier contract
and three implementations:

* :class:`CacheTier` — the structural protocol every tier satisfies
  (``get`` / ``put`` / ``stats`` / ``clear`` / ``__contains__`` /
  ``__len__``); the in-memory ``VariantCache`` already conforms;
* :class:`SQLiteCacheTier` — a file-backed store (pickled values keyed
  by a SHA-256 token of the cache key) that survives coordinator
  restarts and can be shared by processes on one host;
* :class:`RemoteCacheTier` — a client-side handle onto the
  coordinator-hosted tier, speaking ``cache_get`` / ``cache_put`` over
  the service wire protocol, so even *client-side* ``SuperSim`` runs can
  share the fleet's cache;
* :class:`TieredCache` — a small front/back composition (e.g. in-memory
  LRU in front of SQLite) with promote-on-hit.

Degraded results never reach any tier: the evaluator already excludes
them before ``put`` (their provenance no longer matches the key).
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from typing import Protocol, runtime_checkable

from repro.backends.cache import VariantCache, approx_result_bytes

__all__ = [
    "CacheTier",
    "SQLiteCacheTier",
    "RemoteCacheTier",
    "TieredCache",
    "cache_key_token",
]


@runtime_checkable
class CacheTier(Protocol):
    """What the engine requires of a variant-cache tier.

    ``get`` returns the cached value or ``None`` (counting a hit or
    miss); ``put`` stores unconditionally; ``stats`` reports at least
    ``hits`` / ``misses`` / ``entries``.  :class:`VariantCache`,
    :class:`SQLiteCacheTier`, :class:`RemoteCacheTier` and
    :class:`TieredCache` all conform, so anywhere ``SuperSim`` or
    ``FragmentEvaluator`` accepts a cache instance, any tier works.
    """

    def get(self, key: tuple): ...

    def put(self, key: tuple, value) -> None: ...

    def stats(self) -> dict: ...

    def clear(self) -> None: ...

    def __contains__(self, key: tuple) -> bool: ...

    def __len__(self) -> int: ...


def cache_key_token(key: tuple) -> str:
    """A stable string token for a variant-cache key.

    Cache keys are nested tuples of primitives (content-hash strings,
    ints, ``None``, backend config tokens).  Their ``repr`` is stable
    across processes for those types, so a SHA-256 over it is a valid
    cross-process key — used where tuples cannot be (SQLite primary
    keys, wire messages).
    """
    return hashlib.sha256(repr(key).encode()).hexdigest()


class SQLiteCacheTier:
    """A file-backed cache tier: pickled variant results in SQLite.

    Durable across coordinator restarts and shareable between processes
    on one host (SQLite serialises writers itself; this class also locks
    around its own connection since sqlite3 objects are not thread-safe
    by default).  Eviction is LRU by last-access time once ``max_entries``
    is exceeded.

    ``path`` may be ``":memory:"`` for an ephemeral store (tests).
    """

    def __init__(self, path, max_entries: int = 100_000):
        import sqlite3

        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.path = str(path)
        self.max_entries = int(max_entries)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS variants ("
            " token TEXT PRIMARY KEY,"
            " payload BLOB NOT NULL,"
            " nbytes INTEGER NOT NULL,"
            " last_used REAL NOT NULL)"
        )
        self._conn.commit()
        self._clock = 0.0  # monotone access counter; no wall-clock reads
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _touch(self) -> float:
        self._clock += 1.0
        return self._clock

    def get(self, key: tuple):
        token = cache_key_token(key)
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM variants WHERE token = ?", (token,)
            ).fetchone()
            if row is None:
                self.misses += 1
                return None
            self._conn.execute(
                "UPDATE variants SET last_used = ? WHERE token = ?",
                (self._touch(), token),
            )
            self._conn.commit()
            self.hits += 1
        return pickle.loads(row[0])

    def put(self, key: tuple, value) -> None:
        token = cache_key_token(key)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO variants "
                "(token, payload, nbytes, last_used) VALUES (?, ?, ?, ?)",
                (token, payload, len(payload), self._touch()),
            )
            excess = (
                self._conn.execute("SELECT COUNT(*) FROM variants").fetchone()[0]
                - self.max_entries
            )
            if excess > 0:
                self._conn.execute(
                    "DELETE FROM variants WHERE token IN ("
                    " SELECT token FROM variants ORDER BY last_used LIMIT ?)",
                    (excess,),
                )
                self.evictions += excess
            self._conn.commit()

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM variants WHERE token = ?",
                (cache_key_token(key),),
            ).fetchone()
        return row is not None

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) FROM variants"
            ).fetchone()[0]

    def clear(self) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM variants")
            self._conn.commit()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> dict:
        with self._lock:
            entries, nbytes = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(nbytes), 0) FROM variants"
            ).fetchone()
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": entries,
                "evictions": self.evictions,
                "bytes": nbytes,
            }

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __repr__(self) -> str:
        return f"SQLiteCacheTier({self.path!r}, {len(self)} entries)"


class RemoteCacheTier:
    """A client-side handle onto the coordinator-hosted cache tier.

    Speaks ``cache_get`` / ``cache_put`` over a dedicated service
    connection (a :class:`~repro.service.protocol.Transport`), so a
    *local* ``SuperSim`` — not just service-executed runs — can share
    the fleet's variant cache: pass an instance as
    ``ExecutionConfig(cache=RemoteCacheTier(address))``.

    Not picklable (it owns a socket); share one per process, not across
    workers.  All calls serialise on an internal lock — the wire
    protocol is strictly request/response per connection.
    """

    def __init__(self, address_or_transport):
        from repro.service.protocol import Transport, connect

        if isinstance(address_or_transport, Transport):
            self._transport = address_or_transport
        else:
            self._transport = connect(address_or_transport)
            self._transport.send({"type": "hello", "role": "cache"})
            welcome = self._transport.recv()
            if not welcome or welcome.get("type") != "welcome":
                raise ConnectionError(
                    f"coordinator refused cache handshake: {welcome!r}"
                )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def _roundtrip(self, message: dict) -> dict:
        with self._lock:
            self._transport.send(message)
            reply = self._transport.recv()
        if reply is None:
            raise ConnectionError("coordinator closed the cache connection")
        return reply

    def get(self, key: tuple):
        reply = self._roundtrip({"type": "cache_get", "key": key})
        value = reply.get("value")
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: tuple, value) -> None:
        self._roundtrip({"type": "cache_put", "key": key, "value": value})

    def __contains__(self, key: tuple) -> bool:
        return bool(
            self._roundtrip({"type": "cache_contains", "key": key}).get("found")
        )

    def __len__(self) -> int:
        return int(self.stats().get("entries", 0))

    def clear(self) -> None:
        self._roundtrip({"type": "cache_clear"})

    def stats(self) -> dict:
        stats = dict(self._roundtrip({"type": "cache_stats"}).get("stats", {}))
        stats["remote_hits"] = self.hits
        stats["remote_misses"] = self.misses
        return stats

    def close(self) -> None:
        self._transport.close()

    def __repr__(self) -> str:
        return f"RemoteCacheTier({self._transport!r})"


class TieredCache:
    """A front/back tier composition with promote-on-hit.

    ``get`` consults the fast front tier (typically the in-memory LRU),
    falling back to the backing tier and promoting hits forward; ``put``
    writes through to both.  The coordinator uses this to put a bounded
    in-memory LRU in front of a durable SQLite store.
    """

    def __init__(self, front=None, back=None):
        self.front = front if front is not None else VariantCache()
        self.back = back

    def get(self, key: tuple):
        value = self.front.get(key)
        if value is not None or self.back is None:
            return value
        value = self.back.get(key)
        if value is not None:
            self.front.put(key, value)
        return value

    def put(self, key: tuple, value) -> None:
        self.front.put(key, value)
        if self.back is not None:
            self.back.put(key, value)

    def __contains__(self, key: tuple) -> bool:
        if key in self.front:
            return True
        return self.back is not None and key in self.back

    def __len__(self) -> int:
        # front entries are a subset of back entries under write-through,
        # but the tiers may have been populated independently: report the
        # larger tier rather than double-counting
        if self.back is None:
            return len(self.front)
        return max(len(self.front), len(self.back))

    def clear(self) -> None:
        self.front.clear()
        if self.back is not None:
            self.back.clear()

    def stats(self) -> dict:
        stats = {"front": self.front.stats()}
        if self.back is not None:
            stats["back"] = self.back.stats()
        front = stats["front"]
        # roll up the headline counters so TieredCache.stats() still
        # satisfies the CacheTier contract's flat hits/misses/entries
        stats["hits"] = front.get("hits", 0) + (
            stats.get("back", {}).get("hits", 0)
        )
        stats["misses"] = (
            stats.get("back", {}).get("misses", 0)
            if self.back is not None
            else front.get("misses", 0)
        )
        stats["entries"] = len(self)
        return stats

    def close(self) -> None:
        for tier in (self.front, self.back):
            close = getattr(tier, "close", None)
            if close is not None:
                close()

    def __repr__(self) -> str:
        return f"TieredCache(front={self.front!r}, back={self.back!r})"


# re-exported for tier-related call sites; keeps `from repro.backends.tiers
# import VariantCache` working as the "in-memory tier" spelling
_ = (VariantCache, approx_result_bytes)
