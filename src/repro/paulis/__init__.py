"""Pauli-string algebra with exact phase tracking.

This package provides the symplectic (binary) representation of Pauli
operators used throughout the stabilizer machinery: the tableau simulator,
the CH-form simulator, and the circuit-cutting reconstruction all manipulate
:class:`PauliString` objects.
"""

from repro.paulis.pauli import (
    CLIFFORD_CONJUGATION_GATES,
    PauliString,
    conjugate_pauli,
)

__all__ = [
    "PauliString",
    "conjugate_pauli",
    "CLIFFORD_CONJUGATION_GATES",
]
