"""Phase-tracked Pauli strings in the symplectic representation.

A Pauli string on ``n`` qubits is stored as a pair of binary vectors
``(x, z)`` plus a power of ``i``::

    P = i**phase * prod_q X_q**x[q] * Z_q**z[q]

with the convention that, within each qubit, ``X`` is written before ``Z``.
Under this convention ``Y = i * X * Z`` is represented by
``x=1, z=1, phase=1``.

The module also implements conjugation of Pauli strings by named Clifford
gates (``U P U^dagger``), which is the primitive used by the tableau and
CH-form simulators.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

# Single-qubit images of X and Z under conjugation by elementary Clifford
# gates.  Each image is given as (phase, [(wire, 'X'|'Z'), ...]) where the
# listed single-qubit factors are multiplied left-to-right and ``wire``
# indexes into the gate's qubit tuple.
_IMAGE_TABLE: dict[str, dict[tuple[int, str], tuple[int, list[tuple[int, str]]]]] = {
    "H": {
        (0, "X"): (0, [(0, "Z")]),
        (0, "Z"): (0, [(0, "X")]),
    },
    "S": {
        # S X Sdg = Y = i X Z
        (0, "X"): (1, [(0, "X"), (0, "Z")]),
        (0, "Z"): (0, [(0, "Z")]),
    },
    "SDG": {
        # Sdg X S = -Y = -i X Z  ->  i^3 X Z
        (0, "X"): (3, [(0, "X"), (0, "Z")]),
        (0, "Z"): (0, [(0, "Z")]),
    },
    "X": {
        (0, "X"): (0, [(0, "X")]),
        (0, "Z"): (2, [(0, "Z")]),
    },
    "Y": {
        (0, "X"): (2, [(0, "X")]),
        (0, "Z"): (2, [(0, "Z")]),
    },
    "Z": {
        (0, "X"): (2, [(0, "X")]),
        (0, "Z"): (0, [(0, "Z")]),
    },
    "CX": {
        # qubit 0 = control, qubit 1 = target
        (0, "X"): (0, [(0, "X"), (1, "X")]),
        (1, "X"): (0, [(1, "X")]),
        (0, "Z"): (0, [(0, "Z")]),
        (1, "Z"): (0, [(0, "Z"), (1, "Z")]),
    },
    "CZ": {
        (0, "X"): (0, [(0, "X"), (1, "Z")]),
        (1, "X"): (0, [(0, "Z"), (1, "X")]),
        (0, "Z"): (0, [(0, "Z")]),
        (1, "Z"): (0, [(1, "Z")]),
    },
    "SWAP": {
        (0, "X"): (0, [(1, "X")]),
        (1, "X"): (0, [(0, "X")]),
        (0, "Z"): (0, [(1, "Z")]),
        (1, "Z"): (0, [(0, "Z")]),
    },
}

# Gates whose conjugation action is defined by composition of table entries.
# ``U = g_k ... g_2 g_1`` as a circuit (g_1 applied first), so
# ``U P Udg = g_k (... (g_1 P g_1dg) ...) g_kdg`` applies table gates in
# circuit order.
_COMPOSED: dict[str, list[tuple[str, tuple[int, ...]]]] = {
    "SX": [("H", (0,)), ("S", (0,)), ("H", (0,))],
    "SXDG": [("H", (0,)), ("SDG", (0,)), ("H", (0,))],
    "SY": [("SDG", (0,)), ("H", (0,)), ("S", (0,)), ("H", (0,)), ("S", (0,))],
    "SYDG": [("SDG", (0,)), ("H", (0,)), ("SDG", (0,)), ("H", (0,)), ("S", (0,))],
    "CY": [("SDG", (1,)), ("CX", (0, 1)), ("S", (1,))],
}

#: Names of gates for which :func:`conjugate_pauli` is defined.
CLIFFORD_CONJUGATION_GATES = frozenset(_IMAGE_TABLE) | frozenset(_COMPOSED)

_LABEL_TO_XZ = {"I": (0, 0), "X": (1, 0), "Y": (1, 1), "Z": (0, 1)}
# phase correction: Y = i X Z, so a 'Y' letter contributes one power of i
_LABEL_PHASE = {"I": 0, "X": 0, "Y": 1, "Z": 0}
_XZ_TO_LABEL = {(0, 0): "I", (1, 0): "X", (1, 1): "Y", (0, 1): "Z"}

_PAULI_MATRICES = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


class PauliString:
    """An n-qubit Pauli operator ``i**phase * prod_q X^x[q] Z^z[q]``."""

    __slots__ = ("x", "z", "phase")

    def __init__(
        self,
        x: Iterable[int] | np.ndarray,
        z: Iterable[int] | np.ndarray,
        phase: int = 0,
    ):
        self.x = np.asarray(x, dtype=bool).copy()
        self.z = np.asarray(z, dtype=bool).copy()
        if self.x.shape != self.z.shape or self.x.ndim != 1:
            raise ValueError("x and z must be equal-length 1-D bit vectors")
        self.phase = int(phase) % 4

    # -- constructors -----------------------------------------------------

    @classmethod
    def identity(cls, n: int) -> "PauliString":
        """The n-qubit identity operator."""
        return cls(np.zeros(n, dtype=bool), np.zeros(n, dtype=bool), 0)

    @classmethod
    def from_label(cls, label: str, phase: int = 0) -> "PauliString":
        """Build from a string like ``"XIZY"`` (qubit 0 first).

        ``phase`` counts additional powers of ``i`` on top of the standard
        operator named by the label (so ``from_label("Y")`` *is* Pauli Y).
        """
        n = len(label)
        x = np.zeros(n, dtype=bool)
        z = np.zeros(n, dtype=bool)
        extra = 0
        for q, letter in enumerate(label.upper()):
            if letter not in _LABEL_TO_XZ:
                raise ValueError(f"bad Pauli letter {letter!r}")
            x[q], z[q] = _LABEL_TO_XZ[letter]
            extra += _LABEL_PHASE[letter]
        return cls(x, z, phase + extra)

    @classmethod
    def single(cls, n: int, qubit: int, letter: str, phase: int = 0) -> "PauliString":
        """A single-qubit Pauli ``letter`` acting on ``qubit`` of ``n``."""
        p = cls.identity(n)
        xq, zq = _LABEL_TO_XZ[letter.upper()]
        p.x[qubit] = xq
        p.z[qubit] = zq
        p.phase = (phase + _LABEL_PHASE[letter.upper()]) % 4
        return p

    # -- basic queries -----------------------------------------------------

    @property
    def n(self) -> int:
        return len(self.x)

    @property
    def weight(self) -> int:
        """Number of qubits on which the operator is not identity."""
        return int(np.count_nonzero(self.x | self.z))

    def is_identity(self) -> bool:
        """True when the operator is the identity (any scalar ignored)."""
        return not (self.x.any() or self.z.any())

    def label(self) -> str:
        """Letter representation (without the scalar prefix)."""
        return "".join(
            _XZ_TO_LABEL[(int(xq), int(zq))] for xq, zq in zip(self.x, self.z)
        )

    def scalar(self) -> complex:
        """The scalar prefix relative to the plain letter product.

        ``P == scalar() * Pauli(label())`` where ``Pauli`` multiplies the
        standard matrices named by the letters.
        """
        y_count = int(np.count_nonzero(self.x & self.z))
        return 1j ** ((self.phase - y_count) % 4)

    def copy(self) -> "PauliString":
        return PauliString(self.x, self.z, self.phase)

    # -- algebra -----------------------------------------------------------

    def __mul__(self, other: "PauliString") -> "PauliString":
        if self.n != other.n:
            raise ValueError("Pauli strings act on different qubit counts")
        # Z^z1 X^x2 = (-1)^{z1.x2} X^x2 Z^z1
        swaps = int(np.count_nonzero(self.z & other.x))
        phase = (self.phase + other.phase + 2 * swaps) % 4
        return PauliString(self.x ^ other.x, self.z ^ other.z, phase)

    def commutes(self, other: "PauliString") -> bool:
        """True when the two operators commute."""
        sym = int(np.count_nonzero(self.x & other.z)) + int(
            np.count_nonzero(self.z & other.x)
        )
        return sym % 2 == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliString):
            return NotImplemented
        return (
            self.phase == other.phase
            and np.array_equal(self.x, other.x)
            and np.array_equal(self.z, other.z)
        )

    def __hash__(self) -> int:
        return hash((self.phase, self.x.tobytes(), self.z.tobytes()))

    def __repr__(self) -> str:
        prefix = {0: "+", 1: "+i*", 2: "-", 3: "-i*"}[self.phase % 4]
        return f"PauliString({prefix}{''.join('XZ'[int(zq)] if xq ^ zq else ('Y' if xq else 'I') for xq, zq in zip(self.x, self.z))})"

    # -- dense form (tests / small systems) --------------------------------

    def to_matrix(self) -> np.ndarray:
        """Dense ``2^n x 2^n`` matrix (qubit 0 is the most significant)."""
        out = np.array([[self.scalar()]], dtype=complex)
        for letter in self.label():
            out = np.kron(out, _PAULI_MATRICES[letter])
        return out

    # -- evaluation on basis states ----------------------------------------

    def apply_to_bits(self, bits: np.ndarray) -> tuple[int, np.ndarray]:
        """Apply to a computational basis state ``|bits>``.

        Returns ``(k, new_bits)`` with ``P |bits> = i**k |new_bits>``.
        """
        bits = np.asarray(bits, dtype=bool)
        # X^x Z^z |b> = (-1)^{z.b} |b ^ x>
        k = (self.phase + 2 * int(np.count_nonzero(self.z & bits))) % 4
        return k, bits ^ self.x


def _conjugate_by_table_gate(
    pauli: PauliString, name: str, qubits: Sequence[int]
) -> PauliString:
    table = _IMAGE_TABLE[name]
    n = pauli.n
    result = PauliString.identity(n)
    result.phase = pauli.phase
    # Factor the Pauli as prod_q X_q^{x_q} * prod_q Z_q^{z_q}; per-qubit X
    # and Z factors on distinct qubits commute, and this ordering is
    # equivalent to the per-qubit (X then Z) convention because moving all
    # X's left past Z's of *other* qubits incurs no sign.
    gate_qubits = list(qubits)
    position = {q: i for i, q in enumerate(gate_qubits)}
    for kind, vec in (("X", pauli.x), ("Z", pauli.z)):
        for q in np.flatnonzero(vec):
            q = int(q)
            if q in position:
                phase, factors = table[(position[q], kind)]
                image = PauliString.identity(n)
                image.phase = phase
                for wire, letter in factors:
                    image = image * PauliString.single(n, gate_qubits[wire], letter)
            else:
                image = PauliString.single(n, q, kind)
            result = result * image
    return result


def conjugate_pauli(
    pauli: PauliString, name: str, qubits: Sequence[int]
) -> PauliString:
    """Return ``U P U^dagger`` for the named Clifford gate ``U``.

    Supported names: H, S, SDG, X, Y, Z, SX, SXDG, SY, SYDG, CX, CY, CZ,
    SWAP.  ``qubits`` gives the absolute qubit indices the gate acts on.
    """
    if name in _IMAGE_TABLE:
        return _conjugate_by_table_gate(pauli, name, qubits)
    if name in _COMPOSED:
        result = pauli
        for sub_name, wires in _COMPOSED[name]:
            sub_qubits = [qubits[w] for w in wires]
            result = _conjugate_by_table_gate(result, sub_name, sub_qubits)
        return result
    raise ValueError(f"no conjugation rule for gate {name!r}")
