"""The SuperSim facade: a staged plan→execute pipeline (paper §V).

The paper's workflow is inherently staged — cut placement, fragment
variant evaluation, tomography, reconstruction — and the API mirrors it.
``plan()`` makes every decision without simulating anything; the returned
:class:`~repro.core.plan.ExecutionPlan` can be inspected, cost-estimated,
overridden, and finally executed::

    from repro.core import SuperSim

    sim = SuperSim()
    plan = sim.plan(circuit)          # cut + route, no simulation
    plan.estimate()                   # predicted cost, dry run
    plan = plan.with_backend(1, "mps")  # pin fragment 1 to MPS
    result = plan.execute()           # evaluate -> tomography -> reconstruct
    result.distribution               # reconstructed output distribution
    result.timings                    # per-stage wall-clock breakdown

``run(circuit)`` is simply ``plan(circuit).execute()`` — the one-shot path
stays one line.  Configuration travels in three typed objects instead of
loose kwargs (:class:`~repro.core.config.CutConfig`,
:class:`~repro.core.config.SamplingConfig`,
:class:`~repro.core.config.ExecutionConfig`)::

    sim = SuperSim(
        sampling=SamplingConfig(shots=4000, seed=7),
        execution=ExecutionConfig(backend="mps", parallel=4),
    )

The old flat kwargs (``SuperSim(shots=4000, backend="mps")``) still work
as a deprecation shim that maps onto the configs and warns once.

Parameter sweeps — the dominant VQE/QAOA workload (§VII) — batch through
:meth:`SuperSim.sweep` / :meth:`SuperSim.run_many`: planning artifacts
(cut locations), the content-addressed variant cache and the worker pool
are shared across all points, and results stream back as each point
completes, so only the fragments that actually changed between points are
re-simulated.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro import kernels as _kernels
from repro.analysis.distributions import Distribution
from repro.backends.base import CircuitFeatures
from repro.backends.cache import VariantCache, resolve_cache
from repro.circuits.circuit import Circuit
from repro.core.config import (
    CutConfig,
    ExecutionConfig,
    ReconstructionConfig,
    SamplingConfig,
    configs_from_legacy_kwargs,
)
from repro.core.cutter import plan_cuts
from repro.core.evaluator import FragmentEvaluator, SharedExecutorPool
from repro.core.fragments import Cut, CutCircuit
from repro.errors import FaultReport
from repro.core.plan import CostEstimate, ExecutionPlan, FragmentPlan, SweepResult
from repro.core.reconstruction import (
    ReconstructionStats,
    check_dense_width,
    estimate_reconstruction_cost,
    reconstruct_distribution,
    reconstruct_dynamic,
)
from repro.core.tomography import (
    build_conditioned_fragment_tensor,
    build_fragment_tensor,
)

#: the four pipeline stages always present in SuperSimResult.timings
STAGES = ("cut", "evaluate", "tomography", "reconstruct")


@dataclass
class SuperSimResult:
    """Reconstructed output plus diagnostics.

    ``timings`` always carries all four stage keys (``cut``, ``evaluate``,
    ``tomography``, ``reconstruct`` — 0.0 for stages that did no work,
    e.g. tomography on a fully-cached run) plus the variant-cache counters
    of this run (``cache_hits`` / ``cache_misses``) and one
    ``kernel.<name>`` entry per :mod:`repro.kernels` kernel that ran
    during execution (seconds spent inside that kernel, across all
    stages).  ``kernel_tier`` records the kernel tier the run dispatched
    to (``numpy`` / ``numba`` / ``cupy``); ``backend_usage`` counts the
    variants actually *simulated* per backend name this run (cache hits
    and within-run duplicates excluded, so a fully cached run reports an
    empty mapping).

    ``faults`` is the run's :class:`~repro.errors.FaultReport` — every
    fault the engine survived on the way to this result (retries,
    soft-timeouts, worker crashes, pool rebuilds, degrade-mode backend
    fallbacks, kernel-tier demotions).  A clean run has
    ``bool(result.faults) is False``; faults never change the numbers,
    only how much work it took to get them.
    """

    distribution: Distribution
    cut_circuit: CutCircuit
    stats: ReconstructionStats
    timings: dict[str, float] = field(default_factory=dict)
    raw_distribution: Distribution | None = None
    backend_usage: dict[str, int] = field(default_factory=dict)
    kernel_tier: str = "numpy"
    faults: FaultReport = field(default_factory=FaultReport)

    def __post_init__(self):
        for stage in STAGES:
            self.timings.setdefault(stage, 0.0)

    @property
    def cache_hits(self) -> int:
        return int(self.timings.get("cache_hits", 0))

    @property
    def cache_misses(self) -> int:
        return int(self.timings.get("cache_misses", 0))

    @property
    def num_cuts(self) -> int:
        return self.cut_circuit.num_cuts

    @property
    def num_fragments(self) -> int:
        return len(self.cut_circuit.fragments)

    @property
    def num_variants(self) -> int:
        return sum(f.num_variants for f in self.cut_circuit.fragments)

    # -- reconstruction-engine diagnostics (see ReconstructionStats) ---------

    @property
    def reconstruction_mode(self) -> str:
        """Which engine reconstructed: ``full``, ``windowed`` or ``recursive``."""
        return self.stats.mode

    @property
    def reconstruction_windows(self) -> int:
        """Window contractions run (1 for full/windowed, per-bin for recursive)."""
        return self.stats.windows

    @property
    def reconstruction_refinements(self) -> int:
        """Recursive bin refinements beyond the coarse top window."""
        return self.stats.refinements

    @property
    def covered_probability(self) -> float:
        """Total mass of the returned outcomes (< 1.0 when top-k truncated)."""
        return self.stats.covered_probability


def _call_factory(factory, params):
    """Apply one sweep grid point to a circuit factory."""
    if isinstance(params, dict):
        return factory(**params)
    if isinstance(params, tuple):
        return factory(*params)
    return factory(params)


class SuperSim:
    """Clifford-based circuit cutting simulator.

    Parameters
    ----------
    cut:
        A :class:`~repro.core.config.CutConfig` — cut placement strategy
        and the ``4^k`` reconstruction guard.
    sampling:
        A :class:`~repro.core.config.SamplingConfig` — exact vs sampled
        evaluation, Clifford shot rebalancing, tomography projection,
        noise, seeding.
    execution:
        An :class:`~repro.core.config.ExecutionConfig` — forced backend,
        router, variant cache, worker pool, reconstruction pruning.
    reconstruction:
        A :class:`~repro.core.config.ReconstructionConfig` — how fragment
        tensors recombine: dense (``"full"``), exact small marginals
        (``"windowed"``), or bounded-memory recursive dynamic definition
        (``"recursive"``).  The default ``"auto"`` runs dense while the
        output width fits ``max_dense_bits`` and switches to recursive
        beyond, so wide circuits return top-k answers instead of dying in
        a ``2**width`` allocation.
    **legacy_kwargs:
        The pre-pipeline flat kwargs (``shots=``, ``backend=``, ``rng=``,
        ...) are still accepted and mapped onto the configs; using any of
        them emits a single :class:`DeprecationWarning` naming the new
        home of each.
    """

    name = "supersim"

    def __init__(
        self,
        cut: CutConfig | None = None,
        sampling: SamplingConfig | None = None,
        execution: ExecutionConfig | None = None,
        reconstruction: ReconstructionConfig | None = None,
        **legacy_kwargs,
    ):
        cut, sampling, execution, legacy_used = configs_from_legacy_kwargs(
            legacy_kwargs, cut=cut, sampling=sampling, execution=execution
        )
        if reconstruction is None:
            reconstruction = ReconstructionConfig()
        elif not isinstance(reconstruction, ReconstructionConfig):
            raise TypeError(
                f"expected a ReconstructionConfig instance, got {reconstruction!r}"
            )
        if legacy_used:
            warnings.warn(
                f"SuperSim({', '.join(f'{k}=' for k in legacy_used)}) uses "
                "legacy flat kwargs; pass CutConfig/SamplingConfig/"
                "ExecutionConfig objects instead (see repro.core.config)",
                DeprecationWarning,
                stacklevel=2,
            )
        self.cut_config = cut
        self.sampling = sampling
        self.execution = execution
        self.reconstruction = reconstruction
        self.variant_cache: VariantCache | None = resolve_cache(execution.cache)
        #: executor shared across batch points while a sweep is active
        self._batch_executor = None
        self._batch_executor_kind: str | None = None
        self._default_router = None
        #: override for where deduplicated variant jobs execute — the
        #: service coordinator injects its dispatcher here (see
        #: FragmentEvaluator.evaluate_all's job_runner contract)
        self._job_runner = None
        #: resources adopted for deterministic shutdown via close()
        self._owned_resources: list = []

    # -- legacy attribute surface (read-only views onto the configs) ---------

    @property
    def shots(self):
        return self.sampling.shots

    @property
    def clifford_shots(self):
        return self.sampling.clifford_shots

    @property
    def snap_clifford(self):
        return self.sampling.snap_clifford

    @property
    def tomography(self):
        return self.sampling.tomography

    @property
    def noise(self):
        return self.sampling.noise

    @property
    def rng(self):
        return self.sampling.seed

    @property
    def strategy(self):
        return self.cut_config.strategy

    @property
    def max_cuts(self):
        return self.cut_config.max_cuts

    @property
    def prune_zeros(self):
        return self.execution.prune_zeros

    @property
    def backend(self):
        return self.execution.backend

    @property
    def router(self):
        return self.execution.router

    @property
    def nonclifford_backend(self):
        return self.execution.nonclifford_backend

    @property
    def pool(self):
        return self.execution.pool

    @property
    def parallel(self):
        return self.execution.parallel

    @property
    def statevector_max_qubits(self):
        return self.execution.statevector_max_qubits

    # -- pipeline pieces ------------------------------------------------------

    def cut(self, circuit: Circuit, cuts: list[Cut] | None = None) -> CutCircuit:
        """The cut stage alone: find (or validate) cuts and split."""
        return plan_cuts(circuit, self.cut_config, cuts)

    def _router(self):
        """The router every evaluator of this sim shares.

        Built once: a custom ``execution.router`` is used as-is, otherwise
        the default backend pool is instantiated a single time instead of
        once per plan/estimate/execute call.
        """
        if self.execution.router is not None:
            return self.execution.router
        if self._default_router is None:
            from repro.backends import BackendRouter, default_backend_pool

            self._default_router = BackendRouter(
                default_backend_pool(self.execution.statevector_max_qubits)
            )
        return self._default_router

    def _evaluator(self, assignments=None) -> FragmentEvaluator:
        return FragmentEvaluator.from_configs(
            self.sampling,
            self.execution.replace(router=self._router()),
            cache=self.variant_cache,
            assignments=assignments,
            executor=self._batch_executor,
            executor_kind=self._batch_executor_kind,
        )

    # -- plan stage -----------------------------------------------------------

    def plan(
        self,
        circuit: Circuit,
        keep_qubits: list[int] | None = None,
        cuts: list[Cut] | None = None,
    ) -> ExecutionPlan:
        """Stage 1: cut the circuit and route fragments — no simulation.

        The returned :class:`~repro.core.plan.ExecutionPlan` records the
        cut circuit, each fragment's enumerated variant count, the backend
        the router assigned it, and the evaluation mode; inspect it, price
        it with ``estimate()``, override it with ``with_cuts(...)`` /
        ``with_backend(...)``, then ``execute()``.
        """
        if keep_qubits is None:
            keep_qubits = list(circuit.measured_qubits)
        start = time.perf_counter()
        cc = self.cut(circuit, cuts)
        evaluator = self._evaluator()
        backends = []
        modes = []
        exact = self.sampling.exact
        for fragment in cc.fragments:
            backend, noisy = evaluator._backend_for(fragment)
            backends.append(backend)
            modes.append("noisy" if noisy else ("exact" if exact else "sampled"))
        planning_seconds = time.perf_counter() - start
        return ExecutionPlan(
            circuit=circuit,
            cut_circuit=cc,
            keep_qubits=tuple(keep_qubits),
            backend_names=tuple(b.name for b in backends),
            fragment_modes=tuple(modes),
            planning_seconds=planning_seconds,
            _sim=self,
            _backends=tuple(backends),
        )

    def _estimate_plan(self, plan: ExecutionPlan) -> CostEstimate:
        """Dry-run pricing of a plan (see :meth:`ExecutionPlan.estimate`)."""
        assignments = {
            f.index: b for f, b in zip(plan.cut_circuit.fragments, plan._backends)
        }
        evaluator = self._evaluator(assignments=assignments)
        router = evaluator.router
        fragment_plans = []
        total = 0.0
        for fragment, backend, mode in zip(
            plan.cut_circuit.fragments, plan._backends, plan.fragment_modes
        ):
            features = CircuitFeatures.from_circuit(fragment.circuit)
            per_variant = router.scored_cost(
                backend, features, mode="exact" if mode == "exact" else "sampled"
            )
            cost = per_variant * fragment.num_variants
            total += cost
            fragment_plans.append(
                FragmentPlan(
                    index=fragment.index,
                    n_qubits=fragment.n_qubits,
                    num_variants=fragment.num_variants,
                    backend=backend.name,
                    mode=mode,
                    is_clifford=fragment.is_clifford,
                    cost=cost,
                )
            )
        stats = evaluator.dry_run(plan.cut_circuit.fragments)
        rc = self.reconstruction
        reconstruction_cost = estimate_reconstruction_cost(
            plan.num_cuts,
            len(plan.keep_qubits),
            qubit_limit=rc.qubit_limit,
            top_k=rc.top_k,
            mode=rc.mode,
        )
        return CostEstimate(
            fragments=tuple(fragment_plans),
            total_cost=total + reconstruction_cost,
            num_variants=stats["jobs"],
            unique_variants=stats["unique_jobs"],
            cached_variants=stats["cached_jobs"],
            num_cuts=plan.num_cuts,
            reconstruction_terms=plan.cut_circuit.reconstruction_terms,
            calibrated=bool(router.cost_scales),
            reconstruction_cost=reconstruction_cost,
        )

    # -- execute stage ---------------------------------------------------------

    def _resolve_reconstruction_mode(self, keep_qubits) -> str:
        """The engine ``execute()`` will run for this output width."""
        mode = self.reconstruction.mode
        if mode == "auto":
            wide = len(keep_qubits) > self.reconstruction.max_dense_bits
            return "recursive" if wide else "full"
        return mode

    def _dynamic_tensor_builder(self, cc: CutCircuit, fragment_data):
        """The (window, fixed) -> (tensors, kept_locals) callback of
        :func:`~repro.core.reconstruction.reconstruct_dynamic`.

        Tensors are built per window/bin from the already-evaluated
        fragment data — never over all kept bits at once, so tomography
        memory follows the window, not the circuit width.  Bins at the
        same level share conditioned tensors for every fragment whose
        fixed bits agree, so results are memoised per
        ``(fragment, window, fixed)``.
        """
        project = self.sampling.tomography and self.sampling.shots is not None
        snap = self.sampling.snap_clifford
        memo: dict[tuple, np.ndarray] = {}

        def build(window, fixed):
            window_set = set(window)
            tensors = []
            kept_locals = []
            for fragment, data in zip(cc.fragments, fragment_data):
                kept = [lq for oq, lq in fragment.circuit_outputs if oq in window_set]
                fixed_locals = {
                    lq: fixed[oq]
                    for oq, lq in fragment.circuit_outputs
                    if oq in fixed
                }
                key = (
                    fragment.index,
                    tuple(kept),
                    tuple(sorted(fixed_locals.items())),
                )
                tensor = memo.get(key)
                if tensor is None:
                    if fixed_locals:
                        tensor = build_conditioned_fragment_tensor(
                            data, kept, fixed_locals, snap_clifford=snap
                        )
                    else:
                        tensor = build_fragment_tensor(
                            data, kept, snap_clifford=snap, project=project
                        )
                    memo[key] = tensor
                tensors.append(tensor)
                kept_locals.append(kept)
            return tensors, kept_locals

        return build

    def _execute_plan(self, plan: ExecutionPlan) -> SuperSimResult:
        """Stages 2–4: evaluate variants, build tensors, reconstruct.

        The reconstruction engine follows ``self.reconstruction`` (see
        :class:`~repro.core.config.ReconstructionConfig`): dense full
        reconstruction under ``max_dense_bits``, the windowed exact
        marginal, or the recursive dynamic-definition driver for wide
        outputs.  In recursive mode tomography happens per window/bin
        inside the reconstruct stage (conditioned tensors cannot be built
        up front), so ``timings["tomography"]`` reads 0.0 there.
        """
        cc = plan.cut_circuit
        timings: dict[str, float] = {"cut": plan.planning_seconds}
        kernel_snapshot = _kernels.counters_snapshot()
        demotions_before = len(_kernels.demotions())
        assignments = {f.index: b for f, b in zip(cc.fragments, plan._backends)}

        def collect_faults(evaluator) -> FaultReport:
            # the evaluator's ledger plus any kernel-tier demotions that
            # happened anywhere in this run (evaluate through reconstruct)
            faults = FaultReport()
            faults.extend(evaluator.faults)
            for kname, tier, err in _kernels.demotions()[demotions_before:]:
                faults.record(
                    "kernel_demotion", detail=f"kernel {kname} [{tier}]: {err}"
                )
            return faults

        start = time.perf_counter()
        evaluator = self._evaluator(assignments=assignments)
        fragment_data = evaluator.evaluate_all(
            cc.fragments, job_runner=self._job_runner
        )
        timings["evaluate"] = time.perf_counter() - start
        timings["cache_hits"] = float(evaluator.last_stats.get("cache_hits", 0))
        timings["cache_misses"] = float(evaluator.last_stats.get("cache_misses", 0))
        backend_usage = dict(evaluator.last_stats.get("backends", {}))

        rc = self.reconstruction
        mode = self._resolve_reconstruction_mode(plan.keep_qubits)

        if mode == "recursive":
            timings["tomography"] = 0.0
            start = time.perf_counter()
            builder = self._dynamic_tensor_builder(cc, fragment_data)
            raw, stats = reconstruct_dynamic(
                cc,
                builder,
                list(plan.keep_qubits),
                qubit_limit=rc.qubit_limit,
                top_k=rc.top_k,
                recursion_depth=rc.recursion_depth,
                refine_threshold=rc.refine_threshold,
                prune_zeros=self.execution.prune_zeros,
            )
            timings["reconstruct"] = time.perf_counter() - start
            # calibrated top-k: drop negative quasi-probability noise but
            # do NOT renormalise — the missing mass is real information
            # (stats.covered_probability reports it)
            positive = raw.values_array > 0
            cleaned = Distribution.from_arrays(
                raw.n_bits,
                raw.keys_array[positive],
                raw.values_array[positive],
                assume_sorted=True,
            )
            for name, secs in _kernels.timings_since(kernel_snapshot).items():
                timings[f"kernel.{name}"] = secs
            return SuperSimResult(
                distribution=cleaned,
                cut_circuit=cc,
                stats=stats,
                timings=timings,
                raw_distribution=raw,
                backend_usage=backend_usage,
                kernel_tier=_kernels.active_tier(),
                faults=collect_faults(evaluator),
            )

        if mode == "windowed":
            window = rc.window
            if window is None:
                window = tuple(plan.keep_qubits[: rc.qubit_limit])
            unknown = [q for q in window if q not in set(plan.keep_qubits)]
            if unknown:
                raise ValueError(
                    f"window qubits {unknown} are not in keep_qubits"
                )
            target_qubits = list(window)
        else:
            # guard BEFORE tomography: on wide circuits the per-fragment
            # dense tensors (2**kept_bits per variant) blow up first,
            # long before the final accumulator would
            check_dense_width(len(plan.keep_qubits), rc.max_dense_bits)
            target_qubits = list(plan.keep_qubits)

        start = time.perf_counter()
        keep_set = set(target_qubits)
        kept_locals: list[list[int]] = []
        for fragment in cc.fragments:
            kept_locals.append(
                [lq for oq, lq in fragment.circuit_outputs if oq in keep_set]
            )
        tensors = [
            build_fragment_tensor(
                data,
                kept,
                snap_clifford=self.sampling.snap_clifford,
                project=self.sampling.tomography and self.sampling.shots is not None,
            )
            for data, kept in zip(fragment_data, kept_locals)
        ]
        timings["tomography"] = time.perf_counter() - start

        start = time.perf_counter()
        raw, stats = reconstruct_distribution(
            cc,
            tensors,
            kept_locals,
            target_qubits,
            prune_zeros=self.execution.prune_zeros,
            max_dense_bits=rc.max_dense_bits,
        )
        if mode == "windowed":
            stats.mode = "windowed"
        timings["reconstruct"] = time.perf_counter() - start

        cleaned = raw.clipped() if len(raw) else raw
        for name, secs in _kernels.timings_since(kernel_snapshot).items():
            timings[f"kernel.{name}"] = secs
        return SuperSimResult(
            distribution=cleaned,
            cut_circuit=cc,
            stats=stats,
            timings=timings,
            raw_distribution=raw,
            backend_usage=backend_usage,
            kernel_tier=_kernels.active_tier(),
            faults=collect_faults(evaluator),
        )

    # -- main entry points --------------------------------------------------------

    def run(
        self,
        circuit: Circuit,
        keep_qubits: list[int] | None = None,
        cuts: list[Cut] | None = None,
    ) -> SuperSimResult:
        """``plan(circuit).execute()`` — cut, evaluate and reconstruct the
        distribution over ``keep_qubits`` (default: the measured qubits)."""
        return self.plan(circuit, keep_qubits=keep_qubits, cuts=cuts).execute()

    # -- batch layer ----------------------------------------------------------

    def sweep(
        self,
        circuit_factory,
        param_grid,
        keep_qubits: list[int] | None = None,
        reuse_cuts: bool = True,
        checkpoint=None,
    ):
        """Stream results of ``circuit_factory`` over a parameter grid.

        The paper's dominant workload (§VII): VQE/QAOA sweeps re-run one
        circuit shape under many parameter points.  Each grid point is
        planned and executed with everything shareable shared — the
        variant cache (identical fragments, in particular the wide
        Clifford bulk, are simulated once across the whole sweep), the
        worker pool (one executor spans all points instead of one per
        run), and with ``reuse_cuts=True`` (default) the cut locations
        found for the first point (falling back to a fresh search if they
        do not transfer).

        ``circuit_factory`` is called once per grid point — with ``**p``
        for dict points, ``*p`` for tuple points, else ``factory(p)`` —
        and must return a :class:`~repro.circuits.circuit.Circuit`.
        Yields :class:`~repro.core.plan.SweepResult` records as each point
        completes.  Exact-mode sweep distributions are bit-identical to
        independent ``run()`` calls unconditionally.  Seeded sampled-mode
        sweeps reproduce independent seeded runs bit-for-bit *when the
        reused plan matches what an independent run would plan* — the
        normal case, since per-variant seeds derive from the root seed and
        variant fingerprints, never from batch order; the exception is a
        grid whose points change which gates are Clifford (e.g. a
        parameterised gate hitting — or leaving — an exactly-Clifford
        angle), where the adopted cut set keeps the plan and the sampled
        estimator consistent across the sweep but differs from what an
        independent run would plan at those points.  Pass
        ``reuse_cuts=False`` to re-plan every point and recover
        unconditional equivalence.

        A point whose shared cut set does not transfer is re-planned from
        scratch — no longer silently: its :class:`SweepResult` carries a
        ``degradation`` note and the result's fault report a ``replan``
        event.  Under ``failure_policy="retry"`` / ``"degrade"`` a point
        that still fails after the engine's own fault tolerance yields
        ``SweepResult(result=None, error=exc)`` instead of killing the
        sweep (``"raise"``, the default, propagates as before).

        ``checkpoint`` names a JSON-lines file recording completed point
        indices: each successful point appends one line, and a re-run with
        the same file skips those points (yielding ``skipped=True``
        records) — resuming an interrupted sweep re-simulates only what
        never finished.  Results themselves are not persisted; re-running
        a completed point is what the checkpoint avoids.
        """
        import json
        from pathlib import Path

        from repro.backends.router import NoCapableBackendError

        completed: set[int] = set()
        checkpoint_path = None
        if checkpoint is not None:
            checkpoint_path = Path(checkpoint)
            if checkpoint_path.exists():
                for line in checkpoint_path.read_text().splitlines():
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        completed.add(int(json.loads(line)["index"]))
                    except (ValueError, KeyError, TypeError):
                        warnings.warn(
                            f"ignoring malformed checkpoint line in "
                            f"{checkpoint_path}: {line!r}",
                            RuntimeWarning,
                            stacklevel=2,
                        )

        tolerate = self.execution.failure_policy != "raise"
        with self._batch_pool():
            shared_cuts: list[Cut] | None = None
            for index, params in enumerate(param_grid):
                if index in completed:
                    yield SweepResult(
                        index=index, params=params, result=None, skipped=True
                    )
                    continue
                degradation: str | None = None
                try:
                    circuit = _call_factory(circuit_factory, params)
                    plan = None
                    if reuse_cuts and shared_cuts:
                        try:
                            plan = self.plan(
                                circuit, keep_qubits=keep_qubits, cuts=shared_cuts
                            )
                        except (ValueError, NoCapableBackendError) as exc:
                            # cuts do not transfer: search afresh, and say so
                            degradation = (
                                "shared cut set did not transfer "
                                f"({type(exc).__name__}: {exc}); re-planned "
                                "from scratch"
                            )
                    if plan is None:
                        plan = self.plan(circuit, keep_qubits=keep_qubits)
                        if not shared_cuts and plan.cut_circuit.cuts:
                            # adopt the first *non-empty* cut set: an
                            # all-Clifford grid point finds no cuts, and an
                            # empty set must not pin later points to uncut
                            # whole-circuit evaluation
                            shared_cuts = list(plan.cut_circuit.cuts)
                    result = plan.execute()
                except Exception as exc:
                    if not tolerate:
                        raise
                    yield SweepResult(
                        index=index, params=params, result=None, error=exc
                    )
                    continue
                if degradation is not None:
                    result.faults.record("replan", detail=degradation)
                if checkpoint_path is not None:
                    with checkpoint_path.open("a") as fh:
                        fh.write(json.dumps({"index": index}) + "\n")
                yield SweepResult(
                    index=index,
                    params=params,
                    result=result,
                    degradation=degradation,
                )

    def run_many(
        self,
        circuits,
        keep_qubits: list[int] | None = None,
    ):
        """Execute many circuits, sharing the cache and worker pool.

        Yields one :class:`SuperSimResult` per circuit, in order, as each
        completes.  Unlike :meth:`sweep`, no structural similarity is
        assumed — each circuit gets its own cut search — but identical
        fragment variants across circuits still deduplicate through the
        shared cache.

        Under ``failure_policy="retry"`` / ``"degrade"`` a circuit that
        still fails after the engine's own fault tolerance yields ``None``
        in its slot (with a warning naming the error) instead of aborting
        the batch; the default ``"raise"`` policy propagates immediately.
        """
        tolerate = self.execution.failure_policy != "raise"
        with self._batch_pool():
            for index, circuit in enumerate(circuits):
                try:
                    yield self.plan(circuit, keep_qubits=keep_qubits).execute()
                except Exception as exc:
                    if not tolerate:
                        raise
                    warnings.warn(
                        f"run_many circuit {index} failed after fault "
                        f"tolerance ({type(exc).__name__}: {exc}); yielding "
                        "None for this slot",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    yield None

    def _batch_pool(self):
        """Context: one long-lived executor spanning a whole batch.

        Only engaged when ``execution.parallel > 1``; the executor kind
        follows ``execution.pool`` (``None`` defaults to threads — the
        built-in backends all release the GIL in their kernels).  Nested
        batches reuse the outermost executor.  The pool is held through a
        rebuildable :class:`~repro.core.evaluator.SharedExecutorPool`
        handle, so the fault-tolerant scheduler can replace a broken
        process pool mid-batch without losing the sharing.
        """
        import contextlib

        if self.execution.parallel <= 1 or self._batch_executor is not None:
            return contextlib.nullcontext()

        kind = "process" if self.execution.pool == "process" else "thread"

        @contextlib.contextmanager
        def pool():
            handle = SharedExecutorPool(kind, self.execution.parallel)
            self._batch_executor = handle
            self._batch_executor_kind = kind
            try:
                yield handle
            finally:
                self._batch_executor = None
                self._batch_executor_kind = None
                handle.shutdown()

        return pool()

    # -- lifecycle ------------------------------------------------------------

    def adopt_resource(self, resource) -> None:
        """Register a resource for deterministic shutdown via :meth:`close`.

        Anything with a ``close()`` or ``shutdown()`` method qualifies —
        a :class:`~repro.service.client.ServiceClient`, a remote cache
        tier, an externally-managed executor pool.  Resources close in
        reverse adoption order; adoption is idempotent per object.
        """
        if not any(r is resource for r in self._owned_resources):
            self._owned_resources.append(resource)

    def close(self) -> None:
        """Release everything this engine holds open, deterministically.

        Shuts down any live :class:`~repro.core.evaluator.SharedExecutorPool`
        (normally scoped to a sweep, but an aborted batch — e.g. a
        generator abandoned mid-iteration — can leave one behind) and
        closes adopted resources (service client connections, cache
        tiers).  Idempotent; the engine remains usable afterwards — the
        next run simply builds fresh pools.
        """
        handle = self._batch_executor
        self._batch_executor = None
        self._batch_executor_kind = None
        if handle is not None and hasattr(handle, "shutdown"):
            handle.shutdown()
        while self._owned_resources:
            resource = self._owned_resources.pop()
            closer = getattr(resource, "close", None) or getattr(
                resource, "shutdown", None
            )
            if closer is not None:
                closer()

    def __enter__(self) -> "SuperSim":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def probabilities(self, circuit: Circuit) -> Distribution:
        """Reconstructed distribution over the circuit's measured qubits."""
        return self.run(circuit).distribution

    def sparse_probabilities(
        self,
        circuit: Circuit,
        keep_qubits: list[int] | None = None,
        max_support: int = 1_000_000,
    ) -> Distribution:
        """Full-distribution reconstruction for sparse outputs at any width.

        Avoids the dense ``2^n`` accumulator: fragment tensors and the
        recombination are dictionary-valued, so cost scales with the actual
        support of the output distribution (e.g. the repetition-code
        benchmark at 31 qubits) rather than with ``2^n``.
        """
        from repro.core.reconstruction import reconstruct_sparse_distribution
        from repro.core.tomography import build_sparse_fragment_tensor

        if keep_qubits is None:
            keep_qubits = list(circuit.measured_qubits)
        cc = self.cut(circuit)
        fragment_data = self._evaluator().evaluate_all(
            cc.fragments, job_runner=self._job_runner
        )
        keep_set = set(keep_qubits)
        kept_locals = [
            [lq for oq, lq in fragment.circuit_outputs if oq in keep_set]
            for fragment in cc.fragments
        ]
        tensors = [
            build_sparse_fragment_tensor(
                data, kept, snap_clifford=self.sampling.snap_clifford
            )
            for data, kept in zip(fragment_data, kept_locals)
        ]
        dist, _stats = reconstruct_sparse_distribution(
            cc,
            tensors,
            kept_locals,
            keep_qubits,
            prune_zeros=self.execution.prune_zeros,
            max_support=max_support,
        )
        return dist.clipped() if len(dist) else dist

    def marginal_probabilities(
        self,
        circuit: Circuit,
        windows,
        cuts: list[Cut] | None = None,
    ) -> list[Distribution]:
        """Exact marginals over several qubit windows, one evaluation pass.

        ``windows`` is an iterable of qubit-index sequences (each defines
        the bit order of its marginal).  Fragments are evaluated once;
        each window gets its own narrow tomography + contraction — the
        windowed engine — so no object larger than ``4^k · 2**len(window)``
        is built at *any* circuit width.  This is the primitive QAOA edge
        scoring and per-qubit readout ride on.
        """
        windows = [list(w) for w in windows]
        for window in windows:
            if not window:
                raise ValueError("empty marginal window")
        cc = self.cut(circuit, cuts)
        evaluator = self._evaluator()
        fragment_data = evaluator.evaluate_all(
            cc.fragments, job_runner=self._job_runner
        )
        project = self.sampling.tomography and self.sampling.shots is not None
        out: list[Distribution] = []
        for window in windows:
            keep_set = set(window)
            kept_locals = [
                [lq for oq, lq in fragment.circuit_outputs if oq in keep_set]
                for fragment in cc.fragments
            ]
            tensors = [
                build_fragment_tensor(
                    data,
                    kept,
                    snap_clifford=self.sampling.snap_clifford,
                    project=project,
                )
                for data, kept in zip(fragment_data, kept_locals)
            ]
            dist, _ = reconstruct_distribution(
                cc,
                tensors,
                kept_locals,
                window,
                prune_zeros=self.execution.prune_zeros,
            )
            out.append(dist.clipped() if len(dist) else dist)
        return out

    def single_qubit_marginals(self, circuit: Circuit) -> np.ndarray:
        """Exact per-qubit marginals at any width (the 300-qubit mode).

        Fragments are evaluated once; each qubit's marginal is a separate
        cheap reconstruction, so no ``2^n`` object is ever built.
        """
        qubits = list(circuit.measured_qubits)
        out = np.zeros((len(qubits), 2))
        marginals = self.marginal_probabilities(circuit, [[q] for q in qubits])
        for row, dist in enumerate(marginals):
            out[row, 0] = dist[0]
            out[row, 1] = dist[1]
        return out

    def expectation(self, circuit: Circuit, pauli) -> float:
        """``<P>`` of the circuit's output state at any width.

        Basis rotations reduce the Pauli to a Z-parity on its support, and
        the reconstruction keeps only those qubits, so wide near-Clifford
        circuits stay cheap (this is the primitive behind near-CAFQA VQE
        scoring).
        """
        from repro.apps.vqe import pauli_expectation

        return pauli_expectation(circuit, pauli, self)

    def probability_of(self, circuit: Circuit, outcome_bits) -> float:
        """Strong simulation: the probability of one bitstring.

        Evaluates each fragment's tensor at the fixed outcome only (point
        queries against the affine fragment data), so the cost is ``4^k``
        scalar products at *any* circuit width — the paper's §V-C claim that
        single-bitstring probabilities come "to machine precision without
        added computational overheads".
        """
        from repro.core.tomography import fragment_tensor_at

        qubits = list(circuit.measured_qubits)
        outcome_bits = [int(b) for b in outcome_bits]
        if len(outcome_bits) != len(qubits):
            raise ValueError("bitstring length does not match measured qubits")
        bit_of = dict(zip(qubits, outcome_bits))
        cc = self.cut(circuit)
        fragment_data = self._evaluator().evaluate_all(
            cc.fragments, job_runner=self._job_runner
        )
        scalar_tensors = []
        axis_cuts = []
        for fragment, data in zip(cc.fragments, fragment_data):
            fixed = {
                lq: bit_of[oq]
                for oq, lq in fragment.circuit_outputs
                if oq in bit_of
            }
            scalar_tensors.append(
                fragment_tensor_at(
                    data, fixed, snap_clifford=self.sampling.snap_clifford
                )
            )
            axis_cuts.append(
                [c for c, _ in fragment.quantum_inputs]
                + [c for c, _ in fragment.quantum_outputs]
            )
        import itertools

        k = cc.num_cuts
        total = 0.0
        for assignment in itertools.product(range(4), repeat=k):
            term = 1.0
            for tensor, cuts in zip(scalar_tensors, axis_cuts):
                term *= tensor[tuple(assignment[c] for c in cuts)]
                if term == 0.0:
                    break
            total += term
        return total / 2.0**k
