"""The SuperSim facade: cut, evaluate, reconstruct (paper §V).

Typical use::

    from repro.core import SuperSim
    result = SuperSim().run(circuit)
    result.distribution          # reconstructed output distribution
    result.timings               # per-stage wall-clock breakdown

``shots=None`` (default) evaluates fragments exactly — by default Clifford
fragments land on the stabilizer simulator's affine outcome distributions
and non-Clifford fragments on statevector simulation, but the dispatch is
capability-based routing over the :mod:`repro.backends` registry, so
``SuperSim(backend="mps")`` or any custom registered backend slots in
without further changes.  With integer ``shots`` the fragments are
*sampled*, as on real hardware, and the optional tomography projection and
Clifford snapping clean up the statistics.  Variant results are memoised
in a content-addressed cache that persists across ``run()`` calls, so
parameter sweeps re-simulate only the fragments that actually changed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.distributions import Distribution
from repro.backends.cache import VariantCache
from repro.circuits.circuit import Circuit
from repro.core.cutter import CutStrategy, cut_circuit, find_cuts
from repro.core.evaluator import FragmentEvaluator
from repro.core.fragments import Cut, CutCircuit
from repro.core.reconstruction import ReconstructionStats, reconstruct_distribution
from repro.core.tomography import build_fragment_tensor


@dataclass
class SuperSimResult:
    """Reconstructed output plus diagnostics.

    ``timings`` carries per-stage wall clock plus the variant-cache
    counters of this run (``cache_hits`` / ``cache_misses``);
    ``backend_usage`` counts the variants actually *simulated* per backend
    name this run (cache hits and within-run duplicates excluded, so a
    fully cached run reports an empty mapping).
    """

    distribution: Distribution
    cut_circuit: CutCircuit
    stats: ReconstructionStats
    timings: dict[str, float] = field(default_factory=dict)
    raw_distribution: Distribution | None = None
    backend_usage: dict[str, int] = field(default_factory=dict)

    @property
    def cache_hits(self) -> int:
        return int(self.timings.get("cache_hits", 0))

    @property
    def cache_misses(self) -> int:
        return int(self.timings.get("cache_misses", 0))

    @property
    def num_cuts(self) -> int:
        return self.cut_circuit.num_cuts

    @property
    def num_fragments(self) -> int:
        return len(self.cut_circuit.fragments)

    @property
    def num_variants(self) -> int:
        return sum(f.num_variants for f in self.cut_circuit.fragments)


class SuperSim:
    """Clifford-based circuit cutting simulator.

    Parameters
    ----------
    shots:
        ``None`` for exact fragment evaluation; an integer to sample each
        fragment variant with that many shots.
    clifford_shots:
        Override the per-variant shot count for Clifford fragments
        (Section IX: few shots suffice when expectations are in {-1,0,+1}).
    snap_clifford:
        Snap sampled Clifford conditional expectations to {-1, 0, +1}.
    tomography:
        Apply the physicality (PSD) projection to sampled fragment models —
        the maximum-likelihood correction of the paper's reference [40].
    strategy:
        Cut placement strategy.
    max_cuts:
        Refuse circuits needing more cuts (4^k reconstruction guard).
    prune_zeros:
        Skip recombination terms with an exactly-zero fragment factor
        (Section IX downstream-term pruning).
    backend:
        Force a backend for every fragment it can handle — a registered
        name (``"mps"``, ``"statevector"``, ...) or a
        :class:`~repro.backends.base.Backend` instance.  Fragments outside
        the forced backend's capabilities fall back to routing.
    router:
        A custom :class:`~repro.backends.router.BackendRouter`; the default
        scores every built-in backend's cost model.
    cache:
        Variant caching across ``run()`` calls: ``True`` (default) builds a
        private :class:`~repro.backends.cache.VariantCache`, or pass a
        shared instance, or ``False``/``None`` to disable.  Cache hit/miss
        counts appear in :attr:`SuperSimResult.timings`.
    pool:
        Worker pool kind for parallel evaluation: ``"thread"``,
        ``"process"``, or ``None`` to follow the backends' capability
        hints.
    """

    def __init__(
        self,
        shots: int | None = None,
        clifford_shots: int | None = None,
        snap_clifford: bool = False,
        tomography: bool = False,
        strategy: CutStrategy = CutStrategy.ISOLATE,
        max_cuts: int = 12,
        prune_zeros: bool = True,
        rng: np.random.Generator | int | None = None,
        statevector_max_qubits: int = 20,
        nonclifford_backend=None,
        noise=None,
        parallel: int = 1,
        backend=None,
        router=None,
        cache: VariantCache | bool | None = True,
        pool: str | None = None,
    ):
        self.shots = shots
        self.clifford_shots = clifford_shots
        self.snap_clifford = snap_clifford
        self.tomography = tomography
        self.strategy = strategy
        self.max_cuts = max_cuts
        self.prune_zeros = prune_zeros
        self.rng = rng
        self.statevector_max_qubits = statevector_max_qubits
        self.nonclifford_backend = nonclifford_backend
        self.noise = noise
        self.parallel = parallel
        self.backend = backend
        self.router = router
        self.pool = pool
        if cache is True:
            cache = VariantCache()
        elif cache is False:
            cache = None
        self.variant_cache: VariantCache | None = cache

    name = "supersim"

    # -- pipeline pieces ------------------------------------------------------

    def cut(self, circuit: Circuit, cuts: list[Cut] | None = None) -> CutCircuit:
        if cuts is None:
            cuts = find_cuts(circuit, self.strategy)
        if len(cuts) > self.max_cuts:
            raise ValueError(
                f"{len(cuts)} cuts would need 4^{len(cuts)} reconstruction "
                f"terms (max_cuts={self.max_cuts}); SuperSim targets "
                "near-Clifford circuits with few non-Clifford gates"
            )
        return cut_circuit(circuit, cuts)

    def _evaluator(self) -> FragmentEvaluator:
        return FragmentEvaluator(
            shots=self.shots,
            clifford_shots=self.clifford_shots,
            rng=self.rng,
            statevector_max_qubits=self.statevector_max_qubits,
            nonclifford_backend=self.nonclifford_backend,
            noise=self.noise,
            parallel=self.parallel,
            backend=self.backend,
            router=self.router,
            cache=self.variant_cache,
            pool=self.pool,
        )

    # -- main entry points --------------------------------------------------------

    def run(
        self,
        circuit: Circuit,
        keep_qubits: list[int] | None = None,
        cuts: list[Cut] | None = None,
    ) -> SuperSimResult:
        """Cut, evaluate and reconstruct the distribution over ``keep_qubits``
        (default: the circuit's measured qubits)."""
        if keep_qubits is None:
            keep_qubits = list(circuit.measured_qubits)
        timings: dict[str, float] = {}

        start = time.perf_counter()
        cc = self.cut(circuit, cuts)
        timings["cut"] = time.perf_counter() - start

        start = time.perf_counter()
        evaluator = self._evaluator()
        fragment_data = evaluator.evaluate_all(cc.fragments)
        timings["evaluate"] = time.perf_counter() - start
        timings["cache_hits"] = float(evaluator.last_stats.get("cache_hits", 0))
        timings["cache_misses"] = float(evaluator.last_stats.get("cache_misses", 0))
        backend_usage = dict(evaluator.last_stats.get("backends", {}))

        start = time.perf_counter()
        keep_set = set(keep_qubits)
        kept_locals: list[list[int]] = []
        for fragment in cc.fragments:
            kept_locals.append(
                [lq for oq, lq in fragment.circuit_outputs if oq in keep_set]
            )
        tensors = [
            build_fragment_tensor(
                data,
                kept,
                snap_clifford=self.snap_clifford,
                project=self.tomography and self.shots is not None,
            )
            for data, kept in zip(fragment_data, kept_locals)
        ]
        timings["tomography"] = time.perf_counter() - start

        start = time.perf_counter()
        raw, stats = reconstruct_distribution(
            cc,
            tensors,
            kept_locals,
            keep_qubits,
            prune_zeros=self.prune_zeros,
        )
        timings["reconstruct"] = time.perf_counter() - start

        cleaned = raw.clipped() if len(raw) else raw
        return SuperSimResult(
            distribution=cleaned,
            cut_circuit=cc,
            stats=stats,
            timings=timings,
            raw_distribution=raw,
            backend_usage=backend_usage,
        )

    def probabilities(self, circuit: Circuit) -> Distribution:
        """Reconstructed distribution over the circuit's measured qubits."""
        return self.run(circuit).distribution

    def sparse_probabilities(
        self,
        circuit: Circuit,
        keep_qubits: list[int] | None = None,
        max_support: int = 1_000_000,
    ) -> Distribution:
        """Full-distribution reconstruction for sparse outputs at any width.

        Avoids the dense ``2^n`` accumulator: fragment tensors and the
        recombination are dictionary-valued, so cost scales with the actual
        support of the output distribution (e.g. the repetition-code
        benchmark at 31 qubits) rather than with ``2^n``.
        """
        from repro.core.reconstruction import reconstruct_sparse_distribution
        from repro.core.tomography import build_sparse_fragment_tensor

        if keep_qubits is None:
            keep_qubits = list(circuit.measured_qubits)
        cc = self.cut(circuit)
        fragment_data = self._evaluator().evaluate_all(cc.fragments)
        keep_set = set(keep_qubits)
        kept_locals = [
            [lq for oq, lq in fragment.circuit_outputs if oq in keep_set]
            for fragment in cc.fragments
        ]
        tensors = [
            build_sparse_fragment_tensor(
                data, kept, snap_clifford=self.snap_clifford
            )
            for data, kept in zip(fragment_data, kept_locals)
        ]
        dist, _stats = reconstruct_sparse_distribution(
            cc,
            tensors,
            kept_locals,
            keep_qubits,
            prune_zeros=self.prune_zeros,
            max_support=max_support,
        )
        return dist.clipped() if len(dist) else dist

    def single_qubit_marginals(self, circuit: Circuit) -> np.ndarray:
        """Exact per-qubit marginals at any width (the 300-qubit mode).

        Fragments are evaluated once; each qubit's marginal is a separate
        cheap reconstruction, so no ``2^n`` object is ever built.
        """
        cc = self.cut(circuit)
        evaluator = self._evaluator()
        fragment_data = evaluator.evaluate_all(cc.fragments)
        qubits = list(circuit.measured_qubits)
        out = np.zeros((len(qubits), 2))
        for row, qubit in enumerate(qubits):
            kept_locals = []
            for fragment in cc.fragments:
                kept_locals.append(
                    [lq for oq, lq in fragment.circuit_outputs if oq == qubit]
                )
            tensors = [
                build_fragment_tensor(
                    data, kept, snap_clifford=self.snap_clifford,
                    project=self.tomography and self.shots is not None,
                )
                for data, kept in zip(fragment_data, kept_locals)
            ]
            dist, _ = reconstruct_distribution(
                cc, tensors, kept_locals, [qubit], prune_zeros=self.prune_zeros
            )
            marginal = dist.clipped()
            out[row, 0] = marginal[0]
            out[row, 1] = marginal[1]
        return out

    def expectation(self, circuit: Circuit, pauli) -> float:
        """``<P>`` of the circuit's output state at any width.

        Basis rotations reduce the Pauli to a Z-parity on its support, and
        the reconstruction keeps only those qubits, so wide near-Clifford
        circuits stay cheap (this is the primitive behind near-CAFQA VQE
        scoring).
        """
        from repro.apps.vqe import pauli_expectation

        return pauli_expectation(circuit, pauli, self)

    def probability_of(self, circuit: Circuit, outcome_bits) -> float:
        """Strong simulation: the probability of one bitstring.

        Evaluates each fragment's tensor at the fixed outcome only (point
        queries against the affine fragment data), so the cost is ``4^k``
        scalar products at *any* circuit width — the paper's §V-C claim that
        single-bitstring probabilities come "to machine precision without
        added computational overheads".
        """
        from repro.core.tomography import fragment_tensor_at

        qubits = list(circuit.measured_qubits)
        outcome_bits = [int(b) for b in outcome_bits]
        if len(outcome_bits) != len(qubits):
            raise ValueError("bitstring length does not match measured qubits")
        bit_of = dict(zip(qubits, outcome_bits))
        cc = self.cut(circuit)
        fragment_data = self._evaluator().evaluate_all(cc.fragments)
        scalar_tensors = []
        axis_cuts = []
        for fragment, data in zip(cc.fragments, fragment_data):
            fixed = {
                lq: bit_of[oq]
                for oq, lq in fragment.circuit_outputs
                if oq in bit_of
            }
            scalar_tensors.append(
                fragment_tensor_at(data, fixed, snap_clifford=self.snap_clifford)
            )
            axis_cuts.append(
                [c for c, _ in fragment.quantum_inputs]
                + [c for c, _ in fragment.quantum_outputs]
            )
        import itertools

        k = cc.num_cuts
        total = 0.0
        for assignment in itertools.product(range(4), repeat=k):
            term = 1.0
            for tensor, cuts in zip(scalar_tensors, axis_cuts):
                term *= tensor[tuple(assignment[c] for c in cuts)]
                if term == 0.0:
                    break
            total += term
        return total / 2.0**k
