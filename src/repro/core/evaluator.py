"""Fragment evaluation: route every variant to the cheapest backend (§V-B).

The original dispatch — Clifford fragments to the stabilizer simulator,
everything else to statevector — is now one particular outcome of
capability-based routing: a :class:`~repro.backends.router.BackendRouter`
scores every registered backend's cost model against each fragment's
features (width, Clifford-ness, T-count, entangling depth) and picks the
cheapest capable one.  This is the heart of SuperSim's speed — the wide
fragments are Clifford and cheap, the non-Clifford fragments are narrow
and cheap — and it now extends to the paper's §XI backends (MPS, extended
stabilizer, CH form) without code changes here.

Evaluation is *batched*: ``evaluate_all`` flattens the variants of every
fragment into one job list, deduplicates it through a content-addressed
:class:`~repro.backends.cache.VariantCache` (identical variant circuits —
common in parameter sweeps and across symmetric fragments — are simulated
once), and executes the surviving jobs on a thread or process pool chosen
from the backends' capability hints (§X: variant simulations are
independent and parallelise trivially; numpy releases the GIL in the
heavy kernels).

Per-job seeds are derived from the evaluator's root seed *and* the variant
fingerprint, never from submission order, so sampled results are
reproducible bit-for-bit at any parallelism.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.distributions import Distribution, pack_bit_rows
from repro.backends.base import Backend, CircuitFeatures
from repro.backends.cache import VariantCache, circuit_fingerprint
from repro.backends.router import BackendRouter
from repro.core.fragments import Fragment
from repro.core.variants import all_variants, variant_circuit


class VariantData:
    """Results of one variant: outcome statistics over all fragment qubits.

    ``joint(cols)`` returns the (exact or empirical) distribution over the
    selected bit columns, in the order given.
    """

    def joint(self, cols: list[int]) -> Distribution:
        raise NotImplementedError

    def probability_at(self, cols: list[int], bits) -> float:
        """Point query: P(selected columns == bits)."""
        dist = self.joint(cols)
        key = 0
        for b in bits:
            key = (key << 1) | int(b)
        return dist[key]


class AffineVariantData(VariantData):
    """Exact Clifford variant result in affine-subspace form."""

    def __init__(self, affine):
        self.affine = affine

    def joint(self, cols: list[int]) -> Distribution:
        return self.affine.marginal_distribution(cols)

    def probability_at(self, cols: list[int], bits) -> float:
        # avoids enumerating the (possibly huge) marginal support
        return self.affine.probability_of_partial(cols, bits)


class DenseVariantData(VariantData):
    """Exact result held as a full distribution (small fragments)."""

    def __init__(self, distribution: Distribution):
        self.distribution = distribution

    def joint(self, cols: list[int]) -> Distribution:
        return self.distribution.marginal(cols)


class SampledVariantData(VariantData):
    """Empirical result from finite shots, stored as a bit matrix."""

    def __init__(self, bits: np.ndarray):
        self.bits = np.asarray(bits, dtype=bool)

    def _keys(self, cols: list[int]) -> np.ndarray:
        """Per-shot integer outcome over ``cols`` via a bit-weight dot product."""
        return pack_bit_rows(self.bits[:, cols])

    def joint(self, cols: list[int]) -> Distribution:
        return Distribution.from_bit_rows(self.bits[:, cols])

    def probability_at(self, cols: list[int], bits) -> float:
        target = 0
        for b in bits:
            target = (target << 1) | int(b)
        matches = np.count_nonzero(self._keys(cols) == target)
        return float(matches) / self.bits.shape[0]


class FragmentData:
    """All variant results for one fragment."""

    def __init__(self, fragment: Fragment, results):
        self.fragment = fragment
        self.results: dict[tuple[tuple[int, ...], tuple[int, ...]], VariantData] = (
            results
        )

    def variant(self, preps, bases) -> VariantData:
        return self.results[(tuple(preps), tuple(bases))]

    @property
    def num_variants(self) -> int:
        return len(self.results)


class _Job:
    """One deduplicated unit of simulation work."""

    __slots__ = ("key", "backend", "circuit", "shots", "seed", "noise", "affine")

    def __init__(self, key, backend, circuit, shots, seed, noise, affine):
        self.key = key
        self.backend = backend
        self.circuit = circuit
        self.shots = shots
        self.seed = seed
        self.noise = noise
        self.affine = affine


def _execute_job(job: _Job) -> VariantData:
    """Simulate one variant (module-level so process pools can pickle it)."""
    rng = np.random.default_rng(np.random.SeedSequence(job.seed))
    if job.noise is not None:
        return SampledVariantData(
            job.backend.sample_noisy_bits(job.circuit, job.noise, job.shots, rng)
        )
    if job.affine:
        affine = job.backend.affine_distribution(job.circuit)
        if job.shots is None:
            return AffineVariantData(affine)
        return SampledVariantData(affine.sample_bits(job.shots, rng))
    if job.shots is None:
        return DenseVariantData(job.backend.probabilities(job.circuit))
    return DenseVariantData(job.backend.sample(job.circuit, job.shots, rng))


class FragmentEvaluator:
    """Evaluates fragments through the backend router and batch engine.

    ``shots=None`` gives exact fragment evaluation (the mode used for the
    paper-style accuracy claims); an integer samples each variant, with
    ``clifford_shots`` optionally lowering the shot count on Clifford
    fragments (Section IX: Clifford Pauli expectations are in {-1, 0, +1},
    so far fewer shots identify them).

    Backend selection, per fragment:

    * ``backend`` (string name or :class:`~repro.backends.base.Backend`)
      forces that backend for every fragment it can handle;
    * ``nonclifford_backend`` — the original §XI extension point — forces a
      backend for non-Clifford fragments only (any object with
      ``probabilities``/``sample`` is adapted automatically);
    * otherwise the ``router`` picks the cheapest capable backend.

    ``noise`` (§IV-A, noisy QEC studies) applies a
    :class:`repro.stabilizer.NoiseModel` to *Clifford* fragments via
    Pauli-frame sampling, forcing sampled evaluation of those fragments
    through a noise-capable backend.  Non-Clifford fragments stay
    noiseless — in the paper's setting they carry the coherent (non-Pauli)
    part of the error model as explicit gates.

    ``cache`` is an optional :class:`~repro.backends.cache.VariantCache`;
    share one instance across evaluators (as ``SuperSim`` does) to carry
    results between ``run()`` calls.
    """

    def __init__(
        self,
        shots: int | None = None,
        clifford_shots: int | None = None,
        rng: np.random.Generator | int | None = None,
        statevector_max_qubits: int = 20,
        nonclifford_backend=None,
        noise=None,
        parallel: int = 1,
        backend: str | Backend | None = None,
        router: BackendRouter | None = None,
        cache: VariantCache | None = None,
        pool: str | None = None,
        assignments: dict[int, Backend] | None = None,
        executor=None,
        executor_kind: str | None = None,
    ):
        from repro.backends import as_backend, get_backend

        self.shots = shots
        self.clifford_shots = clifford_shots if clifford_shots is not None else shots
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.noise = noise
        self.parallel = max(1, int(parallel))
        self.cache = cache
        if pool not in (None, "thread", "process"):
            raise ValueError(
                f"pool must be 'thread', 'process' or None, got {pool!r}"
            )
        self.pool = pool
        if router is None:
            from repro.backends import default_backend_pool

            router = BackendRouter(default_backend_pool(statevector_max_qubits))
        self.router = router
        self.forced = get_backend(backend) if backend is not None else None
        self.nonclifford_backend = (
            as_backend(nonclifford_backend) if nonclifford_backend is not None else None
        )
        self.assignments = dict(assignments) if assignments else {}
        self.executor = executor
        self.executor_kind = executor_kind
        self.last_stats: dict = {}
        if noise is not None and shots is None:
            raise ValueError("noisy fragment evaluation requires finite shots")

    @classmethod
    def from_configs(
        cls,
        sampling=None,
        execution=None,
        cache: VariantCache | None = None,
        assignments: dict[int, Backend] | None = None,
        executor=None,
        executor_kind: str | None = None,
    ) -> "FragmentEvaluator":
        """Build an evaluator from typed config objects.

        ``cache`` overrides ``execution.cache`` with a resolved instance
        (``SuperSim`` passes its own long-lived cache here); when omitted,
        ``execution.cache=True`` builds a private one.
        """
        from repro.core.config import ExecutionConfig, SamplingConfig

        from repro.backends.cache import resolve_cache

        sampling = sampling if sampling is not None else SamplingConfig()
        execution = execution if execution is not None else ExecutionConfig()
        if cache is None:
            cache = resolve_cache(execution.cache)
        return cls(
            shots=sampling.shots,
            clifford_shots=sampling.clifford_shots,
            rng=sampling.seed,
            statevector_max_qubits=execution.statevector_max_qubits,
            nonclifford_backend=execution.nonclifford_backend,
            noise=sampling.noise,
            parallel=execution.parallel,
            backend=execution.backend,
            router=execution.router,
            cache=cache,
            pool=execution.pool,
            assignments=assignments,
            executor=executor,
            executor_kind=executor_kind,
        )

    # -- routing --------------------------------------------------------------

    def _backend_for(self, fragment: Fragment) -> tuple[Backend, bool]:
        """(backend, noisy) for a fragment.

        All variants of a fragment share width and Clifford-ness (variants
        add only single-qubit Clifford preparation/basis ops), so routing
        is per fragment, not per variant.
        """
        features = CircuitFeatures.from_circuit(fragment.circuit)
        exact = self.shots is None
        noisy = self.noise is not None and fragment.is_clifford
        assigned = self.assignments.get(fragment.index)
        if assigned is not None:
            # a plan-level assignment (validated at planning time) wins
            # over forcing and routing; the noise mode still applies
            return assigned, noisy
        if noisy:
            # Pauli-frame sampling needs a noise-capable backend
            if self.forced is not None and self.forced.can_handle(
                features, exact=False, noisy=True
            ):
                return self.forced, True
            return self.router.select(features, exact=False, noisy=True), True
        if self.forced is not None and self.forced.can_handle(
            features, exact=exact
        ):
            return self.forced, False
        if not fragment.is_clifford and self.nonclifford_backend is not None:
            return self.nonclifford_backend, False
        return self.router.select(features, exact=exact), False

    # -- batch engine ---------------------------------------------------------

    def _build_jobs(self, fragments: list[Fragment], root_seed: int):
        """Flatten fragment x variant work into deduplicated jobs.

        Returns ``(assignments, unique_jobs)``: ``assignments`` maps every
        (fragment index, preps, bases) triple to its job key, and
        ``unique_jobs`` holds one job per distinct key.  Keys combine the
        variant circuit's content fingerprint with the backend's
        configuration token and the evaluation mode (exact, or shot count
        plus seed, plus the noise model's content fingerprint), so a hit is
        guaranteed to describe an identical simulation.
        """
        from repro.backends.cache import noise_fingerprint

        assignments: list[tuple[int, tuple, tuple, tuple]] = []
        unique: dict[tuple, _Job] = {}
        noise_key = noise_fingerprint(self.noise)
        for index, fragment in enumerate(fragments):
            backend, noisy = self._backend_for(fragment)
            if self.shots is None:
                # exact mode is exact for every fragment; clifford_shots
                # only rebalances *sampled* evaluation
                eff_shots = None
            elif fragment.is_clifford:
                eff_shots = self.clifford_shots
            else:
                eff_shots = self.shots
            use_affine = (
                backend.capabilities.affine and fragment.is_clifford and not noisy
            )
            noise = self.noise if noisy else None
            backend_key = backend.cache_token()
            for preps, bases in all_variants(fragment):
                circuit = variant_circuit(fragment, preps, bases)
                fp = circuit_fingerprint(circuit)
                seed = (root_seed, int(fp[:16], 16))
                if eff_shots is None:
                    mode: tuple = ("exact",)
                else:
                    # sampled results depend on the per-job seed, so key it
                    mode = ("shots", eff_shots, seed)
                key = (fp, backend_key, noise_key if noisy else None) + mode
                assignments.append((index, preps, bases, key))
                if key not in unique:
                    unique[key] = _Job(
                        key, backend, circuit, eff_shots, seed, noise, use_affine
                    )
        return assignments, unique

    def _run_jobs(self, jobs: list[_Job]) -> dict[tuple, VariantData]:
        """Execute jobs on the pool implied by the backends' capabilities.

        Python-bound backends (``capabilities.pool == "process"``: CH form,
        MPS, extended stabilizer — interpreters loops, not GIL-releasing
        kernels) default to a *process* pool sized by ``os.cpu_count()``
        even when ``parallel`` was left at 1; per-variant seeds derive from
        the root seed and the variant fingerprint, so results are
        bit-for-bit identical at any worker count.  Numpy-kernel backends
        keep the thread pool (and stay serial unless ``parallel`` > 1).
        Each deduplicated job's circuit payload is pickled exactly once —
        the batch is chunked across workers, and the variant cache has
        already removed duplicate circuits.
        """
        if not jobs:
            return {}
        import os

        pool = self.pool
        if pool is None:
            pool = (
                "process"
                if any(j.backend.capabilities.pool == "process" for j in jobs)
                else "thread"
            )
        workers = self.parallel
        if workers <= 1 and pool == "process" and self.pool is None:
            # only auto-upgrade where workers fork: under a spawn start
            # method (macOS/Windows default) a guard-less user script
            # would re-execute itself in every worker.  allow_none avoids
            # fixing the global start method as a library side effect.
            import multiprocessing
            import sys

            method = multiprocessing.get_start_method(allow_none=True)
            if method is None:
                method = "fork" if sys.platform.startswith("linux") else "spawn"
            if method == "fork":
                workers = os.cpu_count() or 1
        workers = min(workers, len(jobs))
        shared = (
            self.executor is not None
            and len(jobs) > 1
            and (self.executor_kind is None or self.executor_kind == pool)
        )
        self.last_stats["pool"] = (
            self.executor_kind or pool if shared else pool
        )
        self.last_stats["workers"] = workers
        if shared:
            # a long-lived executor shared across runs (sweep batches);
            # only taken when its kind matches the jobs' resolved pool, so
            # process-preferring backends never silently land on threads
            values = list(self.executor.map(_execute_job, jobs))
        elif workers > 1 and len(jobs) > 1:
            if pool == "process":
                from concurrent.futures import ProcessPoolExecutor as Executor
            else:
                from concurrent.futures import ThreadPoolExecutor as Executor

            chunksize = max(1, len(jobs) // (workers * 4)) if pool == "process" else 1
            with Executor(max_workers=workers) as executor:
                values = list(
                    executor.map(_execute_job, jobs, chunksize=chunksize)
                )
        else:
            values = [_execute_job(job) for job in jobs]
        return {job.key: value for job, value in zip(jobs, values)}

    def dry_run(self, fragments: list[Fragment]) -> dict:
        """Plan the job batch without simulating anything.

        Returns the same shape of stats ``evaluate_all`` would record —
        total and unique job counts, per-backend variant usage, and (in
        exact mode, where cache keys are seed-free) how many unique jobs
        the cache would satisfy.  Sampled-mode keys include the root seed,
        which is only drawn at execution time, so cache hits are reported
        as ``None`` there.
        """
        assignments, unique = self._build_jobs(list(fragments), root_seed=0)
        usage: dict[str, int] = {}
        for job in unique.values():
            usage[job.backend.name] = usage.get(job.backend.name, 0) + 1
        cached: int | None = None
        if self.shots is None and self.cache is not None:
            cached = sum(1 for key in unique if key in self.cache)
        return {
            "jobs": len(assignments),
            "unique_jobs": len(unique),
            "cached_jobs": cached,
            "backends": usage,
        }

    def evaluate_all(self, fragments: list[Fragment]) -> list[FragmentData]:
        """Evaluate every variant of every fragment through one batched pool.

        Fragment x variant jobs are flattened together, so parallelism is
        not bounded by any single fragment's variant count, and the cache
        deduplicates identical variants both within and across calls.
        """
        root_seed = int(self.rng.integers(2**63))
        assignments, unique = self._build_jobs(list(fragments), root_seed)
        cached: dict[tuple, VariantData] = {}
        if self.cache is not None:
            for key in list(unique):
                value = self.cache.get(key)
                if value is not None:
                    cached[key] = value
                    del unique[key]
        hits = len(cached)
        usage: dict[str, int] = {}
        for job in unique.values():
            usage[job.backend.name] = usage.get(job.backend.name, 0) + 1
        self.last_stats = {
            "jobs": len(assignments),
            "unique_jobs": len(unique) + hits,
            "cache_hits": hits,
            "cache_misses": len(unique),
            "backends": usage,
        }
        computed = self._run_jobs(list(unique.values()))
        if self.cache is not None:
            for key, value in computed.items():
                self.cache.put(key, value)
        computed.update(cached)
        per_fragment: list[dict] = [{} for _ in fragments]
        for index, preps, bases, key in assignments:
            per_fragment[index][(preps, bases)] = computed[key]
        return [
            FragmentData(fragment, results)
            for fragment, results in zip(fragments, per_fragment)
        ]

    def evaluate(self, fragment: Fragment) -> FragmentData:
        return self.evaluate_all([fragment])[0]
