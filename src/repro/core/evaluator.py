"""Fragment evaluation: run every variant on the right backend (paper §V-B).

Clifford fragments go to the stabilizer simulator — exactly (affine-subspace
output distributions, any width) or with finite shots; non-Clifford
fragments go to the statevector simulator.  This dispatch is the heart of
SuperSim's speed: the wide fragments are Clifford and cheap, the
non-Clifford fragments are narrow and cheap.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.distributions import Distribution
from repro.core.fragments import Fragment
from repro.core.variants import all_variants, variant_circuit
from repro.stabilizer.simulator import StabilizerSimulator
from repro.stabilizer.tableau import AffineOutcomeDistribution
from repro.statevector.simulator import StatevectorSimulator


class VariantData:
    """Results of one variant: outcome statistics over all fragment qubits.

    ``joint(cols)`` returns the (exact or empirical) distribution over the
    selected bit columns, in the order given.
    """

    def joint(self, cols: list[int]) -> Distribution:
        raise NotImplementedError

    def probability_at(self, cols: list[int], bits) -> float:
        """Point query: P(selected columns == bits)."""
        dist = self.joint(cols)
        key = 0
        for b in bits:
            key = (key << 1) | int(b)
        return dist[key]


class AffineVariantData(VariantData):
    """Exact Clifford variant result in affine-subspace form."""

    def __init__(self, affine: AffineOutcomeDistribution):
        self.affine = affine

    def joint(self, cols: list[int]) -> Distribution:
        return self.affine.marginal_distribution(cols)

    def probability_at(self, cols: list[int], bits) -> float:
        # avoids enumerating the (possibly huge) marginal support
        return self.affine.probability_of_partial(cols, bits)


class DenseVariantData(VariantData):
    """Exact result held as a full distribution (small fragments)."""

    def __init__(self, distribution: Distribution):
        self.distribution = distribution

    def joint(self, cols: list[int]) -> Distribution:
        return self.distribution.marginal(cols)


class SampledVariantData(VariantData):
    """Empirical result from finite shots, stored as a bit matrix."""

    def __init__(self, bits: np.ndarray):
        self.bits = np.asarray(bits, dtype=bool)

    def joint(self, cols: list[int]) -> Distribution:
        sub = self.bits[:, cols]
        counts: dict[int, int] = {}
        for row in sub:
            key = 0
            for b in row:
                key = (key << 1) | int(b)
            counts[key] = counts.get(key, 0) + 1
        return Distribution.from_counts(len(cols), counts)

    def probability_at(self, cols: list[int], bits) -> float:
        target = np.asarray(bits, dtype=bool)
        matches = np.all(self.bits[:, cols] == target[None, :], axis=1)
        return float(np.count_nonzero(matches)) / self.bits.shape[0]


class FragmentData:
    """All variant results for one fragment."""

    def __init__(self, fragment: Fragment, results):
        self.fragment = fragment
        self.results: dict[tuple[tuple[int, ...], tuple[int, ...]], VariantData] = (
            results
        )

    def variant(self, preps, bases) -> VariantData:
        return self.results[(tuple(preps), tuple(bases))]

    @property
    def num_variants(self) -> int:
        return len(self.results)


class FragmentEvaluator:
    """Evaluates fragments, dispatching by Clifford-ness.

    ``shots=None`` gives exact fragment evaluation (the mode used for the
    paper-style accuracy claims); an integer samples each variant, with
    ``clifford_shots`` optionally lowering the shot count on Clifford
    fragments (Section IX: Clifford Pauli expectations are in {-1, 0, +1},
    so far fewer shots identify them).

    Extension points from the paper's roadmap:

    * ``nonclifford_backend`` (§XI, additional fragment evaluators): any
      object with ``probabilities(circuit)`` and ``sample(circuit, shots,
      rng)`` — e.g. :class:`repro.mps.MPSSimulator` for larger non-Clifford
      fragments;
    * ``noise`` (§IV-A, noisy QEC studies): a
      :class:`repro.stabilizer.NoiseModel` applied to *Clifford* fragments
      via Pauli-frame sampling (forces sampled evaluation of those
      fragments).  Non-Clifford fragments stay noiseless — in the paper's
      setting they carry the coherent (non-Pauli) part of the error model
      as explicit gates.
    """

    def __init__(
        self,
        shots: int | None = None,
        clifford_shots: int | None = None,
        rng: np.random.Generator | int | None = None,
        statevector_max_qubits: int = 20,
        nonclifford_backend=None,
        noise=None,
        parallel: int = 1,
    ):
        self.shots = shots
        self.clifford_shots = clifford_shots if clifford_shots is not None else shots
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.stabilizer = StabilizerSimulator()
        self.nonclifford_backend = nonclifford_backend or StatevectorSimulator(
            max_qubits=statevector_max_qubits
        )
        self.noise = noise
        self.parallel = max(1, int(parallel))
        if noise is not None and shots is None:
            raise ValueError("noisy fragment evaluation requires finite shots")

    def _evaluate_variant(self, fragment, preps, bases, seed) -> VariantData:
        circuit = variant_circuit(fragment, preps, bases)
        rng = np.random.default_rng(seed)
        if fragment.is_clifford:
            if self.noise is not None:
                from repro.stabilizer.frames import FrameSampler

                sampler = FrameSampler(circuit, self.noise)
                return SampledVariantData(
                    sampler.sample_bits(self.clifford_shots, rng)
                )
            affine = self.stabilizer.affine_distribution(circuit)
            if self.shots is None:
                return AffineVariantData(affine)
            return SampledVariantData(
                affine.sample_bits(self.clifford_shots, rng)
            )
        if self.shots is None:
            return DenseVariantData(self.nonclifford_backend.probabilities(circuit))
        return DenseVariantData(
            self.nonclifford_backend.sample(circuit, self.shots, rng)
        )

    def evaluate(self, fragment: Fragment) -> FragmentData:
        jobs = [
            (preps, bases, int(self.rng.integers(2**63)))
            for preps, bases in all_variants(fragment)
        ]
        if self.parallel > 1 and len(jobs) > 1:
            # §X: variant simulations are independent and parallelise
            # trivially; numpy releases the GIL in the heavy kernels
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=self.parallel) as pool:
                values = list(
                    pool.map(
                        lambda job: self._evaluate_variant(fragment, *job), jobs
                    )
                )
        else:
            values = [self._evaluate_variant(fragment, *job) for job in jobs]
        results = {
            (preps, bases): data
            for (preps, bases, _seed), data in zip(jobs, values)
        }
        return FragmentData(fragment, results)

    def evaluate_all(self, fragments: list[Fragment]) -> list[FragmentData]:
        return [self.evaluate(f) for f in fragments]
