"""Fragment evaluation: route every variant to the cheapest backend (§V-B).

The original dispatch — Clifford fragments to the stabilizer simulator,
everything else to statevector — is now one particular outcome of
capability-based routing: a :class:`~repro.backends.router.BackendRouter`
scores every registered backend's cost model against each fragment's
features (width, Clifford-ness, T-count, entangling depth) and picks the
cheapest capable one.  This is the heart of SuperSim's speed — the wide
fragments are Clifford and cheap, the non-Clifford fragments are narrow
and cheap — and it now extends to the paper's §XI backends (MPS, extended
stabilizer, CH form) without code changes here.

Evaluation is *batched*: ``evaluate_all`` flattens the variants of every
fragment into one job list, deduplicates it through a content-addressed
:class:`~repro.backends.cache.VariantCache` (identical variant circuits —
common in parameter sweeps and across symmetric fragments — are simulated
once), and executes the surviving jobs on a thread or process pool chosen
from the backends' capability hints (§X: variant simulations are
independent and parallelise trivially; numpy releases the GIL in the
heavy kernels).

Per-job seeds are derived from the evaluator's root seed *and* the variant
fingerprint, never from submission order, so sampled results are
reproducible bit-for-bit at any parallelism.

Execution is fault tolerant: every job is submitted individually through
the :class:`_JobScheduler`, which retries transient backend failures with
capped exponential backoff, enforces per-job soft deadlines derived from
the calibrated cost model, self-heals a broken process pool (rebuilding it
and resubmitting the in-flight jobs, quarantining a job only after it was
in flight across ``max_job_crashes`` crashes), and — under
``failure_policy="degrade"`` — walks the router's cost-ordered fallback
chain.  A retried or fallen-back job reuses its fingerprint-derived seed,
so a run that survived faults is bit-for-bit identical to a clean one;
the survived faults are tallied in the evaluator's
:class:`~repro.errors.FaultReport`.
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, CancelledError, wait

import numpy as np

from repro.analysis.distributions import Distribution, pack_bit_rows
from repro.backends.base import Backend, CircuitFeatures
from repro.backends.cache import VariantCache, circuit_fingerprint
from repro.backends.router import BackendRouter
from repro.core.fragments import Fragment
from repro.core.variants import all_variants, variant_circuit
from repro.errors import (
    BackendExecutionError,
    FaultReport,
    JobTimeoutError,
    WorkerCrashError,
)


class VariantData:
    """Results of one variant: outcome statistics over all fragment qubits.

    ``joint(cols)`` returns the (exact or empirical) distribution over the
    selected bit columns, in the order given.
    """

    def joint(self, cols: list[int]) -> Distribution:
        raise NotImplementedError

    def probability_at(self, cols: list[int], bits) -> float:
        """Point query: P(selected columns == bits)."""
        dist = self.joint(cols)
        key = 0
        for b in bits:
            key = (key << 1) | int(b)
        return dist[key]


class AffineVariantData(VariantData):
    """Exact Clifford variant result in affine-subspace form."""

    def __init__(self, affine):
        self.affine = affine

    def joint(self, cols: list[int]) -> Distribution:
        return self.affine.marginal_distribution(cols)

    def probability_at(self, cols: list[int], bits) -> float:
        # avoids enumerating the (possibly huge) marginal support
        return self.affine.probability_of_partial(cols, bits)


class DenseVariantData(VariantData):
    """Exact result held as a full distribution (small fragments)."""

    def __init__(self, distribution: Distribution):
        self.distribution = distribution

    def joint(self, cols: list[int]) -> Distribution:
        return self.distribution.marginal(cols)


class SampledVariantData(VariantData):
    """Empirical result from finite shots, stored as a bit matrix."""

    def __init__(self, bits: np.ndarray):
        self.bits = np.asarray(bits, dtype=bool)

    def _keys(self, cols: list[int]) -> np.ndarray:
        """Per-shot integer outcome over ``cols`` via a bit-weight dot product."""
        return pack_bit_rows(self.bits[:, cols])

    def joint(self, cols: list[int]) -> Distribution:
        return Distribution.from_bit_rows(self.bits[:, cols])

    def probability_at(self, cols: list[int], bits) -> float:
        target = 0
        for b in bits:
            target = (target << 1) | int(b)
        matches = np.count_nonzero(self._keys(cols) == target)
        return float(matches) / self.bits.shape[0]


class FragmentData:
    """All variant results for one fragment."""

    def __init__(self, fragment: Fragment, results):
        self.fragment = fragment
        self.results: dict[tuple[tuple[int, ...], tuple[int, ...]], VariantData] = (
            results
        )

    def variant(self, preps, bases) -> VariantData:
        return self.results[(tuple(preps), tuple(bases))]

    @property
    def num_variants(self) -> int:
        return len(self.results)


class _Job:
    """One deduplicated unit of simulation work.

    ``fragment_index`` / ``features`` / ``is_clifford`` carry the context
    the fault-tolerance layer needs (error attribution, degrade-mode
    fallback routing); ``timeout`` is the job's soft deadline in seconds
    (``None`` = none); ``attempt`` counts known prior failures and is set
    by the scheduler before every (re)submission; ``chaos`` is the
    optional deterministic fault-injection schedule and ``in_process``
    tells the chaos harness whether a crash may be a real ``os._exit``.
    """

    __slots__ = (
        "key",
        "backend",
        "circuit",
        "shots",
        "seed",
        "noise",
        "affine",
        "fragment_index",
        "features",
        "is_clifford",
        "timeout",
        "attempt",
        "chaos",
        "in_process",
    )

    def __init__(
        self,
        key,
        backend,
        circuit,
        shots,
        seed,
        noise,
        affine,
        fragment_index=None,
        features=None,
        is_clifford=False,
        timeout=None,
        chaos=None,
    ):
        self.key = key
        self.backend = backend
        self.circuit = circuit
        self.shots = shots
        self.seed = seed
        self.noise = noise
        self.affine = affine
        self.fragment_index = fragment_index
        self.features = features
        self.is_clifford = is_clifford
        self.timeout = timeout
        self.attempt = 0
        self.chaos = chaos
        self.in_process = False

    @property
    def fingerprint(self) -> str:
        return self.key[0]


def _execute_job(job: _Job) -> VariantData:
    """Simulate one variant (module-level so process pools can pickle it)."""
    if job.chaos is not None:
        from repro.testing.chaos import perform_action

        action = job.chaos.action_for(
            job.fingerprint, job.attempt, backend=job.backend.name
        )
        if action is not None:
            perform_action(action, in_process_worker=job.in_process)
    rng = np.random.default_rng(np.random.SeedSequence(job.seed))
    if job.noise is not None:
        return SampledVariantData(
            job.backend.sample_noisy_bits(job.circuit, job.noise, job.shots, rng)
        )
    if job.affine:
        affine = job.backend.affine_distribution(job.circuit)
        if job.shots is None:
            return AffineVariantData(affine)
        return SampledVariantData(affine.sample_bits(job.shots, rng))
    if job.shots is None:
        return DenseVariantData(job.backend.probabilities(job.circuit))
    return DenseVariantData(job.backend.sample(job.circuit, job.shots, rng))


def _is_simulated_crash(exc: BaseException) -> bool:
    """Is this the chaos harness's stand-in for a worker crash?"""
    try:
        from repro.testing.chaos import SimulatedWorkerCrash
    except Exception:  # pragma: no cover - testing package always ships
        return False
    return isinstance(exc, SimulatedWorkerCrash)


class SharedExecutorPool:
    """A rebuildable executor handle shared across batch runs.

    ``SuperSim.sweep`` / ``run_many`` used to hand evaluators a raw
    executor; the fault-tolerant scheduler needs to *replace* a broken
    process pool mid-run, so the shared handle owns the executor and
    exposes :meth:`rebuild`.  Raw executors are still accepted everywhere
    a handle is — they just cannot self-heal across batch points.
    """

    def __init__(self, kind: str, workers: int):
        if kind not in ("thread", "process"):
            raise ValueError(f"kind must be 'thread' or 'process', got {kind!r}")
        self.kind = kind
        self.workers = max(1, int(workers))
        self.rebuilds = 0
        self.executor = self._make()

    def _make(self):
        if self.kind == "process":
            from concurrent.futures import ProcessPoolExecutor

            return ProcessPoolExecutor(max_workers=self.workers)
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(max_workers=self.workers)

    def rebuild(self):
        """Replace the executor (after ``BrokenProcessPool`` or a hang)."""
        try:
            self.executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass  # a broken pool may refuse a clean shutdown
        self.executor = self._make()
        self.rebuilds += 1
        return self.executor

    def shutdown(self, wait: bool = True) -> None:
        self.executor.shutdown(wait=wait, cancel_futures=not wait)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedExecutorPool({self.kind!r}, workers={self.workers}, "
            f"rebuilds={self.rebuilds})"
        )


class _JobState:
    """Mutable per-job fault bookkeeping, scheduler side.

    ``failures`` counts raised exceptions and soft-timeouts on the job's
    *current* backend (reset on a degrade-mode fallback); ``crashes``
    counts worker crashes the job was in flight for; ``tried`` lists the
    backend names already attempted, so fallback never revisits one.
    """

    __slots__ = ("job", "failures", "crashes", "tried")

    def __init__(self, job: _Job):
        self.job = job
        self.failures = 0
        self.crashes = 0
        self.tried = [job.backend.name]


class _JobScheduler:
    """Futures-based per-job engine implementing the failure policy.

    Replaces the fire-and-forget ``executor.map`` batch.  Jobs are
    submitted individually with in-flight submissions bounded by the
    worker count (so a soft deadline measures *run* time, not queue
    time); completions, failures and deadline misses are handled per job:

    * ``failure_policy="raise"`` — fail fast with a contextful
      :class:`~repro.errors.ReproError` subclass;
    * ``"retry"`` — capped exponential backoff up to ``max_retries``
      per job, then raise;
    * ``"degrade"`` — like retry, but an exhausted job falls back to the
      next-cheapest capable backend in the router's cost ordering (its
      result is kept out of the cross-run cache).

    A ``BrokenProcessPool`` triggers self-healing: finished results are
    harvested, the pool is rebuilt (through the shared handle's
    ``rebuild()`` when one is in use), and every unfinished in-flight job
    is charged one crash and resubmitted — attribution is heuristic, so a
    job is quarantined as poison only after ``max_job_crashes`` crashes
    with it in flight.  Determinism is untouched throughout: resubmitted
    jobs reuse their fingerprint-derived seeds.
    """

    def __init__(
        self,
        ev: "FragmentEvaluator",
        jobs: list[_Job],
        pool: str,
        workers: int,
        shared=None,
    ):
        self.ev = ev
        self.jobs = jobs
        self.pool = pool
        self.workers = max(1, int(workers))
        self.shared = shared  # SharedExecutorPool (or raw executor) or None
        self.own_executor = shared is None
        self.executor = None
        self.results: dict[tuple, VariantData] = {}
        self.degraded: set[tuple] = set()
        self.states = {job.key: _JobState(job) for job in jobs}
        self.pending: list[tuple[float, int, _Job]] = []  # (ready, seq, job)
        self.inflight: dict = {}  # future -> (job, deadline | None)
        self._seq = 0

    # -- policy ---------------------------------------------------------------

    @property
    def policy(self) -> str:
        return self.ev.failure_policy

    def _record(self, kind: str, job: _Job, detail: str = "") -> None:
        self.ev.faults.record(
            kind,
            fragment_index=job.fragment_index,
            backend=job.backend.name,
            attempt=job.attempt,
            detail=detail,
        )

    def _context(self, state: _JobState) -> dict:
        return {
            "fragment_index": state.job.fragment_index,
            "backend": state.job.backend.name,
            "attempts": state.failures + state.crashes,
        }

    def _backoff(self, n: int) -> float:
        base = self.ev.retry_backoff
        if base <= 0:
            return 0.0
        return min(self.ev.retry_backoff_cap, base * (2.0 ** (n - 1)))

    def _next_fallback(self, state: _JobState):
        """The cheapest capable backend not yet tried, or ``None``."""
        job = state.job
        if job.features is None:
            return None
        try:
            ranked = self.ev.router.ranked(
                job.features,
                exact=job.shots is None,
                noisy=job.noise is not None,
            )
        except Exception:
            return None
        for cand in ranked:
            if cand.name not in state.tried:
                return cand
        return None

    def _fall_back(self, state: _JobState, reason: str) -> bool:
        """Swap the job onto the next capable backend (degrade mode)."""
        cand = self._next_fallback(state)
        if cand is None:
            return False
        job = state.job
        self._record(
            "fallback", job, detail=f"{job.backend.name} -> {cand.name} after {reason}"
        )
        state.tried.append(cand.name)
        job.backend = cand
        job.affine = bool(
            cand.capabilities.affine and job.is_clifford and job.noise is None
        )
        state.failures = 0
        state.crashes = 0
        # the value will come from a different backend than the cache key
        # names: usable for this run, but never stored cross-run
        self.degraded.add(job.key)
        return True

    def _handle_failure(self, state: _JobState, exc: BaseException) -> float:
        """Policy decision after a raised backend exception.

        Returns the backoff delay before resubmission, or raises when the
        policy says the run is over.
        """
        job = state.job
        if self.policy == "raise":
            raise BackendExecutionError(
                f"backend raised while simulating a variant: {exc!r}",
                **self._context(state),
            ) from exc
        state.failures += 1
        detail = f"{type(exc).__name__}: {exc}"
        if state.failures <= self.ev.max_retries:
            self._record("retry", job, detail=detail)
            return self._backoff(state.failures)
        if self.policy == "degrade" and self._fall_back(state, detail):
            return 0.0
        raise BackendExecutionError(
            f"retries exhausted: {exc!r}", **self._context(state)
        ) from exc

    def _handle_timeout(self, state: _JobState) -> float:
        """Policy decision after a job exceeded its soft deadline."""
        job = state.job
        if self.policy == "raise":
            raise JobTimeoutError(
                "variant exceeded its soft deadline",
                timeout=job.timeout,
                **self._context(state),
            )
        state.failures += 1
        if state.failures <= self.ev.max_retries:
            self._record(
                "timeout", job, detail=f"soft deadline {job.timeout:.3g}s exceeded"
            )
            return self._backoff(state.failures)
        if self.policy == "degrade" and self._fall_back(state, "repeated soft-timeouts"):
            return 0.0
        raise JobTimeoutError(
            "soft deadline exceeded and retries exhausted",
            timeout=job.timeout,
            **self._context(state),
        )

    def _handle_crash(self, state: _JobState, detail: str) -> float:
        """Policy decision after a worker crashed with this job in flight."""
        job = state.job
        if self.policy == "raise":
            raise WorkerCrashError(
                f"worker crashed with this job in flight ({detail})",
                **self._context(state),
            )
        state.crashes += 1
        self._record("crash", job, detail=detail)
        if state.crashes <= self.ev.max_job_crashes:
            return self._backoff(state.crashes)
        self._record(
            "quarantine",
            job,
            detail=f"{state.crashes} crashes with this job in flight",
        )
        if self.policy == "degrade" and self._fall_back(
            state, f"{state.crashes} worker crashes"
        ):
            return 0.0
        raise WorkerCrashError(
            f"job quarantined after {state.crashes} worker crashes ({detail})",
            **self._context(state),
        )

    # -- serial path ----------------------------------------------------------

    def run_serial(self) -> dict[tuple, VariantData]:
        for job in self.jobs:
            state = self.states[job.key]
            while True:
                job.attempt = state.failures + state.crashes
                start = time.monotonic()
                try:
                    value = _execute_job(job)
                except Exception as exc:
                    if _is_simulated_crash(exc):
                        delay = self._handle_crash(
                            state, f"{type(exc).__name__}: {exc}"
                        )
                    else:
                        delay = self._handle_failure(state, exc)
                    if delay:
                        time.sleep(delay)
                    continue
                elapsed = time.monotonic() - start
                if job.timeout is not None and elapsed > job.timeout:
                    # serial execution cannot interrupt a running job; the
                    # result exists, so keep it and record the miss
                    self._record(
                        "timeout",
                        job,
                        detail=(
                            f"completed late: {elapsed:.3g}s > "
                            f"{job.timeout:.3g}s soft deadline (serial)"
                        ),
                    )
                self.results[job.key] = value
                break
        return self.results

    # -- parallel path --------------------------------------------------------

    def _make_executor(self):
        if self.pool == "process":
            from concurrent.futures import ProcessPoolExecutor

            return ProcessPoolExecutor(max_workers=self.workers)
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(max_workers=self.workers)

    def _push(self, job: _Job, delay: float = 0.0) -> None:
        self._seq += 1
        ready = time.monotonic() + delay if delay > 0 else 0.0
        heapq.heappush(self.pending, (ready, self._seq, job))

    def _submit(self, job: _Job, now: float) -> None:
        state = self.states[job.key]
        job.attempt = state.failures + state.crashes
        job.in_process = self.pool == "process"
        fut = self.executor.submit(_execute_job, job)
        deadline = None if job.timeout is None else now + job.timeout
        self.inflight[fut] = (job, deadline)

    def _fill(self, now: float) -> None:
        # bound in-flight submissions by the worker count so a deadline
        # measures run time, not time spent queued behind other jobs
        while self.pending and len(self.inflight) < self.workers:
            ready, _seq, job = self.pending[0]
            if ready > now:
                break
            heapq.heappop(self.pending)
            self._submit(job, now)

    def _next_wakeup(self, now: float) -> float | None:
        """Seconds until the next retry is ready or deadline expires."""
        candidates = []
        if self.pending:
            candidates.append(self.pending[0][0] - now)
        for _job, deadline in self.inflight.values():
            if deadline is not None:
                candidates.append(deadline - now)
        if not candidates:
            return None
        return max(0.0, min(candidates)) + 0.01

    def _rebuild_pool(self, detail: str, penalize: bool) -> None:
        """Replace the executor, harvesting and resubmitting in-flight work.

        ``penalize=True`` (the pool *broke*) charges every unfinished
        in-flight job one crash; ``penalize=False`` (we chose to rebuild,
        e.g. to kill a hung worker) resubmits them for free.
        """
        survivors: list[_Job] = []
        for fut, (job, _deadline) in list(self.inflight.items()):
            if fut.done() and not fut.cancelled():
                try:
                    self.results[job.key] = fut.result()
                    continue  # finished before the break: harvest it
                except Exception:
                    pass
            survivors.append(job)
        self.inflight.clear()
        self.ev.faults.record("pool_rebuild", detail=detail)
        if self.shared is not None:
            rebuild = getattr(self.shared, "rebuild", None)
            if rebuild is not None:
                self.executor = rebuild()
            else:
                # a raw shared executor cannot be replaced: finish this
                # batch on a private pool instead
                self.own_executor = True
                self.shared = None
                self.executor = self._make_executor()
        else:
            try:
                self.executor.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            self.executor = self._make_executor()
        for job in survivors:
            if penalize:
                delay = self._handle_crash(self.states[job.key], detail)
                self._push(job, delay)
            else:
                self._push(job)

    def _sweep_deadlines(self) -> None:
        now = time.monotonic()
        expired = [
            (fut, job)
            for fut, (job, deadline) in self.inflight.items()
            if deadline is not None and now >= deadline and not fut.done()
        ]
        if not expired:
            return
        for fut, job in expired:
            self.inflight.pop(fut, None)
            fut.cancel()  # thread futures survive this; it is best-effort
            delay = self._handle_timeout(self.states[job.key])
            self._push(job, delay)
        if self.pool == "process":
            # a hung process worker cannot be interrupted from here: the
            # only way to reclaim it is to rebuild the whole pool (the
            # innocent in-flight jobs are resubmitted without penalty)
            self._rebuild_pool(
                detail="rebuilt to kill a worker hung past its soft deadline",
                penalize=False,
            )

    def _abort_cleanup(self) -> None:
        for fut in list(self.inflight):
            fut.cancel()
        self.inflight.clear()
        if self.own_executor and self.executor is not None:
            self.executor.shutdown(wait=False, cancel_futures=True)
            self.executor = None
        elif self.shared is not None and getattr(self.executor, "_broken", False):
            # leave the shared pool usable for the caller's next batch point
            rebuild = getattr(self.shared, "rebuild", None)
            if rebuild is not None:
                rebuild()

    def run_parallel(self) -> dict[tuple, VariantData]:
        if self.shared is not None:
            self.executor = getattr(self.shared, "executor", self.shared)
        else:
            self.executor = self._make_executor()
        for job in self.jobs:
            self._push(job)
        try:
            while self.pending or self.inflight:
                now = time.monotonic()
                self._fill(now)
                wakeup = self._next_wakeup(now)
                done = set()
                if self.inflight:
                    done, _ = wait(
                        list(self.inflight),
                        timeout=wakeup,
                        return_when=FIRST_COMPLETED,
                    )
                elif wakeup:
                    time.sleep(wakeup)
                for fut in done:
                    entry = self.inflight.pop(fut, None)
                    if entry is None:
                        continue
                    job, deadline = entry
                    state = self.states[job.key]
                    try:
                        value = fut.result()
                    except CancelledError:
                        self._push(job)
                        continue
                    except BrokenExecutor as exc:
                        # the pool is gone: every other done future would
                        # raise the same error, so heal once and restart
                        # the drain loop on the fresh pool
                        self.inflight[fut] = (job, deadline)
                        self._rebuild_pool(
                            detail=f"{type(exc).__name__}: {exc}", penalize=True
                        )
                        break
                    except Exception as exc:
                        if _is_simulated_crash(exc):
                            delay = self._handle_crash(
                                state, f"{type(exc).__name__}: {exc}"
                            )
                        else:
                            delay = self._handle_failure(state, exc)
                        self._push(job, delay)
                        continue
                    self.results[job.key] = value
                self._sweep_deadlines()
        except BaseException:
            self._abort_cleanup()
            raise
        finally:
            if self.own_executor and self.executor is not None:
                self.executor.shutdown(wait=True)
        return self.results


class FragmentEvaluator:
    """Evaluates fragments through the backend router and batch engine.

    ``shots=None`` gives exact fragment evaluation (the mode used for the
    paper-style accuracy claims); an integer samples each variant, with
    ``clifford_shots`` optionally lowering the shot count on Clifford
    fragments (Section IX: Clifford Pauli expectations are in {-1, 0, +1},
    so far fewer shots identify them).

    Backend selection, per fragment:

    * ``backend`` (string name or :class:`~repro.backends.base.Backend`)
      forces that backend for every fragment it can handle;
    * ``nonclifford_backend`` — the original §XI extension point — forces a
      backend for non-Clifford fragments only (any object with
      ``probabilities``/``sample`` is adapted automatically);
    * otherwise the ``router`` picks the cheapest capable backend.

    ``noise`` (§IV-A, noisy QEC studies) applies a
    :class:`repro.stabilizer.NoiseModel` to *Clifford* fragments via
    Pauli-frame sampling, forcing sampled evaluation of those fragments
    through a noise-capable backend.  Non-Clifford fragments stay
    noiseless — in the paper's setting they carry the coherent (non-Pauli)
    part of the error model as explicit gates.

    ``cache`` is an optional :class:`~repro.backends.cache.VariantCache`;
    share one instance across evaluators (as ``SuperSim`` does) to carry
    results between ``run()`` calls.
    """

    def __init__(
        self,
        shots: int | None = None,
        clifford_shots: int | None = None,
        rng: np.random.Generator | int | None = None,
        statevector_max_qubits: int = 20,
        nonclifford_backend=None,
        noise=None,
        parallel: int = 1,
        backend: str | Backend | None = None,
        router: BackendRouter | None = None,
        cache: VariantCache | None = None,
        pool: str | None = None,
        assignments: dict[int, Backend] | None = None,
        executor=None,
        executor_kind: str | None = None,
        failure_policy: str = "raise",
        max_retries: int = 3,
        retry_backoff: float = 0.05,
        retry_backoff_cap: float = 2.0,
        job_timeout: float | None = None,
        timeout_safety: float = 25.0,
        min_job_timeout: float = 5.0,
        max_job_crashes: int = 3,
        chaos=None,
    ):
        from repro.backends import as_backend, get_backend

        self.shots = shots
        self.clifford_shots = clifford_shots if clifford_shots is not None else shots
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.noise = noise
        self.parallel = max(1, int(parallel))
        self.cache = cache
        if pool not in (None, "thread", "process"):
            raise ValueError(
                f"pool must be 'thread', 'process' or None, got {pool!r}"
            )
        self.pool = pool
        if failure_policy not in ("raise", "retry", "degrade"):
            raise ValueError(
                "failure_policy must be 'raise', 'retry' or 'degrade', "
                f"got {failure_policy!r}"
            )
        self.failure_policy = failure_policy
        self.max_retries = max(0, int(max_retries))
        self.retry_backoff = float(retry_backoff)
        self.retry_backoff_cap = float(retry_backoff_cap)
        self.job_timeout = job_timeout
        self.timeout_safety = float(timeout_safety)
        self.min_job_timeout = float(min_job_timeout)
        self.max_job_crashes = max(1, int(max_job_crashes))
        self.chaos = chaos
        #: faults survived across this evaluator's evaluate_all calls
        self.faults = FaultReport()
        self._last_degraded: set[tuple] = set()
        if router is None:
            from repro.backends import default_backend_pool

            router = BackendRouter(default_backend_pool(statevector_max_qubits))
        self.router = router
        self.forced = get_backend(backend) if backend is not None else None
        self.nonclifford_backend = (
            as_backend(nonclifford_backend) if nonclifford_backend is not None else None
        )
        self.assignments = dict(assignments) if assignments else {}
        self.executor = executor
        self.executor_kind = executor_kind
        self.last_stats: dict = {}
        if noise is not None and shots is None:
            raise ValueError("noisy fragment evaluation requires finite shots")

    @classmethod
    def from_configs(
        cls,
        sampling=None,
        execution=None,
        cache: VariantCache | None = None,
        assignments: dict[int, Backend] | None = None,
        executor=None,
        executor_kind: str | None = None,
    ) -> "FragmentEvaluator":
        """Build an evaluator from typed config objects.

        ``cache`` overrides ``execution.cache`` with a resolved instance
        (``SuperSim`` passes its own long-lived cache here); when omitted,
        ``execution.cache=True`` builds a private one.
        """
        from repro.core.config import ExecutionConfig, SamplingConfig

        from repro.backends.cache import resolve_cache

        sampling = sampling if sampling is not None else SamplingConfig()
        execution = execution if execution is not None else ExecutionConfig()
        if cache is None:
            cache = resolve_cache(execution.cache)
        return cls(
            shots=sampling.shots,
            clifford_shots=sampling.clifford_shots,
            rng=sampling.seed,
            statevector_max_qubits=execution.statevector_max_qubits,
            nonclifford_backend=execution.nonclifford_backend,
            noise=sampling.noise,
            parallel=execution.parallel,
            backend=execution.backend,
            router=execution.router,
            cache=cache,
            pool=execution.pool,
            assignments=assignments,
            executor=executor,
            executor_kind=executor_kind,
            failure_policy=execution.failure_policy,
            max_retries=execution.max_retries,
            retry_backoff=execution.retry_backoff,
            retry_backoff_cap=execution.retry_backoff_cap,
            job_timeout=execution.job_timeout,
            timeout_safety=execution.timeout_safety,
            min_job_timeout=execution.min_job_timeout,
            max_job_crashes=execution.max_job_crashes,
            chaos=execution.chaos,
        )

    # -- routing --------------------------------------------------------------

    def _backend_for(self, fragment: Fragment) -> tuple[Backend, bool]:
        """(backend, noisy) for a fragment.

        All variants of a fragment share width and Clifford-ness (variants
        add only single-qubit Clifford preparation/basis ops), so routing
        is per fragment, not per variant.
        """
        features = CircuitFeatures.from_circuit(fragment.circuit)
        exact = self.shots is None
        noisy = self.noise is not None and fragment.is_clifford
        assigned = self.assignments.get(fragment.index)
        if assigned is not None:
            # a plan-level assignment (validated at planning time) wins
            # over forcing and routing; the noise mode still applies
            return assigned, noisy
        if noisy:
            # Pauli-frame sampling needs a noise-capable backend
            if self.forced is not None and self.forced.can_handle(
                features, exact=False, noisy=True
            ):
                return self.forced, True
            return self.router.select(features, exact=False, noisy=True), True
        if self.forced is not None and self.forced.can_handle(
            features, exact=exact
        ):
            return self.forced, False
        if not fragment.is_clifford and self.nonclifford_backend is not None:
            return self.nonclifford_backend, False
        return self.router.select(features, exact=exact), False

    def _job_timeout(
        self, backend: Backend, features: CircuitFeatures, noisy: bool
    ) -> float | None:
        """Soft deadline for one variant job, in seconds (``None`` = none).

        An explicit ``job_timeout`` wins.  Otherwise a deadline is derived
        from the calibrated cost model — scored cost is (roughly) predicted
        seconds once ``cost_scales`` are measured — times the
        ``timeout_safety`` factor, floored at ``min_job_timeout``.  Without
        a calibration entry for this backend the model's units are
        arbitrary and no deadline can honestly be derived.
        """
        if self.job_timeout is not None:
            return self.job_timeout
        if backend.name not in self.router.cost_scales:
            return None
        mode = "exact" if (self.shots is None and not noisy) else "sampled"
        try:
            cost = float(self.router.scored_cost(backend, features, mode))
        except Exception:
            return None
        return max(self.min_job_timeout, cost * self.timeout_safety)

    # -- batch engine ---------------------------------------------------------

    def _build_jobs(self, fragments: list[Fragment], root_seed: int):
        """Flatten fragment x variant work into deduplicated jobs.

        Returns ``(assignments, unique_jobs)``: ``assignments`` maps every
        (fragment index, preps, bases) triple to its job key, and
        ``unique_jobs`` holds one job per distinct key.  Keys combine the
        variant circuit's content fingerprint with the backend's
        configuration token and the evaluation mode (exact, or shot count
        plus seed, plus the noise model's content fingerprint), so a hit is
        guaranteed to describe an identical simulation.
        """
        from repro.backends.cache import noise_fingerprint

        assignments: list[tuple[int, tuple, tuple, tuple]] = []
        unique: dict[tuple, _Job] = {}
        noise_key = noise_fingerprint(self.noise)
        for index, fragment in enumerate(fragments):
            backend, noisy = self._backend_for(fragment)
            features = CircuitFeatures.from_circuit(fragment.circuit)
            timeout = self._job_timeout(backend, features, noisy)
            if self.shots is None:
                # exact mode is exact for every fragment; clifford_shots
                # only rebalances *sampled* evaluation
                eff_shots = None
            elif fragment.is_clifford:
                eff_shots = self.clifford_shots
            else:
                eff_shots = self.shots
            use_affine = (
                backend.capabilities.affine and fragment.is_clifford and not noisy
            )
            noise = self.noise if noisy else None
            backend_key = backend.cache_token()
            for preps, bases in all_variants(fragment):
                circuit = variant_circuit(fragment, preps, bases)
                fp = circuit_fingerprint(circuit)
                seed = (root_seed, int(fp[:16], 16))
                if eff_shots is None:
                    mode: tuple = ("exact",)
                else:
                    # sampled results depend on the per-job seed, so key it
                    mode = ("shots", eff_shots, seed)
                key = (fp, backend_key, noise_key if noisy else None) + mode
                assignments.append((index, preps, bases, key))
                if key not in unique:
                    unique[key] = _Job(
                        key,
                        backend,
                        circuit,
                        eff_shots,
                        seed,
                        noise,
                        use_affine,
                        fragment_index=index,
                        features=features,
                        is_clifford=fragment.is_clifford,
                        timeout=timeout,
                        chaos=self.chaos,
                    )
        return assignments, unique

    def _run_jobs(self, jobs: list[_Job]) -> dict[tuple, VariantData]:
        """Execute jobs on the pool implied by the backends' capabilities.

        Python-bound backends (``capabilities.pool == "process"``: CH form,
        MPS, extended stabilizer — interpreters loops, not GIL-releasing
        kernels) default to a *process* pool sized by ``os.cpu_count()``
        even when ``parallel`` was left at 1; per-variant seeds derive from
        the root seed and the variant fingerprint, so results are
        bit-for-bit identical at any worker count.  Numpy-kernel backends
        keep the thread pool (and stay serial unless ``parallel`` > 1).
        Execution goes through the :class:`_JobScheduler`, which owns the
        retry / timeout / crash-healing / fallback policy.
        """
        if not jobs:
            self._last_degraded = set()
            return {}
        import os

        pool = self.pool
        if pool is None:
            pool = (
                "process"
                if any(j.backend.capabilities.pool == "process" for j in jobs)
                else "thread"
            )
        workers = self.parallel
        if workers <= 1 and pool == "process" and self.pool is None:
            # only auto-upgrade where workers fork: under a spawn start
            # method (macOS/Windows default) a guard-less user script
            # would re-execute itself in every worker.  allow_none avoids
            # fixing the global start method as a library side effect.
            import multiprocessing
            import sys

            method = multiprocessing.get_start_method(allow_none=True)
            if method is None:
                method = "fork" if sys.platform.startswith("linux") else "spawn"
            if method == "fork":
                workers = os.cpu_count() or 1
        workers = min(workers, len(jobs))
        handle = self.executor
        kind = self.executor_kind
        if handle is not None and hasattr(handle, "rebuild"):
            # a SharedExecutorPool-style rebuildable handle
            kind = getattr(handle, "kind", kind)
        shared = (
            handle is not None
            and len(jobs) > 1
            and (kind is None or kind == pool)
        )
        self.last_stats["pool"] = kind or pool if shared else pool
        if shared:
            # a long-lived executor shared across runs (sweep batches);
            # only taken when its kind matches the jobs' resolved pool, so
            # process-preferring backends never silently land on threads.
            # The in-flight bound follows the shared pool's actual width.
            workers = (
                getattr(handle, "workers", None)
                or getattr(handle, "_max_workers", None)
                or max(workers, 1)
            )
        self.last_stats["workers"] = workers
        scheduler = _JobScheduler(
            self,
            jobs,
            pool=pool,
            workers=workers,
            shared=handle if shared else None,
        )
        if shared or (workers > 1 and len(jobs) > 1):
            values = scheduler.run_parallel()
        else:
            values = scheduler.run_serial()
        self._last_degraded = set(scheduler.degraded)
        return values

    def dry_run(self, fragments: list[Fragment]) -> dict:
        """Plan the job batch without simulating anything.

        Returns the same shape of stats ``evaluate_all`` would record —
        total and unique job counts, per-backend variant usage, and (in
        exact mode, where cache keys are seed-free) how many unique jobs
        the cache would satisfy.  Sampled-mode keys include the root seed,
        which is only drawn at execution time, so cache hits are reported
        as ``None`` there.
        """
        assignments, unique = self._build_jobs(list(fragments), root_seed=0)
        usage: dict[str, int] = {}
        for job in unique.values():
            usage[job.backend.name] = usage.get(job.backend.name, 0) + 1
        cached: int | None = None
        if self.shots is None and self.cache is not None:
            cached = sum(1 for key in unique if key in self.cache)
        return {
            "jobs": len(assignments),
            "unique_jobs": len(unique),
            "cached_jobs": cached,
            "backends": usage,
        }

    def evaluate_all(
        self, fragments: list[Fragment], job_runner=None
    ) -> list[FragmentData]:
        """Evaluate every variant of every fragment through one batched pool.

        Fragment x variant jobs are flattened together, so parallelism is
        not bounded by any single fragment's variant count, and the cache
        deduplicates identical variants both within and across calls.

        ``job_runner`` overrides *where* the deduplicated jobs execute:
        called as ``job_runner(jobs, faults) -> {key: VariantData}``, it
        must return a value for every job (raising on unrecoverable
        failure) and record any survived faults on ``faults``.  The
        distributed service injects its coordinator dispatch here;
        everything else — seeding, cache consult/fill, fragment assembly —
        is identical, which is what makes service runs bit-for-bit equal
        to local ones.
        """
        root_seed = int(self.rng.integers(2**63))
        assignments, unique = self._build_jobs(list(fragments), root_seed)
        cached: dict[tuple, VariantData] = {}
        if self.cache is not None:
            for key in list(unique):
                value = self.cache.get(key)
                if value is not None:
                    cached[key] = value
                    del unique[key]
        hits = len(cached)
        usage: dict[str, int] = {}
        for job in unique.values():
            usage[job.backend.name] = usage.get(job.backend.name, 0) + 1
        self.last_stats = {
            "jobs": len(assignments),
            "unique_jobs": len(unique) + hits,
            "cache_hits": hits,
            "cache_misses": len(unique),
            "backends": usage,
        }
        if job_runner is not None:
            computed = dict(job_runner(list(unique.values()), self.faults))
            self._last_degraded = set()
        else:
            computed = self._run_jobs(list(unique.values()))
        if self.cache is not None:
            for key, value in computed.items():
                if key in self._last_degraded:
                    # computed by a fallback backend: valid for this run,
                    # but the key names the original backend's token, so a
                    # cross-run cache hit would lie about its provenance
                    continue
                self.cache.put(key, value)
        self.last_stats["faults"] = self.faults
        computed.update(cached)
        per_fragment: list[dict] = [{} for _ in fragments]
        for index, preps, bases, key in assignments:
            per_fragment[index][(preps, bases)] = computed[key]
        return [
            FragmentData(fragment, results)
            for fragment, results in zip(fragments, per_fragment)
        ]

    def evaluate(self, fragment: Fragment) -> FragmentData:
        return self.evaluate_all([fragment])[0]
