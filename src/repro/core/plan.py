"""The staged pipeline: an inspectable, overridable ExecutionPlan.

``SuperSim.plan(circuit)`` captures every decision the pipeline would make
— cut placement, the enumerated fragment variants, the per-fragment
backend picked by the router, and a predicted cost from the calibrated
cost models — *before* any simulation happens.  The plan is frozen;
deriving a variation returns a new plan:

* :meth:`ExecutionPlan.estimate` — a zero-simulation dry run: predicted
  cost per fragment and in total, variant counts, reconstruction terms,
  and (in exact mode) how many variants the cache would already satisfy;
* :meth:`ExecutionPlan.with_backend` — pin one fragment to a named
  backend (validated against its capabilities);
* :meth:`ExecutionPlan.with_cuts` — re-plan the same circuit under a
  user-chosen cut set;
* :meth:`ExecutionPlan.execute` — run the evaluate → tomography →
  reconstruct stages and return a
  :class:`~repro.core.supersim.SuperSimResult`.

Batch work streams through :meth:`SuperSim.sweep` / ``run_many``, which
yield :class:`SweepResult` records as each grid point completes while the
variant cache and worker pool are shared across all points.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.backends.base import Backend, CircuitFeatures
from repro.circuits.circuit import Circuit
from repro.core.fragments import CutCircuit


@dataclass(frozen=True)
class FragmentPlan:
    """The planned treatment of one fragment."""

    index: int
    n_qubits: int
    num_variants: int
    backend: str
    mode: str  # "exact" | "sampled" | "noisy"
    is_clifford: bool
    cost: float  # scored per-variant model cost x num_variants

    def __repr__(self) -> str:
        return (
            f"FragmentPlan(#{self.index}: {self.n_qubits}q "
            f"x{self.num_variants} variants -> {self.backend} "
            f"[{self.mode}], cost~{self.cost:.3g})"
        )


@dataclass(frozen=True)
class CostEstimate:
    """A zero-simulation dry run of a plan.

    ``total_cost`` is the sum of scored per-variant backend costs times
    variant counts, **plus** ``reconstruction_cost``; with a calibrated
    router (``BackendRouter(cost_scales=measure_cost_scales(...))``) its
    units are approximately wall-clock seconds on this machine.
    ``reconstruction_cost`` charges the recombination stage by output
    width — ``min(4^k · 2**width, recursive window cost)``, matching the
    engine ``execute()`` would actually pick — so quotes for wide
    circuits no longer pretend the ``2**width`` accumulator is free.
    ``cached_variants`` counts the unique variant jobs the shared cache
    would satisfy without simulating (``None`` when prediction is not
    possible, e.g. no cache attached).
    """

    fragments: tuple[FragmentPlan, ...]
    total_cost: float
    num_variants: int
    unique_variants: int
    cached_variants: int | None
    num_cuts: int
    reconstruction_terms: int
    calibrated: bool
    reconstruction_cost: float = 0.0

    @property
    def backends(self) -> dict[str, int]:
        """Variants planned per backend name."""
        usage: dict[str, int] = {}
        for f in self.fragments:
            usage[f.backend] = usage.get(f.backend, 0) + f.num_variants
        return usage

    def to_dict(self) -> dict:
        """A JSON-serialisable view of this estimate.

        Everything is plain ints/floats/bools/strings — the admission
        controller ships quotes over the wire and benchmark scripts dump
        them into ``BENCH_*.json`` without a custom encoder.
        """
        return {
            "fragments": [
                {
                    "index": f.index,
                    "n_qubits": f.n_qubits,
                    "num_variants": f.num_variants,
                    "backend": f.backend,
                    "mode": f.mode,
                    "is_clifford": f.is_clifford,
                    "cost": f.cost,
                }
                for f in self.fragments
            ],
            "total_cost": self.total_cost,
            "num_variants": self.num_variants,
            "unique_variants": self.unique_variants,
            "cached_variants": self.cached_variants,
            "num_cuts": self.num_cuts,
            "reconstruction_terms": self.reconstruction_terms,
            "calibrated": self.calibrated,
            "reconstruction_cost": self.reconstruction_cost,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CostEstimate":
        """Rebuild an estimate from :meth:`to_dict` output."""
        return cls(
            fragments=tuple(
                FragmentPlan(**fragment) for fragment in data["fragments"]
            ),
            total_cost=data["total_cost"],
            num_variants=data["num_variants"],
            unique_variants=data["unique_variants"],
            cached_variants=data["cached_variants"],
            num_cuts=data["num_cuts"],
            reconstruction_terms=data["reconstruction_terms"],
            calibrated=data["calibrated"],
            reconstruction_cost=data.get("reconstruction_cost", 0.0),
        )

    def __repr__(self) -> str:
        cached = (
            f", {self.cached_variants} cached" if self.cached_variants else ""
        )
        return (
            f"CostEstimate({len(self.fragments)} fragments, "
            f"{self.num_variants} variants ({self.unique_variants} unique"
            f"{cached}), 4^{self.num_cuts} terms, "
            f"cost~{self.total_cost:.3g}"
            f"{' [calibrated]' if self.calibrated else ''})"
        )


@dataclass(frozen=True)
class ExecutionPlan:
    """A frozen record of every pipeline decision, ready to execute.

    Produced by :meth:`SuperSim.plan`; never constructed directly.
    Override hooks (``with_cuts``, ``with_backend``) return *new* plans —
    an existing plan is never mutated, so plans can be shared, compared
    and re-executed safely.
    """

    circuit: Circuit = field(repr=False)
    cut_circuit: CutCircuit
    keep_qubits: tuple[int, ...]
    backend_names: tuple[str, ...]
    fragment_modes: tuple[str, ...] = field(repr=False)
    planning_seconds: float = field(repr=False, compare=False)
    # execution context (not part of the plan's identity)
    _sim: object = field(repr=False, compare=False)
    _backends: tuple[Backend, ...] = field(repr=False, compare=False)

    # -- serialisation ------------------------------------------------------

    def __getstate__(self):
        # a plan travels over the service wire without its engine: the
        # coordinator re-binds its own SuperSim (same configs) on arrival.
        # The backend instances stay — they are picklable (process-pool
        # jobs already carry them) and they ARE the plan's routing.
        state = {
            f: getattr(self, f)
            for f in self.__dataclass_fields__
            if f != "_sim"
        }
        state["_sim"] = None
        return state

    def __setstate__(self, state):
        for name, value in state.items():
            object.__setattr__(self, name, value)

    def bind(self, sim) -> "ExecutionPlan":
        """Attach an engine to an unbound (e.g. unpickled) plan.

        Returns a new plan whose :meth:`estimate` / :meth:`execute` run on
        ``sim``.  Binding a bound plan re-targets it.
        """
        return replace(self, _sim=sim)

    def _require_sim(self):
        if self._sim is None:
            raise RuntimeError(
                "this ExecutionPlan is unbound (it crossed a process "
                "boundary without its engine); call plan.bind(sim) first"
            )
        return self._sim

    # -- introspection ------------------------------------------------------

    @property
    def num_cuts(self) -> int:
        return self.cut_circuit.num_cuts

    @property
    def num_fragments(self) -> int:
        return len(self.cut_circuit.fragments)

    @property
    def num_variants(self) -> int:
        return sum(f.num_variants for f in self.cut_circuit.fragments)

    def backend_for(self, fragment_index: int) -> str:
        """The backend name assigned to one fragment."""
        return self.backend_names[fragment_index]

    # -- dry run ------------------------------------------------------------

    def estimate(self) -> CostEstimate:
        """Predicted cost of executing this plan — no simulation runs.

        Per-fragment costs come from each assigned backend's
        ``estimate_cost`` model under the plan's evaluation mode, scaled
        by the router's calibration constants when present, times the
        fragment's variant count.  In exact mode the dry run also
        fingerprints every variant circuit against the attached cache to
        predict hits.
        """
        return self._require_sim()._estimate_plan(self)

    # -- overrides ----------------------------------------------------------

    def with_cuts(self, cuts) -> "ExecutionPlan":
        """Re-plan the same circuit under a user-chosen cut set.

        Cutting anew changes what the fragments *are*, so the new plan is
        fully re-routed: any earlier ``with_backend`` pin (which named a
        fragment of the old cut set) does not carry over — apply
        ``with_cuts`` first, then pin backends on the resulting plan.
        """
        return self._require_sim().plan(
            self.circuit, keep_qubits=list(self.keep_qubits), cuts=list(cuts)
        )

    def with_backend(self, fragment_index: int, backend) -> "ExecutionPlan":
        """A new plan with one fragment pinned to ``backend`` (name or instance).

        The override is validated against the fragment's features and the
        plan's evaluation mode, so an impossible assignment fails here
        rather than mid-execution.
        """
        from repro.backends import as_backend, get_backend

        fragments = self.cut_circuit.fragments
        if not 0 <= fragment_index < len(fragments):
            raise IndexError(
                f"fragment index {fragment_index} out of range "
                f"(plan has {len(fragments)} fragments)"
            )
        resolved = (
            get_backend(backend) if isinstance(backend, str) else as_backend(backend)
        )
        mode = self.fragment_modes[fragment_index]
        features = CircuitFeatures.from_circuit(fragments[fragment_index].circuit)
        if not resolved.can_handle(
            features, exact=mode == "exact", noisy=mode == "noisy"
        ):
            raise ValueError(
                f"backend {resolved.name!r} cannot evaluate fragment "
                f"{fragment_index} ({features}, mode={mode})"
            )
        backends = list(self._backends)
        names = list(self.backend_names)
        backends[fragment_index] = resolved
        names[fragment_index] = resolved.name
        return replace(
            self,
            backend_names=tuple(names),
            _backends=tuple(backends),
        )

    # -- execution ----------------------------------------------------------

    def execute(self):
        """Run evaluate → tomography → reconstruct under this plan."""
        return self._require_sim()._execute_plan(self)


@dataclass(frozen=True)
class SweepResult:
    """One point of a :meth:`SuperSim.sweep`.

    ``result`` is the point's ``SuperSimResult`` — or ``None`` when the
    point did not produce one: under ``failure_policy="retry"`` /
    ``"degrade"`` a point whose execution still failed is yielded with
    the exception in ``error`` instead of aborting the sweep, and a point
    already recorded in the sweep's checkpoint file is yielded with
    ``skipped=True``.  ``degradation`` names any quality compromise the
    batch layer made for this point (currently: the reused cut set did
    not transfer and the point was re-planned from scratch).
    """

    index: int
    params: object
    result: object  # SuperSimResult | None
    error: object = None  # the exception, for failed points
    skipped: bool = False  # already completed per the checkpoint file
    degradation: str | None = None

    @property
    def ok(self) -> bool:
        """Did this point produce a result in this sweep?"""
        return self.result is not None

    @property
    def distribution(self):
        return self.result.distribution

    @property
    def cache_hits(self) -> int:
        return self.result.cache_hits
