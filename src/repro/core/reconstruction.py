"""Distribution reconstruction: the ``4^k`` recombination (paper §V-C).

Across each cut the identity channel decomposes over the Pauli basis,

    rho  =  (1/2) * sum_{P in {I,X,Y,Z}}  Tr[P rho] P ,

so the probability of outcome ``x`` of the uncut circuit is

    p(x) = 2^-k * sum_{assignments P: cuts -> Pauli}
                 prod_fragments  T_F[ P|incident ](x_F) .

The sum has ``4^k`` terms — the exponential reconstruction cost the paper
discusses; each term is a product of per-fragment tensor slices (a tiny
tensor-network contraction with one tensor per fragment).

The Section IX zero-term optimization lives here: slices whose magnitude is
(near) zero — guaranteed for many Pauli observables of stabilizer states —
are detected and the corresponding assignments skipped.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.analysis.distributions import Distribution
from repro.core.fragments import CutCircuit


@dataclass
class ReconstructionStats:
    terms_total: int = 0
    terms_skipped: int = 0


def reconstruct_distribution(
    cut_circuit: CutCircuit,
    tensors: list[np.ndarray],
    kept_locals: list[list[int]],
    keep_qubits: list[int],
    prune_zeros: bool = True,
    zero_threshold: float = 1e-12,
) -> tuple[Distribution, ReconstructionStats]:
    """Recombine fragment tensors into the distribution over ``keep_qubits``.

    ``tensors[f]`` has shape ``(4,)*qi_f + (4,)*qo_f + (2**len(kept_locals[f]),)``
    and ``kept_locals[f]`` lists fragment f's kept circuit-output qubits;
    together they must cover ``keep_qubits`` exactly.
    """
    fragments = cut_circuit.fragments
    k = cut_circuit.num_cuts
    stats = ReconstructionStats(terms_total=4**k)

    # per fragment: the cut ids of its Pauli axes, in tensor axis order
    axis_cuts = [
        [c for c, _ in f.quantum_inputs] + [c for c, _ in f.quantum_outputs]
        for f in fragments
    ]
    kept_sizes = [len(kl) for kl in kept_locals]
    total_bits = sum(kept_sizes)
    accumulator = np.zeros(2**total_bits)

    # pre-slice: map assignment-restricted tuples to vectors, fragment-wise
    for assignment in itertools.product(range(4), repeat=k):
        vectors = []
        skip = False
        for f_index, tensor in enumerate(tensors):
            index = tuple(assignment[c] for c in axis_cuts[f_index])
            vec = tensor[index]
            if prune_zeros and np.max(np.abs(vec)) <= zero_threshold:
                skip = True
                break
            vectors.append(vec)
        if skip:
            stats.terms_skipped += 1
            continue
        term = vectors[0]
        for vec in vectors[1:]:
            term = np.multiply.outer(term, vec)
        accumulator += term.reshape(-1)
    accumulator /= 2.0**k

    # bit order of `accumulator`: fragment 0 kept bits, fragment 1 kept bits, ...
    # reorder to the requested original-qubit order
    concat_qubits: list[int] = []
    for fragment, kl in zip(fragments, kept_locals):
        local_to_orig = {lq: oq for oq, lq in fragment.circuit_outputs}
        concat_qubits.extend(local_to_orig[lq] for lq in kl)
    if sorted(concat_qubits) != sorted(keep_qubits):
        raise ValueError("kept fragment outputs do not match requested qubits")
    if total_bits:
        tensor_view = accumulator.reshape((2,) * total_bits)
        order = [concat_qubits.index(q) for q in keep_qubits]
        tensor_view = np.transpose(tensor_view, order)
        accumulator = tensor_view.reshape(-1)
    distribution = Distribution(len(keep_qubits), dict(enumerate(accumulator)))
    return distribution, stats


def reconstruct_sparse_distribution(
    cut_circuit: CutCircuit,
    tensors: list[dict[tuple[int, ...], dict[int, float]]],
    kept_locals: list[list[int]],
    keep_qubits: list[int],
    prune_zeros: bool = True,
    zero_threshold: float = 1e-12,
    max_support: int = 1_000_000,
) -> tuple[Distribution, ReconstructionStats]:
    """Sparse recombination: dict-valued fragment tensors, any width.

    Support grows as the product of per-fragment supports; a guard raises
    when it exceeds ``max_support`` (dense circuits should use marginal
    reconstruction instead).
    """
    fragments = cut_circuit.fragments
    k = cut_circuit.num_cuts
    stats = ReconstructionStats(terms_total=4**k)
    axis_cuts = [
        [c for c, _ in f.quantum_inputs] + [c for c, _ in f.quantum_outputs]
        for f in fragments
    ]
    kept_sizes = [len(kl) for kl in kept_locals]
    accumulator: dict[int, float] = {}
    for assignment in itertools.product(range(4), repeat=k):
        vectors: list[dict[int, float]] = []
        skip = False
        for f_index, tensor in enumerate(tensors):
            index = tuple(assignment[c] for c in axis_cuts[f_index])
            vec = tensor[index]
            if prune_zeros and (
                not vec or max(abs(v) for v in vec.values()) <= zero_threshold
            ):
                skip = True
                break
            vectors.append(vec)
        if skip:
            stats.terms_skipped += 1
            continue
        term: dict[int, float] = {0: 1.0}
        for f_index, vec in enumerate(vectors):
            shift = kept_sizes[f_index]
            new_term: dict[int, float] = {}
            for key, val in term.items():
                for x, v in vec.items():
                    new_term[(key << shift) | x] = (
                        new_term.get((key << shift) | x, 0.0) + val * v
                    )
            term = new_term
            if len(term) > max_support:
                raise ValueError(
                    "sparse reconstruction support exceeded max_support; "
                    "use marginal reconstruction for dense outputs"
                )
        for key, val in term.items():
            accumulator[key] = accumulator.get(key, 0.0) + val
    scale = 2.0**-k

    # reorder concatenated fragment bits into the requested qubit order
    concat_qubits: list[int] = []
    for fragment, kl in zip(fragments, kept_locals):
        local_to_orig = {lq: oq for oq, lq in fragment.circuit_outputs}
        concat_qubits.extend(local_to_orig[lq] for lq in kl)
    if sorted(concat_qubits) != sorted(keep_qubits):
        raise ValueError("kept fragment outputs do not match requested qubits")
    total_bits = len(concat_qubits)
    source_pos = {q: i for i, q in enumerate(concat_qubits)}
    out: dict[int, float] = {}
    for key, val in accumulator.items():
        new_key = 0
        for q in keep_qubits:
            bit = (key >> (total_bits - 1 - source_pos[q])) & 1
            new_key = (new_key << 1) | bit
        out[new_key] = out.get(new_key, 0.0) + val * scale
    return Distribution(len(keep_qubits), out), stats
