"""Distribution reconstruction: the ``4^k`` recombination (paper §V-C).

Across each cut the identity channel decomposes over the Pauli basis,

    rho  =  (1/2) * sum_{P in {I,X,Y,Z}}  Tr[P rho] P ,

so the probability of outcome ``x`` of the uncut circuit is

    p(x) = 2^-k * sum_{assignments P: cuts -> Pauli}
                 prod_fragments  T_F[ P|incident ](x_F) .

The sum has ``4^k`` terms, but it *is* a tensor-network contraction: each
fragment tensor carries one size-4 axis per incident cut plus one axis
over its kept output bits, and summing over all Pauli assignments is
exactly contracting the shared cut axes.  The dense path therefore hands
the whole network to ``np.einsum`` with a greedy contraction-order
heuristic — pairwise fragment contractions instead of a ``4^k`` Python
loop — and falls back to the legacy assignment loop only when the
Section IX zero-term pruning would skip so many assignments that
term-by-term evaluation is cheaper than the dense contraction.

The Section IX zero-term optimization lives here: slices whose magnitude
is (near) zero — guaranteed for many Pauli observables of stabilizer
states — are detected fragment-wise, counted via a cheap indicator
contraction (that count is what drives the einsum/loop choice), and near-
zero accumulator entries are dropped before the distribution is built.

Output width is its own scale axis, independent of fragment width: the
dense accumulator holds ``2**total_bits`` floats, so anything past ~30
kept bits is unservable no matter how fast the contraction is.  Two
bounded-memory engines lift that ceiling (CutQC-style "dynamic
definition"):

* :func:`reconstruct_marginal` — the *windowed* contraction: the exact
  marginal over any small subset of the kept qubits, obtained by summing
  each fragment tensor over its traced-out kept bits *before* the cut-axis
  contraction, so no ``2**total_bits`` object ever exists;
* :func:`reconstruct_dynamic` — the *recursive* driver: reconstruct a
  coarse distribution over the first ``qubit_limit`` qubits, recurse only
  into the heaviest bins (conditioning the fragment tensors on the bits
  defined so far), and return a calibrated top-k :class:`Distribution`
  whose peak memory is ``O(4^k · 2^qubit_limit)`` at any output width.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro import kernels as _kernels
from repro.analysis.distributions import Distribution
from repro.core.fragments import CutCircuit

_ONE = np.uint64(1)

# fall back to the assignment loop when fewer than 1/_LOOP_SPARSITY of the
# 4^k terms survive zero-pruning: at that density enumerating survivors
# beats a dense contraction that cannot exploit the zeros
_LOOP_SPARSITY = 16

# minimum buffered-entry count before the sparse path folds its term
# buffers into their union support (bounds peak memory at ~the floor,
# not at surviving-terms x per-term support)
_SPARSE_COMPACT_FLOOR = 1 << 21

#: widest output the dense accumulator may allocate by default
#: (2^26 float64 ≈ 0.5 GB); callers opt out with ``max_dense_bits=None``
DEFAULT_MAX_DENSE_BITS = 26

#: rough seconds per accumulator-entry update of the recombination —
#: only used to rank dense vs recursive cost in estimates, so the
#: absolute scale matters less than both modes sharing it
_SECONDS_PER_TERM_ENTRY = 2e-9


class ReconstructionMemoryError(MemoryError):
    """Dense reconstruction refused: the output accumulator would not fit.

    Raised *before* allocation, naming the width and the escape hatches,
    instead of letting ``np.zeros(2**total_bits)`` die with an opaque
    ``MemoryError`` (or freeze the machine in swap).
    """


def check_dense_width(total_bits: int, max_dense_bits: int | None) -> None:
    """Raise :class:`ReconstructionMemoryError` for unservable dense widths.

    Shared by :func:`reconstruct_distribution` and the execute pipeline —
    the pipeline checks *before* tomography, because the per-fragment
    dense tensors (``2**kept_bits`` per variant) blow up first on wide
    fragments, long before the final accumulator would.
    """
    if max_dense_bits is not None and total_bits > max_dense_bits:
        raise ReconstructionMemoryError(
            f"dense reconstruction over {total_bits} kept bits needs a "
            f"2**{total_bits}-entry accumulator (limit: {max_dense_bits} "
            "bits); use ReconstructionConfig(mode='recursive', "
            "qubit_limit=...) for a bounded-memory top-k reconstruction, "
            "reconstruct_marginal for exact small marginals, or raise "
            "max_dense_bits explicitly if you really have the memory"
        )


@dataclass
class ReconstructionStats:
    """Diagnostics of one reconstruction.

    The windowed/recursive engines extend the dense counters: ``mode`` is
    the engine that ran, ``windows`` counts window contractions (one per
    refined bin), ``refinements`` the contractions beyond the coarse top
    window, ``peak_window_entries`` the largest dense accumulator any
    single contraction allocated (the memory bound: ``2**qubit_limit``,
    never ``2**total_bits``), and ``covered_probability`` the total mass
    of the returned outcomes (1.0 for exact full reconstructions; below
    1.0 when recursive top-k truncation dropped light bins).
    """

    terms_total: int = 0
    terms_skipped: int = 0
    mode: str = "full"
    windows: int = 0
    refinements: int = 0
    peak_window_entries: int = 0
    covered_probability: float = 1.0
    path_cache_hits: int = 0
    path_cache_misses: int = 0


# -- einsum contraction-path cache -------------------------------------------
#
# `np.einsum_path` re-derives the greedy pairwise order on every call; for
# the recursive dynamic-definition engine that is once per window per
# frontier bin over *identical* shapes.  The path depends only on the
# operand shapes and subscripts, so it is memoized here and handed to the
# contraction kernel pre-computed.

_EINSUM_PATH_CACHE: dict[tuple, list] = {}
_PATH_CACHE_HITS = 0
_PATH_CACHE_MISSES = 0


def clear_einsum_path_cache() -> None:
    """Drop all memoized contraction paths and reset the hit counters."""
    global _PATH_CACHE_HITS, _PATH_CACHE_MISSES
    _EINSUM_PATH_CACHE.clear()
    _PATH_CACHE_HITS = 0
    _PATH_CACHE_MISSES = 0


def einsum_path_cache_counters() -> tuple[int, int]:
    """Cumulative ``(hits, misses)`` of the contraction-path cache."""
    return _PATH_CACHE_HITS, _PATH_CACHE_MISSES


def _cached_einsum_path(tag: str, operands: list):
    """Memoized ``np.einsum_path`` for an interleaved operand list.

    ``operands`` is ``[tensor, subscript, ..., out_subscript]``; the cache
    key is the shape/subscript signature (plus ``tag``, so differently
    shaped uses of coincidentally equal signatures cannot collide across
    call sites).
    """
    global _PATH_CACHE_HITS, _PATH_CACHE_MISSES
    signature: list = [tag]
    for i in range(0, len(operands) - 1, 2):
        signature.append((operands[i].shape, tuple(operands[i + 1])))
    signature.append(tuple(operands[-1]))
    key = tuple(signature)
    path = _EINSUM_PATH_CACHE.get(key)
    if path is None:
        _PATH_CACHE_MISSES += 1
        path = np.einsum_path(*operands, optimize="greedy")[0]
        _EINSUM_PATH_CACHE[key] = path
    else:
        _PATH_CACHE_HITS += 1
    return path


def _axis_cuts(fragments) -> list[list[int]]:
    """Per fragment: the cut ids of its Pauli axes, in tensor axis order."""
    return [
        [c for c, _ in f.quantum_inputs] + [c for c, _ in f.quantum_outputs]
        for f in fragments
    ]


def _nonzero_masks(
    tensors: list[np.ndarray], zero_threshold: float
) -> list[np.ndarray]:
    """Per fragment: boolean indicator over cut-axis combos of live slices."""
    return [
        np.max(np.abs(tensor), axis=-1) > zero_threshold for tensor in tensors
    ]


def _count_survivors(masks: list[np.ndarray], axis_cuts: list[list[int]]) -> int:
    """Number of Pauli assignments with every fragment slice nonzero.

    One einsum over the 0/1 indicator tensors — the same contraction as
    the reconstruction itself, but over tiny ``4^axes`` masks.
    """
    operands: list = []
    for mask, cuts in zip(masks, axis_cuts):
        operands.append(mask.astype(np.float64))
        operands.append(list(cuts))
    operands.append([])
    path = _cached_einsum_path("survivors", operands)
    return int(round(float(_kernels.dense_contract(operands, path))))


def _dense_einsum(
    tensors: list[np.ndarray], axis_cuts: list[list[int]], k: int
) -> np.ndarray:
    """Contract all fragment tensors over shared cut axes in one einsum.

    Cut ``c`` is axis label ``c``; fragment ``f``'s kept-bit axis is label
    ``k + f`` and survives to the output (fragment order), so the result
    flattens to the concatenated kept-bit accumulator.  The pairwise
    order comes from the memoized greedy ``np.einsum_path`` (see
    :func:`_cached_einsum_path`) and the contraction itself dispatches
    through :mod:`repro.kernels` so an accelerated tier can take over.
    """
    operands: list = []
    out_sub: list[int] = []
    for f_index, tensor in enumerate(tensors):
        operands.append(tensor)
        operands.append(list(axis_cuts[f_index]) + [k + f_index])
        out_sub.append(k + f_index)
    operands.append(out_sub)
    path = _cached_einsum_path("dense", operands)
    return _kernels.dense_contract(operands, path).reshape(-1)


def _dense_loop(
    tensors: list[np.ndarray],
    axis_cuts: list[list[int]],
    k: int,
    total_bits: int,
    masks: list[np.ndarray] | None,
) -> np.ndarray:
    """Legacy term-by-term recombination, skipping masked-out assignments.

    Kept as the sparsity fallback and as the reference implementation the
    einsum path is property-tested against.
    """
    accumulator = np.zeros(2**total_bits)
    for assignment in itertools.product(range(4), repeat=k):
        vectors = []
        skip = False
        for f_index, tensor in enumerate(tensors):
            index = tuple(assignment[c] for c in axis_cuts[f_index])
            if masks is not None and not masks[f_index][index]:
                skip = True
                break
            vectors.append(tensor[index])
        if skip:
            continue
        term = vectors[0]
        for vec in vectors[1:]:
            term = np.multiply.outer(term, vec)
        accumulator += term.reshape(-1)
    return accumulator


def reconstruct_distribution(
    cut_circuit: CutCircuit,
    tensors: list[np.ndarray],
    kept_locals: list[list[int]],
    keep_qubits: list[int],
    prune_zeros: bool = True,
    zero_threshold: float = 1e-12,
    method: str = "auto",
    max_dense_bits: int | None = DEFAULT_MAX_DENSE_BITS,
) -> tuple[Distribution, ReconstructionStats]:
    """Recombine fragment tensors into the distribution over ``keep_qubits``.

    ``tensors[f]`` has shape ``(4,)*qi_f + (4,)*qo_f + (2**len(kept_locals[f]),)``
    and ``kept_locals[f]`` lists fragment f's kept circuit-output qubits;
    together they must cover ``keep_qubits`` exactly.

    ``method`` selects the dense engine: ``"einsum"`` (tensor-network
    contraction), ``"loop"`` (legacy ``4^k`` assignment loop), or
    ``"auto"`` (einsum unless zero-pruning leaves under ``1/16`` of the
    terms alive, where the loop wins).

    ``max_dense_bits`` guards the ``2**total_bits`` accumulator: wider
    requests raise :class:`ReconstructionMemoryError` up front instead of
    dying in allocation.  Pass ``None`` to disable (the bounded-memory
    engines do, their windows being small by construction).
    """
    if method not in ("auto", "einsum", "loop"):
        raise ValueError(f"unknown reconstruction method {method!r}")
    fragments = cut_circuit.fragments
    k = cut_circuit.num_cuts
    total_terms = 4**k
    stats = ReconstructionStats(terms_total=total_terms)
    hits0, misses0 = einsum_path_cache_counters()

    axis_cuts = _axis_cuts(fragments)
    kept_sizes = [len(kl) for kl in kept_locals]
    total_bits = sum(kept_sizes)
    check_dense_width(total_bits, max_dense_bits)
    stats.windows = 1
    stats.peak_window_entries = 2**total_bits

    masks = None
    survivors = total_terms
    if prune_zeros:
        masks = _nonzero_masks(tensors, zero_threshold)
        survivors = _count_survivors(masks, axis_cuts)
        stats.terms_skipped = total_terms - survivors

    # the loop wins in two regimes: heavy zero-pruning (it skips dead
    # assignments outright) and star topologies where one giant fragment
    # carries every cut axis (einsum would transpose/reduce the giant
    # repeatedly; slicing it per assignment streams it once)
    sizes = [t.size for t in tensors]
    giant = max(sizes)
    star_giant = giant >= (1 << 20) and giant * 3 >= 2 * sum(sizes)
    if method == "loop" or (
        method == "auto"
        and (
            (prune_zeros and survivors * _LOOP_SPARSITY <= total_terms)
            or star_giant
        )
    ):
        accumulator = _dense_loop(tensors, axis_cuts, k, total_bits, masks)
    else:
        accumulator = _dense_einsum(tensors, axis_cuts, k)
    accumulator /= 2.0**k

    # bit order of `accumulator`: fragment 0 kept bits, fragment 1 kept bits, ...
    # reorder to the requested original-qubit order
    concat_qubits: list[int] = []
    for fragment, kl in zip(fragments, kept_locals):
        local_to_orig = {lq: oq for oq, lq in fragment.circuit_outputs}
        concat_qubits.extend(local_to_orig[lq] for lq in kl)
    if sorted(concat_qubits) != sorted(keep_qubits):
        raise ValueError("kept fragment outputs do not match requested qubits")
    if total_bits:
        tensor_view = accumulator.reshape((2,) * total_bits)
        order = [concat_qubits.index(q) for q in keep_qubits]
        tensor_view = np.transpose(tensor_view, order)
        accumulator = tensor_view.reshape(-1)
    # build the sparse Distribution directly from the surviving entries —
    # materialising every explicit (near-)zero of the 2^n accumulator as
    # an entry defeats the sparse representation downstream
    threshold = zero_threshold if prune_zeros else 0.0
    nonzero = np.flatnonzero(np.abs(accumulator) > threshold)
    distribution = Distribution.from_arrays(
        len(keep_qubits),
        nonzero.astype(np.uint64),
        accumulator[nonzero],
        assume_sorted=True,
    )
    hits1, misses1 = einsum_path_cache_counters()
    stats.path_cache_hits = hits1 - hits0
    stats.path_cache_misses = misses1 - misses0
    return distribution, stats


def reconstruct_sparse_distribution(
    cut_circuit: CutCircuit,
    tensors: list[dict],
    kept_locals: list[list[int]],
    keep_qubits: list[int],
    prune_zeros: bool = True,
    zero_threshold: float = 1e-12,
    max_support: int = 1_000_000,
) -> tuple[Distribution, ReconstructionStats]:
    """Sparse recombination: array-valued fragment tensors, any width.

    ``tensors[f]`` maps Pauli combos to sparse slices — the array-backed
    :class:`~repro.core.tomography.SparseKeyedVector` the tomography stage
    emits (plain ``{outcome: value}`` dicts are still accepted and
    converted) — so each assignment's cross-fragment product is an array
    outer product and the final merge is one ``np.unique``-keyed
    accumulation instead of a Python dict-merge per term.  Support grows
    as the product of per-fragment supports; a guard raises when it
    exceeds ``max_support`` (dense circuits should use marginal
    reconstruction instead).
    """
    fragments = cut_circuit.fragments
    k = cut_circuit.num_cuts
    stats = ReconstructionStats(terms_total=4**k)
    axis_cuts = _axis_cuts(fragments)
    kept_sizes = [len(kl) for kl in kept_locals]
    total_bits = sum(kept_sizes)
    # uint64 keys cover the common case; Python-int (object) keys keep
    # arbitrary widths working
    use_object = total_bits > 62
    key_dtype = object if use_object else np.uint64

    frag_arrays: list[dict[tuple[int, ...], tuple[np.ndarray, np.ndarray, float]]] = []
    for tensor in tensors:
        entry = {}
        for combo, vec in tensor.items():
            if isinstance(vec, dict):
                keys = np.array(list(vec.keys()), dtype=key_dtype)
                vals = np.array(list(vec.values()), dtype=np.float64)
            else:  # SparseKeyedVector or a bare (keys, vals) pair
                keys, vals = (
                    (vec.keys, vec.vals) if hasattr(vec, "vals") else vec
                )
                vals = np.asarray(vals, dtype=np.float64)
                if use_object:
                    # Python-int keys: numpy int shifts would overflow
                    keys = np.array(
                        [int(key) for key in keys], dtype=object
                    )
                else:
                    keys = np.asarray(keys).astype(np.uint64)
            maxabs = float(np.max(np.abs(vals))) if len(vals) else 0.0
            entry[combo] = (keys, vals, maxabs)
        frag_arrays.append(entry)

    all_keys: list[np.ndarray] = []
    all_vals: list[np.ndarray] = []
    buffered = 0
    # bound peak memory: fold buffered terms into their union support
    # whenever the raw buffers outgrow the floor (the per-term guard
    # below only bounds individual terms, not their sum over 4^k)
    compact_limit = _SPARSE_COMPACT_FLOOR

    def _compact() -> None:
        nonlocal all_keys, all_vals, buffered
        keys = np.concatenate(all_keys)
        vals = np.concatenate(all_vals)
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        all_keys = [unique_keys]
        all_vals = [np.bincount(inverse, weights=vals)]
        buffered = unique_keys.size

    for assignment in itertools.product(range(4), repeat=k):
        parts = []
        skip = False
        for f_index, entry in enumerate(frag_arrays):
            index = tuple(assignment[c] for c in axis_cuts[f_index])
            keys, vals, maxabs = entry[index]
            if prune_zeros and maxabs <= zero_threshold:
                skip = True
                break
            parts.append((keys, vals, kept_sizes[f_index]))
        if skip:
            stats.terms_skipped += 1
            continue
        term_keys, term_vals, _ = parts[0]
        for keys, vals, shift in parts[1:]:
            if use_object:
                term_keys = (
                    (term_keys[:, None] * (1 << shift)) | keys[None, :]
                ).ravel()
            else:
                term_keys = (
                    (term_keys[:, None] << np.uint64(shift)) | keys[None, :]
                ).ravel()
            term_vals = (term_vals[:, None] * vals[None, :]).ravel()
            if term_keys.size > max_support:
                raise ValueError(
                    "sparse reconstruction support exceeded max_support; "
                    "use marginal reconstruction for dense outputs"
                )
        all_keys.append(term_keys)
        all_vals.append(term_vals)
        buffered += term_keys.size
        if buffered > compact_limit:
            _compact()
    scale = 2.0**-k

    # reorder concatenated fragment bits into the requested qubit order
    concat_qubits: list[int] = []
    for fragment, kl in zip(fragments, kept_locals):
        local_to_orig = {lq: oq for oq, lq in fragment.circuit_outputs}
        concat_qubits.extend(local_to_orig[lq] for lq in kl)
    if sorted(concat_qubits) != sorted(keep_qubits):
        raise ValueError("kept fragment outputs do not match requested qubits")
    if not all_keys:
        return Distribution(len(keep_qubits), {}), stats
    keys = np.concatenate(all_keys)
    vals = np.concatenate(all_vals)
    source_pos = {q: i for i, q in enumerate(concat_qubits)}
    m = len(keep_qubits)
    if use_object:
        out: dict[int, float] = {}
        for key, val in zip(keys, vals):
            new_key = 0
            for q in keep_qubits:
                bit = (int(key) >> (total_bits - 1 - source_pos[q])) & 1
                new_key = (new_key << 1) | bit
            out[new_key] = out.get(new_key, 0.0) + val * scale
        if prune_zeros:
            out = {kk: vv for kk, vv in out.items() if abs(vv) > zero_threshold}
        return Distribution(m, out), stats
    # vectorized bit permutation into the requested order
    new_keys = np.zeros_like(keys)
    for out_pos, q in enumerate(keep_qubits):
        src = np.uint64(total_bits - 1 - source_pos[q])
        dst = np.uint64(m - 1 - out_pos)
        new_keys |= ((keys >> src) & _ONE) << dst
    unique_keys, inverse = np.unique(new_keys, return_inverse=True)
    sums = np.bincount(inverse, weights=vals) * scale
    if prune_zeros:
        live = np.abs(sums) > zero_threshold
    else:
        live = sums != 0.0
    distribution = Distribution.from_arrays(
        m, unique_keys[live], sums[live], assume_sorted=True
    )
    return distribution, stats


# -- bounded-memory engines (dynamic definition) ----------------------------


def _reduce_window_tensors(
    cut_circuit: CutCircuit,
    tensors: list[np.ndarray],
    kept_locals: list[list[int]],
    window: list[int],
    fixed: dict[int, int],
) -> tuple[list[np.ndarray], list[list[int]]]:
    """Per-fragment tensors marginalised onto ``window`` (``fixed`` pinned).

    The kept output bits partition across fragments, so marginalising the
    reconstructed distribution commutes with reducing each fragment tensor
    independently: traced-out kept bits are summed, ``fixed`` bits are
    sliced, and only the window bits survive on the last axis.  The
    subsequent cut-axis contraction then never sees more than
    ``2**len(window)`` output entries.
    """
    window_set = set(window)
    new_tensors: list[np.ndarray] = []
    new_kept: list[list[int]] = []
    for fragment, kept, tensor in zip(
        cut_circuit.fragments, kept_locals, tensors
    ):
        local_to_orig = {lq: oq for oq, lq in fragment.circuit_outputs}
        orig = [local_to_orig[lq] for lq in kept]
        m = len(kept)
        head = tensor.shape[:-1]
        t = tensor.reshape(head + (2,) * m)
        base = len(head)
        # reduce from the last bit axis backward so earlier axis indices
        # stay valid as axes disappear
        axes: list[int] = []
        bits: list[int] = []
        for j in range(m - 1, -1, -1):
            q = orig[j]
            if q in window_set:
                continue
            axes.append(base + j)
            bits.append(int(fixed[q]) if q in fixed else -1)
        if axes:
            t = _kernels.window_reduce(t, axes, bits)
        survivors = [j for j in range(m) if orig[j] in window_set]
        t = t.reshape(head + (2 ** len(survivors),))
        new_tensors.append(np.ascontiguousarray(t))
        new_kept.append([kept[j] for j in survivors])
    return new_tensors, new_kept


def reconstruct_marginal(
    cut_circuit: CutCircuit,
    tensors: list[np.ndarray],
    kept_locals: list[list[int]],
    window: list[int],
    fixed: dict[int, int] | None = None,
    prune_zeros: bool = True,
    zero_threshold: float = 1e-12,
    method: str = "auto",
) -> tuple[Distribution, ReconstructionStats]:
    """Exact marginal over ``window`` without the full accumulator.

    ``tensors`` / ``kept_locals`` are the usual full fragment tensors (as
    fed to :func:`reconstruct_distribution`); ``window`` lists the kept
    qubits (original indices, output bit order) to marginalise onto, and
    ``fixed`` optionally pins other kept qubits to bit values — the
    returned values are then joint probabilities ``P(fixed, window)``,
    which is what the recursive driver conditions on.  Traced-out bins
    are summed fragment-side before the contraction, so peak memory is
    ``O(4^k · 2**len(window))`` regardless of the total kept width.
    """
    window = [int(q) for q in window]
    fixed = {int(q): int(b) for q, b in (fixed or {}).items()}
    if not window:
        raise ValueError("window must name at least one kept qubit")
    if len(set(window)) != len(window):
        raise ValueError("window contains duplicate qubits")
    overlap = set(window) & set(fixed)
    if overlap:
        raise ValueError(f"window and fixed qubits overlap: {sorted(overlap)}")
    covered: set[int] = set()
    for fragment, kept in zip(cut_circuit.fragments, kept_locals):
        local_to_orig = {lq: oq for oq, lq in fragment.circuit_outputs}
        covered.update(local_to_orig[lq] for lq in kept)
    missing = (set(window) | set(fixed)) - covered
    if missing:
        raise ValueError(
            f"window/fixed qubits not among kept outputs: {sorted(missing)}"
        )
    reduced, reduced_kept = _reduce_window_tensors(
        cut_circuit, tensors, kept_locals, window, fixed
    )
    distribution, stats = reconstruct_distribution(
        cut_circuit,
        reduced,
        reduced_kept,
        window,
        prune_zeros=prune_zeros,
        zero_threshold=zero_threshold,
        method=method,
        max_dense_bits=None,
    )
    stats.mode = "windowed"
    return distribution, stats


def reconstruct_dynamic(
    cut_circuit: CutCircuit,
    tensor_builder,
    keep_qubits: list[int],
    *,
    qubit_limit: int = 16,
    top_k: int = 64,
    recursion_depth: int | None = None,
    refine_threshold: float = 0.0,
    prune_zeros: bool = True,
    zero_threshold: float = 1e-12,
) -> tuple[Distribution, ReconstructionStats]:
    """Recursive dynamic-definition reconstruction (CutQC-style).

    ``keep_qubits`` is split into consecutive windows of at most
    ``qubit_limit`` qubits.  The first window's distribution is
    reconstructed coarsely (all other qubits merged — i.e. marginalised);
    each bin with probability above ``refine_threshold`` is then refined
    by reconstructing the next window *conditioned* on the bin's bits,
    keeping at most ``top_k`` bins per level.  Every per-bin value is the
    exact joint probability of the bits defined so far, so the final
    outcomes are calibrated — no renormalisation hides the truncated
    mass, which ``stats.covered_probability`` reports.

    ``tensor_builder(window, fixed)`` must return ``(tensors,
    kept_locals)`` for the given window of original qubits with the
    ``{original_qubit: bit}`` assignments in ``fixed`` pinned — see
    :meth:`SuperSim.marginal_probabilities`'s builder.  Building tensors
    per (window, bin) keeps tomography memory bounded by the fragment
    supports rather than ``2**total_bits``.

    ``recursion_depth`` caps the number of window levels; when it stops
    short of the full width the result is a (coarse) distribution over
    the first ``recursion_depth * qubit_limit`` kept qubits only.
    """
    keep = [int(q) for q in keep_qubits]
    if len(set(keep)) != len(keep):
        raise ValueError("keep_qubits contains duplicates")
    if not keep:
        raise ValueError("keep_qubits must not be empty")
    if qubit_limit < 1:
        raise ValueError("qubit_limit must be at least 1")
    if top_k < 1:
        raise ValueError("top_k must be at least 1")
    windows = [keep[i : i + qubit_limit] for i in range(0, len(keep), qubit_limit)]
    if recursion_depth is not None:
        if recursion_depth < 1:
            raise ValueError("recursion_depth must be at least 1 or None")
        windows = windows[:recursion_depth]
    defined = [q for w in windows for q in w]

    k = cut_circuit.num_cuts
    stats = ReconstructionStats(terms_total=4**k, mode="recursive")
    # frontier bins: (prefix_key over defined-so-far bits, fixed bit
    # assignments, exact joint probability of the bin)
    frontier: list[tuple[int, dict[int, int], float]] = [(0, {}, 1.0)]
    for level, window in enumerate(windows):
        final = level == len(windows) - 1
        width = len(window)
        candidates: list[tuple[int, dict[int, int], float]] = []
        for prefix, fixed, _prob in frontier:
            tensors, kept_locals = tensor_builder(window, fixed)
            dist, sub = reconstruct_distribution(
                cut_circuit,
                tensors,
                kept_locals,
                window,
                prune_zeros=prune_zeros,
                zero_threshold=zero_threshold,
                max_dense_bits=None,
            )
            stats.windows += 1
            stats.terms_skipped = max(stats.terms_skipped, sub.terms_skipped)
            stats.peak_window_entries = max(stats.peak_window_entries, 2**width)
            stats.path_cache_hits += sub.path_cache_hits
            stats.path_cache_misses += sub.path_cache_misses
            for key, prob in zip(dist.key_ints(), dist.values_array.tolist()):
                if not final and prob <= refine_threshold:
                    continue
                new_fixed = dict(fixed)
                for j, q in enumerate(window):
                    new_fixed[q] = (key >> (width - 1 - j)) & 1
                candidates.append(((prefix << width) | key, new_fixed, prob))
        # heaviest bins first; ties broken by outcome key so seeded runs
        # are bit-for-bit reproducible at any parallelism
        candidates.sort(key=lambda c: (-c[2], c[0]))
        frontier = candidates[:top_k]
        if not frontier:
            break
    stats.refinements = max(stats.windows - 1, 0)

    probs = {prefix: prob for prefix, _fixed, prob in frontier}
    stats.covered_probability = float(sum(probs.values()))
    return Distribution(len(defined), probs), stats


def estimate_reconstruction_cost(
    num_cuts: int,
    total_bits: int,
    *,
    qubit_limit: int = 16,
    top_k: int = 64,
    mode: str = "auto",
) -> float:
    """Predicted seconds of the recombination stage (output-width aware).

    Dense work is ``4^k · 2**total_bits`` accumulator updates; recursive
    work is one coarse window plus up to ``top_k`` refinements per
    remaining level at ``4^k · 2**qubit_limit`` each.  ``"auto"`` charges
    the cheaper of the two — the same choice ``execute()`` makes — so
    ``ExecutionPlan.estimate()`` stays honest for wide circuits instead
    of silently quoting an impossible dense pass.
    """
    terms = 4.0**num_cuts
    window_bits = min(qubit_limit, total_bits)
    dense = terms * 2.0**total_bits
    levels = max(1, -(-total_bits // qubit_limit))
    recursive = (1 + (levels - 1) * top_k) * terms * 2.0**window_bits
    if mode == "full":
        units = dense
    elif mode == "windowed":
        units = terms * 2.0**window_bits
    elif mode == "recursive":
        units = recursive
    else:
        units = min(dense, recursive)
    return units * _SECONDS_PER_TERM_ENTRY
