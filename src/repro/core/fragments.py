"""Fragment data structures produced by cutting a circuit.

A *cut* sits on one qubit's wire between two operations.  Cutting partitions
the circuit's wire segments into connected components; each component is a
:class:`Fragment` with its own local qubit register.  Every fragment qubit
(wire segment) has one of four boundary roles on each side (paper §V-B):

* **circuit input** — the segment starts at the beginning of the original
  circuit (initialised to |0>, nothing to vary);
* **quantum input** — the segment starts at a cut (prepared in each of the
  tomographically complete states |0>, |1>, |+>, |+i>);
* **circuit output** — the segment ends at the end of the original circuit
  (measured in the computational basis);
* **quantum output** — the segment ends at a cut (measured in each of the
  X, Y, Z bases).

One segment can hold several roles at once (e.g. the one-qubit fragment
containing an isolated T gate is both a quantum input and a quantum output).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.circuit import Circuit


@dataclass(frozen=True, order=True)
class Cut:
    """A wire cut on ``qubit``, after ``position`` operations on that wire.

    ``position`` counts operations *acting on that qubit* from the start of
    the circuit; a cut at position ``p`` separates that wire's ops
    ``0..p-1`` (upstream) from ``p..`` (downstream).
    """

    qubit: int
    position: int

    def __post_init__(self):
        if self.position <= 0:
            raise ValueError(
                "cut position must be positive: position 0 would sit before "
                "the first operation, where the |0> initialisation already "
                "provides a known state"
            )


@dataclass
class Fragment:
    """One connected subcircuit of a cut circuit."""

    index: int
    circuit: Circuit
    # local qubits by role; quantum inputs/outputs carry their global cut id
    circuit_inputs: list[int] = field(default_factory=list)
    quantum_inputs: list[tuple[int, int]] = field(default_factory=list)   # (cut, q)
    quantum_outputs: list[tuple[int, int]] = field(default_factory=list)  # (cut, q)
    circuit_outputs: list[tuple[int, int]] = field(default_factory=list)  # (orig, q)

    @property
    def n_qubits(self) -> int:
        return self.circuit.n_qubits

    @property
    def is_clifford(self) -> bool:
        return self.circuit.is_clifford

    @property
    def num_variants(self) -> int:
        """4 preparations per quantum input x 3 bases per quantum output."""
        return 4 ** len(self.quantum_inputs) * 3 ** len(self.quantum_outputs)

    @property
    def incident_cuts(self) -> list[int]:
        cuts = [c for c, _ in self.quantum_inputs]
        cuts += [c for c, _ in self.quantum_outputs]
        return sorted(set(cuts))

    def output_qubit_for(self, original_qubit: int) -> int:
        for orig, local in self.circuit_outputs:
            if orig == original_qubit:
                return local
        raise KeyError(f"qubit {original_qubit} is not an output of this fragment")

    def __repr__(self) -> str:
        return (
            f"Fragment({self.index}: {self.n_qubits}q, {len(self.circuit)} ops, "
            f"{'Clifford' if self.is_clifford else 'non-Clifford'}, "
            f"qi={len(self.quantum_inputs)}, qo={len(self.quantum_outputs)})"
        )


@dataclass
class CutCircuit:
    """A circuit together with its cuts and resulting fragments."""

    original: Circuit
    cuts: list[Cut]
    fragments: list[Fragment]

    @property
    def num_cuts(self) -> int:
        return len(self.cuts)

    @property
    def reconstruction_terms(self) -> int:
        """The ``4^k`` Pauli assignments summed during recombination."""
        return 4**self.num_cuts

    def fragment_of_output(self, original_qubit: int) -> tuple[Fragment, int]:
        """The fragment (and local qubit) holding an original circuit output."""
        for fragment in self.fragments:
            for orig, local in fragment.circuit_outputs:
                if orig == original_qubit:
                    return fragment, local
        raise KeyError(f"no fragment owns output qubit {original_qubit}")

    def __repr__(self) -> str:
        return (
            f"CutCircuit({self.num_cuts} cuts, {len(self.fragments)} fragments: "
            f"{[f.n_qubits for f in self.fragments]})"
        )
