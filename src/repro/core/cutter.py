"""The SuperSim circuit cutter (paper §V-A).

``find_cuts`` parses a near-Clifford circuit and places cuts that isolate
its non-Clifford operations from the Clifford bulk; ``cut_circuit`` splits a
circuit along a given cut set into :class:`Fragment` objects.

The default ``ISOLATE`` strategy cuts every wire of a non-Clifford operation
immediately before and after it, except where the wire starts or ends the
circuit (those boundaries are free) or where the neighbouring operation is
itself non-Clifford (adjacent non-Clifford ops share a fragment, so a cut
between them would be wasted).  This realises the paper's bound: the number
of cuts is at most twice the number of non-Clifford gates.

The ``GREEDY_MERGE`` strategy additionally drops cuts whose removal does not
increase the total cut count — merging a non-Clifford gate into a
neighbouring Clifford region when that region is small enough to simulate
exactly anyway (Fig. 2's observation that a bigger, cheaper-to-stitch
fragment can beat a minimal one).
"""

from __future__ import annotations

import enum
from collections import defaultdict

from repro.circuits.circuit import Circuit
from repro.core.fragments import Cut, CutCircuit, Fragment


class CutStrategy(enum.Enum):
    #: isolate every non-Clifford op with cuts on all its wires
    ISOLATE = "isolate"
    #: isolate, then drop cuts that merely separate small Clifford tails
    GREEDY_MERGE = "greedy_merge"


def _wire_positions(circuit: Circuit) -> list[list[int]]:
    """Per-op, per-wire position of each op among the ops on that qubit."""
    counters: dict[int, int] = defaultdict(int)
    positions: list[list[int]] = []
    for op in circuit.ops:
        row = []
        for q in op.qubits:
            row.append(counters[q])
            counters[q] += 1
        positions.append(row)
    return positions


def _ops_per_qubit(circuit: Circuit) -> dict[int, int]:
    counts: dict[int, int] = defaultdict(int)
    for op in circuit.ops:
        for q in op.qubits:
            counts[q] += 1
    return counts


def find_cuts(
    circuit: Circuit, strategy: CutStrategy = CutStrategy.ISOLATE
) -> list[Cut]:
    """Cut locations isolating the non-Clifford operations of ``circuit``.

    ``strategy`` may be a :class:`CutStrategy`, its string value, or a
    :class:`~repro.core.config.CutConfig` (whose strategy is used).
    """
    strategy = getattr(strategy, "strategy", strategy)
    if isinstance(strategy, str):
        strategy = CutStrategy(strategy)
    positions = _wire_positions(circuit)
    totals = _ops_per_qubit(circuit)
    non_clifford = [not op.gate.is_clifford for op in circuit.ops]

    # classify each wire position as belonging to a Clifford or non-Clifford op
    wire_is_ncl: dict[tuple[int, int], bool] = {}
    for i, op in enumerate(circuit.ops):
        for w, q in enumerate(op.qubits):
            wire_is_ncl[(q, positions[i][w])] = non_clifford[i]

    cuts: set[Cut] = set()
    for i, op in enumerate(circuit.ops):
        if not non_clifford[i]:
            continue
        for w, q in enumerate(op.qubits):
            p = positions[i][w]
            # cut before, unless at the wire start or preceded by another
            # non-Clifford op (shared fragment)
            if p > 0 and not wire_is_ncl.get((q, p - 1), False):
                cuts.add(Cut(q, p))
            # cut after, unless at the wire end or followed by non-Clifford
            if p + 1 < totals[q] and not wire_is_ncl.get((q, p + 1), False):
                cuts.add(Cut(q, p + 1))
    result = sorted(cuts)
    if strategy is CutStrategy.GREEDY_MERGE:
        result = _greedy_merge(circuit, result)
    return result


def _greedy_merge(circuit: Circuit, cuts: list[Cut]) -> list[Cut]:
    """Drop cuts one at a time while the fragment count stays above one.

    Removing a cut merges the non-Clifford fragment with a Clifford
    neighbour; that enlarges the non-Clifford fragment (more expensive exact
    simulation) but removes a factor of 4 from reconstruction.  The greedy
    rule drops a cut whenever the merged fragment stays small (at most
    ``_MERGE_LIMIT`` qubits), mirroring the paper's Fig. 2 discussion.
    """
    merge_limit = 10
    current = list(cuts)
    improved = True
    while improved and len(current) > 0:
        improved = False
        for cut in list(current):
            trial = [c for c in current if c != cut]
            try:
                trial_cc = cut_circuit(circuit, trial)
            except ValueError:
                continue
            largest_ncl = max(
                (f.n_qubits for f in trial_cc.fragments if not f.is_clifford),
                default=0,
            )
            if largest_ncl <= merge_limit and len(trial_cc.fragments) > 1:
                current = trial
                improved = True
                break
    return current


def plan_cuts(
    circuit: Circuit, config, cuts: list[Cut] | None = None
) -> CutCircuit:
    """Find (or validate) cuts under a :class:`~repro.core.config.CutConfig`
    and split the circuit.

    This is the cut stage of the plan→execute pipeline: explicit ``cuts``
    bypass the search but still face the ``max_cuts`` reconstruction
    guard.
    """
    if cuts is None:
        cuts = find_cuts(circuit, config.strategy)
    if len(cuts) > config.max_cuts:
        raise ValueError(
            f"{len(cuts)} cuts would need 4^{len(cuts)} reconstruction "
            f"terms (max_cuts={config.max_cuts}); SuperSim targets "
            "near-Clifford circuits with few non-Clifford gates"
        )
    return cut_circuit(circuit, cuts)


def cut_circuit(circuit: Circuit, cuts: list[Cut]) -> CutCircuit:
    """Split ``circuit`` along ``cuts`` into fragments."""
    positions = _wire_positions(circuit)
    totals = _ops_per_qubit(circuit)
    cuts = sorted(set(cuts))
    cut_index = {cut: i for i, cut in enumerate(cuts)}
    for cut in cuts:
        # a cut at or beyond the final op-position on its wire separates
        # nothing from nothing — the circuit end is already a free boundary
        if cut.position >= totals.get(cut.qubit, 0):
            raise ValueError(f"{cut} sits at or after the last operation on its wire")

    cut_positions: dict[int, list[int]] = defaultdict(list)
    for cut in cuts:
        cut_positions[cut.qubit].append(cut.position)
    for qubit in cut_positions:
        cut_positions[qubit].sort()

    def segment_of(q: int, p: int) -> int:
        """Index of the wire segment containing op-position ``p`` on ``q``."""
        return sum(1 for cp in cut_positions.get(q, ()) if cp <= p)

    # enumerate all segments: qubit q has len(cuts_on_q) + 1 segments
    segments: list[tuple[int, int]] = []
    for q in range(circuit.n_qubits):
        for s in range(len(cut_positions.get(q, ())) + 1):
            segments.append((q, s))
    seg_id = {seg: i for i, seg in enumerate(segments)}

    # union-find over segments, joined by operations
    parent = list(range(len(segments)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[ri] = rj

    for i, op in enumerate(circuit.ops):
        ids = [seg_id[(q, segment_of(q, positions[i][w]))]
               for w, q in enumerate(op.qubits)]
        for other in ids[1:]:
            union(ids[0], other)

    # group segments into fragments
    roots: dict[int, list[tuple[int, int]]] = defaultdict(list)
    for seg in segments:
        roots[find(seg_id[seg])].append(seg)
    ordered_roots = sorted(roots, key=lambda r: min(roots[r]))

    fragments: list[Fragment] = []
    seg_to_fragment_qubit: dict[tuple[int, int], tuple[int, int]] = {}
    for f_index, root in enumerate(ordered_roots):
        segs = sorted(roots[root])
        local = {seg: i for i, seg in enumerate(segs)}
        for seg, lq in local.items():
            seg_to_fragment_qubit[seg] = (f_index, lq)
        frag_circuit = Circuit(len(segs))
        fragment = Fragment(index=f_index, circuit=frag_circuit)
        for q, s in segs:
            lq = local[(q, s)]
            n_cuts_q = len(cut_positions.get(q, ()))
            if s == 0:
                fragment.circuit_inputs.append(lq)
            else:
                opening = Cut(q, cut_positions[q][s - 1])
                fragment.quantum_inputs.append((cut_index[opening], lq))
            if s == n_cuts_q:
                fragment.circuit_outputs.append((q, lq))
            else:
                closing = Cut(q, cut_positions[q][s])
                fragment.quantum_outputs.append((cut_index[closing], lq))
        fragments.append(fragment)

    # place operations into fragment circuits (original order preserved)
    for i, op in enumerate(circuit.ops):
        seg = (op.qubits[0], segment_of(op.qubits[0], positions[i][0]))
        f_index, _ = seg_to_fragment_qubit[seg]
        fragment = fragments[f_index]
        local_qubits = []
        for w, q in enumerate(op.qubits):
            f2, lq = seg_to_fragment_qubit[(q, segment_of(q, positions[i][w]))]
            if f2 != f_index:  # pragma: no cover - union-find guarantees this
                raise AssertionError("operation spans fragments")
            local_qubits.append(lq)
        fragment.circuit.append(op.gate, *local_qubits)

    # sort boundary lists for determinism
    for fragment in fragments:
        fragment.quantum_inputs.sort()
        fragment.quantum_outputs.sort()
        fragment.circuit_outputs.sort()
        fragment.circuit_inputs.sort()
    return CutCircuit(original=circuit, cuts=cuts, fragments=fragments)
