"""Typed configuration objects for the plan→execute pipeline.

The original ``SuperSim`` constructor grew ~10 loose keyword arguments
spanning three unrelated concerns.  These frozen dataclasses name the
concerns explicitly and travel together through the pipeline:

* :class:`CutConfig` — how the circuit is split (cut placement strategy,
  the ``4^k`` reconstruction guard);
* :class:`SamplingConfig` — how fragment variants are evaluated
  statistically (exact vs shots, Clifford shot rebalancing, tomography
  projection, noise, seeding);
* :class:`ExecutionConfig` — where and how the work runs (forced backend,
  router, variant cache, worker pool, reconstruction pruning) and what
  happens when it fails (failure policy, retry budget, soft timeouts,
  crash quarantine);
* :class:`ReconstructionConfig` — how fragment tensors recombine into the
  output distribution (dense vs windowed vs recursive dynamic-definition,
  the qubit window size and top-k beam of the bounded-memory engines).

All three are immutable; derive variations with :func:`dataclasses.replace`
(re-exported as each config's ``replace`` method)::

    from dataclasses import replace

    base = SamplingConfig(shots=4000, seed=7)
    snapped = replace(base, snap_clifford=True)

``SuperSim`` accepts them directly — ``SuperSim(sampling=base)`` — and the
old flat kwargs remain available as a deprecation shim that maps onto
these objects.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.core.cutter import CutStrategy


class _Replaceable:
    """Mixin: ``config.replace(field=value)`` -> new frozen instance."""

    def replace(self, **changes):
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class CutConfig(_Replaceable):
    """How a circuit is split into fragments (paper §V-A).

    Parameters
    ----------
    strategy:
        Cut placement strategy (:class:`~repro.core.cutter.CutStrategy`).
    max_cuts:
        Refuse circuits needing more cuts — ``4^k`` reconstruction terms
        grow out of reach quickly.
    """

    strategy: CutStrategy = CutStrategy.ISOLATE
    max_cuts: int = 12

    def __post_init__(self):
        if isinstance(self.strategy, str):  # accept "isolate" / "greedy_merge"
            object.__setattr__(self, "strategy", CutStrategy(self.strategy))
        if self.max_cuts < 0:
            raise ValueError("max_cuts must be non-negative")


@dataclass(frozen=True)
class SamplingConfig(_Replaceable):
    """How fragment variants are evaluated statistically (§V-B, §IX).

    Parameters
    ----------
    shots:
        ``None`` for exact fragment evaluation; an integer to sample each
        variant with that many shots.
    clifford_shots:
        Override the per-variant shot count for Clifford fragments
        (Section IX: few shots suffice when expectations are in {-1,0,+1}).
    snap_clifford:
        Snap sampled Clifford conditional expectations to {-1, 0, +1}.
    tomography:
        Apply the physicality (PSD) projection to sampled fragment models.
    noise:
        A :class:`repro.stabilizer.NoiseModel` applied to Clifford
        fragments via Pauli-frame sampling (requires finite ``shots``).
    seed:
        Root seed (int or :class:`numpy.random.Generator`) for sampled
        evaluation; per-variant seeds derive from it and the variant
        fingerprint, so seeded runs are bit-for-bit reproducible.
    """

    shots: int | None = None
    clifford_shots: int | None = None
    snap_clifford: bool = False
    tomography: bool = False
    noise: Any = None
    seed: Any = None

    def __post_init__(self):
        if self.shots is not None and self.shots < 1:
            raise ValueError("shots must be positive or None")
        if self.clifford_shots is not None and self.clifford_shots < 1:
            raise ValueError("clifford_shots must be positive or None")
        if self.noise is not None and self.shots is None:
            raise ValueError("noisy fragment evaluation requires finite shots")

    @property
    def exact(self) -> bool:
        return self.shots is None


@dataclass(frozen=True)
class ExecutionConfig(_Replaceable):
    """Where and how fragment jobs execute.

    Parameters
    ----------
    backend:
        Force a backend for every fragment it can handle — a registered
        name or a :class:`~repro.backends.base.Backend` instance.
    router:
        A custom :class:`~repro.backends.router.BackendRouter`; the
        default scores every built-in backend's cost model.
    nonclifford_backend:
        Legacy §XI extension point: force a backend for non-Clifford
        fragments only (duck-typed simulators are adapted automatically).
    cache:
        Variant caching across runs: ``True`` (default) builds a private
        :class:`~repro.backends.cache.VariantCache`, or pass a shared
        instance, or ``False``/``None`` to disable.
    pool:
        Worker pool kind: ``"thread"``, ``"process"``, or ``None`` to
        follow the backends' capability hints.
    parallel:
        Worker count for parallel variant evaluation.
    statevector_max_qubits:
        Width cap for the default statevector backend in the router pool.
    prune_zeros:
        Skip recombination terms with an exactly-zero fragment factor
        (Section IX downstream-term pruning).
    failure_policy:
        What the engine does when a fragment job fails.  ``"raise"``
        (default) fails fast with a contextful
        :class:`~repro.errors.BackendExecutionError`; ``"retry"``
        retries each job up to ``max_retries`` times with capped
        exponential backoff (retried jobs reuse their
        fingerprint-derived seed, so seeded results stay bit-identical
        to a failure-free run) and raises only after exhaustion;
        ``"degrade"`` additionally falls back along the router's
        capability-admitted cost ordering to the next backend that can
        run the fragment, recording every fallback in
        ``SuperSimResult.faults``.
    max_retries:
        Per-job retry budget (per backend) under ``"retry"`` /
        ``"degrade"``.
    retry_backoff:
        Base backoff in seconds before the first retry; doubles per
        attempt, capped at ``retry_backoff_cap``.
    retry_backoff_cap:
        Upper bound on the per-retry backoff sleep.
    job_timeout:
        Explicit soft deadline in seconds for every fragment job.  When
        ``None``, a deadline is derived per job from the calibrated cost
        model — ``scored_cost x timeout_safety``, floored at
        ``min_job_timeout`` — whenever the router carries measured
        ``cost_scales`` (an uncalibrated router derives no deadline:
        its cost units are not seconds).  A job past its deadline is
        cancelled (process pools rebuild to kill the hung worker) and
        retried; it counts against ``max_retries`` and raises
        :class:`~repro.errors.JobTimeoutError` on exhaustion.
    timeout_safety:
        Safety factor between the calibrated cost prediction and the
        derived soft deadline.
    min_job_timeout:
        Floor for derived deadlines, so cheap jobs are not cancelled on
        scheduler jitter.
    max_job_crashes:
        Quarantine a job as poison (:class:`~repro.errors.WorkerCrashError`)
        after being in flight across this many worker crashes.
    chaos:
        Testing hook: a :class:`~repro.testing.chaos.ChaosSchedule`
        consulted before every job attempt to deterministically inject
        exceptions, delays and worker crashes.  ``None`` (default) in
        production.
    """

    backend: Any = None
    router: Any = None
    nonclifford_backend: Any = None
    cache: Any = True
    pool: str | None = None
    parallel: int = 1
    statevector_max_qubits: int = 20
    prune_zeros: bool = True
    failure_policy: str = "raise"
    max_retries: int = 3
    retry_backoff: float = 0.05
    retry_backoff_cap: float = 2.0
    job_timeout: float | None = None
    timeout_safety: float = 25.0
    min_job_timeout: float = 5.0
    max_job_crashes: int = 3
    chaos: Any = None

    def __post_init__(self):
        if self.pool not in (None, "thread", "process"):
            raise ValueError(
                f"pool must be 'thread', 'process' or None, got {self.pool!r}"
            )
        if self.parallel < 1:
            raise ValueError("parallel must be at least 1")
        if self.failure_policy not in ("raise", "retry", "degrade"):
            raise ValueError(
                "failure_policy must be 'raise', 'retry' or 'degrade', "
                f"got {self.failure_policy!r}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_backoff < 0 or self.retry_backoff_cap < 0:
            raise ValueError("retry backoff values must be non-negative")
        if self.job_timeout is not None and not self.job_timeout > 0:
            raise ValueError("job_timeout must be positive or None")
        if not self.timeout_safety > 0:
            raise ValueError("timeout_safety must be positive")
        if self.min_job_timeout < 0:
            raise ValueError("min_job_timeout must be non-negative")
        if self.max_job_crashes < 1:
            raise ValueError("max_job_crashes must be at least 1")


@dataclass(frozen=True)
class ReconstructionConfig(_Replaceable):
    """How fragment tensors recombine into the output distribution.

    Parameters
    ----------
    mode:
        ``"full"`` — the dense ``2**width`` contraction (exact, fails on
        wide outputs); ``"windowed"`` — reconstruct only the exact
        marginal over ``window`` (default: the first ``qubit_limit`` kept
        qubits); ``"recursive"`` — CutQC-style dynamic definition: a
        calibrated top-k distribution at ``O(4^k · 2**qubit_limit)``
        memory, any width; ``"auto"`` (default) — ``"full"`` while the
        output fits ``max_dense_bits``, ``"recursive"`` beyond.
    qubit_limit:
        Window width of the bounded-memory engines — the hard memory
        knob: no dense object larger than ``2**qubit_limit`` entries is
        allocated in windowed/recursive modes.
    top_k:
        Bins refined per recursion level (and the maximum support of a
        recursive result).
    recursion_depth:
        Cap on recursion levels; ``None`` defines every kept qubit.  A
        smaller cap returns a coarse distribution over the first
        ``recursion_depth * qubit_limit`` kept qubits.
    refine_threshold:
        Only bins with joint probability strictly above this are refined
        into the next level (0.0 prunes exact zeros and negative
        quasi-probability noise).
    window:
        Explicit qubit window for ``mode="windowed"`` (original qubit
        indices, output bit order).
    max_dense_bits:
        Output-width guard: dense reconstruction beyond this raises
        :class:`~repro.core.reconstruction.ReconstructionMemoryError`,
        and ``mode="auto"`` switches to recursive above it.
    """

    mode: str = "auto"
    qubit_limit: int = 16
    top_k: int = 64
    recursion_depth: int | None = None
    refine_threshold: float = 0.0
    window: tuple[int, ...] | None = None
    max_dense_bits: int = 26

    def __post_init__(self):
        if self.mode not in ("auto", "full", "windowed", "recursive"):
            raise ValueError(
                "mode must be 'auto', 'full', 'windowed' or 'recursive', "
                f"got {self.mode!r}"
            )
        if not 1 <= self.qubit_limit <= 26:
            raise ValueError("qubit_limit must be between 1 and 26")
        if self.top_k < 1:
            raise ValueError("top_k must be at least 1")
        if self.recursion_depth is not None and self.recursion_depth < 1:
            raise ValueError("recursion_depth must be at least 1 or None")
        if self.max_dense_bits < 1:
            raise ValueError("max_dense_bits must be at least 1")
        if self.window is not None:
            object.__setattr__(self, "window", tuple(int(q) for q in self.window))


#: legacy SuperSim kwarg -> (config attribute name, target config)
LEGACY_KWARG_MAP: dict[str, tuple[str, str]] = {
    "strategy": ("cut", "strategy"),
    "max_cuts": ("cut", "max_cuts"),
    "shots": ("sampling", "shots"),
    "clifford_shots": ("sampling", "clifford_shots"),
    "snap_clifford": ("sampling", "snap_clifford"),
    "tomography": ("sampling", "tomography"),
    "noise": ("sampling", "noise"),
    "rng": ("sampling", "seed"),
    "backend": ("execution", "backend"),
    "router": ("execution", "router"),
    "nonclifford_backend": ("execution", "nonclifford_backend"),
    "cache": ("execution", "cache"),
    "pool": ("execution", "pool"),
    "parallel": ("execution", "parallel"),
    "statevector_max_qubits": ("execution", "statevector_max_qubits"),
    "prune_zeros": ("execution", "prune_zeros"),
}


def configs_from_legacy_kwargs(
    kwargs: dict[str, Any],
    cut: CutConfig | None = None,
    sampling: SamplingConfig | None = None,
    execution: ExecutionConfig | None = None,
) -> tuple[CutConfig, SamplingConfig, ExecutionConfig, list[str]]:
    """Map flat legacy kwargs onto the three config objects.

    Returns the merged configs plus the list of legacy kwarg names that
    were actually used (for the caller's single deprecation warning).
    Unknown kwargs raise ``TypeError`` like any normal signature mismatch.
    Legacy kwargs may not override a config object supplied alongside them
    — mixing the two styles for one concern is ambiguous and raises.
    """
    for value, expected, hint in (
        (cut, CutConfig, "CutConfig"),
        (sampling, SamplingConfig, "SamplingConfig"),
        (execution, ExecutionConfig, "ExecutionConfig"),
    ):
        if value is not None and not isinstance(value, expected):
            # catches pre-pipeline positional calls like SuperSim(4000),
            # where the old leading `shots` argument lands on `cut`
            raise TypeError(
                f"expected a {hint} instance, got {value!r}; the flat "
                f"positional signature is gone — pass "
                f"{hint}(...) or keyword-only legacy kwargs "
                "(e.g. shots=4000)"
            )
    unknown = [k for k in kwargs if k not in LEGACY_KWARG_MAP]
    if unknown:
        raise TypeError(
            f"unexpected keyword argument(s): {', '.join(sorted(unknown))}"
        )
    used = sorted(kwargs)
    updates: dict[str, dict[str, Any]] = {"cut": {}, "sampling": {}, "execution": {}}
    for key, value in kwargs.items():
        target, attr = LEGACY_KWARG_MAP[key]
        updates[target][attr] = value
    provided = {"cut": cut, "sampling": sampling, "execution": execution}
    for target, fields in updates.items():
        if fields and provided[target] is not None:
            raise TypeError(
                f"cannot mix the {target}= config object with legacy "
                f"kwarg(s) {sorted(fields)}; set them on the config instead"
            )
    cut = cut if cut is not None else CutConfig(**updates["cut"])
    sampling = sampling if sampling is not None else SamplingConfig(**updates["sampling"])
    execution = (
        execution if execution is not None else ExecutionConfig(**updates["execution"])
    )
    return cut, sampling, execution, used
