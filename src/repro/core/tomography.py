"""Fragment tensors: from variant statistics to Pauli-indexed models.

The recombination step (paper §V-C, following the maximum-likelihood
fragment tomography of reference [40]) consumes, per fragment, the tensor

    T[P_in..., P_out...](x) =
        Tr[ (Pi_x  ⊗ P_out...) E_F( rho(P_in...) ) ]

where ``rho(P)`` extends the fragment channel linearly over the Pauli basis
at each quantum input (via the prepared-state decomposition in
:mod:`repro.core.variants`) and each quantum output Pauli is estimated from
the matching measurement basis.  ``x`` ranges over the *kept* circuit-output
bits of the fragment.

Two refinements live here as well:

* **Clifford expectation snapping** (paper §IX): a stabilizer state's Pauli
  expectation is exactly -1, 0 or +1, so for sampled Clifford fragments the
  per-outcome conditional expectations are snapped to the nearest of the
  three values, removing most sampling error with very few shots.
* **Physicality projection** (the maximum-likelihood correction of [40],
  realised as the standard eigenvalue-clipping projection): the
  Pauli-transfer data of each kept outcome is reassembled into a Choi-like
  operator, projected onto the PSD cone, and re-expanded.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.evaluator import FragmentData
from repro.core.variants import BASIS_FOR_PAULI, PREP_COEFFICIENTS

_PAULI_MATS = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}
_PAULI_ORDER = "IXYZ"


def _snap(value: float) -> float:
    """Snap a conditional expectation to the nearest of {-1, 0, +1}."""
    if value > 0.5:
        return 1.0
    if value < -0.5:
        return -1.0
    return 0.0


def _split_signed_keys(dist, qo: int, signs_mask: list[int]):
    """``(x_key, sign, probs)`` arrays of a joint (kept + measured) dist.

    Outcome keys split into kept bits (high) and measured-Pauli bits
    (low); the sign is the parity of the masked measurement bits.  Works
    straight off the distribution's packed key/probability arrays — no
    dict materialisation.  Requires single-word keys (``None`` otherwise;
    callers keep the per-outcome loop for >62-bit joints).
    """
    if dist.n_bits > 62 or dist.chunked:
        return None
    outcomes = dist.keys_array.astype(np.int64)
    probs = dist.values_array
    x_key = outcomes >> qo
    sign = np.ones(len(outcomes))
    if signs_mask:
        m_bits = outcomes & ((1 << qo) - 1)
        parity = np.zeros(len(outcomes), dtype=np.int64)
        for j in signs_mask:
            parity ^= (m_bits >> (qo - 1 - j)) & 1
        sign = 1.0 - 2.0 * parity
    return x_key, sign, probs


def _signed_vectors(
    dist, n_kept: int, qo: int, signs_mask: list[int], need_weight: bool
):
    """(vec, weight) over kept outcomes, sign-weighted by measured Paulis.

    Dense accumulator over all ``2^n_kept`` kept outcomes, filled with one
    ``np.bincount`` per accumulator.  ``weight`` (the unsigned mass, used
    only by Clifford snapping) is skipped unless requested.  Falls back to
    ``None`` when keys exceed one word (callers keep the loop then).
    """
    if n_kept + qo > 62:
        return None
    split = _split_signed_keys(dist, qo, signs_mask)
    if split is None:  # pragma: no cover - joint width checked above
        return None
    x_key, sign, probs = split
    vec = np.bincount(x_key, weights=probs * sign, minlength=2**n_kept)
    weight = None
    if need_weight:
        weight = np.bincount(x_key, weights=probs, minlength=2**n_kept)
    return vec, weight


def _snap_vector(vec: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """Vectorised {-1, 0, +1} snapping of conditional expectations."""
    with np.errstate(invalid="ignore", divide="ignore"):
        ratio = np.where(weight > 0, vec / np.maximum(weight, 1e-300), 0.0)
    return weight * np.where(ratio > 0.5, 1.0, np.where(ratio < -0.5, -1.0, 0.0))


def _contract_prep_axes(raw: np.ndarray, qi: int) -> np.ndarray:
    """Contract each prep axis with the Pauli-over-preparation coefficients."""
    tensor = raw
    for axis in range(qi):
        tensor = np.tensordot(PREP_COEFFICIENTS, tensor, axes=([1], [axis]))
        # tensordot moved the new Pauli axis to the front; rotate it back
        order = list(range(1, axis + 1)) + [0] + list(range(axis + 1, tensor.ndim))
        tensor = np.transpose(tensor, order)
    return tensor


def build_fragment_tensor(
    data: FragmentData,
    keep_locals: list[int],
    snap_clifford: bool = False,
    project: bool = False,
) -> np.ndarray:
    """Tensor of shape ``(4,)*qi + (4,)*qo + (2**len(keep_locals),)``.

    ``keep_locals`` are the fragment-local circuit-output qubits whose bits
    the caller wants to keep (order defines the bit order of the last axis).
    """
    fragment = data.fragment
    qi = len(fragment.quantum_inputs)
    qo = len(fragment.quantum_outputs)
    out_cols = [lq for _cut, lq in fragment.quantum_outputs]
    keep_cols = list(keep_locals)
    n_kept = len(keep_cols)
    snap = snap_clifford and fragment.is_clifford

    # E[s_combo][P_out combo] -> vector over kept bits
    raw = np.zeros((4,) * qi + (4,) * qo + (2**n_kept,))
    for preps in itertools.product(range(4), repeat=qi):
        for pauli_out in itertools.product(range(4), repeat=qo):
            bases = tuple(BASIS_FOR_PAULI[p] for p in pauli_out)
            dist = data.variant(preps, bases).joint(keep_cols + out_cols)
            signs_mask = [j for j, p in enumerate(pauli_out) if p != 0]
            need_weight = bool(snap and signs_mask)
            pair = _signed_vectors(dist, n_kept, qo, signs_mask, need_weight)
            if pair is not None:
                vec, weight = pair
            else:  # pragma: no cover - >62-bit dense keys cannot exist
                vec = np.zeros(2**n_kept)
                weight = np.zeros(2**n_kept)
                for outcome, prob in dist:
                    bits = dist.bits(outcome)
                    x_key = 0
                    for b in bits[:n_kept]:
                        x_key = (x_key << 1) | b
                    m_bits = bits[n_kept:]
                    sign = 1.0
                    for j in signs_mask:
                        if m_bits[j]:
                            sign = -sign
                    vec[x_key] += prob * sign
                    weight[x_key] += prob
            if snap and signs_mask:
                vec = _snap_vector(vec, weight)
            raw[preps + pauli_out] = vec

    tensor = _contract_prep_axes(raw, qi)
    if project and (qi or qo):
        tensor = project_physical(tensor, qi, qo)
    return tensor


def _conditioned_signed_vector(
    dist,
    n_kept: int,
    fixed_bits: list[int],
    qo: int,
    signs_mask: list[int],
    need_weight: bool,
):
    """(vec, weight) over kept outcomes of a (kept + fixed + measured) joint.

    Like :func:`_signed_vectors` but the ``len(fixed_bits)`` middle bits
    of each outcome must match ``fixed_bits`` for the outcome to count —
    the conditioning primitive of dynamic-definition reconstruction.  The
    joint's *support* is what is iterated (bounded by the fragment width,
    the paper's premise), never ``2**fragment_outputs``; only the
    ``2**n_kept`` window accumulator is dense.
    """
    nf = len(fixed_bits)
    probs = dist.values_array
    if dist.n_bits <= 62 and not dist.chunked:
        outcomes = dist.keys_array.astype(np.int64)
        x_key = outcomes >> (nf + qo)
        if nf:
            fixed_key = 0
            for bit in fixed_bits:
                fixed_key = (fixed_key << 1) | bit
            match = ((outcomes >> qo) & ((1 << nf) - 1)) == fixed_key
            outcomes = outcomes[match]
            probs = probs[match]
            x_key = x_key[match]
        sign = np.ones(len(probs))
        if signs_mask:
            m_bits = outcomes & ((1 << qo) - 1)
            parity = np.zeros(len(probs), dtype=np.int64)
            for j in signs_mask:
                parity ^= (m_bits >> (qo - 1 - j)) & 1
            sign = 1.0 - 2.0 * parity
        x_key = x_key.astype(np.int64)
    else:
        # >62-bit joints: work off the sparse support's bit matrix
        bits = dist.bit_matrix()
        if nf:
            target = np.asarray(fixed_bits, dtype=bool)
            match = (bits[:, n_kept : n_kept + nf] == target).all(axis=1)
            bits = bits[match]
            probs = probs[match]
        from repro.analysis.distributions import pack_bit_rows

        if n_kept:
            x_key = pack_bit_rows(bits[:, :n_kept]).astype(np.int64)
        else:
            x_key = np.zeros(len(probs), dtype=np.int64)
        sign = np.ones(len(probs))
        if signs_mask:
            m_block = bits[:, n_kept + nf :]
            parity = np.zeros(len(probs), dtype=np.int64)
            for j in signs_mask:
                parity ^= m_block[:, j].astype(np.int64)
            sign = 1.0 - 2.0 * parity
    vec = np.bincount(x_key, weights=probs * sign, minlength=2**n_kept)
    weight = None
    if need_weight:
        weight = np.bincount(x_key, weights=probs, minlength=2**n_kept)
    return vec, weight


def build_conditioned_fragment_tensor(
    data: FragmentData,
    keep_locals: list[int],
    fixed_locals: dict[int, int],
    snap_clifford: bool = False,
) -> np.ndarray:
    """:func:`build_fragment_tensor` with some output bits pinned.

    ``fixed_locals`` maps fragment-local circuit-output qubits to bit
    values; each tensor entry accumulates only outcomes matching them, so
    contracting these tensors yields joint probabilities
    ``P(fixed, window)`` — exactly what the recursive dynamic-definition
    driver needs to refine one bin.  Shape contract is unchanged:
    ``(4,)*qi + (4,)*qo + (2**len(keep_locals),)``.
    """
    fragment = data.fragment
    qi = len(fragment.quantum_inputs)
    qo = len(fragment.quantum_outputs)
    out_cols = [lq for _cut, lq in fragment.quantum_outputs]
    keep_cols = list(keep_locals)
    fixed_cols = sorted(fixed_locals)
    fixed_bits = [int(fixed_locals[c]) for c in fixed_cols]
    n_kept = len(keep_cols)
    snap = snap_clifford and fragment.is_clifford

    raw = np.zeros((4,) * qi + (4,) * qo + (2**n_kept,))
    for preps in itertools.product(range(4), repeat=qi):
        for pauli_out in itertools.product(range(4), repeat=qo):
            bases = tuple(BASIS_FOR_PAULI[p] for p in pauli_out)
            dist = data.variant(preps, bases).joint(
                keep_cols + fixed_cols + out_cols
            )
            signs_mask = [j for j, p in enumerate(pauli_out) if p != 0]
            need_weight = bool(snap and signs_mask)
            vec, weight = _conditioned_signed_vector(
                dist, n_kept, fixed_bits, qo, signs_mask, need_weight
            )
            if snap and signs_mask:
                vec = _snap_vector(vec, weight)
            raw[preps + pauli_out] = vec
    return _contract_prep_axes(raw, qi)


class SparseKeyedVector:
    """Key/value arrays of one sparse fragment-tensor slice.

    Array-native replacement for the ``{kept_outcome: value}`` dicts the
    sparse tomography path used to build: ``keys`` holds sorted outcome
    keys (``int64``, or object-dtype Python ints beyond 62 bits) and
    ``vals`` the aligned coefficients.  A small mapping-like surface
    (iteration over keys, ``items``, ``get``) is kept for tests and
    debugging; the reconstruction consumes the arrays directly.
    """

    __slots__ = ("keys", "vals")

    def __init__(self, keys: np.ndarray, vals: np.ndarray):
        self.keys = keys
        self.vals = vals

    def __len__(self) -> int:
        return len(self.vals)

    def __iter__(self):
        return (int(k) for k in self.keys)

    def items(self):
        return ((int(k), float(v)) for k, v in zip(self.keys, self.vals))

    def get(self, key: int, default: float = 0.0) -> float:
        hits = np.flatnonzero(self.keys == key)
        return float(self.vals[hits[0]]) if len(hits) else default

    def __contains__(self, key: int) -> bool:
        return bool(np.any(self.keys == key))


def _signed_sparse_slice(dist, qo: int, signs_mask: list[int], snap: bool):
    """``(keys, vals)`` of one variant's sign-weighted kept-outcome slice."""
    if dist.n_bits <= 62 and not dist.chunked:
        split = _split_signed_keys(dist, qo, signs_mask)
        x_key, sign, probs = split
    else:
        # >62-bit joints: object-dtype Python-int keys, same vector algebra
        outcomes = np.array(dist.key_ints(), dtype=object)
        probs = dist.values_array
        x_key = outcomes >> qo
        sign = np.ones(len(probs))
        if signs_mask:
            m_bits = outcomes & ((1 << qo) - 1)
            parity = np.zeros(len(probs), dtype=object)
            for j in signs_mask:
                parity ^= (m_bits >> (qo - 1 - j)) & 1
            sign = 1.0 - 2.0 * parity.astype(np.float64)
    unique, inverse = np.unique(x_key, return_inverse=True)
    vals = np.bincount(inverse, weights=probs * sign, minlength=len(unique))
    if snap and signs_mask:
        weight = np.bincount(inverse, weights=probs, minlength=len(unique))
        live = weight > 0
        with np.errstate(invalid="ignore", divide="ignore"):
            ratio = np.where(live, vals / np.maximum(weight, 1e-300), 0.0)
        snapped = np.where(ratio > 0.5, 1.0, np.where(ratio < -0.5, -1.0, 0.0))
        return unique[live], (weight * snapped)[live]
    return unique, vals


def build_sparse_fragment_tensor(
    data: FragmentData,
    keep_locals: list[int],
    snap_clifford: bool = False,
) -> dict[tuple[int, ...], SparseKeyedVector]:
    """Sparse variant of :func:`build_fragment_tensor`.

    Returns ``{pauli_combo: SparseKeyedVector}`` with Pauli axes ordered
    as quantum inputs then quantum outputs.  Used when fragments keep many
    output bits but the output distribution has small support (e.g. the
    repetition-code benchmark at widths where a dense ``2^n`` vector could
    not exist).  Every slice stays in key/value array form from the
    variant distribution through to reconstruction — no dict round trips.
    """
    fragment = data.fragment
    qi = len(fragment.quantum_inputs)
    qo = len(fragment.quantum_outputs)
    out_cols = [lq for _cut, lq in fragment.quantum_outputs]
    keep_cols = list(keep_locals)
    snap = snap_clifford and fragment.is_clifford

    raw: dict[tuple[int, ...], tuple[np.ndarray, np.ndarray]] = {}
    for preps in itertools.product(range(4), repeat=qi):
        for pauli_out in itertools.product(range(4), repeat=qo):
            bases = tuple(BASIS_FOR_PAULI[p] for p in pauli_out)
            dist = data.variant(preps, bases).joint(keep_cols + out_cols)
            signs_mask = [j for j, p in enumerate(pauli_out) if p != 0]
            raw[preps + pauli_out] = _signed_sparse_slice(
                dist, qo, signs_mask, snap
            )

    # contract prep axes with the Pauli/preparation coefficient matrix:
    # concatenate the contributing slices' arrays and fold equal keys
    tensor: dict[tuple[int, ...], SparseKeyedVector] = {}
    for pauli_in in itertools.product(range(4), repeat=qi):
        for pauli_out in itertools.product(range(4), repeat=qo):
            key_parts: list[np.ndarray] = []
            val_parts: list[np.ndarray] = []
            for preps in itertools.product(range(4), repeat=qi):
                coeff = 1.0
                for p, s in zip(pauli_in, preps):
                    coeff *= PREP_COEFFICIENTS[p][s]
                if coeff == 0.0:
                    continue
                keys, vals = raw[preps + pauli_out]
                key_parts.append(keys)
                val_parts.append(coeff * vals)
            if not key_parts:
                tensor[pauli_in + pauli_out] = SparseKeyedVector(
                    np.empty(0, dtype=np.int64), np.empty(0)
                )
                continue
            keys = np.concatenate(key_parts)
            vals = np.concatenate(val_parts)
            unique, inverse = np.unique(keys, return_inverse=True)
            sums = np.bincount(inverse, weights=vals, minlength=len(unique))
            tensor[pauli_in + pauli_out] = SparseKeyedVector(unique, sums)
    return tensor


def fragment_tensor_at(
    data: FragmentData,
    fixed_bits: dict[int, int],
    snap_clifford: bool = False,
) -> dict[tuple[int, ...], float]:
    """Fragment tensor evaluated at one fixed outcome of its kept qubits.

    ``fixed_bits`` maps fragment-local circuit-output qubits to bit values.
    Returns ``{pauli_combo: scalar}`` — the ingredients of strong simulation
    (paper §V-C: "the probability to observe a particular bitstring ... can
    be computed to machine precision"), with cost independent of the number
    of other outcomes.
    """
    fragment = data.fragment
    qi = len(fragment.quantum_inputs)
    qo = len(fragment.quantum_outputs)
    out_cols = [lq for _cut, lq in fragment.quantum_outputs]
    keep_locals = sorted(fixed_bits)
    x_bits = [int(fixed_bits[lq]) for lq in keep_locals]
    cols = keep_locals + out_cols
    snap = snap_clifford and fragment.is_clifford

    raw: dict[tuple[int, ...], float] = {}
    for preps in itertools.product(range(4), repeat=qi):
        for pauli_out in itertools.product(range(4), repeat=qo):
            bases = tuple(BASIS_FOR_PAULI[p] for p in pauli_out)
            variant = data.variant(preps, bases)
            signs_mask = [j for j, p in enumerate(pauli_out) if p != 0]
            value = 0.0
            weight = 0.0
            for m in itertools.product((0, 1), repeat=qo):
                p = variant.probability_at(cols, x_bits + list(m))
                sign = 1.0
                for j in signs_mask:
                    if m[j]:
                        sign = -sign
                value += p * sign
                weight += p
            if snap and signs_mask and weight > 0:
                value = weight * _snap(value / weight)
            raw[preps + pauli_out] = value

    result: dict[tuple[int, ...], float] = {}
    for pauli_in in itertools.product(range(4), repeat=qi):
        for pauli_out in itertools.product(range(4), repeat=qo):
            total = 0.0
            for preps in itertools.product(range(4), repeat=qi):
                coeff = 1.0
                for p, s in zip(pauli_in, preps):
                    coeff *= PREP_COEFFICIENTS[p][s]
                if coeff:
                    total += coeff * raw[preps + pauli_out]
            result[pauli_in + pauli_out] = total
    return result


def _pauli_kron(indices: tuple[int, ...], transpose_input: int = 0) -> np.ndarray:
    """Kron product of Paulis; the first ``transpose_input`` factors transposed."""
    out = np.array([[1.0 + 0j]])
    for pos, index in enumerate(indices):
        mat = _PAULI_MATS[_PAULI_ORDER[index]]
        if pos < transpose_input:
            mat = mat.T
        out = np.kron(out, mat)
    return out


def project_physical(tensor: np.ndarray, qi: int, qo: int) -> np.ndarray:
    """Project fragment data onto physical (PSD) models, kept-bit by bit.

    For each kept outcome ``x`` the Pauli coefficients define a Choi-like
    operator ``M(x) = 2^-(qi+qo) * sum T[P](x) (P_in^T ⊗ P_out)``; physical
    fragment models have every ``M(x)`` positive semidefinite.  Negative
    eigenvalues — sampling artifacts — are clipped and the coefficients
    re-extracted, the closest-PSD-point analogue of the maximum-likelihood
    correction of Perlin et al.
    """
    k = qi + qo
    dim = 2**k
    pauli_axes_shape = tensor.shape[: qi + qo]
    n_out = tensor.shape[-1]
    combos = list(itertools.product(range(4), repeat=k))
    basis = {combo: _pauli_kron(combo, transpose_input=qi) for combo in combos}
    projected = np.zeros_like(tensor)
    for x in range(n_out):
        m = np.zeros((dim, dim), dtype=complex)
        for combo in combos:
            m += tensor[combo + (x,)] * basis[combo]
        m /= dim
        vals, vecs = np.linalg.eigh((m + m.conj().T) / 2)
        vals = np.clip(vals, 0.0, None)
        m_psd = (vecs * vals) @ vecs.conj().T
        for combo in combos:
            projected[combo + (x,)] = float(
                np.trace(basis[combo].conj().T @ m_psd).real
            )
    return projected.reshape(pauli_axes_shape + (n_out,))
