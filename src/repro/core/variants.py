"""Fragment variant generation (paper §V-B).

A *variant* of a fragment fixes one prepared state per quantum input and one
measurement basis per quantum output:

* preparations: the tomographically complete set |0>, |1>, |+>, |+i>
  (4 states — the minimal informationally complete choice used by the
  maximum-likelihood tomography of the paper's reference [40]);
* bases: Z, X, Y (3 single-qubit Pauli bases).

``PREP_COEFFICIENTS`` records how each Pauli operator expands over the
prepared states' density matrices, which is what turns variant statistics
into the Pauli-indexed fragment tensors consumed by reconstruction:

    I = r(|0>) + r(|1>)
    Z = r(|0>) - r(|1>)
    X = 2 r(|+>)  - r(|0>) - r(|1>)
    Y = 2 r(|+i>) - r(|0>) - r(|1>)
"""

from __future__ import annotations

import itertools
from typing import Iterator

import numpy as np

from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.core.fragments import Fragment

#: prepared states at quantum inputs, by index
PREP_STATES = ("0", "1", "+", "+i")
#: measurement bases at quantum outputs, by index
MEAS_BASES = ("Z", "X", "Y")
#: Pauli order used for cut indices everywhere
PAULIS = ("I", "X", "Y", "Z")

#: PREP_COEFFICIENTS[pauli_index][prep_index]
PREP_COEFFICIENTS = np.array(
    [
        [1.0, 1.0, 0.0, 0.0],    # I
        [-1.0, -1.0, 2.0, 0.0],  # X
        [-1.0, -1.0, 0.0, 2.0],  # Y
        [1.0, -1.0, 0.0, 0.0],   # Z
    ]
)

#: measurement basis index used to estimate each output Pauli (I uses Z data)
BASIS_FOR_PAULI = (0, 1, 2, 0)  # I->Z, X->X, Y->Y, Z->Z

_PREP_OPS = {
    0: (),
    1: ((gates.X,),),
    2: ((gates.H,),),
    3: ((gates.H,), (gates.S,)),
}
_BASIS_OPS = {
    0: (),                                 # Z: nothing
    1: ((gates.H,),),                      # X: H then measure Z
    2: ((gates.SDG,), (gates.H,)),         # Y: Sdg, H then measure Z
}


def prep_state_vector(index: int) -> np.ndarray:
    vecs = {
        0: np.array([1, 0], dtype=complex),
        1: np.array([0, 1], dtype=complex),
        2: np.array([1, 1], dtype=complex) / np.sqrt(2),
        3: np.array([1, 1j], dtype=complex) / np.sqrt(2),
    }
    return vecs[index]


def variant_circuit(
    fragment: Fragment, preps: tuple[int, ...], bases: tuple[int, ...]
) -> Circuit:
    """Build the runnable circuit for one variant.

    Every fragment qubit ends in a measurement (wire segments end either at
    a cut — rotated into the chosen basis — or at the circuit end), so the
    variant measures all qubits; bit columns equal local qubit indices.
    """
    circuit = Circuit(fragment.n_qubits)
    for (cut, lq), prep in zip(fragment.quantum_inputs, preps):
        for op_gates in _PREP_OPS[prep]:
            circuit.append(op_gates[0], lq)
    circuit.extend(fragment.circuit.ops)
    for (cut, lq), basis in zip(fragment.quantum_outputs, bases):
        for op_gates in _BASIS_OPS[basis]:
            circuit.append(op_gates[0], lq)
    circuit.measure_all()
    return circuit


def all_variants(fragment: Fragment) -> Iterator[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Iterate over every (preps, bases) combination of a fragment."""
    prep_space = itertools.product(range(4), repeat=len(fragment.quantum_inputs))
    for preps in prep_space:
        basis_space = itertools.product(
            range(3), repeat=len(fragment.quantum_outputs)
        )
        for bases in basis_space:
            yield preps, bases
