"""SuperSim: Clifford-based circuit cutting (the paper's contribution).

Pipeline (paper §V):

1. :mod:`repro.core.cutter` — find cut locations that isolate non-Clifford
   operations and split the circuit into fragments;
2. :mod:`repro.core.evaluator` — evaluate every fragment *variant*
   (choices of prepared states at quantum inputs and measurement bases at
   quantum outputs); each fragment is routed to the cheapest capable
   backend from the :mod:`repro.backends` registry (stabilizer tableau for
   Clifford fragments, statevector for narrow non-Clifford ones, MPS /
   extended stabilizer / CH form where their cost models win), with the
   flattened fragment x variant job list deduplicated through a
   content-addressed variant cache and executed on a worker pool;
3. :mod:`repro.core.reconstruction` — recombine fragment tensors over the
   ``4^k`` Pauli assignments of the ``k`` cuts to build the output
   distribution of the original circuit.

The user-facing entry point is :class:`repro.core.supersim.SuperSim`,
whose staged API mirrors the pipeline: ``plan()`` performs steps 1 and the
routing half of 2 without simulating anything, returning a frozen
:class:`~repro.core.plan.ExecutionPlan` that can be inspected, priced
(``estimate()``), overridden (``with_cuts`` / ``with_backend``) and then
``execute()``-d; ``run()`` is the one-shot composition, and ``sweep()`` /
``run_many()`` batch many points over a shared cache and worker pool.
Configuration travels in the typed objects of :mod:`repro.core.config`.
"""

from repro.core.config import (
    CutConfig,
    ExecutionConfig,
    ReconstructionConfig,
    SamplingConfig,
)
from repro.core.cutter import Cut, CutStrategy, cut_circuit, find_cuts, plan_cuts
from repro.core.fragments import CutCircuit, Fragment
from repro.core.plan import CostEstimate, ExecutionPlan, FragmentPlan, SweepResult
from repro.core.reconstruction import ReconstructionMemoryError
from repro.core.supersim import SuperSim, SuperSimResult
from repro.errors import (
    BackendExecutionError,
    FaultEvent,
    FaultReport,
    JobTimeoutError,
    ReproError,
    WorkerCrashError,
)

__all__ = [
    "Cut",
    "CutStrategy",
    "CutConfig",
    "SamplingConfig",
    "ExecutionConfig",
    "ReconstructionConfig",
    "ReconstructionMemoryError",
    "find_cuts",
    "plan_cuts",
    "cut_circuit",
    "Fragment",
    "CutCircuit",
    "SuperSim",
    "SuperSimResult",
    "ExecutionPlan",
    "CostEstimate",
    "FragmentPlan",
    "SweepResult",
    "ReproError",
    "BackendExecutionError",
    "JobTimeoutError",
    "WorkerCrashError",
    "FaultEvent",
    "FaultReport",
]
