"""Shared dense tensor helper for applying gate matrices to state tensors."""

from __future__ import annotations

import numpy as np


def apply_matrix_to_axes(
    tensor: np.ndarray, matrix: np.ndarray, axes: tuple[int, ...]
) -> np.ndarray:
    """Apply a ``2^k x 2^k`` matrix to the given qubit axes of ``tensor``.

    ``tensor`` has some number of leading qubit axes (each of dimension 2)
    followed by zero or more trailing batch axes; ``axes`` indexes qubit
    axes.  Returns a new tensor with the same axis layout.
    """
    k = len(axes)
    ndim = tensor.ndim
    gate = matrix.reshape((2,) * (2 * k))
    out = np.tensordot(gate, tensor, axes=(tuple(range(k, 2 * k)), axes))
    # out axes: [gate outputs for axes[0..k-1]] + [all other original axes
    # in original order]; build the permutation sending everything home.
    remaining = [ax for ax in range(ndim) if ax not in axes]
    current = {}
    for i, ax in enumerate(axes):
        current[ax] = i
    for i, ax in enumerate(remaining):
        current[ax] = k + i
    order = [current[ax] for ax in range(ndim)]
    return np.transpose(out, order)
