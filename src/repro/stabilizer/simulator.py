"""High-level stabilizer simulator facade (the framework's Stim)."""

from __future__ import annotations

import numpy as np

from repro.analysis.distributions import Distribution
from repro.circuits.circuit import Circuit
from repro.paulis.pauli import PauliString
from repro.stabilizer.frames import FrameSampler
from repro.stabilizer.noise import NoiseModel
from repro.stabilizer.tableau import AffineOutcomeDistribution, Tableau


class StabilizerSimulator:
    """Clifford-circuit simulation with Stim-like capabilities.

    * exact output distributions (affine-subspace form, any width),
    * fast multi-shot sampling,
    * exact Pauli expectations in {-1, 0, +1},
    * Pauli-frame noisy sampling.

    Backed by the bit-packed word-parallel tableau
    (:mod:`repro.stabilizer.tableau`): circuits run as fused same-gate
    layers over ``uint64``-packed generator rows, so gate cost scales as
    ``n/64`` per layer column and measurement as ``n^2/64``.
    """

    name = "stabilizer"

    def run(self, circuit: Circuit) -> Tableau:
        """Evolve |0...0> through the circuit; returns the final tableau."""
        tableau = Tableau(circuit.n_qubits)
        tableau.apply_circuit(circuit)
        return tableau

    def affine_distribution(self, circuit: Circuit) -> AffineOutcomeDistribution:
        """Exact outcome distribution in affine-subspace form.

        Works at any width — this is what lets the framework evaluate
        Clifford fragments with hundreds of qubits exactly.
        """
        return self.run(circuit).measurement_distribution(circuit.measured_qubits)

    def probabilities(self, circuit: Circuit, max_free: int = 20) -> Distribution:
        """Exact enumerated distribution (support must be <= 2**max_free)."""
        return self.affine_distribution(circuit).to_distribution(max_free)

    def sample(
        self,
        circuit: Circuit,
        shots: int,
        rng: np.random.Generator | int | None = None,
    ) -> Distribution:
        return self.affine_distribution(circuit).sample(shots, rng)

    def expectation(self, circuit: Circuit, pauli: PauliString) -> int:
        """Exact <P> of the final state: -1, 0, or +1 (paper §IX)."""
        return self.run(circuit).expectation(pauli)

    def sample_noisy(
        self,
        circuit: Circuit,
        noise: NoiseModel,
        shots: int,
        rng: np.random.Generator | int | None = None,
    ) -> Distribution:
        """Noisy sampling via Pauli-frame propagation."""
        return FrameSampler(circuit, noise).sample(shots, rng)
