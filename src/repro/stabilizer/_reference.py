"""Reference (byte-per-bit) Aaronson–Gottesman tableau.

This is the original, straightforward implementation of the stabilizer
tableau: one numpy ``bool`` per bit, one Python call per gate.  The
production engine in :mod:`repro.stabilizer.tableau` packs 64 rows per
``uint64`` word and fuses gate layers; this module is kept as the oracle
the property tests (and ``benchmarks/perf_smoke.py``) compare the packed
engine against, bit for bit.

Do not use this class in hot paths — it is deliberately unoptimised.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.paulis.pauli import PauliString
from repro.stabilizer.tableau import AffineOutcomeDistribution


class ReferenceTableau:
    """Stabilizer state of ``n`` qubits, one bool per tableau bit."""

    def __init__(self, n: int, max_symbols: int = 0):
        self.n = int(n)
        rows = 2 * self.n
        self.x = np.zeros((rows, self.n), dtype=bool)
        self.z = np.zeros((rows, self.n), dtype=bool)
        self.sign = np.zeros(rows, dtype=bool)
        # symbolic sign bits: sign of row i also includes (-1)^(sym[i] . f)
        self.sym = np.zeros((rows, max_symbols), dtype=bool)
        self.n_symbols = 0
        # destabilizer i = X_i ; stabilizer i = Z_i
        self.x[np.arange(self.n), np.arange(self.n)] = True
        self.z[self.n + np.arange(self.n), np.arange(self.n)] = True

    def copy(self) -> "ReferenceTableau":
        out = ReferenceTableau.__new__(ReferenceTableau)
        out.n = self.n
        out.x = self.x.copy()
        out.z = self.z.copy()
        out.sign = self.sign.copy()
        out.sym = self.sym.copy()
        out.n_symbols = self.n_symbols
        return out

    # -- gates ----------------------------------------------------------------

    def h(self, q: int) -> None:
        self.sign ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def s(self, q: int) -> None:
        self.sign ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def cx(self, c: int, t: int) -> None:
        self.sign ^= (
            self.x[:, c] & self.z[:, t] & (self.x[:, t] ^ self.z[:, c] ^ True)
        )
        self.x[:, t] ^= self.x[:, c]
        self.z[:, c] ^= self.z[:, t]

    def x_gate(self, q: int) -> None:
        self.sign ^= self.z[:, q]

    def z_gate(self, q: int) -> None:
        self.sign ^= self.x[:, q]

    def apply_operation(self, gate, qubits: tuple[int, ...]) -> None:
        name = gate.name
        if name == "X":
            self.x_gate(qubits[0])
        elif name == "Z":
            self.z_gate(qubits[0])
        elif name == "H":
            self.h(qubits[0])
        elif name == "S":
            self.s(qubits[0])
        elif name == "CX":
            self.cx(*qubits)
        else:
            for sub_name, wires in gate.stabilizer_decomposition():
                sub_qubits = tuple(qubits[w] for w in wires)
                if sub_name == "H":
                    self.h(sub_qubits[0])
                elif sub_name == "S":
                    self.s(sub_qubits[0])
                else:
                    self.cx(*sub_qubits)

    def apply_circuit(self, circuit: Circuit) -> None:
        if circuit.n_qubits != self.n:
            raise ValueError("circuit width does not match tableau")
        for op in circuit.ops:
            if not op.gate.is_clifford:
                raise ValueError(
                    f"non-Clifford gate {op.gate!r} cannot run on the tableau "
                    "simulator"
                )
            self.apply_operation(op.gate, op.qubits)

    # -- row products -----------------------------------------------------------

    def _multiply_rows_into(self, targets: np.ndarray, source: int) -> None:
        """Row_t <- Row_s * Row_t for every t in ``targets`` (vectorised).

        Phases: with rows R = (-1)^s i^(x.z) X^x Z^z, the product phase
        exponent (power of i) is
            t = x1.z1 + x2.z2 + 2*(z1.x2) + 2*s1 + 2*s2
        and the result sign is (t - x12.z12)/2 mod 2.  For stabilizer-group
        products the difference is always even; destabilizer rows may pick
        up an irrelevant half-phase which we truncate (their signs are never
        read).
        """
        if len(targets) == 0:
            return
        x1, z1 = self.x[source], self.z[source]
        x2, z2 = self.x[targets], self.z[targets]
        c1 = int(np.count_nonzero(x1 & z1))
        c2 = (x2 & z2).sum(axis=1)
        cross = (z1[None, :] & x2).sum(axis=1)
        new_x = x2 ^ x1[None, :]
        new_z = z2 ^ z1[None, :]
        c12 = (new_x & new_z).sum(axis=1)
        total = c1 + c2 + 2 * cross
        half = ((total - c12) % 4) >= 2
        self.sign[targets] = self.sign[targets] ^ self.sign[source] ^ half
        self.sym[targets] ^= self.sym[source][None, :]
        self.x[targets] = new_x
        self.z[targets] = new_z

    # -- measurement -----------------------------------------------------------

    def _grow_symbols(self) -> int:
        if self.n_symbols == self.sym.shape[1]:
            extra = np.zeros((2 * self.n, max(8, self.sym.shape[1])), dtype=bool)
            self.sym = np.concatenate([self.sym, extra], axis=1)
        index = self.n_symbols
        self.n_symbols += 1
        return index

    def measure(
        self, q: int, rng: np.random.Generator | int | None = None
    ) -> int:
        """Measure qubit ``q`` in the Z basis, collapsing the state."""
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        result = self._measure_impl(q, symbolic=False, rng=rng)
        return result

    def measure_symbolic(self, q: int) -> tuple[np.ndarray, bool]:
        """Measure qubit ``q`` symbolically (see the packed engine's docs)."""
        return self._measure_impl(q, symbolic=True, rng=None)

    def _measure_impl(self, q, symbolic, rng):
        stab = slice(self.n, 2 * self.n)
        anticommuting = np.flatnonzero(self.x[stab, q]) + self.n
        if len(anticommuting) > 0:
            p = int(anticommuting[0])
            others = np.flatnonzero(self.x[:, q])
            others = others[others != p]
            self._multiply_rows_into(others, p)
            # destabilizer p-n <- old stabilizer p ; stabilizer p <- +/- Z_q
            d = p - self.n
            self.x[d] = self.x[p]
            self.z[d] = self.z[p]
            self.sign[d] = self.sign[p]
            self.sym[d] = self.sym[p]
            self.x[p] = False
            self.z[p] = False
            self.z[p, q] = True
            self.sym[p] = False
            if symbolic:
                k = self._grow_symbols()
                self.sign[p] = False
                self.sym[p, k] = True
                coeffs = np.zeros(self.n_symbols, dtype=bool)
                coeffs[k] = True
                return coeffs, False
            outcome = int(rng.integers(2))
            self.sign[p] = bool(outcome)
            return outcome
        # deterministic: accumulate product of stabilizers indicated by
        # destabilizers that anticommute with Z_q
        rows = np.flatnonzero(self.x[: self.n, q]) + self.n
        acc_x = np.zeros(self.n, dtype=bool)
        acc_z = np.zeros(self.n, dtype=bool)
        acc_phase = 0  # power of i
        acc_sign = False
        acc_sym = np.zeros(self.sym.shape[1], dtype=bool)
        for r in rows:
            x2, z2 = self.x[r], self.z[r]
            cross = int(np.count_nonzero(acc_z & x2))
            acc_phase += int(np.count_nonzero(x2 & z2)) + 2 * cross
            acc_sign ^= bool(self.sign[r])
            acc_sym ^= self.sym[r]
            acc_x ^= x2
            acc_z ^= z2
        # the accumulated operator must be +/- Z_q
        c12 = int(np.count_nonzero(acc_x & acc_z))
        half = ((acc_phase - c12) % 4) >= 2
        sign = acc_sign ^ half
        if symbolic:
            coeffs = acc_sym[: self.n_symbols].copy()
            return coeffs, bool(sign)
        if acc_sym[: self.n_symbols].any():  # pragma: no cover - defensive
            raise RuntimeError("deterministic outcome depends on unresolved symbols")
        return int(sign)

    def measurement_distribution(
        self, qubits: tuple[int, ...]
    ) -> AffineOutcomeDistribution:
        """Exact Z-basis outcome distribution over ``qubits``.

        Collapses this tableau (work on a copy if it is still needed).
        """
        self.n_symbols = 0
        self.sym = np.zeros((2 * self.n, max(8, len(qubits))), dtype=bool)
        rows = []
        consts = []
        for q in qubits:
            coeffs, const = self.measure_symbolic(q)
            rows.append(coeffs)
            consts.append(const)
        k = self.n_symbols
        A = np.zeros((len(qubits), k), dtype=bool)
        for i, coeffs in enumerate(rows):
            A[i, : len(coeffs)] = coeffs
        return AffineOutcomeDistribution(A, np.array(consts, dtype=bool))

    # -- observables ------------------------------------------------------------

    def expectation(self, pauli: PauliString) -> int:
        """Exact ``<P>`` of the stabilizer state: always -1, 0, or +1."""
        if pauli.n != self.n:
            raise ValueError("Pauli width does not match tableau")
        if self.n_symbols:
            raise ValueError("expectation undefined after symbolic collapse")
        stab_x = self.x[self.n :]
        stab_z = self.z[self.n :]
        # anticommutation of P with each stabilizer generator
        anti = (
            (stab_x & pauli.z[None, :]).sum(axis=1)
            + (stab_z & pauli.x[None, :]).sum(axis=1)
        ) % 2
        if anti.any():
            return 0
        # P (up to sign) = product of stabilizers s_i over rows whose
        # destabilizer anticommutes with P
        destab_x = self.x[: self.n]
        destab_z = self.z[: self.n]
        select = (
            (destab_x & pauli.z[None, :]).sum(axis=1)
            + (destab_z & pauli.x[None, :]).sum(axis=1)
        ) % 2
        product = PauliString.identity(self.n)
        for i in np.flatnonzero(select):
            row = self.n + i
            product = product * self._row_pauli(row)
        if not (
            np.array_equal(product.x, pauli.x) and np.array_equal(product.z, pauli.z)
        ):
            raise AssertionError("stabilizer reconstruction failed")
        diff = (pauli.phase - product.phase) % 4
        if diff == 0:
            return 1
        if diff == 2:
            return -1
        raise ValueError("expectation of a non-Hermitian Pauli is not +/-1")

    def _row_pauli(self, row: int) -> PauliString:
        c = int(np.count_nonzero(self.x[row] & self.z[row]))
        phase = (c + 2 * int(self.sign[row])) % 4
        return PauliString(self.x[row], self.z[row], phase)

    def stabilizers(self) -> list[PauliString]:
        """The n stabilizer generators as phase-correct Pauli strings."""
        return [self._row_pauli(self.n + i) for i in range(self.n)]

    def destabilizers(self) -> list[PauliString]:
        return [self._row_pauli(i) for i in range(self.n)]
