"""Stabilizer (Clifford) simulation: tableau, noise, frames, facade."""

from repro.stabilizer.frames import FrameSampler
from repro.stabilizer.noise import NoiseModel, PauliChannel
from repro.stabilizer.simulator import StabilizerSimulator
from repro.stabilizer.tableau import AffineOutcomeDistribution, Tableau

__all__ = [
    "Tableau",
    "AffineOutcomeDistribution",
    "StabilizerSimulator",
    "PauliChannel",
    "NoiseModel",
    "FrameSampler",
]
