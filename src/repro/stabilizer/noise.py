"""Pauli noise channels and noise models.

Stabilizer simulation supports exactly the noise Stim supports: *Pauli
channels* — probabilistic Pauli operations interspersed through a circuit
(paper §III-A).  Richer noise (amplitude damping, overrotation) is what the
paper's circuit-cutting approach enables via non-Clifford gates; here the
channels feed the Pauli-frame sampler in :mod:`repro.stabilizer.frames`.
"""

from __future__ import annotations

import numpy as np


class PauliChannel:
    """A probabilistic mixture of Pauli operators on ``num_qubits`` qubits.

    Terms are ``(probability, label)`` with labels like ``"X"`` or ``"XZ"``;
    an implicit identity term absorbs the remaining probability mass.
    """

    def __init__(self, num_qubits: int, terms: list[tuple[float, str]]):
        self.num_qubits = int(num_qubits)
        total = 0.0
        self.terms: list[tuple[float, str]] = []
        for prob, label in terms:
            if prob < 0:
                raise ValueError("negative probability")
            if len(label) != self.num_qubits:
                raise ValueError(f"label {label!r} has wrong width")
            if set(label.upper()) - set("IXYZ"):
                raise ValueError(f"bad Pauli label {label!r}")
            if label.upper() == "I" * self.num_qubits:
                continue
            total += prob
            self.terms.append((float(prob), label.upper()))
        if total > 1.0 + 1e-12:
            raise ValueError("probabilities exceed 1")
        self.identity_probability = max(0.0, 1.0 - total)
        self._xz_masks: tuple[np.ndarray, np.ndarray] | None = None

    @classmethod
    def bit_flip(cls, p: float) -> "PauliChannel":
        return cls(1, [(p, "X")])

    @classmethod
    def phase_flip(cls, p: float) -> "PauliChannel":
        return cls(1, [(p, "Z")])

    @classmethod
    def depolarizing(cls, p: float) -> "PauliChannel":
        return cls(1, [(p / 3, "X"), (p / 3, "Y"), (p / 3, "Z")])

    @classmethod
    def depolarizing2(cls, p: float) -> "PauliChannel":
        labels = [
            a + b for a in "IXYZ" for b in "IXYZ" if a + b != "II"
        ]
        return cls(2, [(p / 15, label) for label in labels])

    def sample_indices(
        self, shots: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-shot term index; -1 means identity."""
        probs = [self.identity_probability] + [p for p, _ in self.terms]
        choices = rng.choice(len(probs), size=shots, p=np.array(probs) / sum(probs))
        return choices - 1

    def xz_masks(self) -> tuple[np.ndarray, np.ndarray]:
        """(terms, num_qubits) boolean X and Z components per term.

        Cached: the frame sampler asks for these once per noise site per
        ``sample_bits`` call, and the terms never change after init.
        """
        if self._xz_masks is not None:
            return self._xz_masks
        k = len(self.terms)
        xm = np.zeros((k, self.num_qubits), dtype=bool)
        zm = np.zeros((k, self.num_qubits), dtype=bool)
        for i, (_, label) in enumerate(self.terms):
            for q, letter in enumerate(label):
                if letter in "XY":
                    xm[i, q] = True
                if letter in "ZY":
                    zm[i, q] = True
        self._xz_masks = (xm, zm)
        return self._xz_masks

    def __repr__(self) -> str:
        return f"PauliChannel({self.num_qubits}q, {self.terms})"


class NoiseModel:
    """Circuit-level noise: channels attached after gates and before measurement.

    * ``after_gate_1q`` / ``after_gate_2q`` — applied on the qubits of every
      one-/two-qubit gate;
    * ``before_measure`` — applied on every measured qubit at the end
      (models readout error as an X channel).
    """

    def __init__(
        self,
        after_gate_1q: PauliChannel | None = None,
        after_gate_2q: PauliChannel | None = None,
        before_measure: PauliChannel | None = None,
    ):
        if after_gate_1q and after_gate_1q.num_qubits != 1:
            raise ValueError("after_gate_1q must be a 1-qubit channel")
        if after_gate_2q and after_gate_2q.num_qubits != 2:
            raise ValueError("after_gate_2q must be a 2-qubit channel")
        if before_measure and before_measure.num_qubits != 1:
            raise ValueError("before_measure must be a 1-qubit channel")
        self.after_gate_1q = after_gate_1q
        self.after_gate_2q = after_gate_2q
        self.before_measure = before_measure

    def locations(self, circuit) -> list[tuple[int, PauliChannel, tuple[int, ...]]]:
        """Noise sites as ``(after_op_index, channel, qubits)``.

        ``after_op_index = i`` applies after the i-th operation; the index
        ``len(circuit)`` marks pre-measurement noise.
        """
        sites: list[tuple[int, PauliChannel, tuple[int, ...]]] = []
        for i, op in enumerate(circuit.ops):
            if len(op.qubits) == 1 and self.after_gate_1q:
                sites.append((i, self.after_gate_1q, op.qubits))
            elif len(op.qubits) == 2 and self.after_gate_2q:
                sites.append((i, self.after_gate_2q, op.qubits))
        if self.before_measure:
            for q in circuit.measured_qubits:
                sites.append((len(circuit.ops), self.before_measure, (q,)))
        return sites
