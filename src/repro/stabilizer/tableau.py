"""Aaronson–Gottesman stabilizer tableau, bit-packed and word-parallel.

The tableau tracks ``2n`` generator rows (destabilizers then stabilizers),
each a Hermitian Pauli stored as ``(-1)^sign * i^(x.z) * X^x Z^z`` — i.e.
the plain letter product with a sign bit.

**Packed layout (Stim-style).**  ``x`` and ``z`` are ``uint64`` arrays of
shape ``(2n, ceil(n/64))``: each generator row is a bit-packed vector over
the qubit columns, 64 qubits per machine word (bit ``q & 63`` of word
``q >> 6``).  ``sym`` packs each row's symbolic sign bits the same way.
Row products — the inner loop of measurement — become a handful of
bitwise-AND + popcount (``np.bitwise_count``) ops on whole words, so one
generator multiplication costs ``O(n/64)`` words instead of ``O(n)``
bytes, and a full measurement sweep is the paper's ``O(n^2/64)``.

**Fused layers.**  :func:`compile_clifford_layers` ASAP-schedules a
circuit into same-gate layers on disjoint qubits (gates on disjoint
qubits commute, so this is bit-for-bit equivalent to program order).
:meth:`Tableau.apply_circuit` bit-transposes the tableau into *row*-packed
form (64 rows of a column per word — the layout gate columns want),
applies every fused layer in one vectorized call there, and transposes
back; Python dispatch is paid per *layer*, not per gate, and the compiled
layers are cached on the circuit object (revalidated by op-list identity,
so any mutation recompiles).

The original byte-per-bit, per-op-dispatch implementation is kept in
:mod:`repro.stabilizer._reference` as the oracle for the equivalence
property tests and the ``benchmarks/perf_smoke.py`` baseline.

Measurement supports a *symbolic* mode: each random measurement outcome
introduces a fresh symbolic bit and subsequent signs are tracked as affine
functions of those bits.  Measuring every output qubit symbolically yields
the exact outcome distribution as an affine subspace of ``F_2^m`` (see
:class:`AffineOutcomeDistribution`), from which sampling is O(1)-ish per
shot and exact probabilities are available without re-running the tableau.
"""

from __future__ import annotations

import sys

import numpy as np

from repro import kernels as _kernels
from repro.analysis.distributions import Distribution
from repro.circuits.circuit import Circuit
from repro.paulis.pauli import PauliString

_ONE = np.uint64(1)
_WORD_SHIFTS = np.arange(64, dtype=np.uint64)
_LITTLE_ENDIAN = sys.byteorder == "little"

# gate names the packed engine applies natively (every other Clifford gate
# goes through Gate.stabilizer_decomposition into H/S/CX)
_NATIVE_GATES = frozenset({"H", "S", "CX", "X", "Y", "Z"})


def _pack_bits(bits: np.ndarray, n_words: int | None = None) -> np.ndarray:
    """Pack a 1-D bool vector into uint64 words (bit ``i&63`` of word ``i>>6``)."""
    bits = np.asarray(bits, dtype=bool)
    if n_words is None:
        n_words = max(1, (bits.shape[0] + 63) >> 6)
    out = np.zeros(n_words, dtype=np.uint64)
    idx = np.flatnonzero(bits)
    np.bitwise_or.at(out, idx >> 6, _ONE << (idx & 63).astype(np.uint64))
    return out


def _unpack_bits(words: np.ndarray, n: int) -> np.ndarray:
    """Unpack uint64 words (last axis) into ``n`` bools per row."""
    bits = ((words[..., :, None] >> _WORD_SHIFTS) & _ONE).astype(bool)
    return bits.reshape(words.shape[:-1] + (-1,))[..., :n]


def _compile_ops(ops) -> list[tuple[str, np.ndarray]]:
    """Fuse a Clifford op list into (gate name, qubit array) layers.

    Ops are ASAP-scheduled into name-homogeneous layers: each primitive
    joins the earliest layer at or after its dependency frontier (the last
    layer touching any of its qubits) that applies the same gate.  Gates
    on disjoint qubits commute exactly, so executing a layer in one
    vectorized call is bit-for-bit equivalent to the original op order.
    Raises ``ValueError`` on non-Clifford gates.
    """
    from bisect import bisect_left

    prims: list[tuple[str, tuple[int, ...]]] = []
    for op in ops:
        if not op.gate.is_clifford:
            raise ValueError(
                f"non-Clifford gate {op.gate!r} cannot run on the tableau "
                "simulator"
            )
        name = op.gate.name
        if name == "I":
            continue
        if name in _NATIVE_GATES:
            prims.append((name, op.qubits))
        else:
            for sub_name, wires in op.gate.stabilizer_decomposition():
                prims.append((sub_name, tuple(op.qubits[w] for w in wires)))
    layer_ops: list[list[tuple[int, ...]]] = []
    layer_name: list[str] = []
    levels_by_name: dict[str, list[int]] = {}
    last_level: dict[int, int] = {}
    for name, qubits in prims:
        ready = 1 + max(last_level.get(q, -1) for q in qubits)
        # any previously placed op sharing a qubit sits below `ready`, so
        # the first same-name layer at or after it is always collision-free
        levels = levels_by_name.setdefault(name, [])
        pos = bisect_left(levels, ready)
        if pos < len(levels):
            level = levels[pos]
        else:
            level = len(layer_ops)
            layer_ops.append([])
            layer_name.append(name)
            levels.append(level)
        layer_ops[level].append(qubits)
        for q in qubits:
            last_level[q] = level
    return [
        (name, np.asarray(qs, dtype=np.intp))
        for name, qs in zip(layer_name, layer_ops)
    ]


def compile_clifford_layers(circuit: Circuit) -> list[tuple[str, np.ndarray]]:
    """Fused-gate layers of a Clifford circuit, cached on the circuit.

    The cache stores a snapshot of the op list and revalidates by element
    identity: Operations are immutable, and the snapshot keeps the old
    objects alive, so any mutation of ``circuit.ops`` — append, insert,
    or in-place replacement — is detected and triggers recompilation.
    """
    ops = circuit.ops
    cached = getattr(circuit, "_clifford_layers", None)
    if (
        cached is not None
        and len(cached[0]) == len(ops)
        and all(a is b for a, b in zip(cached[0], ops))
    ):
        return cached[1]
    layers = _compile_ops(ops)
    circuit._clifford_layers = (list(ops), layers)
    return layers


def _pack_axis1(bits: np.ndarray, n_words: int) -> np.ndarray:
    """Pack a bool matrix's last axis into ``n_words`` uint64 per row."""
    rows = bits.shape[0]
    u8 = np.packbits(bits, axis=1, bitorder="little")
    out = np.zeros((rows, n_words * 8), dtype=np.uint8)
    out[:, : u8.shape[1]] = u8
    return out.view(np.uint64)


def _unpack_axis1(words: np.ndarray, n: int) -> np.ndarray:
    """Unpack uint64 words (last axis) into ``n`` bool columns per row."""
    u8 = np.ascontiguousarray(words).view(np.uint8)
    return np.unpackbits(u8, axis=1, bitorder="little")[:, :n].astype(bool)


def _to_row_packed(words: np.ndarray, n_rows: int, n_cols: int) -> np.ndarray:
    """Bit-transpose ``(n_rows, ceil(n_cols/64))`` into row-packed form.

    The result has shape ``(ceil(n_rows/64), n_cols)``: one packed word
    per 64 *rows* of a column, the layout gate layers want.
    """
    bits = _unpack_axis1(words, n_cols)
    return np.ascontiguousarray(
        _pack_axis1(np.ascontiguousarray(bits.T), max(1, (n_rows + 63) >> 6)).T
    )


def _from_row_packed(words: np.ndarray, n_rows: int, n_cols: int) -> np.ndarray:
    """Inverse of :func:`_to_row_packed`."""
    bits = _unpack_axis1(np.ascontiguousarray(words.T), n_rows)
    return _pack_axis1(np.ascontiguousarray(bits.T), max(1, (n_cols + 63) >> 6))


def _apply_layers_row_packed(layers, x, z, sign) -> None:
    """Apply fused layers to row-packed ``x``/``z``/``sign`` in place.

    Every array packs 64 generator rows per word, so a layer of L gates is
    a handful of bitwise ops on ``(words, L)`` column gathers — per-gate
    Python dispatch disappears and 64 rows advance per machine word.
    Dispatches through :mod:`repro.kernels` (numba tier runs the same
    loops ``prange``-parallel over the row words).
    """
    _kernels.apply_layers(layers, x, z, sign)


def _gf2_matmul_bool(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(a @ b) mod 2`` of two 0/1 matrices, exactly.

    Integer matmuls never hit BLAS in NumPy (they run as naive C loops),
    which made this the hot spot of batch sampling.  Dispatches through
    :mod:`repro.kernels`: the reference tier is an exact float GEMM, the
    cupy tier the same GEMM on device.
    """
    return _kernels.gf2_matmul(a, b)


def _enumerate_affine_image(
    matrix: np.ndarray, offset: np.ndarray, weight: float
) -> Distribution:
    """Distribution of ``{mask @ matrix + offset : mask in F_2^k}``.

    ``matrix`` is ``(k, m)`` uint8 (GF(2) generators as rows), ``offset``
    ``(m,)`` bool; every image point carries ``weight``.  Enumeration is
    vectorised in blocks: each block of masks becomes one GF(2) matmul and
    one packed-key accumulation, so no per-outcome Python loop survives.
    """
    from repro.analysis.distributions import (
        CHUNK_BITS,
        pack_bit_rows,
        pack_bit_rows_chunked,
    )

    k, m = matrix.shape
    pack = pack_bit_rows if m <= CHUNK_BITS else pack_bit_rows_chunked
    block = 1 << min(k, 16)
    key_blocks = []
    mask_bits = np.arange(k - 1, -1, -1, dtype=np.uint64)
    for start in range(0, 1 << k, block):
        masks = np.arange(start, start + block, dtype=np.uint64)
        f = ((masks[:, None] >> mask_bits[None, :]) & np.uint64(1)).astype(np.uint8)
        bits = _gf2_matmul_bool(f, matrix) ^ offset
        key_blocks.append(pack(bits))
    keys = np.concatenate(key_blocks, axis=0)
    return Distribution.from_arrays(
        m, keys, np.full(len(keys), weight), dedupe=True
    )


class AffineOutcomeDistribution:
    """Uniform distribution over ``{A f + b : f in F_2^k}`` (bits XOR).

    ``m = A.shape[0]`` measured bits; ``k = A.shape[1]`` free (random) bits.
    The map ``f -> A f + b`` is injective by construction (every free bit is
    itself one of the output coordinates), so every outcome in the support
    has probability exactly ``2^-k``.
    """

    def __init__(self, A: np.ndarray, b: np.ndarray):
        self.A = np.asarray(A, dtype=bool)
        self.b = np.asarray(b, dtype=bool)
        if self.A.shape[0] != self.b.shape[0]:
            raise ValueError("A and b disagree on the number of output bits")
        self._gather_plan: tuple | None = None

    @property
    def n_bits(self) -> int:
        return len(self.b)

    @property
    def n_free(self) -> int:
        return self.A.shape[1]

    def _plan(self) -> tuple:
        """Split output rows by weight: constant / single-bit / dense.

        By construction every free bit is itself an output coordinate, so
        the bulk of ``A`` consists of unit rows — batch evaluation is then
        a column *gather* from the free-bit matrix, and only the few
        genuinely-dense rows (linear combinations of several free bits)
        need a GF(2) matmul.  Computed once per distribution and cached.
        """
        if self._gather_plan is None:
            row_weights = self.A.sum(axis=1)
            unit_rows = np.flatnonzero(row_weights == 1)
            unit_cols = (
                np.argmax(self.A[unit_rows], axis=1)
                if len(unit_rows)
                else np.empty(0, dtype=np.intp)
            )
            dense_rows = np.flatnonzero(row_weights > 1)
            self._gather_plan = (unit_rows, unit_cols, dense_rows)
        return self._gather_plan

    def outcomes_for(self, f: np.ndarray) -> np.ndarray:
        """Batch-evaluate ``A f + b``; ``f`` has shape (shots, k)."""
        f = np.asarray(f, dtype=bool)
        unit_rows, unit_cols, dense_rows = self._plan()
        out = np.zeros((f.shape[0], self.n_bits), dtype=bool)
        if len(unit_rows):
            out[:, unit_rows] = f[:, unit_cols]
        if len(dense_rows):
            out[:, dense_rows] = _gf2_matmul_bool(f, self.A[dense_rows].T)
        return out ^ self.b

    def _sample_bits_t(
        self, shots: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Bit-major ``(m, shots)`` uint8 outcome bits — the fast layout.

        Free bits are drawn as packed 64-bit words and fanned out with
        ``np.unpackbits``; the affine map is then a row *gather* for the
        unit rows (the overwhelming majority — see :meth:`_plan`) plus one
        small GF(2) matmul for the dense rows.  Everything stays bit-major,
        so each operation touches contiguous per-bit vectors.
        """
        k = self.n_free
        unit_rows, unit_cols, dense_rows = self._plan()
        out = np.zeros((self.n_bits, shots), dtype=np.uint8)
        if k:
            n_words = (shots + 63) >> 6
            words = rng.integers(0, 1 << 64, size=(k, n_words), dtype=np.uint64)
            if _LITTLE_ENDIAN:
                f_t = np.unpackbits(
                    words.view(np.uint8), axis=1, bitorder="little"
                )[:, :shots]
            else:  # pragma: no cover - big-endian fallback
                f_t = (
                    ((words[:, :, None] >> _WORD_SHIFTS) & _ONE)
                    .astype(np.uint8)
                    .reshape(k, n_words << 6)[:, :shots]
                )
            if len(unit_rows):
                out[unit_rows] = f_t[unit_cols]
            if len(dense_rows):
                out[dense_rows] = _gf2_matmul_bool(self.A[dense_rows], f_t)
        out ^= self.b.astype(np.uint8)[:, None]
        return out

    def sample_bits(
        self, shots: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """(shots, m) array of outcome bits."""
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        return np.ascontiguousarray(self._sample_bits_t(shots, rng).T).astype(bool)

    def sample(
        self, shots: int, rng: np.random.Generator | int | None = None
    ) -> Distribution:
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        return Distribution.from_bit_cols(self._sample_bits_t(shots, rng))

    def to_distribution(self, max_free: int = 20) -> Distribution:
        """Exact distribution by enumerating the ``2^k`` support points."""
        k = self.n_free
        if k > max_free:
            raise ValueError(f"support of 2^{k} outcomes is too large to enumerate")
        return _enumerate_affine_image(
            self.A.T.astype(np.uint8), self.b, 2.0**-k
        )

    def probability_of(self, outcome_bits: np.ndarray) -> float:
        """Exact probability of one outcome (0 or ``2^-k``)."""
        target = np.asarray(outcome_bits, dtype=bool) ^ self.b
        # solve A f = target over GF(2)
        A = self.A.astype(np.uint8).copy()
        t = target.astype(np.uint8).copy()
        m, k = A.shape
        row = 0
        for col in range(k):
            pivots = np.flatnonzero(A[row:, col]) + row
            if len(pivots) == 0:
                continue
            p = pivots[0]
            A[[row, p]] = A[[p, row]]
            t[[row, p]] = t[[p, row]]
            mask = A[:, col].astype(bool).copy()
            mask[row] = False
            A[mask] ^= A[row]
            t[mask] ^= t[row]
            row += 1
            if row == m:
                break
        # consistency: rows of A that are all-zero must have t == 0
        zero_rows = ~A.any(axis=1)
        if t[zero_rows].any():
            return 0.0
        return 2.0 ** -self.n_free

    def marginal_distribution(self, rows: list[int]) -> Distribution:
        """Exact marginal over the selected output bits (in the given order).

        The projection of a uniform affine distribution onto a subset of
        coordinates is again uniform over an affine subspace (linear maps
        have equal-size fibers), so only ``2^rank`` outcomes need
        enumerating — independent of the number of free bits.
        """
        sub_a = self.A[rows].astype(np.uint8)
        sub_b = self.b[rows]
        m = len(rows)
        # column-reduce to a basis of the column space
        basis: list[np.ndarray] = []
        work = sub_a.T.copy()  # rows of `work` are columns of sub_a
        pivot_cols: list[int] = []
        for row in work:
            r = row.copy()
            for piv, col in zip(basis, pivot_cols):
                if r[col]:
                    r ^= piv
            nz = np.flatnonzero(r)
            if len(nz):
                basis.append(r)
                pivot_cols.append(int(nz[0]))
        rank = len(basis)
        if rank > 24:
            raise ValueError(f"marginal support 2^{rank} is too large")
        generators = (
            np.array(basis, dtype=np.uint8)
            if basis
            else np.zeros((0, m), dtype=np.uint8)
        )
        return _enumerate_affine_image(generators, sub_b, 2.0**-rank)

    def probability_of_partial(self, rows: list[int], bits) -> float:
        """Probability that the selected output bits take the given values.

        Cost is one GF(2) elimination over the selected rows — independent
        of the total number of outcomes, which is what makes strong
        simulation of wide Clifford fragments cheap.
        """
        sub_a = self.A[rows].astype(np.uint8)
        target = (np.asarray(bits, dtype=bool) ^ self.b[rows]).astype(np.uint8)
        m = len(rows)
        rank = 0
        row_i = 0
        a = sub_a.copy()
        t = target.copy()
        for col in range(a.shape[1]):
            pivots = np.flatnonzero(a[row_i:, col]) + row_i
            if len(pivots) == 0:
                continue
            p = int(pivots[0])
            a[[row_i, p]] = a[[p, row_i]]
            t[[row_i, p]] = t[[p, row_i]]
            mask = a[:, col].astype(bool).copy()
            mask[row_i] = False
            a[mask] ^= a[row_i]
            t[mask] ^= t[row_i]
            rank += 1
            row_i += 1
            if row_i == m:
                break
        zero_rows = ~a.any(axis=1)
        if t[zero_rows].any():
            return 0.0
        return 2.0**-rank

    def single_bit_marginals(self) -> np.ndarray:
        """(m, 2) per-bit marginals: 50/50 where A has support, else point."""
        out = np.zeros((self.n_bits, 2))
        random_bits = self.A.any(axis=1)
        out[random_bits] = 0.5
        fixed = ~random_bits
        out[fixed, self.b[fixed].astype(int)] = 1.0
        return out


class Tableau:
    """Stabilizer state of ``n`` qubits, qubit columns packed into uint64.

    ``x``/``z`` have shape ``(2n, n_words)`` with ``n_words =
    ceil(n/64)``: row ``r`` (destabilizers ``0..n-1``, stabilizers
    ``n..2n-1``) is a packed bitvector over the qubit columns.  ``sign``
    is one bool per row; ``sym`` packs each row's symbolic sign bits into
    uint64 words the same way.  Padding bits past column ``n-1`` stay
    zero by construction.
    """

    def __init__(self, n: int, max_symbols: int = 0):
        self.n = int(n)
        rows = 2 * self.n
        self.n_words = max(1, (self.n + 63) >> 6)
        # popcount rows via `bitwise_count(...) @ _ones8`: a uint8 matmul is
        # several times faster than .sum(axis=1), and the mod-256 wraparound
        # is harmless because every consumer reduces mod 4 or mod 2
        self._ones8 = np.ones(self.n_words, dtype=np.uint8)
        self.x = np.zeros((rows, self.n_words), dtype=np.uint64)
        self.z = np.zeros((rows, self.n_words), dtype=np.uint64)
        self.sign = np.zeros(rows, dtype=bool)
        # symbolic sign bits: sign of row i also includes (-1)^(sym[i] . f)
        self.sym = np.zeros((rows, (max_symbols + 63) >> 6), dtype=np.uint64)
        self.n_symbols = 0
        # destabilizer i = X_i ; stabilizer i = Z_i
        i = np.arange(self.n)
        bit = _ONE << (i & 63).astype(np.uint64)
        self.x[i, i >> 6] = bit
        self.z[self.n + i, i >> 6] = bit

    def copy(self) -> "Tableau":
        out = Tableau.__new__(Tableau)
        out.n = self.n
        out.n_words = self.n_words
        out._ones8 = self._ones8
        out.x = self.x.copy()
        out.z = self.z.copy()
        out.sign = self.sign.copy()
        out.sym = self.sym.copy()
        out.n_symbols = self.n_symbols
        return out

    # -- gates ----------------------------------------------------------------

    def h(self, q: int) -> None:
        w, b = q >> 6, np.uint64(q & 63)
        mask = _ONE << b
        xw = self.x[:, w]
        zw = self.z[:, w]
        self.sign ^= (xw & zw & mask) != 0
        diff = (xw ^ zw) & mask
        xw ^= diff
        zw ^= diff

    def s(self, q: int) -> None:
        w, b = q >> 6, np.uint64(q & 63)
        mask = _ONE << b
        xw = self.x[:, w]
        zw = self.z[:, w]
        self.sign ^= (xw & zw & mask) != 0
        zw ^= xw & mask

    def cx(self, c: int, t: int) -> None:
        wc, bc = c >> 6, np.uint64(c & 63)
        wt, bt = t >> 6, np.uint64(t & 63)
        xc = (self.x[:, wc] >> bc) & _ONE
        zt = (self.z[:, wt] >> bt) & _ONE
        xt = (self.x[:, wt] >> bt) & _ONE
        zc = (self.z[:, wc] >> bc) & _ONE
        self.sign ^= (xc & zt & (xt ^ zc ^ _ONE)) != 0
        self.x[:, wt] ^= xc << bt
        self.z[:, wc] ^= zt << bc

    def x_gate(self, q: int) -> None:
        self.sign ^= (self.z[:, q >> 6] & (_ONE << np.uint64(q & 63))) != 0

    def z_gate(self, q: int) -> None:
        self.sign ^= (self.x[:, q >> 6] & (_ONE << np.uint64(q & 63))) != 0

    def apply_operation(self, gate, qubits: tuple[int, ...]) -> None:
        name = gate.name
        if name == "X":
            self.x_gate(qubits[0])
        elif name == "Z":
            self.z_gate(qubits[0])
        elif name == "H":
            self.h(qubits[0])
        elif name == "S":
            self.s(qubits[0])
        elif name == "CX":
            self.cx(*qubits)
        else:
            for sub_name, wires in gate.stabilizer_decomposition():
                sub_qubits = tuple(qubits[w] for w in wires)
                if sub_name == "H":
                    self.h(sub_qubits[0])
                elif sub_name == "S":
                    self.s(sub_qubits[0])
                else:
                    self.cx(*sub_qubits)

    def apply_circuit(self, circuit: Circuit) -> None:
        """Apply a Clifford circuit as fused word-parallel gate layers.

        Gate columns want rows packed together (64 rows of a column per
        word) while row products want qubits packed together, so the
        tableau is bit-transposed into row-packed form once, all fused
        layers run there, and the result is transposed back — both
        conversions are C-speed ``packbits`` calls, amortised over the
        whole circuit.
        """
        if circuit.n_qubits != self.n:
            raise ValueError("circuit width does not match tableau")
        layers = compile_clifford_layers(circuit)
        if not layers:
            return
        rows = 2 * self.n
        x = _to_row_packed(self.x, rows, self.n)
        z = _to_row_packed(self.z, rows, self.n)
        sign = _pack_bits(self.sign)
        _apply_layers_row_packed(layers, x, z, sign)
        self.x = _from_row_packed(x, rows, self.n)
        self.z = _from_row_packed(z, rows, self.n)
        self.sign = _unpack_bits(sign, rows)

    # -- row products -----------------------------------------------------------

    def _multiply_rows_into(self, targets: np.ndarray, source: int) -> None:
        """Row_t <- Row_s * Row_t for every t in ``targets`` (word-parallel).

        Phases: with rows R = (-1)^s i^(x.z) X^x Z^z, the product phase
        exponent (power of i) is
            t = x1.z1 + x2.z2 + 2*(z1.x2) + 2*s1 + 2*s2
        and the result sign is (t - x12.z12)/2 mod 2; all dot products are
        word-wide popcounts.  For stabilizer-group products the difference
        is always even; destabilizer rows may pick up an irrelevant
        half-phase which we truncate (their signs are never read).
        """
        targets = np.asarray(targets)
        if targets.size == 0:
            return
        _kernels.row_mul(self.x, self.z, self.sign, targets, source)
        src_sym = self.sym[source]
        if src_sym.any():
            self.sym[targets] ^= src_sym[None, :]

    # -- measurement -----------------------------------------------------------

    def _grow_symbols(self) -> int:
        if self.n_symbols == 64 * self.sym.shape[1]:
            extra = np.zeros(
                (2 * self.n, max(1, self.sym.shape[1])), dtype=np.uint64
            )
            self.sym = np.concatenate([self.sym, extra], axis=1)
        index = self.n_symbols
        self.n_symbols += 1
        return index

    def measure(
        self, q: int, rng: np.random.Generator | int | None = None
    ) -> int:
        """Measure qubit ``q`` in the Z basis, collapsing the state."""
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        result = self._measure_impl(q, symbolic=False, rng=rng)
        return result

    def measure_symbolic(self, q: int) -> tuple[np.ndarray, bool]:
        """Measure qubit ``q`` symbolically.

        Returns ``(coeffs, const)``: the outcome equals
        ``coeffs . f XOR const`` over the symbolic free bits ``f``.  For a
        deterministic outcome ``coeffs`` may be all-zero; for a random one a
        fresh symbol is allocated.
        """
        return self._measure_impl(q, symbolic=True, rng=None)

    def _measure_impl(self, q, symbolic, rng):
        w, b = q >> 6, np.uint64(q & 63)
        col = self.x[:, w] & (_ONE << b)
        hits = np.flatnonzero(col)
        # first hit at or past n is the stabilizer pivot (hits is sorted)
        pivot_pos = int(np.searchsorted(hits, self.n))
        if pivot_pos < hits.size:
            p = int(hits[pivot_pos])
            others = np.delete(hits, pivot_pos)
            self._multiply_rows_into(others, p)
            # destabilizer p-n <- old stabilizer p ; stabilizer p <- +/- Z_q
            d = p - self.n
            self.x[d] = self.x[p]
            self.z[d] = self.z[p]
            self.sign[d] = self.sign[p]
            self.sym[d] = self.sym[p]
            self.x[p] = 0
            self.z[p] = 0
            self.z[p, w] = _ONE << b
            self.sym[p] = 0
            if symbolic:
                k = self._grow_symbols()
                self.sign[p] = False
                self.sym[p, k >> 6] = _ONE << np.uint64(k & 63)
                coeffs = np.zeros(self.n_symbols, dtype=bool)
                coeffs[k] = True
                return coeffs, False
            outcome = int(rng.integers(2))
            self.sign[p] = bool(outcome)
            return outcome
        # deterministic: the outcome is the sign of the product of the
        # stabilizers selected by destabilizers anticommuting with Z_q
        # (every hit is a destabilizer row here: pivot_pos == hits.size)
        rows = hits + self.n
        if rows.size == 0:
            if symbolic:
                return np.zeros(self.n_symbols, dtype=bool), False
            return 0
        xs = self.x[rows]
        zs = self.z[rows]
        syms = self.sym[rows]
        # represent each row as i^t X^x Z^z with t = x.z + 2*sign; the
        # selected stabilizers commute, so a pairwise tree product (with
        # the i^(2 z_a.x_b) reordering phase) is order-independent
        ones = self._ones8
        t = (
            np.bitwise_count(xs & zs) @ ones.astype(np.int64)
            + 2 * self.sign[rows]
        ) % 4
        while xs.shape[0] > 1:
            if xs.shape[0] & 1:
                pad = np.zeros((1, xs.shape[1]), dtype=np.uint64)
                xs = np.concatenate([xs, pad])
                zs = np.concatenate([zs, pad])
                syms = np.concatenate(
                    [syms, np.zeros((1, syms.shape[1]), dtype=np.uint64)]
                )
                t = np.concatenate([t, [0]])
            cross = np.bitwise_count(
                np.ascontiguousarray(zs[0::2]) & xs[1::2]
            ) @ ones
            t = (t[0::2] + t[1::2] + 2 * cross) % 4
            xs = xs[0::2] ^ xs[1::2]
            zs = zs[0::2] ^ zs[1::2]
            syms = syms[0::2] ^ syms[1::2]
        # the accumulated operator is +/- Z_q (x = 0, so i^t must be +/-1)
        sign = bool(t[0] == 2)
        acc_sym = _unpack_bits(syms[0], self.n_symbols)
        if symbolic:
            return acc_sym, sign
        if acc_sym.any():  # pragma: no cover - defensive
            raise RuntimeError("deterministic outcome depends on unresolved symbols")
        return int(sign)

    def measurement_distribution(
        self, qubits: tuple[int, ...]
    ) -> AffineOutcomeDistribution:
        """Exact Z-basis outcome distribution over ``qubits``.

        Collapses this tableau (work on a copy if it is still needed).
        """
        self.n_symbols = 0
        self.sym = np.zeros(
            (2 * self.n, max(1, (len(qubits) + 63) >> 6)), dtype=np.uint64
        )
        rows = []
        consts = []
        for q in qubits:
            coeffs, const = self.measure_symbolic(q)
            rows.append(coeffs)
            consts.append(const)
        k = self.n_symbols
        A = np.zeros((len(qubits), k), dtype=bool)
        for i, coeffs in enumerate(rows):
            A[i, : len(coeffs)] = coeffs
        return AffineOutcomeDistribution(A, np.array(consts, dtype=bool))

    # -- observables ------------------------------------------------------------

    def expectation(self, pauli: PauliString) -> int:
        """Exact ``<P>`` of the stabilizer state: always -1, 0, or +1.

        This is the structural fact exploited by the paper's Section IX
        optimizations.  Anticommutation parities are word-wide popcounts
        against the packed Pauli, so the generator scan is ``O(n^2/64)``.
        """
        if pauli.n != self.n:
            raise ValueError("Pauli width does not match tableau")
        if self.n_symbols:
            raise ValueError("expectation undefined after symbolic collapse")
        px = _pack_bits(pauli.x, self.n_words)
        pz = _pack_bits(pauli.z, self.n_words)
        # anticommutation of P with each stabilizer generator
        ones = self._ones8
        anti = (
            np.bitwise_count(self.x[self.n :] & pz) @ ones
            + np.bitwise_count(self.z[self.n :] & px) @ ones
        ) & 1
        if anti.any():
            return 0
        # P (up to sign) = product of stabilizers s_i over rows whose
        # destabilizer anticommutes with P
        select = (
            np.bitwise_count(self.x[: self.n] & pz) @ ones
            + np.bitwise_count(self.z[: self.n] & px) @ ones
        ) & 1
        product = PauliString.identity(self.n)
        for i in np.flatnonzero(select):
            product = product * self._row_pauli(self.n + int(i))
        if not (
            np.array_equal(product.x, pauli.x) and np.array_equal(product.z, pauli.z)
        ):
            raise AssertionError("stabilizer reconstruction failed")
        diff = (pauli.phase - product.phase) % 4
        if diff == 0:
            return 1
        if diff == 2:
            return -1
        raise ValueError("expectation of a non-Hermitian Pauli is not +/-1")

    def _row_pauli(self, row: int) -> PauliString:
        c = int(np.bitwise_count(self.x[row] & self.z[row]).sum())
        phase = (c + 2 * int(self.sign[row])) % 4
        return PauliString(
            _unpack_bits(self.x[row], self.n),
            _unpack_bits(self.z[row], self.n),
            phase,
        )

    def stabilizers(self) -> list[PauliString]:
        """The n stabilizer generators as phase-correct Pauli strings."""
        return [self._row_pauli(self.n + i) for i in range(self.n)]

    def destabilizers(self) -> list[PauliString]:
        return [self._row_pauli(i) for i in range(self.n)]
