"""Aaronson–Gottesman stabilizer tableau simulation.

The tableau tracks ``2n`` generator rows (destabilizers then stabilizers),
each a Hermitian Pauli stored as ``(-1)^sign * i^(x.z) * X^x Z^z`` — i.e. the
plain letter product with a sign bit.  All gate updates are vectorised over
rows, giving the ``O(n)`` per-gate / ``O(n^2)`` per-measurement scaling that
makes Clifford simulation tractable at hundreds of qubits (the property the
paper borrows from Stim).

Measurement supports a *symbolic* mode: each random measurement outcome
introduces a fresh symbolic bit and subsequent signs are tracked as affine
functions of those bits.  Measuring every output qubit symbolically yields
the exact outcome distribution as an affine subspace of ``F_2^m`` (see
:class:`AffineOutcomeDistribution`), from which sampling is O(1)-ish per
shot and exact probabilities are available without re-running the tableau.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.distributions import Distribution
from repro.circuits.circuit import Circuit
from repro.paulis.pauli import PauliString


class AffineOutcomeDistribution:
    """Uniform distribution over ``{A f + b : f in F_2^k}`` (bits XOR).

    ``m = A.shape[0]`` measured bits; ``k = A.shape[1]`` free (random) bits.
    The map ``f -> A f + b`` is injective by construction (every free bit is
    itself one of the output coordinates), so every outcome in the support
    has probability exactly ``2^-k``.
    """

    def __init__(self, A: np.ndarray, b: np.ndarray):
        self.A = np.asarray(A, dtype=bool)
        self.b = np.asarray(b, dtype=bool)
        if self.A.shape[0] != self.b.shape[0]:
            raise ValueError("A and b disagree on the number of output bits")

    @property
    def n_bits(self) -> int:
        return len(self.b)

    @property
    def n_free(self) -> int:
        return self.A.shape[1]

    def outcomes_for(self, f: np.ndarray) -> np.ndarray:
        """Batch-evaluate ``A f + b``; ``f`` has shape (shots, k)."""
        f = np.asarray(f, dtype=bool)
        return (f @ self.A.T.astype(np.uint8) % 2).astype(bool) ^ self.b

    def sample_bits(
        self, shots: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """(shots, m) array of outcome bits."""
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        f = rng.integers(0, 2, size=(shots, self.n_free), dtype=np.uint8).astype(bool)
        return self.outcomes_for(f)

    def sample(
        self, shots: int, rng: np.random.Generator | int | None = None
    ) -> Distribution:
        bits = self.sample_bits(shots, rng)
        weights = 1 << np.arange(self.n_bits - 1, -1, -1, dtype=object)
        counts: dict[int, int] = {}
        for row in bits:
            key = int(sum(w for w, bit in zip(weights, row) if bit))
            counts[key] = counts.get(key, 0) + 1
        return Distribution.from_counts(self.n_bits, counts)

    def to_distribution(self, max_free: int = 20) -> Distribution:
        """Exact distribution by enumerating the ``2^k`` support points."""
        k = self.n_free
        if k > max_free:
            raise ValueError(f"support of 2^{k} outcomes is too large to enumerate")
        probs: dict[int, float] = {}
        p = 2.0**-k
        for mask in range(2**k):
            f = np.array([(mask >> (k - 1 - i)) & 1 for i in range(k)], dtype=bool)
            if k:
                # GF(2) matrix-vector product: bool @ bool would OR, not XOR
                products = (self.A.astype(np.uint8) @ f.astype(np.uint8)) % 2
                outcome_bits = products.astype(bool) ^ self.b
            else:
                outcome_bits = self.b
            key = 0
            for bit in outcome_bits:
                key = (key << 1) | int(bit)
            probs[key] = probs.get(key, 0.0) + p
        return Distribution(self.n_bits, probs)

    def probability_of(self, outcome_bits: np.ndarray) -> float:
        """Exact probability of one outcome (0 or ``2^-k``)."""
        target = np.asarray(outcome_bits, dtype=bool) ^ self.b
        # solve A f = target over GF(2)
        A = self.A.astype(np.uint8).copy()
        t = target.astype(np.uint8).copy()
        m, k = A.shape
        row = 0
        for col in range(k):
            pivots = np.flatnonzero(A[row:, col]) + row
            if len(pivots) == 0:
                continue
            p = pivots[0]
            A[[row, p]] = A[[p, row]]
            t[[row, p]] = t[[p, row]]
            mask = A[:, col].astype(bool).copy()
            mask[row] = False
            A[mask] ^= A[row]
            t[mask] ^= t[row]
            row += 1
            if row == m:
                break
        # consistency: rows of A that are all-zero must have t == 0
        zero_rows = ~A.any(axis=1)
        if t[zero_rows].any():
            return 0.0
        return 2.0 ** -self.n_free

    def marginal_distribution(self, rows: list[int]) -> Distribution:
        """Exact marginal over the selected output bits (in the given order).

        The projection of a uniform affine distribution onto a subset of
        coordinates is again uniform over an affine subspace (linear maps
        have equal-size fibers), so only ``2^rank`` outcomes need
        enumerating — independent of the number of free bits.
        """
        sub_a = self.A[rows].astype(np.uint8)
        sub_b = self.b[rows]
        m = len(rows)
        # column-reduce to a basis of the column space
        basis: list[np.ndarray] = []
        work = sub_a.T.copy()  # rows of `work` are columns of sub_a
        pivot_cols: list[int] = []
        for row in work:
            r = row.copy()
            for piv, col in zip(basis, pivot_cols):
                if r[col]:
                    r ^= piv
            nz = np.flatnonzero(r)
            if len(nz):
                basis.append(r)
                pivot_cols.append(int(nz[0]))
        rank = len(basis)
        if rank > 24:
            raise ValueError(f"marginal support 2^{rank} is too large")
        probs: dict[int, float] = {}
        p = 2.0**-rank
        for mask in range(2**rank):
            bits = sub_b.astype(np.uint8).copy()
            for i in range(rank):
                if (mask >> i) & 1:
                    bits ^= basis[i]
            key = 0
            for bit in bits:
                key = (key << 1) | int(bit)
            probs[key] = probs.get(key, 0.0) + p
        return Distribution(m, probs)

    def probability_of_partial(self, rows: list[int], bits) -> float:
        """Probability that the selected output bits take the given values.

        Cost is one GF(2) elimination over the selected rows — independent
        of the total number of outcomes, which is what makes strong
        simulation of wide Clifford fragments cheap.
        """
        sub_a = self.A[rows].astype(np.uint8)
        target = (np.asarray(bits, dtype=bool) ^ self.b[rows]).astype(np.uint8)
        m = len(rows)
        rank = 0
        row_i = 0
        a = sub_a.copy()
        t = target.copy()
        for col in range(a.shape[1]):
            pivots = np.flatnonzero(a[row_i:, col]) + row_i
            if len(pivots) == 0:
                continue
            p = int(pivots[0])
            a[[row_i, p]] = a[[p, row_i]]
            t[[row_i, p]] = t[[p, row_i]]
            mask = a[:, col].astype(bool).copy()
            mask[row_i] = False
            a[mask] ^= a[row_i]
            t[mask] ^= t[row_i]
            rank += 1
            row_i += 1
            if row_i == m:
                break
        zero_rows = ~a.any(axis=1)
        if t[zero_rows].any():
            return 0.0
        return 2.0**-rank

    def single_bit_marginals(self) -> np.ndarray:
        """(m, 2) per-bit marginals: 50/50 where A has support, else point."""
        out = np.zeros((self.n_bits, 2))
        random_bits = self.A.any(axis=1)
        out[random_bits] = 0.5
        fixed = ~random_bits
        out[fixed, self.b[fixed].astype(int)] = 1.0
        return out


class Tableau:
    """Stabilizer state of ``n`` qubits in the Aaronson–Gottesman form."""

    def __init__(self, n: int, max_symbols: int = 0):
        self.n = int(n)
        rows = 2 * self.n
        self.x = np.zeros((rows, self.n), dtype=bool)
        self.z = np.zeros((rows, self.n), dtype=bool)
        self.sign = np.zeros(rows, dtype=bool)
        # symbolic sign bits: sign of row i also includes (-1)^(sym[i] . f)
        self.sym = np.zeros((rows, max_symbols), dtype=bool)
        self.n_symbols = 0
        # destabilizer i = X_i ; stabilizer i = Z_i
        self.x[np.arange(self.n), np.arange(self.n)] = True
        self.z[self.n + np.arange(self.n), np.arange(self.n)] = True

    def copy(self) -> "Tableau":
        out = Tableau.__new__(Tableau)
        out.n = self.n
        out.x = self.x.copy()
        out.z = self.z.copy()
        out.sign = self.sign.copy()
        out.sym = self.sym.copy()
        out.n_symbols = self.n_symbols
        return out

    # -- gates ----------------------------------------------------------------

    def h(self, q: int) -> None:
        self.sign ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def s(self, q: int) -> None:
        self.sign ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def cx(self, c: int, t: int) -> None:
        self.sign ^= (
            self.x[:, c] & self.z[:, t] & (self.x[:, t] ^ self.z[:, c] ^ True)
        )
        self.x[:, t] ^= self.x[:, c]
        self.z[:, c] ^= self.z[:, t]

    def x_gate(self, q: int) -> None:
        self.sign ^= self.z[:, q]

    def z_gate(self, q: int) -> None:
        self.sign ^= self.x[:, q]

    def apply_operation(self, gate, qubits: tuple[int, ...]) -> None:
        name = gate.name
        if name == "X":
            self.x_gate(qubits[0])
        elif name == "Z":
            self.z_gate(qubits[0])
        elif name == "H":
            self.h(qubits[0])
        elif name == "S":
            self.s(qubits[0])
        elif name == "CX":
            self.cx(*qubits)
        else:
            for sub_name, wires in gate.stabilizer_decomposition():
                sub_qubits = tuple(qubits[w] for w in wires)
                if sub_name == "H":
                    self.h(sub_qubits[0])
                elif sub_name == "S":
                    self.s(sub_qubits[0])
                else:
                    self.cx(*sub_qubits)

    def apply_circuit(self, circuit: Circuit) -> None:
        if circuit.n_qubits != self.n:
            raise ValueError("circuit width does not match tableau")
        for op in circuit.ops:
            if not op.gate.is_clifford:
                raise ValueError(
                    f"non-Clifford gate {op.gate!r} cannot run on the tableau "
                    "simulator"
                )
            self.apply_operation(op.gate, op.qubits)

    # -- row products -----------------------------------------------------------

    def _multiply_rows_into(self, targets: np.ndarray, source: int) -> None:
        """Row_t <- Row_s * Row_t for every t in ``targets`` (vectorised).

        Phases: with rows R = (-1)^s i^(x.z) X^x Z^z, the product phase
        exponent (power of i) is
            t = x1.z1 + x2.z2 + 2*(z1.x2) + 2*s1 + 2*s2
        and the result sign is (t - x12.z12)/2 mod 2.  For stabilizer-group
        products the difference is always even; destabilizer rows may pick
        up an irrelevant half-phase which we truncate (their signs are never
        read).
        """
        if len(targets) == 0:
            return
        x1, z1 = self.x[source], self.z[source]
        x2, z2 = self.x[targets], self.z[targets]
        c1 = int(np.count_nonzero(x1 & z1))
        c2 = (x2 & z2).sum(axis=1)
        cross = (z1[None, :] & x2).sum(axis=1)
        new_x = x2 ^ x1[None, :]
        new_z = z2 ^ z1[None, :]
        c12 = (new_x & new_z).sum(axis=1)
        total = c1 + c2 + 2 * cross
        half = ((total - c12) % 4) >= 2
        self.sign[targets] = self.sign[targets] ^ self.sign[source] ^ half
        self.sym[targets] ^= self.sym[source][None, :]
        self.x[targets] = new_x
        self.z[targets] = new_z

    # -- measurement -----------------------------------------------------------

    def _grow_symbols(self) -> int:
        if self.n_symbols == self.sym.shape[1]:
            extra = np.zeros((2 * self.n, max(8, self.sym.shape[1])), dtype=bool)
            self.sym = np.concatenate([self.sym, extra], axis=1)
        index = self.n_symbols
        self.n_symbols += 1
        return index

    def measure(
        self, q: int, rng: np.random.Generator | int | None = None
    ) -> int:
        """Measure qubit ``q`` in the Z basis, collapsing the state."""
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        result = self._measure_impl(q, symbolic=False, rng=rng)
        return result

    def measure_symbolic(self, q: int) -> tuple[np.ndarray, bool]:
        """Measure qubit ``q`` symbolically.

        Returns ``(coeffs, const)``: the outcome equals
        ``coeffs . f XOR const`` over the symbolic free bits ``f``.  For a
        deterministic outcome ``coeffs`` may be all-zero; for a random one a
        fresh symbol is allocated.
        """
        return self._measure_impl(q, symbolic=True, rng=None)

    def _measure_impl(self, q, symbolic, rng):
        stab = slice(self.n, 2 * self.n)
        anticommuting = np.flatnonzero(self.x[stab, q]) + self.n
        if len(anticommuting) > 0:
            p = int(anticommuting[0])
            others = np.flatnonzero(self.x[:, q])
            others = others[others != p]
            self._multiply_rows_into(others, p)
            # destabilizer p-n <- old stabilizer p ; stabilizer p <- +/- Z_q
            d = p - self.n
            self.x[d] = self.x[p]
            self.z[d] = self.z[p]
            self.sign[d] = self.sign[p]
            self.sym[d] = self.sym[p]
            self.x[p] = False
            self.z[p] = False
            self.z[p, q] = True
            self.sym[p] = False
            if symbolic:
                k = self._grow_symbols()
                self.sign[p] = False
                self.sym[p, k] = True
                coeffs = np.zeros(self.n_symbols, dtype=bool)
                coeffs[k] = True
                return coeffs, False
            outcome = int(rng.integers(2))
            self.sign[p] = bool(outcome)
            return outcome
        # deterministic: accumulate product of stabilizers indicated by
        # destabilizers that anticommute with Z_q
        rows = np.flatnonzero(self.x[: self.n, q]) + self.n
        acc_x = np.zeros(self.n, dtype=bool)
        acc_z = np.zeros(self.n, dtype=bool)
        acc_phase = 0  # power of i
        acc_sign = False
        acc_sym = np.zeros(self.sym.shape[1], dtype=bool)
        for r in rows:
            x2, z2 = self.x[r], self.z[r]
            cross = int(np.count_nonzero(acc_z & x2))
            acc_phase += int(np.count_nonzero(x2 & z2)) + 2 * cross
            acc_sign ^= bool(self.sign[r])
            acc_sym ^= self.sym[r]
            acc_x ^= x2
            acc_z ^= z2
        # the accumulated operator must be +/- Z_q
        c12 = int(np.count_nonzero(acc_x & acc_z))
        half = ((acc_phase - c12) % 4) >= 2
        sign = acc_sign ^ half
        if symbolic:
            coeffs = acc_sym[: self.n_symbols].copy()
            return coeffs, bool(sign)
        if acc_sym[: self.n_symbols].any():  # pragma: no cover - defensive
            raise RuntimeError("deterministic outcome depends on unresolved symbols")
        return int(sign)

    def measurement_distribution(
        self, qubits: tuple[int, ...]
    ) -> AffineOutcomeDistribution:
        """Exact Z-basis outcome distribution over ``qubits``.

        Collapses this tableau (work on a copy if it is still needed).
        """
        self.n_symbols = 0
        self.sym = np.zeros((2 * self.n, max(8, len(qubits))), dtype=bool)
        rows = []
        consts = []
        for q in qubits:
            coeffs, const = self.measure_symbolic(q)
            rows.append(coeffs)
            consts.append(const)
        k = self.n_symbols
        A = np.zeros((len(qubits), k), dtype=bool)
        for i, coeffs in enumerate(rows):
            A[i, : len(coeffs)] = coeffs
        return AffineOutcomeDistribution(A, np.array(consts, dtype=bool))

    # -- observables ------------------------------------------------------------

    def expectation(self, pauli: PauliString) -> int:
        """Exact ``<P>`` of the stabilizer state: always -1, 0, or +1.

        This is the structural fact exploited by the paper's Section IX
        optimizations.
        """
        if pauli.n != self.n:
            raise ValueError("Pauli width does not match tableau")
        if self.n_symbols:
            raise ValueError("expectation undefined after symbolic collapse")
        stab_x = self.x[self.n :]
        stab_z = self.z[self.n :]
        # anticommutation of P with each stabilizer generator
        anti = (
            (stab_x & pauli.z[None, :]).sum(axis=1)
            + (stab_z & pauli.x[None, :]).sum(axis=1)
        ) % 2
        if anti.any():
            return 0
        # P (up to sign) = product of stabilizers s_i over rows whose
        # destabilizer anticommutes with P
        destab_x = self.x[: self.n]
        destab_z = self.z[: self.n]
        select = (
            (destab_x & pauli.z[None, :]).sum(axis=1)
            + (destab_z & pauli.x[None, :]).sum(axis=1)
        ) % 2
        product = PauliString.identity(self.n)
        for i in np.flatnonzero(select):
            row = self.n + i
            product = product * self._row_pauli(row)
        if not (
            np.array_equal(product.x, pauli.x) and np.array_equal(product.z, pauli.z)
        ):
            raise AssertionError("stabilizer reconstruction failed")
        diff = (pauli.phase - product.phase) % 4
        if diff == 0:
            return 1
        if diff == 2:
            return -1
        raise ValueError("expectation of a non-Hermitian Pauli is not +/-1")

    def _row_pauli(self, row: int) -> PauliString:
        c = int(np.count_nonzero(self.x[row] & self.z[row]))
        phase = (c + 2 * int(self.sign[row])) % 4
        return PauliString(self.x[row], self.z[row], phase)

    def stabilizers(self) -> list[PauliString]:
        """The n stabilizer generators as phase-correct Pauli strings."""
        return [self._row_pauli(self.n + i) for i in range(self.n)]

    def destabilizers(self) -> list[PauliString]:
        return [self._row_pauli(i) for i in range(self.n)]
