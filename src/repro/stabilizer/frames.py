"""Pauli-frame sampling of noisy Clifford circuits.

The frame technique (used by Stim) simulates ``shots`` noisy executions with
one noiseless reference simulation: each shot carries a Pauli *frame* —
the error accumulated so far — which is conjugated through the circuit's
Clifford gates and finally XORed into reference measurement outcomes.
Because this repository's circuit IR uses terminal measurement only, no
mid-circuit frame randomisation is needed: the reference outcomes are drawn
per shot from the exact affine outcome distribution, and a frame's X
component on a measured qubit flips that outcome bit.

Cost: O(shots) bits per gate, so noisy sampling is barely slower than
noiseless sampling — the property that makes stabilizer QEC studies cheap.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.distributions import Distribution
from repro.circuits.circuit import Circuit
from repro.stabilizer.noise import NoiseModel
from repro.stabilizer.tableau import Tableau


class FrameSampler:
    """Samples measurement outcomes of ``circuit`` under ``noise``."""

    def __init__(self, circuit: Circuit, noise: NoiseModel):
        if not circuit.is_clifford:
            raise ValueError("frame sampling requires a Clifford circuit")
        self.circuit = circuit
        self.noise = noise
        self._sites = noise.locations(circuit)
        tableau = Tableau(circuit.n_qubits)
        tableau.apply_circuit(circuit)
        self._reference = tableau.measurement_distribution(circuit.measured_qubits)

    def sample_bits(
        self, shots: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """(shots, n_measured) outcome bits."""
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        n = self.circuit.n_qubits
        fx = np.zeros((shots, n), dtype=bool)
        fz = np.zeros((shots, n), dtype=bool)
        site_iter = iter(self._sites + [(None, None, None)])
        next_site = next(site_iter)

        def inject(channel, qubits):
            indices = channel.sample_indices(shots, rng)
            xm, zm = channel.xz_masks()
            for term in range(len(channel.terms)):
                mask = indices == term
                if not mask.any():
                    continue
                for w, q in enumerate(qubits):
                    if xm[term, w]:
                        fx[mask, q] ^= True
                    if zm[term, w]:
                        fz[mask, q] ^= True

        # noise *before* any gate is not modelled; walk ops injecting after
        for i, op in enumerate(self.circuit.ops):
            self._propagate(fx, fz, op)
            while next_site[0] == i:
                inject(next_site[1], next_site[2])
                next_site = next(site_iter)
        while next_site[0] == len(self.circuit.ops):
            inject(next_site[1], next_site[2])
            next_site = next(site_iter)

        reference = self._reference.sample_bits(shots, rng)
        measured = list(self.circuit.measured_qubits)
        return reference ^ fx[:, measured]

    def sample(
        self, shots: int, rng: np.random.Generator | int | None = None
    ) -> Distribution:
        bits = self.sample_bits(shots, rng)
        m = bits.shape[1]
        counts: dict[int, int] = {}
        for row in bits:
            key = 0
            for bit in row:
                key = (key << 1) | int(bit)
            counts[key] = counts.get(key, 0) + 1
        return Distribution.from_counts(m, counts)

    @staticmethod
    def _propagate(fx: np.ndarray, fz: np.ndarray, op) -> None:
        """Conjugate all frames through one gate (signs irrelevant)."""
        name = op.gate.name
        qubits = op.qubits
        if name in ("X", "Y", "Z", "I"):
            return  # Paulis commute with frames up to sign
        if name == "H":
            q = qubits[0]
            fx[:, q], fz[:, q] = fz[:, q].copy(), fx[:, q].copy()
            return
        if name == "S":
            q = qubits[0]
            fz[:, q] ^= fx[:, q]
            return
        if name == "CX":
            c, t = qubits
            fx[:, t] ^= fx[:, c]
            fz[:, c] ^= fz[:, t]
            return
        for sub_name, wires in op.gate.stabilizer_decomposition():
            sub = tuple(qubits[w] for w in wires)
            if sub_name == "H":
                fx[:, sub[0]], fz[:, sub[0]] = fz[:, sub[0]].copy(), fx[:, sub[0]].copy()
            elif sub_name == "S":
                fz[:, sub[0]] ^= fx[:, sub[0]]
            else:
                c, t = sub
                fx[:, t] ^= fx[:, c]
                fz[:, c] ^= fz[:, t]
