"""Pauli-frame sampling of noisy Clifford circuits.

The frame technique (used by Stim) simulates ``shots`` noisy executions with
one noiseless reference simulation: each shot carries a Pauli *frame* —
the error accumulated so far — which is conjugated through the circuit's
Clifford gates and finally XORed into reference measurement outcomes.
Because this repository's circuit IR uses terminal measurement only, no
mid-circuit frame randomisation is needed: the reference outcomes are drawn
per shot from the exact affine outcome distribution, and a frame's X
component on a measured qubit flips that outcome bit.

Frame propagation reuses the tableau engine's fused gate layers
(:func:`repro.stabilizer.tableau._compile_ops`): the circuit is compiled
once into same-gate layers between noise-injection points, so all shots'
frames advance through a whole layer per vectorized call instead of one
Python dispatch per gate.

Cost: O(shots) bits per gate, so noisy sampling is barely slower than
noiseless sampling — the property that makes stabilizer QEC studies cheap.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.distributions import Distribution
from repro.circuits.circuit import Circuit
from repro.stabilizer.noise import NoiseModel
from repro.stabilizer.tableau import Tableau, _compile_ops


def _propagate_layers(layers, fx: np.ndarray, fz: np.ndarray) -> None:
    """Conjugate all frames through fused gate layers (signs irrelevant)."""
    for name, qarr in layers:
        if name == "CX":
            cs, ts = qarr[:, 0], qarr[:, 1]
            fx[:, ts] ^= fx[:, cs]
            fz[:, cs] ^= fz[:, ts]
        elif name == "H":
            qs = qarr[:, 0]
            tmp = fx[:, qs].copy()
            fx[:, qs] = fz[:, qs]
            fz[:, qs] = tmp
        elif name == "S":
            qs = qarr[:, 0]
            fz[:, qs] ^= fx[:, qs]
        # X, Y, Z layers: Paulis commute with frames up to sign


class FrameSampler:
    """Samples measurement outcomes of ``circuit`` under ``noise``."""

    def __init__(self, circuit: Circuit, noise: NoiseModel):
        if not circuit.is_clifford:
            raise ValueError("frame sampling requires a Clifford circuit")
        self.circuit = circuit
        self.noise = noise
        tableau = Tableau(circuit.n_qubits)
        tableau.apply_circuit(circuit)
        self._reference = tableau.measurement_distribution(circuit.measured_qubits)
        # pre-compile: fused layers between consecutive noise injections,
        # preserving the site order (and hence the rng stream) of the
        # one-op-at-a-time walk
        inject_at: dict[int, list] = {}
        for index, channel, qubits in noise.locations(circuit):
            inject_at.setdefault(index, []).append((channel, qubits))
        ops = circuit.ops
        self._segments: list[tuple[list, list]] = []
        start = 0
        for index in sorted(inject_at):
            end = min(index + 1, len(ops))
            self._segments.append((_compile_ops(ops[start:end]), inject_at[index]))
            start = end
        if start < len(ops):
            self._segments.append((_compile_ops(ops[start:]), []))

    def sample_bits(
        self, shots: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """(shots, n_measured) outcome bits."""
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        n = self.circuit.n_qubits
        fx = np.zeros((shots, n), dtype=bool)
        fz = np.zeros((shots, n), dtype=bool)

        def inject(channel, qubits):
            indices = channel.sample_indices(shots, rng)
            xm, zm = channel.xz_masks()
            for term in range(len(channel.terms)):
                mask = indices == term
                if not mask.any():
                    continue
                for w, q in enumerate(qubits):
                    if xm[term, w]:
                        fx[mask, q] ^= True
                    if zm[term, w]:
                        fz[mask, q] ^= True

        # noise *before* any gate is not modelled; walk segments injecting
        # after the ops they end on
        for layers, sites in self._segments:
            _propagate_layers(layers, fx, fz)
            for channel, qubits in sites:
                inject(channel, qubits)

        reference = self._reference.sample_bits(shots, rng)
        measured = list(self.circuit.measured_qubits)
        return reference ^ fx[:, measured]

    def sample(
        self, shots: int, rng: np.random.Generator | int | None = None
    ) -> Distribution:
        return Distribution.from_bit_rows(self.sample_bits(shots, rng))
