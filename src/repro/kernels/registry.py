"""Kernel registry with runtime tier dispatch (numpy / numba / cupy).

Every hot-loop kernel is registered here under a name, with a pure-NumPy
reference implementation that is always available and optional
accelerated variants: numba-JIT (CPU, ``prange``-parallel) and CuPy
(GPU).  The active *tier* decides which variant a call dispatches to:

* ``REPRO_KERNELS`` environment variable — ``auto`` (default, best
  available), ``numpy``, ``numba`` or ``cupy`` — read once at import;
* :func:`set_kernel_tier` — the programmatic override, e.g. in tests or
  benchmarks.

Optional dependencies are *detected and probed at import time* (a tier
whose import or smoke-call fails is simply unavailable) and a requested
tier that is unavailable silently falls back to NumPy, so the library
never hard-requires numba or CuPy.  Per-kernel dispatch is lazy: a tier
that has no variant of some kernel falls back to the NumPy reference for
that kernel only.

Every :class:`Kernel` counts calls and accumulated wall-clock seconds;
:func:`counters_snapshot` / :func:`timings_since` let callers (the
``SuperSim`` execute stage) attribute per-kernel time to a run.

Correctness contract: integer/bit kernels must match the NumPy reference
bit-for-bit on every tier; float-accumulation kernels within 1e-12
(``tests/test_kernel_tiers.py`` enforces both).
"""

from __future__ import annotations

import os
import time
import warnings

#: recognised tier names, reference first
TIERS = ("numpy", "numba", "cupy")


class Kernel:
    """One named kernel: a NumPy reference plus optional tier variants.

    Calling the kernel dispatches to the active tier's variant (NumPy
    reference when the tier has none) and accumulates per-kernel call
    and wall-clock counters.
    """

    __slots__ = ("name", "impls", "calls", "seconds")

    def __init__(self, name: str):
        self.name = name
        self.impls: dict[str, object] = {}
        self.calls = 0
        self.seconds = 0.0

    def tiers(self) -> tuple[str, ...]:
        """Tiers this kernel has an implementation for (registry order)."""
        return tuple(t for t in TIERS if t in self.impls)

    def impl_for(self, tier: str):
        """The callable a given active tier would dispatch to."""
        return self.impls.get(tier) or self.impls["numpy"]

    def __call__(self, *args, **kwargs):
        impl = self.impls.get(_ACTIVE) or self.impls["numpy"]
        start = time.perf_counter()
        try:
            return impl(*args, **kwargs)
        except Exception as exc:
            reference = self.impls["numpy"]
            if impl is reference:
                raise
            # An accelerated variant faulted (JIT failure, device error,
            # driver loss).  Re-run on the NumPy reference: if that also
            # raises, the inputs were bad — propagate the original error
            # and keep the variant; if it succeeds, the variant itself is
            # broken — demote this kernel to NumPy for the rest of the
            # process and record the demotion for fault reports.
            try:
                value = reference(*args, **kwargs)
            except Exception:
                raise exc from None
            _demote(self, _ACTIVE, exc)
            return value
        finally:
            self.seconds += time.perf_counter() - start
            self.calls += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Kernel {self.name!r} tiers={self.tiers()}>"


_KERNELS: dict[str, Kernel] = {}

#: per-process log of (kernel name, tier, error repr) demotions, in order
_DEMOTIONS: list[tuple[str, str, str]] = []


def _demote(entry: Kernel, tier: str, exc: Exception) -> None:
    """Drop a faulting accelerated variant; future calls use NumPy."""
    entry.impls.pop(tier, None)
    _DEMOTIONS.append((entry.name, tier, f"{type(exc).__name__}: {exc}"))
    warnings.warn(
        f"kernel {entry.name!r} {tier} variant faulted "
        f"({type(exc).__name__}: {exc}); demoted to the NumPy reference "
        "for the rest of this process",
        RuntimeWarning,
        stacklevel=3,
    )


def demotions() -> tuple[tuple[str, str, str], ...]:
    """Accelerated-variant demotions so far: (kernel, tier, error) tuples.

    Callers that want only *new* demotions (the ``SuperSim`` execute
    stage attributing them to one run's fault report) snapshot
    ``len(demotions())`` before and slice after.
    """
    return tuple(_DEMOTIONS)


def kernel(name: str):
    """Decorator: register ``fn`` as the NumPy reference of kernel ``name``.

    Returns the :class:`Kernel` dispatcher (not the bare function), so the
    decorated name is directly callable with tier dispatch.
    """

    def decorate(fn) -> Kernel:
        entry = _KERNELS.setdefault(name, Kernel(name))
        entry.impls["numpy"] = fn
        return entry

    return decorate


def variant(name: str, tier: str):
    """Decorator: register ``fn`` as kernel ``name``'s ``tier`` variant."""
    if tier not in TIERS:
        raise ValueError(f"unknown kernel tier {tier!r} (expected one of {TIERS})")

    def decorate(fn):
        entry = _KERNELS.setdefault(name, Kernel(name))
        entry.impls[tier] = fn
        return fn

    return decorate


def get_kernel(name: str) -> Kernel:
    return _KERNELS[name]


def all_kernels() -> dict[str, Kernel]:
    """Name -> :class:`Kernel` view of the registry (live, do not mutate)."""
    return dict(_KERNELS)


# -- tier detection and selection -------------------------------------------

#: probe results: tier -> available?  (numpy is axiomatically available)
_DETECTED: dict[str, bool] = {"numpy": True}


def _probe_numba() -> bool:
    """Import numba and smoke-compile a trivial function."""
    try:
        import numba
    except Exception:
        return False
    try:
        probe = numba.njit(cache=False)(lambda v: v + 1)
        return int(probe(1)) == 2
    except Exception:  # pragma: no cover - broken numba install
        return False


def _probe_cupy() -> bool:
    """Import cupy and run one tiny op on an actual device."""
    try:
        import cupy
    except Exception:
        return False
    try:  # pragma: no cover - requires a GPU
        if cupy.cuda.runtime.getDeviceCount() < 1:
            return False
        return int(cupy.asnumpy(cupy.arange(2).sum())) == 1
    except Exception:
        return False


def available_tiers() -> tuple[str, ...]:
    """Tiers whose import-time probe succeeded (always includes numpy)."""
    return tuple(t for t in TIERS if _DETECTED.get(t))


def _resolve(requested: str) -> str:
    """Map a requested tier onto an available one (numpy as fallback)."""
    if requested == "auto":
        for candidate in ("cupy", "numba"):
            if _DETECTED.get(candidate):
                return candidate
        return "numpy"
    return requested if _DETECTED.get(requested) else "numpy"


_REQUESTED = "auto"
_ACTIVE = "numpy"


def set_kernel_tier(tier: str) -> str:
    """Select the kernel tier; returns the tier that actually activated.

    ``tier`` is ``"auto"`` or one of :data:`TIERS`.  Requesting a tier
    whose optional dependency is missing silently activates NumPy — the
    same fallback the ``REPRO_KERNELS`` environment variable gets — so
    deployment configs stay portable across hosts with and without
    accelerators.
    """
    global _REQUESTED, _ACTIVE
    if tier not in TIERS and tier != "auto":
        raise ValueError(
            f"unknown kernel tier {tier!r} (expected 'auto' or one of {TIERS})"
        )
    _REQUESTED = tier
    _ACTIVE = _resolve(tier)
    return _ACTIVE


def get_kernel_tier() -> str:
    """The *requested* tier (``auto`` until overridden)."""
    return _REQUESTED


def active_tier() -> str:
    """The tier calls actually dispatch to right now."""
    return _ACTIVE


# -- per-kernel accounting ---------------------------------------------------


def counters_snapshot() -> dict[str, tuple[int, float]]:
    """``{kernel_name: (calls, seconds)}`` cumulative since import."""
    return {name: (k.calls, k.seconds) for name, k in _KERNELS.items()}


def timings_since(
    snapshot: dict[str, tuple[int, float]],
) -> dict[str, float]:
    """Per-kernel seconds elapsed since ``snapshot`` (only kernels that ran)."""
    out: dict[str, float] = {}
    for name, entry in _KERNELS.items():
        calls0, seconds0 = snapshot.get(name, (0, 0.0))
        if entry.calls > calls0:
            out[name] = entry.seconds - seconds0
    return out


def _init_from_environment() -> None:
    """Probe optional tiers and honour ``REPRO_KERNELS`` (import-time)."""
    _DETECTED["numba"] = _probe_numba()
    _DETECTED["cupy"] = _probe_cupy()
    requested = os.environ.get("REPRO_KERNELS", "auto").strip().lower()
    if requested not in TIERS and requested != "auto":
        warnings.warn(
            f"REPRO_KERNELS={requested!r} is not one of "
            f"{('auto',) + TIERS}; using 'auto'",
            RuntimeWarning,
            stacklevel=2,
        )
        requested = "auto"
    set_kernel_tier(requested)
