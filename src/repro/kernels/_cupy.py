"""CuPy (GPU) kernel variants.

Only the kernels whose working set amortises a host↔device round-trip
get a CuPy variant: GF(2) matmul (one big GEMM), the dense einsum
contraction, and the packed bit-gather.  The row-mutating tableau
kernels (``apply_layers``, ``row_mul``) stay on the CPU tiers — their
arrays are mutated in place between Python-level layer boundaries, so a
GPU copy per layer would cost more than it saves; under the cupy tier
those kernels transparently fall back to the NumPy reference.

Results are copied back to host NumPy arrays so callers never see a
``cupy.ndarray``; the bit/integer kernels are exact and the float
contraction matches the reference within the 1e-12 accumulation
contract.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.registry import variant

try:  # pragma: no cover - exercised only on GPU hosts
    import cupy

    HAVE_CUPY = True
except ImportError:
    cupy = None
    HAVE_CUPY = False


if HAVE_CUPY:  # pragma: no cover - requires a GPU

    @variant("gf2_matmul", "cupy")
    def gf2_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        dtype = np.float32 if a.shape[1] < (1 << 24) else np.float64
        da = cupy.asarray(a, dtype=dtype)
        db = cupy.asarray(b, dtype=dtype)
        acc = da @ db
        return (cupy.asnumpy(acc).astype(np.int64) & 1).astype(bool)

    @variant("dense_contract", "cupy")
    def dense_contract(operands: list, path) -> np.ndarray:
        moved = [
            cupy.asarray(op) if isinstance(op, np.ndarray) else op
            for op in operands
        ]
        return cupy.asnumpy(cupy.einsum(*moved, optimize=path))

    @variant("bit_gather", "cupy")
    def bit_gather(
        keys: np.ndarray, srcs: np.ndarray, dsts: np.ndarray
    ) -> np.ndarray:
        dk = cupy.asarray(keys)
        out = cupy.zeros(dk.shape[0], dtype=cupy.uint64)
        one = np.uint64(1)
        for j in range(len(srcs)):
            out |= ((dk >> np.uint64(srcs[j])) & one) << np.uint64(dsts[j])
        return cupy.asnumpy(out)
