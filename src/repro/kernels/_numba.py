"""numba-JIT (CPU) kernel variants: ``prange``-parallel packed-word loops.

Every function here exists in two forms:

* a plain-Python body (always defined, importable without numba) that
  operates on the same packed uint64 arrays as the NumPy reference —
  :data:`PY_IMPLS` exposes these so the parity test suite can verify the
  *algorithms* bit-for-bit even on hosts without numba installed;
* the ``numba.njit``-compiled version of the same body, registered as
  the ``"numba"`` tier variant when numba imports cleanly.

The JIT versions compile lazily on first call (``cache=True`` persists
the machine code across processes).  Determinism: every kernel is either
embarrassingly parallel over disjoint output rows (``prange`` writes
never overlap) or sequential, so results are bit-identical to the NumPy
reference at any thread count.

All mod-4 phase arithmetic is done in uint64 with wraparound: ``2**64``
is divisible by 4, so ``(a - b) & 3`` is exact even when the subtraction
wraps.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.registry import variant

try:  # pragma: no cover - exercised only where numba is installed
    import numba
    from numba import njit, prange

    HAVE_NUMBA = True
except ImportError:
    numba = None
    HAVE_NUMBA = False
    prange = range

    def njit(*args, **kwargs):  # identity decorator: keep bodies runnable
        def decorate(fn):
            return fn

        return decorate


def _jit(**kwargs):
    """``numba.njit`` when available, identity otherwise."""
    return njit(**kwargs)


# -- popcount ----------------------------------------------------------------


def _popcount(v):
    """SWAR popcount of one uint64 word (numba has no np.bitwise_count)."""
    v = v - ((v >> 1) & 0x5555555555555555)
    v = (v & 0x3333333333333333) + ((v >> 2) & 0x3333333333333333)
    v = (v + (v >> 4)) & 0x0F0F0F0F0F0F0F0F
    v = v + (v >> 8)
    v = v + (v >> 16)
    v = v + (v >> 32)
    return v & 0x7F


_popcount_py = _popcount
if HAVE_NUMBA:  # pragma: no cover - needs numba
    _popcount = njit(inline="always", cache=True)(_popcount)


# -- fused Clifford layers (row-packed) --------------------------------------
#
# x/z: (row_words, qubits) uint64 — 64 generator rows per word; sign:
# (row_words,) uint64.  Gates within one layer touch disjoint qubit
# columns, so the inner j-loop order is irrelevant and the outer w-loop
# parallelises with no write overlap.


def _layer_cx(x, z, sign, cs, ts):
    for w in prange(x.shape[0]):
        s = sign[w]
        for j in range(cs.shape[0]):
            c = cs[j]
            t = ts[j]
            xc = x[w, c]
            zt = z[w, t]
            s ^= xc & zt & ~(x[w, t] ^ z[w, c])
            x[w, t] = x[w, t] ^ xc
            z[w, c] = z[w, c] ^ zt
        sign[w] = s


def _layer_h(x, z, sign, qs):
    for w in prange(x.shape[0]):
        s = sign[w]
        for j in range(qs.shape[0]):
            q = qs[j]
            xv = x[w, q]
            zv = z[w, q]
            s ^= xv & zv
            x[w, q] = zv
            z[w, q] = xv
        sign[w] = s


def _layer_s(x, z, sign, qs):
    for w in prange(x.shape[0]):
        s = sign[w]
        for j in range(qs.shape[0]):
            q = qs[j]
            xv = x[w, q]
            s ^= xv & z[w, q]
            z[w, q] = z[w, q] ^ xv
        sign[w] = s


def _layer_x(x, z, sign, qs):
    for w in prange(x.shape[0]):
        s = sign[w]
        for j in range(qs.shape[0]):
            s ^= z[w, qs[j]]
        sign[w] = s


def _layer_z(x, z, sign, qs):
    for w in prange(x.shape[0]):
        s = sign[w]
        for j in range(qs.shape[0]):
            s ^= x[w, qs[j]]
        sign[w] = s


def _layer_y(x, z, sign, qs):
    for w in prange(x.shape[0]):
        s = sign[w]
        for j in range(qs.shape[0]):
            q = qs[j]
            s ^= x[w, q] ^ z[w, q]
        sign[w] = s


_LAYER_PY = {
    "CX": _layer_cx,
    "H": _layer_h,
    "S": _layer_s,
    "X": _layer_x,
    "Z": _layer_z,
    "Y": _layer_y,
}
if HAVE_NUMBA:  # pragma: no cover - needs numba
    _layer_cx = njit(parallel=True, cache=True)(_layer_cx)
    _layer_h = njit(parallel=True, cache=True)(_layer_h)
    _layer_s = njit(parallel=True, cache=True)(_layer_s)
    _layer_x = njit(parallel=True, cache=True)(_layer_x)
    _layer_z = njit(parallel=True, cache=True)(_layer_z)
    _layer_y = njit(parallel=True, cache=True)(_layer_y)

_LAYER_JIT = {
    "CX": _layer_cx,
    "H": _layer_h,
    "S": _layer_s,
    "X": _layer_x,
    "Z": _layer_z,
    "Y": _layer_y,
}


def _apply_layers_with(table, layers, x, z, sign):
    for name, qarr in layers:
        fn = table[name]
        if name == "CX":
            fn(
                x,
                z,
                sign,
                np.ascontiguousarray(qarr[:, 0]),
                np.ascontiguousarray(qarr[:, 1]),
            )
        else:
            fn(x, z, sign, np.ascontiguousarray(qarr[:, 0]))


def apply_layers(layers, x, z, sign):
    """numba-tier twin of the ``apply_layers`` NumPy reference."""
    _apply_layers_with(_LAYER_JIT, layers, x, z, sign)


def apply_layers_py(layers, x, z, sign):
    """The uncompiled algorithm, for parity testing without numba."""
    _apply_layers_with(_LAYER_PY, layers, x, z, sign)


# -- row products ------------------------------------------------------------


def _row_mul_body(x, z, sign, targets, source):
    n_words = x.shape[1]
    c1 = np.uint64(0)
    for w in range(n_words):
        c1 += _popcount(x[source, w] & z[source, w])
    for i in prange(targets.shape[0]):
        t = targets[i]
        c2 = np.uint64(0)
        cross = np.uint64(0)
        c12 = np.uint64(0)
        for w in range(n_words):
            x1 = x[source, w]
            z1 = z[source, w]
            x2 = x[t, w]
            z2 = z[t, w]
            c2 += _popcount(x2 & z2)
            cross += _popcount(z1 & x2)
            nx = x1 ^ x2
            nz = z1 ^ z2
            c12 += _popcount(nx & nz)
            x[t, w] = nx
            z[t, w] = nz
        total = c1 + c2 + np.uint64(2) * cross
        # uint64 wraparound keeps the mod-4 difference exact (2^64 % 4 == 0)
        half = ((total - c12) & np.uint64(3)) >= np.uint64(2)
        sign[t] = sign[t] ^ sign[source] ^ half


row_mul_py = _row_mul_body
if HAVE_NUMBA:  # pragma: no cover - needs numba
    _row_mul_body = njit(parallel=True, cache=True)(_row_mul_body)


def row_mul(x, z, sign, targets, source):
    """numba-tier twin of the ``row_mul`` NumPy reference (in place)."""
    _row_mul_body(x, z, sign, np.ascontiguousarray(targets), source)


# -- GF(2) matmul ------------------------------------------------------------


def _gf2_body(a, b):
    m = a.shape[0]
    k = a.shape[1]
    n = b.shape[1]
    out = np.zeros((m, n), dtype=np.uint8)
    for i in prange(m):
        for l in range(k):
            if a[i, l]:
                for j in range(n):
                    out[i, j] ^= b[l, j]
    return out


gf2_body_py = _gf2_body
if HAVE_NUMBA:  # pragma: no cover - needs numba
    _gf2_body = njit(parallel=True, cache=True)(_gf2_body)


def gf2_matmul(a, b):
    """numba-tier twin of the ``gf2_matmul`` NumPy reference."""
    a8 = np.ascontiguousarray(np.asarray(a), dtype=np.uint8)
    b8 = np.ascontiguousarray(np.asarray(b), dtype=np.uint8)
    return _gf2_body(a8, b8).astype(bool)


def gf2_matmul_py(a, b):
    """The uncompiled algorithm, for parity testing without numba."""
    a8 = np.ascontiguousarray(np.asarray(a), dtype=np.uint8)
    b8 = np.ascontiguousarray(np.asarray(b), dtype=np.uint8)
    return gf2_body_py(a8, b8).astype(bool)


# -- data-plane kernels ------------------------------------------------------


def _bit_gather_body(keys, srcs, dsts):
    out = np.zeros(keys.shape[0], dtype=np.uint64)
    one = np.uint64(1)
    for i in prange(keys.shape[0]):
        kv = keys[i]
        acc = np.uint64(0)
        for j in range(srcs.shape[0]):
            acc |= ((kv >> srcs[j]) & one) << dsts[j]
        out[i] = acc
    return out


bit_gather_py = _bit_gather_body
if HAVE_NUMBA:  # pragma: no cover - needs numba
    _bit_gather_body = njit(parallel=True, cache=True)(_bit_gather_body)


def bit_gather(keys, srcs, dsts):
    """numba-tier twin of the ``bit_gather`` NumPy reference."""
    return _bit_gather_body(
        np.ascontiguousarray(keys),
        np.ascontiguousarray(srcs),
        np.ascontiguousarray(dsts),
    )


def _inverse_cdf_body(cdf, uniforms):
    # uniforms ascending and pre-scaled to cdf[-1]: a single merge scan
    # replaces per-query binary searches (O(m + shots) vs O(shots log m)),
    # clamped to the last support index exactly like the reference
    out = np.empty(uniforms.shape[0], dtype=np.int64)
    m = cdf.shape[0]
    j = 0
    for i in range(uniforms.shape[0]):
        u = uniforms[i]
        while j < m - 1 and cdf[j] <= u:
            j += 1
        out[i] = j
    return out


inverse_cdf_py = _inverse_cdf_body
if HAVE_NUMBA:  # pragma: no cover - needs numba
    _inverse_cdf_body = njit(cache=True)(_inverse_cdf_body)


def inverse_cdf_indices(cdf, uniforms):
    """numba-tier twin of the ``inverse_cdf_indices`` NumPy reference."""
    return _inverse_cdf_body(
        np.ascontiguousarray(cdf), np.ascontiguousarray(uniforms)
    )


#: pure-Python twins of every numba kernel body, keyed by kernel name —
#: the parity suite runs these against the NumPy reference on any host
PY_IMPLS = {
    "apply_layers": apply_layers_py,
    "row_mul": lambda x, z, sign, targets, source: row_mul_py(
        x, z, sign, np.ascontiguousarray(targets), source
    ),
    "gf2_matmul": gf2_matmul_py,
    "bit_gather": bit_gather_py,
    "inverse_cdf_indices": inverse_cdf_py,
}


if HAVE_NUMBA:  # pragma: no cover - needs numba
    variant("apply_layers", "numba")(apply_layers)
    variant("row_mul", "numba")(row_mul)
    variant("gf2_matmul", "numba")(gf2_matmul)
    variant("bit_gather", "numba")(bit_gather)
    variant("inverse_cdf_indices", "numba")(inverse_cdf_indices)
    # dense_contract / window_reduce stay on the NumPy reference under the
    # numba tier: einsum contraction and axis reductions already run in
    # BLAS/C, where a JIT re-implementation has nothing to win
