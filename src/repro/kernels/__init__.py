"""Runtime-dispatched kernel tier for the three hot loops.

``repro.kernels`` owns the performance-critical inner loops of the
stabilizer engine, the reconstruction contraction and the distribution
data plane.  Each kernel has a pure-NumPy reference implementation (the
correctness oracle, always available) plus optional accelerated
variants — numba-JIT (CPU, ``prange``-parallel) and CuPy (GPU) — probed
at import time and selected by the active *tier*:

>>> import repro.kernels as rk
>>> rk.active_tier()            # what calls dispatch to right now
'numpy'
>>> rk.set_kernel_tier("numba") # falls back to 'numpy' if numba absent
'numpy'

The initial tier comes from the ``REPRO_KERNELS`` environment variable
(``auto`` | ``numpy`` | ``numba`` | ``cupy``; default ``auto`` = best
available).  Missing optional dependencies are never an error: the
requested tier silently degrades to NumPy, per kernel.
"""

from __future__ import annotations

from repro.kernels import registry as _registry

# register the NumPy references first so every kernel name exists before
# the environment probe or any variant registration runs
from repro.kernels import _numpy as _numpy_impls  # noqa: F401

_registry._init_from_environment()

# accelerated variants self-register only when their dependency probes in
from repro.kernels import _numba as _numba_impls  # noqa: F401
from repro.kernels import _cupy as _cupy_impls  # noqa: F401

from repro.kernels.registry import (
    TIERS,
    Kernel,
    active_tier,
    all_kernels,
    available_tiers,
    counters_snapshot,
    demotions,
    get_kernel,
    get_kernel_tier,
    set_kernel_tier,
    timings_since,
)

# the kernel dispatchers themselves (each is a `Kernel`; calling one
# dispatches to the active tier's implementation)
apply_layers = get_kernel("apply_layers")
row_mul = get_kernel("row_mul")
gf2_matmul = get_kernel("gf2_matmul")
bit_gather = get_kernel("bit_gather")
inverse_cdf_indices = get_kernel("inverse_cdf_indices")
dense_contract = get_kernel("dense_contract")
window_reduce = get_kernel("window_reduce")

__all__ = [
    "TIERS",
    "Kernel",
    "active_tier",
    "all_kernels",
    "available_tiers",
    "counters_snapshot",
    "demotions",
    "get_kernel",
    "get_kernel_tier",
    "set_kernel_tier",
    "timings_since",
    "apply_layers",
    "row_mul",
    "gf2_matmul",
    "bit_gather",
    "inverse_cdf_indices",
    "dense_contract",
    "window_reduce",
]
