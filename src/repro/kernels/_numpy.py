"""Pure-NumPy reference implementations of every registered kernel.

These are the always-available tier and the correctness oracle: the
numba and CuPy variants must match them bit-for-bit on integer/bit
kernels and within 1e-12 on float accumulation.  The bodies here are the
hot loops that previously lived inline in ``repro.stabilizer.tableau``,
``repro.analysis.distributions`` and ``repro.core.reconstruction``; the
call sites now go through the registry so an accelerated tier can take
over at runtime.

This module must import nothing from the rest of ``repro`` (the hot-loop
modules import the kernels, not the other way around).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.registry import kernel

_ONE = np.uint64(1)


@kernel("apply_layers")
def apply_layers(layers, x, z, sign) -> None:
    """Apply fused Clifford layers to row-packed ``x``/``z``/``sign`` in place.

    Every array packs 64 generator rows per word (``x``/``z`` shape
    ``(row_words, qubits)``, ``sign`` shape ``(row_words,)``), so a layer
    of L gates is a handful of bitwise ops on ``(words, L)`` column
    gathers — per-gate Python dispatch disappears and 64 rows advance per
    machine word.
    """
    for name, qarr in layers:
        if name == "CX":
            cs, ts = qarr[:, 0], qarr[:, 1]
            xc = x[:, cs]
            zt = z[:, ts]
            sign ^= np.bitwise_xor.reduce(
                xc & zt & ~(x[:, ts] ^ z[:, cs]), axis=1
            )
            x[:, ts] ^= xc
            z[:, cs] ^= zt
            continue
        qs = qarr[:, 0]
        if name == "H":
            xs = x[:, qs]
            zs = z[:, qs]
            sign ^= np.bitwise_xor.reduce(xs & zs, axis=1)
            x[:, qs] = zs
            z[:, qs] = xs
        elif name == "S":
            xs = x[:, qs]
            sign ^= np.bitwise_xor.reduce(xs & z[:, qs], axis=1)
            z[:, qs] ^= xs
        elif name == "X":
            sign ^= np.bitwise_xor.reduce(z[:, qs], axis=1)
        elif name == "Z":
            sign ^= np.bitwise_xor.reduce(x[:, qs], axis=1)
        elif name == "Y":
            sign ^= np.bitwise_xor.reduce(x[:, qs] ^ z[:, qs], axis=1)
        else:  # pragma: no cover - compiler emits only the names above
            raise AssertionError(f"unknown layer gate {name!r}")


@kernel("row_mul")
def row_mul(x, z, sign, targets, source) -> None:
    """Row_t <- Row_s * Row_t for every t in ``targets`` (word-parallel).

    ``x``/``z`` are qubit-packed ``(rows, words)`` uint64, ``sign`` one
    bool per row; symbolic sign bits are the caller's business.  Phases:
    with rows R = (-1)^s i^(x.z) X^x Z^z, the product phase exponent
    (power of i) is ``t = x1.z1 + x2.z2 + 2*(z1.x2) + 2*s1 + 2*s2`` and
    the result sign is ``(t - x12.z12)/2 mod 2``; all dot products are
    word-wide popcounts.  ``source`` must not appear in ``targets``.
    """
    x1, z1 = x[source], z[source]
    x2, z2 = x[targets], z[targets]
    # popcount rows via `bitwise_count(...) @ ones8`: a uint8 matmul is
    # several times faster than .sum(axis=1), and the mod-256 wraparound
    # is harmless because every consumer reduces mod 4 or mod 2
    ones = np.ones(x.shape[1], dtype=np.uint8)
    c1 = int(np.bitwise_count(x1 & z1).sum()) & 3
    c2 = np.bitwise_count(x2 & z2) @ ones
    cross = np.bitwise_count(z1[None, :] & x2) @ ones
    new_x = x2 ^ x1[None, :]
    new_z = z2 ^ z1[None, :]
    c12 = np.bitwise_count(new_x & new_z) @ ones
    # uint8 arithmetic wraps mod 256, which preserves the mod-4 phase
    total = c1 + c2 + 2 * cross
    half = ((total - c12) % 4) >= 2
    sign[targets] = sign[targets] ^ sign[source] ^ half
    x[targets] = new_x
    z[targets] = new_z


@kernel("gf2_matmul")
def gf2_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(a @ b) mod 2`` of two 0/1 matrices, exactly, through BLAS.

    Integer matmuls never hit BLAS in NumPy (they run as naive C loops),
    which made this the hot spot of batch sampling.  A float GEMM is
    bit-exact here: every accumulated sum is an integer bounded by the
    inner dimension, well inside float32's 2^24 exact-integer range
    (float64 beyond that), and the parity is taken after the product.
    """
    dtype = np.float32 if a.shape[1] < (1 << 24) else np.float64
    acc = a.astype(dtype) @ b.astype(dtype)
    return (acc.astype(np.int64) & 1).astype(bool)


@kernel("bit_gather")
def bit_gather(
    keys: np.ndarray, srcs: np.ndarray, dsts: np.ndarray
) -> np.ndarray:
    """Gather bits out of packed uint64 keys into new packed keys.

    ``out[i] = OR_j ((keys[i] >> srcs[j]) & 1) << dsts[j]`` — the
    marginalisation primitive: each kept bit position moves from its
    source shift to its destination shift.
    """
    out = np.zeros(len(keys), dtype=np.uint64)
    for j in range(len(srcs)):
        out |= ((keys >> srcs[j]) & _ONE) << dsts[j]
    return out


@kernel("inverse_cdf_indices")
def inverse_cdf_indices(cdf: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
    """Side-right binary search of sorted ``uniforms`` against a CDF.

    ``uniforms`` must be ascending and pre-scaled to ``cdf[-1]``; the
    result is clamped to the last support index so a uniform that rounds
    up to exactly the total mass cannot index past the support.
    """
    idx = np.searchsorted(cdf, uniforms, side="right")
    return np.minimum(idx, len(cdf) - 1)


@kernel("dense_contract")
def dense_contract(operands: list, path) -> np.ndarray:
    """One multi-operand einsum in interleaved form with a precomputed path.

    ``operands`` is the interleaved ``[tensor, subscript, tensor,
    subscript, ..., out_subscript]`` list and ``path`` the
    ``np.einsum_path`` result for exactly these shapes (the caller
    memoizes it — see ``repro.core.reconstruction``).
    """
    return np.einsum(*operands, optimize=path)


@kernel("window_reduce")
def window_reduce(tensor: np.ndarray, axes, bits) -> np.ndarray:
    """Sum out / pin a sequence of axes of a dense fragment tensor.

    ``axes`` lists absolute axis indices in strictly descending order (so
    earlier indices stay valid as axes disappear); ``bits[i] < 0`` sums
    axis ``axes[i]`` out, otherwise the axis is sliced at ``bits[i]``.
    """
    for axis, bit in zip(axes, bits):
        if bit < 0:
            tensor = tensor.sum(axis=axis)
        else:
            tensor = np.take(tensor, int(bit), axis=axis)
    return tensor
