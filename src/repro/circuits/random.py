"""Random circuit generators.

Used by the Fig. 1 benchmark (random Clifford circuits with depth equal to
width) and by the property-based test suite.
"""

from __future__ import annotations

import numpy as np

from repro.circuits import gates
from repro.circuits.circuit import Circuit

_ONE_QUBIT_POOL = gates.ONE_QUBIT_CLIFFORD_GATES
_TWO_QUBIT_POOL = (gates.CX, gates.CZ, gates.SWAP, gates.CY)


def _as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def random_clifford_circuit(
    n_qubits: int,
    depth: int,
    rng: np.random.Generator | int | None = None,
    two_qubit_fraction: float = 0.5,
) -> Circuit:
    """A random Clifford circuit with ``depth`` layers.

    Each layer pairs up a random subset of qubits with random two-qubit
    Clifford gates and dresses the rest with random one-qubit Cliffords,
    mirroring the random circuits in the paper's Fig. 1.
    """
    rng = _as_rng(rng)
    circuit = Circuit(n_qubits)
    for _ in range(depth):
        order = rng.permutation(n_qubits)
        i = 0
        while i < n_qubits:
            if i + 1 < n_qubits and rng.random() < two_qubit_fraction:
                gate = _TWO_QUBIT_POOL[rng.integers(len(_TWO_QUBIT_POOL))]
                circuit.append(gate, int(order[i]), int(order[i + 1]))
                i += 2
            else:
                gate = _ONE_QUBIT_POOL[rng.integers(len(_ONE_QUBIT_POOL))]
                if gate.name != "I":
                    circuit.append(gate, int(order[i]))
                i += 1
    return circuit


def inject_t_gates(
    circuit: Circuit,
    count: int = 1,
    rng: np.random.Generator | int | None = None,
) -> Circuit:
    """Insert ``count`` T gates at uniformly random circuit locations.

    This is the paper's benchmark construction: a Clifford base circuit with
    "one randomly injected T gate" (Figs. 3-7).  The insertion point is a
    uniformly random (position, qubit) pair.
    """
    rng = _as_rng(rng)
    out = circuit.copy()
    for _ in range(count):
        position = int(rng.integers(len(out.ops) + 1))
        qubit = int(rng.integers(out.n_qubits))
        out.ops.insert(position, _t_operation(qubit))
    return out


def _t_operation(qubit: int):
    from repro.circuits.circuit import Operation

    return Operation(gates.T, (qubit,))


def random_near_clifford_circuit(
    n_qubits: int,
    depth: int,
    num_non_clifford: int = 1,
    rng: np.random.Generator | int | None = None,
) -> Circuit:
    """Random Clifford circuit with ``num_non_clifford`` injected T gates."""
    rng = _as_rng(rng)
    base = random_clifford_circuit(n_qubits, depth, rng)
    return inject_t_gates(base, num_non_clifford, rng)
