"""Gate definitions.

A :class:`Gate` couples a unitary matrix with a name, optional parameters,
and two derived facts used throughout the framework:

* ``is_clifford`` — detected *numerically* by checking that conjugation of
  every Pauli-group generator stays inside the Pauli group, so parameterised
  gates (e.g. ``ZPow(0.5)``) are classified correctly;
* ``stabilizer_decomposition()`` — a rewrite into the {H, S, CX} generator
  set consumed by the tableau and CH-form simulators.

Qubit-ordering convention: qubit 0 is the most significant bit of the
matrix index (big-endian), matching :meth:`PauliString.to_matrix`.
"""

from __future__ import annotations

import cmath
import math
from typing import Sequence

import numpy as np

_SQ2 = math.sqrt(2.0)

_I2 = np.eye(2, dtype=complex)
_XM = np.array([[0, 1], [1, 0]], dtype=complex)
_YM = np.array([[0, -1j], [1j, 0]], dtype=complex)
_ZM = np.array([[1, 0], [0, -1]], dtype=complex)
_HM = np.array([[1, 1], [1, -1]], dtype=complex) / _SQ2
_SM = np.diag([1, 1j]).astype(complex)
_PAULI_1Q = {"I": _I2, "X": _XM, "Y": _YM, "Z": _ZM}

# decompositions into (name, wires) with names in {"H", "S", "CX"},
# applied in circuit order (left gate first)
_DECOMPOSITIONS: dict[str, list[tuple[str, tuple[int, ...]]]] = {
    "I": [],
    "H": [("H", (0,))],
    "S": [("S", (0,))],
    "SDG": [("S", (0,))] * 3,
    "Z": [("S", (0,))] * 2,
    "X": [("H", (0,)), ("S", (0,)), ("S", (0,)), ("H", (0,))],
    "Y": [("S", (0,))] * 2 + [("H", (0,)), ("S", (0,)), ("S", (0,)), ("H", (0,))],
    "SX": [("H", (0,)), ("S", (0,)), ("H", (0,))],
    "SXDG": [("H", (0,)), ("S", (0,)), ("S", (0,)), ("S", (0,)), ("H", (0,))],
    "CX": [("CX", (0, 1))],
    "CZ": [("H", (1,)), ("CX", (0, 1)), ("H", (1,))],
    "CY": [("S", (1,)), ("S", (1,)), ("S", (1,)), ("CX", (0, 1)), ("S", (1,))],
    "SWAP": [("CX", (0, 1)), ("CX", (1, 0)), ("CX", (0, 1))],
}


def _kron_all(mats: Sequence[np.ndarray]) -> np.ndarray:
    out = np.array([[1.0 + 0j]])
    for m in mats:
        out = np.kron(out, m)
    return out


def _pauli_basis(num_qubits: int):
    """Yield (label, matrix) over the full Pauli basis on ``num_qubits``."""
    labels = ["I", "X", "Y", "Z"]
    if num_qubits == 1:
        for a in labels:
            yield a, _PAULI_1Q[a]
        return
    for a in labels:
        for rest_label, rest in _pauli_basis(num_qubits - 1):
            yield a + rest_label, np.kron(_PAULI_1Q[a], rest)


def _matrix_is_clifford(matrix: np.ndarray, num_qubits: int) -> bool:
    """Check U P U^dag is a (phased) Pauli for every generator P."""
    dim = 2**num_qubits
    generators = []
    for q in range(num_qubits):
        for m in (_XM, _ZM):
            factors = [_I2] * num_qubits
            factors[q] = m
            generators.append(_kron_all(factors))
    basis = list(_pauli_basis(num_qubits))
    for gen in generators:
        image = matrix @ gen @ matrix.conj().T
        nonzero = 0
        for _, p in basis:
            coeff = np.trace(p.conj().T @ image) / dim
            if abs(coeff) > 1e-9:
                nonzero += 1
                if abs(abs(coeff) - 1.0) > 1e-9:
                    return False
        if nonzero != 1:
            return False
    return True


class Gate:
    """An immutable quantum gate (unitary + metadata)."""

    __slots__ = ("name", "params", "num_qubits", "_matrix", "_is_clifford")

    def __init__(
        self,
        name: str,
        matrix: np.ndarray,
        params: tuple[float, ...] = (),
        is_clifford: bool | None = None,
    ):
        matrix = np.asarray(matrix, dtype=complex)
        dim = matrix.shape[0]
        if matrix.shape != (dim, dim) or dim & (dim - 1):
            raise ValueError("gate matrix must be square with power-of-2 size")
        if not np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-9):
            raise ValueError(f"gate {name!r} matrix is not unitary")
        self.name = name
        self.params = tuple(float(p) for p in params)
        self.num_qubits = dim.bit_length() - 1
        self._matrix = matrix
        self._matrix.setflags(write=False)
        self._is_clifford = is_clifford

    @property
    def matrix(self) -> np.ndarray:
        return self._matrix

    @property
    def is_clifford(self) -> bool:
        if self._is_clifford is None:
            self._is_clifford = _matrix_is_clifford(self._matrix, self.num_qubits)
        return self._is_clifford

    def stabilizer_decomposition(self) -> list[tuple[str, tuple[int, ...]]]:
        """Rewrite into {H, S, CX} gates (circuit order, wire indices).

        Raises ``ValueError`` for non-Clifford gates.
        """
        if self.name in _DECOMPOSITIONS:
            return list(_DECOMPOSITIONS[self.name])
        if self.name in ("ZP", "XP", "YP") and self.is_clifford:
            t = self.params[0] % 2.0
            steps = round(t / 0.5)
            s_chain = [("S", (0,))] * (steps % 4)
            if self.name == "ZP":
                return s_chain
            if self.name == "XP":
                return [("H", (0,))] + s_chain + [("H", (0,))]
            # YP: Y^t = S X^t Sdg, circuit order [SDG, H, S^k, H, S]
            return (
                [("S", (0,))] * 3
                + [("H", (0,))]
                + s_chain
                + [("H", (0,))]
                + [("S", (0,))]
            )
        if self.name == "CZP" and self.is_clifford:
            if round(self.params[0]) % 2 == 0:
                return []
            return list(_DECOMPOSITIONS["CZ"])
        if self.name == "ZZP" and self.is_clifford:
            # exp(-i pi t/2 Z x Z) up to phase: diag(1, w, w, 1) with
            # w = e^{i pi t}; Clifford t: decompose via CX . ZP(t)_1 . CX
            t = self.params[0] % 2.0
            steps = round(t / 0.5) % 4
            return (
                [("CX", (0, 1))]
                + [("S", (1,))] * steps
                + [("CX", (0, 1))]
            )
        if not self.is_clifford:
            raise ValueError(f"gate {self.name!r} is not Clifford")
        raise ValueError(
            f"no stabilizer decomposition registered for Clifford gate {self.name!r}"
        )

    def inverse(self) -> "Gate":
        inverses = {
            "S": "SDG",
            "SDG": "S",
            "T": "TDG",
            "TDG": "T",
            "SX": "SXDG",
            "SXDG": "SX",
        }
        if self.name in inverses:
            return Gate(
                inverses[self.name],
                self._matrix.conj().T,
                is_clifford=self._is_clifford,
            )
        if np.allclose(self._matrix, self._matrix.conj().T, atol=1e-12):
            return self
        if self.name in ("ZP", "XP", "YP", "ZZP"):
            return _pow_gate(self.name, -self.params[0])
        return Gate(
            self.name + "_DG", self._matrix.conj().T, self.params,
            is_clifford=self._is_clifford,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gate):
            return NotImplemented
        return self.name == other.name and self.params == other.params

    def __hash__(self) -> int:
        return hash((self.name, self.params))

    def __repr__(self) -> str:
        if self.params:
            args = ", ".join(f"{p:g}" for p in self.params)
            return f"{self.name}({args})"
        return self.name


# -- fixed gates -----------------------------------------------------------

I = Gate("I", _I2, is_clifford=True)
X = Gate("X", _XM, is_clifford=True)
Y = Gate("Y", _YM, is_clifford=True)
Z = Gate("Z", _ZM, is_clifford=True)
H = Gate("H", _HM, is_clifford=True)
S = Gate("S", _SM, is_clifford=True)
SDG = Gate("SDG", _SM.conj().T, is_clifford=True)
T = Gate("T", np.diag([1, cmath.exp(1j * math.pi / 4)]), is_clifford=False)
TDG = Gate("TDG", np.diag([1, cmath.exp(-1j * math.pi / 4)]), is_clifford=False)
SX = Gate("SX", _HM @ _SM @ _HM, is_clifford=True)
SXDG = Gate("SXDG", _HM @ _SM.conj().T @ _HM, is_clifford=True)

CX = Gate(
    "CX",
    np.array(
        [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
    ),
    is_clifford=True,
)
CY = Gate(
    "CY",
    np.array(
        [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, -1j], [0, 0, 1j, 0]], dtype=complex
    ),
    is_clifford=True,
)
CZ = Gate("CZ", np.diag([1, 1, 1, -1]).astype(complex), is_clifford=True)
SWAP = Gate(
    "SWAP",
    np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
    ),
    is_clifford=True,
)

#: All named single-qubit Clifford gates (useful for random circuits).
ONE_QUBIT_CLIFFORD_GATES = (I, X, Y, Z, H, S, SDG, SX, SXDG)


# -- parameterised gates -----------------------------------------------------


def _pow_gate(name: str, t: float) -> Gate:
    t = float(t)
    w = cmath.exp(1j * math.pi * t)
    if name == "ZP":
        matrix = np.diag([1, w]).astype(complex)
    elif name == "XP":
        matrix = _HM @ np.diag([1, w]) @ _HM
    elif name == "YP":
        v = _SM @ _HM
        matrix = v @ np.diag([1, w]) @ v.conj().T
    elif name == "ZZP":
        matrix = np.diag([1, w, w, 1]).astype(complex)
    elif name == "CZP":
        matrix = np.diag([1, 1, 1, w]).astype(complex)
    else:  # pragma: no cover - internal
        raise ValueError(name)
    if name == "CZP":
        # controlled-phase: Clifford only at full Z (t integer)
        clifford = abs(t - round(t)) < 1e-12
    else:
        clifford = abs((t * 2) - round(t * 2)) < 1e-12
    return Gate(name, matrix, params=(t,), is_clifford=clifford)


def ZPow(t: float) -> Gate:
    """``Z**t = diag(1, exp(i pi t))``; Clifford iff ``t`` is a multiple of 1/2.

    ``ZPow(0.25)`` is the T gate (up to name), ``ZPow(0.5)`` is S.
    """
    return _pow_gate("ZP", t)


def XPow(t: float) -> Gate:
    """``X**t`` (conjugate of ZPow by Hadamard)."""
    return _pow_gate("XP", t)


def YPow(t: float) -> Gate:
    """``Y**t``."""
    return _pow_gate("YP", t)


def ZZPow(t: float) -> Gate:
    """Ising coupling ``diag(1, w, w, 1)``, ``w = exp(i pi t)``.

    Equals ``exp(-i (pi t / 2) Z x Z)`` up to global phase; Clifford iff
    ``t`` is a multiple of 1/2.
    """
    return _pow_gate("ZZP", t)


def CZPow(t: float) -> Gate:
    """Controlled phase ``diag(1, 1, 1, exp(i pi t))``.

    ``CZPow(1)`` is CZ; other exponents are non-Clifford (QFT's workhorse).
    """
    return _pow_gate("CZP", t)


def Rz(theta: float) -> Gate:
    """Standard rotation ``exp(-i theta Z / 2)`` (differs from ZPow by phase)."""
    return Gate(
        "RZ",
        np.diag([cmath.exp(-1j * theta / 2), cmath.exp(1j * theta / 2)]),
        params=(theta,),
    )
