"""ASCII circuit diagrams (Cirq-style, simplified).

``text_diagram(circuit)`` renders operations in depth-ordered columns::

    0: -H-@-----
          |
    1: ---X-T-M
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit

_SYMBOLS = {
    "CX": ("@", "X"),
    "CY": ("@", "Y"),
    "CZ": ("@", "@"),
    "SWAP": ("x", "x"),
}


def _gate_label(gate, wire: int) -> str:
    if gate.name in _SYMBOLS:
        return _SYMBOLS[gate.name][wire]
    if gate.params:
        return f"{gate.name}({gate.params[0]:g})"
    return gate.name


def text_diagram(circuit: Circuit) -> str:
    """Render the circuit as fixed-width ASCII art."""
    n = circuit.n_qubits
    # column assignment by depth layering
    level = [0] * n
    columns: list[list] = []
    for op in circuit.ops:
        col = max(level[q] for q in op.qubits)
        for q in op.qubits:
            level[q] = col + 1
        while len(columns) <= col:
            columns.append([])
        columns[col].append(op)

    show_measure = circuit.has_explicit_measurements or bool(circuit.ops)
    wire_rows = [f"{q}: " for q in range(n)]
    pad = max(len(r) for r in wire_rows) if wire_rows else 0
    wire_rows = [r.ljust(pad) for r in wire_rows]
    gap_rows = [" " * pad for _ in range(max(0, n - 1))]

    for column in columns:
        labels: dict[int, str] = {}
        spans: list[tuple[int, int]] = []
        for op in column:
            for w, q in enumerate(op.qubits):
                labels[q] = _gate_label(op.gate, w)
            lo, hi = min(op.qubits), max(op.qubits)
            if hi > lo:
                spans.append((lo, hi))
        width = max(len(s) for s in labels.values())
        for q in range(n):
            symbol = labels.get(q, "")
            cell = symbol.center(width, "-") if symbol else "-" * width
            wire_rows[q] += "-" + cell
        for g in range(n - 1):
            # vertical connector between wires g and g+1
            connected = any(lo <= g < hi for lo, hi in spans)
            mark = "|" if connected else " "
            gap_rows[g] += " " + mark.center(width)

    if show_measure:
        for q in range(n):
            mark = "M" if q in circuit.measured_qubits else "-"
            wire_rows[q] += f"-{mark}"
        for g in range(n - 1):
            gap_rows[g] += "  "

    lines = []
    for q in range(n):
        lines.append(wire_rows[q])
        if q < n - 1:
            lines.append(gap_rows[q])
    return "\n".join(line.rstrip() for line in lines)
