"""Quantum circuit intermediate representation.

A :class:`Circuit` is an ordered list of gate :class:`Operation`s on integer
qubits ``0 .. n-1``, plus an optional set of *terminally measured* qubits
(computational basis).  Terminal-only measurement matches the circuit-cutting
model of the paper: circuit outputs are always measured in the Z basis, and
mid-circuit measurement never occurs inside fragments.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.circuits.gates import Gate


class Operation:
    """A gate applied to a tuple of distinct qubits."""

    __slots__ = ("gate", "qubits")

    def __init__(self, gate: Gate, qubits: Sequence[int]):
        qubits = tuple(int(q) for q in qubits)
        if len(qubits) != gate.num_qubits:
            raise ValueError(
                f"{gate!r} acts on {gate.num_qubits} qubits, got {qubits}"
            )
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"repeated qubit in {qubits}")
        self.gate = gate
        self.qubits = qubits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Operation):
            return NotImplemented
        return self.gate == other.gate and self.qubits == other.qubits

    def __hash__(self) -> int:
        return hash((self.gate, self.qubits))

    def __repr__(self) -> str:
        return f"{self.gate!r}{list(self.qubits)}"


class Circuit:
    """An n-qubit circuit: gate operations plus terminal measurements."""

    def __init__(self, n_qubits: int, operations: Iterable[Operation] = ()):
        if n_qubits < 0:
            raise ValueError("n_qubits must be non-negative")
        self.n_qubits = int(n_qubits)
        self.ops: list[Operation] = []
        self._measured: tuple[int, ...] | None = None
        for op in operations:
            self._check(op)
            self.ops.append(op)

    def _check(self, op: Operation) -> None:
        if any(q < 0 or q >= self.n_qubits for q in op.qubits):
            raise ValueError(
                f"operation {op!r} out of range for {self.n_qubits} qubits"
            )

    # -- construction ------------------------------------------------------

    def append(self, gate: Gate, *qubits: int) -> "Circuit":
        """Append ``gate`` on ``qubits``; returns self for chaining."""
        op = Operation(gate, qubits)
        self._check(op)
        self.ops.append(op)
        return self

    def extend(self, ops: Iterable[Operation]) -> "Circuit":
        for op in ops:
            self._check(op)
            self.ops.append(op)
        return self

    def measure(self, qubits: Sequence[int]) -> "Circuit":
        """Mark qubits as terminally measured (computational basis)."""
        qubits = tuple(sorted(int(q) for q in qubits))
        if any(q < 0 or q >= self.n_qubits for q in qubits):
            raise ValueError("measurement qubit out of range")
        if len(set(qubits)) != len(qubits):
            raise ValueError("repeated measurement qubit")
        self._measured = qubits
        return self

    def measure_all(self) -> "Circuit":
        return self.measure(range(self.n_qubits))

    @property
    def measured_qubits(self) -> tuple[int, ...]:
        """Terminally measured qubits; defaults to all qubits."""
        if self._measured is None:
            return tuple(range(self.n_qubits))
        return self._measured

    @property
    def has_explicit_measurements(self) -> bool:
        return self._measured is not None

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    def __getitem__(self, index):
        if isinstance(index, slice):
            sub = Circuit(self.n_qubits, self.ops[index])
            return sub
        return self.ops[index]

    @property
    def is_clifford(self) -> bool:
        """True when every gate in the circuit is a Clifford gate."""
        return all(op.gate.is_clifford for op in self.ops)

    @property
    def non_clifford_indices(self) -> list[int]:
        """Positions of the non-Clifford operations."""
        return [i for i, op in enumerate(self.ops) if not op.gate.is_clifford]

    @property
    def num_non_clifford(self) -> int:
        return len(self.non_clifford_indices)

    @property
    def depth(self) -> int:
        """Circuit depth: longest chain of operations sharing qubits."""
        level = [0] * self.n_qubits
        for op in self.ops:
            new = max(level[q] for q in op.qubits) + 1
            for q in op.qubits:
                level[q] = new
        return max(level, default=0)

    def gate_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for op in self.ops:
            counts[op.gate.name] = counts.get(op.gate.name, 0) + 1
        return counts

    # -- transformations -----------------------------------------------------

    def copy(self) -> "Circuit":
        out = Circuit(self.n_qubits, self.ops)
        out._measured = self._measured
        return out

    def __add__(self, other: "Circuit") -> "Circuit":
        if other.n_qubits != self.n_qubits:
            raise ValueError("qubit count mismatch")
        out = Circuit(self.n_qubits, self.ops + other.ops)
        out._measured = other._measured if other._measured is not None else self._measured
        return out

    def inverse(self) -> "Circuit":
        """The inverse circuit (measurements dropped)."""
        out = Circuit(self.n_qubits)
        for op in reversed(self.ops):
            out.append(op.gate.inverse(), *op.qubits)
        return out

    def map_qubits(self, mapping: dict[int, int], n_qubits: int) -> "Circuit":
        """Relabel qubits; ``mapping[old] = new`` must cover every used qubit."""
        out = Circuit(n_qubits)
        for op in self.ops:
            out.append(op.gate, *(mapping[q] for q in op.qubits))
        if self._measured is not None:
            out.measure([mapping[q] for q in self._measured])
        return out

    # -- dense matrix (small circuits / tests) --------------------------------

    def unitary(self) -> np.ndarray:
        """Dense unitary of the gate part (qubit 0 = most significant bit)."""
        n = self.n_qubits
        if n > 12:
            raise ValueError("unitary() limited to 12 qubits")
        from repro._tensor import apply_matrix_to_axes

        dim = 2**n
        state = np.eye(dim, dtype=complex).reshape((2,) * n + (dim,))
        for op in self.ops:
            state = apply_matrix_to_axes(state, op.gate.matrix, op.qubits)
        return state.reshape(dim, dim)

    def __repr__(self) -> str:
        meas = f", measure={list(self.measured_qubits)}" if self._measured else ""
        return f"Circuit({self.n_qubits} qubits, {len(self.ops)} ops{meas})"
