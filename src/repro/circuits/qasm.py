"""OpenQASM 2.0 export.

``to_qasm(circuit)`` emits a program equal to the circuit up to global
phase (QASM's ``rz``/``rx``/``ry`` differ from the ZPow/XPow/YPow family by
a phase that no measurement can observe).
"""

from __future__ import annotations

import math

from repro.circuits.circuit import Circuit

_DIRECT = {
    "I": "id",
    "X": "x",
    "Y": "y",
    "Z": "z",
    "H": "h",
    "S": "s",
    "SDG": "sdg",
    "T": "t",
    "TDG": "tdg",
    "SX": "sx",
    "CX": "cx",
    "CY": "cy",
    "CZ": "cz",
    "SWAP": "swap",
}


def _emit(op) -> list[str]:
    name = op.gate.name
    qubits = op.qubits
    args = ",".join(f"q[{q}]" for q in qubits)
    if name in _DIRECT:
        return [f"{_DIRECT[name]} {args};"]
    if name == "SXDG":
        # SXDG == H . SDG . H exactly
        q = qubits[0]
        return [f"h q[{q}];", f"sdg q[{q}];", f"h q[{q}];"]
    if name in ("ZP", "RZ"):
        theta = (
            op.gate.params[0] * math.pi
            if name == "ZP"
            else op.gate.params[0]
        )
        return [f"rz({theta!r}) {args};"]
    if name == "XP":
        return [f"rx({op.gate.params[0] * math.pi!r}) {args};"]
    if name == "YP":
        return [f"ry({op.gate.params[0] * math.pi!r}) {args};"]
    if name == "ZZP":
        theta = op.gate.params[0] * math.pi
        c, t = qubits
        return [
            f"cx q[{c}],q[{t}];",
            f"rz({theta!r}) q[{t}];",
            f"cx q[{c}],q[{t}];",
        ]
    raise ValueError(f"no QASM translation for gate {op.gate!r}")


def to_qasm(circuit: Circuit) -> str:
    """Serialise to OpenQASM 2.0 (measurements included)."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.n_qubits}];",
    ]
    measured = circuit.measured_qubits
    if measured:
        lines.append(f"creg c[{len(measured)}];")
    for op in circuit.ops:
        lines.extend(_emit(op))
    for i, q in enumerate(measured):
        lines.append(f"measure q[{q}] -> c[{i}];")
    return "\n".join(lines) + "\n"
