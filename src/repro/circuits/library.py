"""Common circuit constructions.

A small standard library used by tests, examples and benchmarks: GHZ
states, brickwork entangling layers, and the quantum Fourier transform
(whose controlled-phase towers make it a natural stress test for
Clifford+T-style simulators — its T-count grows with precision).
"""

from __future__ import annotations

from repro.circuits import gates
from repro.circuits.circuit import Circuit


def ghz_circuit(n: int) -> Circuit:
    """|0...0> + |1...1> via a Hadamard and a CX chain."""
    if n < 1:
        raise ValueError("need at least one qubit")
    circuit = Circuit(n)
    circuit.append(gates.H, 0)
    for q in range(n - 1):
        circuit.append(gates.CX, q, q + 1)
    return circuit


def brickwork_layer(circuit: Circuit, offset: int = 0, gate=None) -> Circuit:
    """Append one brickwork layer of two-qubit gates (default CZ)."""
    gate = gate or gates.CZ
    for q in range(offset % 2, circuit.n_qubits - 1, 2):
        circuit.append(gate, q, q + 1)
    return circuit


def qft_circuit(n: int, approximation_degree: int = 0) -> Circuit:
    """The quantum Fourier transform (without the final qubit reversal).

    ``approximation_degree`` drops the smallest-angle controlled phases
    (the approximate QFT); each retained ``CZPow(2^-k)`` with ``k >= 1`` is
    non-Clifford, so the exact QFT on ``n`` qubits carries
    ``(n-1)(n-2)/2 + (n-1)`` non-Clifford gates — a deliberately *bad* case
    for circuit cutting and a classic stress test for Clifford+T methods.
    """
    if n < 1:
        raise ValueError("need at least one qubit")
    circuit = Circuit(n)
    for target in range(n):
        circuit.append(gates.H, target)
        for k, control in enumerate(range(target + 1, n), start=1):
            if approximation_degree and k > n - 1 - approximation_degree:
                continue
            circuit.append(gates.CZPow(2.0**-k), control, target)
    return circuit
