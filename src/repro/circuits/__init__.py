"""Circuit intermediate representation: gates, circuits, random generators."""

from repro.circuits.circuit import Circuit, Operation
from repro.circuits.gates import (
    CX,
    CY,
    CZ,
    H,
    I,
    ONE_QUBIT_CLIFFORD_GATES,
    S,
    SDG,
    SWAP,
    SX,
    SXDG,
    T,
    TDG,
    X,
    XPow,
    Y,
    YPow,
    Z,
    ZPow,
    ZZPow,
    Gate,
    Rz,
)
from repro.circuits.diagram import text_diagram
from repro.circuits.gates import CZPow
from repro.circuits.library import brickwork_layer, ghz_circuit, qft_circuit
from repro.circuits.qasm import to_qasm
from repro.circuits.random import (
    inject_t_gates,
    random_clifford_circuit,
    random_near_clifford_circuit,
)

__all__ = [
    "Circuit",
    "Operation",
    "Gate",
    "I",
    "X",
    "Y",
    "Z",
    "H",
    "S",
    "SDG",
    "T",
    "TDG",
    "SX",
    "SXDG",
    "CX",
    "CY",
    "CZ",
    "SWAP",
    "XPow",
    "YPow",
    "ZPow",
    "ZZPow",
    "Rz",
    "ONE_QUBIT_CLIFFORD_GATES",
    "CZPow",
    "random_clifford_circuit",
    "random_near_clifford_circuit",
    "inject_t_gates",
    "ghz_circuit",
    "qft_circuit",
    "brickwork_layer",
    "text_diagram",
    "to_qasm",
]
