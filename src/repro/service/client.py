"""ServiceClient: the SuperSim surface, executed by a remote coordinator.

A client holds one connection to a coordinator and mirrors the engine's
entry points — :meth:`run`, :meth:`sweep`, :meth:`estimate`, plus the
fire-and-forget pair :meth:`submit` / :meth:`poll` — so moving a
workload onto the service is a constructor swap:

.. code-block:: python

    sim = SuperSim(sampling=SamplingConfig(shots=1000, seed=7))
    local = sim.run(circuit)

    with ServiceClient(address, sampling=SamplingConfig(shots=1000, seed=7)) as svc:
        remote = svc.run(circuit)
    # remote.distribution == local.distribution, bit for bit

Configs are pickled to the coordinator, which rebuilds the identical
engine server-side; job seeds derive from content fingerprints, so the
distributed result is bit-for-bit the local one.  A sweep materialises
its circuits client-side (the factory may close over anything) and
streams :class:`~repro.core.plan.SweepResult` records back as each
point completes.

Admission rejections surface as
:class:`~repro.errors.QuotaExceededError` with the coordinator's
``retry_after`` hint and the cost quote it was priced with; remote
failures re-raise the original engine exception when it travelled back,
falling back to :class:`~repro.errors.ServiceError`.

A client is one request at a time (the protocol is request/response per
connection); open one client per thread for concurrency — the
coordinator multiplexes server-side, and the shared cache tier is what
makes concurrent clients cheaper together than apart.

The channel is self-healing: on a dropped connection the client
reconnects with jittered exponential backoff and resends the request.
Every mutating request carries a client-generated idempotency key, so
the resend is safe — the coordinator recognises the duplicate and serves
the memoised reply (or the original ticket) instead of executing or
charging the token bucket twice.  Once the reconnect budget is spent,
:class:`~repro.errors.ConnectionLostError` surfaces.  Pass
``reconnect=False`` (or an explicit ``transport``) for fail-fast
single-channel behaviour.
"""

from __future__ import annotations

import random
import threading
import time
import uuid

from repro.core.plan import CostEstimate
from repro.errors import ConnectionLostError, QuotaExceededError, ServiceError
from repro.service.protocol import Transport, backoff_delay, connect

__all__ = ["ServiceClient"]


def _materialize(circuit_factory, params):
    """Call the sweep factory the way ``SuperSim.sweep`` would."""
    if isinstance(params, dict):
        return circuit_factory(**params)
    if isinstance(params, tuple):
        return circuit_factory(*params)
    return circuit_factory(params)


class ServiceClient:
    """A connection to a coordinator, speaking the ``SuperSim`` surface.

    ``cut`` / ``sampling`` / ``execution`` / ``reconstruction`` are the
    same config objects ``SuperSim`` takes and define the engine the
    coordinator builds for this client's requests.  ``tenant`` names the
    admission-control bucket; ``priority`` orders this client's variant
    jobs in the shared queue (lower runs first).
    """

    def __init__(
        self,
        address,
        *,
        cut=None,
        sampling=None,
        execution=None,
        reconstruction=None,
        tenant: str = "default",
        priority: int = 0,
        transport: Transport | None = None,
        connect_timeout: float = 10.0,
        reconnect: bool = True,
        max_reconnects: int = 10,
        reconnect_backoff: float = 0.25,
        reconnect_backoff_cap: float = 2.0,
        transport_factory=None,
    ):
        self.tenant = tenant
        self.priority = int(priority)
        self.cut = cut
        self.sampling = sampling
        self.execution = self._wire_safe_execution(execution)
        self.reconstruction = reconstruction
        self.address = address
        self._connect_timeout = connect_timeout
        self._transport_factory = transport_factory
        # an explicit transport is a single fixed channel: no reconnection
        self._reconnect = bool(reconnect) and transport is None
        self._max_reconnects = max(0, int(max_reconnects))
        self._reconnect_backoff = float(reconnect_backoff)
        self._reconnect_backoff_cap = float(reconnect_backoff_cap)
        self._rng = random.Random()
        self.reconnects = 0  # observable: how often the channel was rebuilt
        self._lock = threading.Lock()
        self._closed = False
        if transport is not None:
            self._transport = transport
            self._handshake()
        else:
            self._transport = None
            self._connect()

    def _connect(self) -> None:
        if self._transport_factory is not None:
            self._transport = self._transport_factory()
        else:
            self._transport = connect(
                self.address, timeout=self._connect_timeout
            )
        self._handshake()

    def _handshake(self) -> None:
        self._transport.send({"type": "hello", "role": "client"})
        welcome = self._transport.recv()
        if not welcome or welcome.get("type") != "welcome":
            raise ServiceError(
                f"coordinator refused client handshake: {welcome!r}"
            )

    def _reconnect_locked(self) -> None:
        """Rebuild the channel with jittered exponential backoff.

        Caller holds ``self._lock``.  Raises
        :class:`~repro.errors.ConnectionLostError` once the budget is
        spent — the caller's request is then genuinely undeliverable.
        """
        try:
            self._transport.close()
        except (OSError, RuntimeError):
            pass
        attempt = 0
        last_exc: BaseException | None = None
        while attempt < self._max_reconnects:
            attempt += 1
            time.sleep(
                backoff_delay(
                    attempt,
                    self._reconnect_backoff,
                    self._reconnect_backoff_cap,
                    self._rng,
                )
            )
            try:
                self._connect()
            except (ConnectionError, OSError, ServiceError) as exc:
                last_exc = exc
                continue
            self.reconnects += 1
            return
        raise ConnectionLostError(
            f"lost the coordinator at {self.address} and could not "
            f"reconnect within {self._max_reconnects} attempts"
        ) from last_exc

    @staticmethod
    def _wire_safe_execution(execution):
        """Strip config members that must not (or cannot) cross the wire.

        A cache *instance* is process-local state (and holds locks pickle
        refuses); the coordinator substitutes its shared tier regardless,
        so the spec collapses to a plain ``True``.
        """
        if execution is None:
            return None
        if execution.cache not in (True, False, None):
            execution = execution.replace(cache=True)
        return execution

    # -- plumbing ------------------------------------------------------------

    def _request_fields(self) -> dict:
        return {
            "cut": self.cut,
            "sampling": self.sampling,
            "execution": self.execution,
            "reconstruction": self.reconstruction,
            "tenant": self.tenant,
            "priority": self.priority,
        }

    def _recv(self) -> dict:
        reply = self._transport.recv()
        if reply is None:
            raise ConnectionLostError("coordinator closed the connection")
        return reply

    def _raise_reply(self, reply: dict):
        kind = reply.get("type")
        if kind == "rejected":
            estimate = reply.get("estimate")
            reason = reply.get("reason")
            detail = (
                "coordinator is draining"
                if reason == "draining"
                else "coordinator admission control rejected the request "
                     f"(cost {reply.get('cost', 0.0):.3g})"
            )
            raise QuotaExceededError(
                detail,
                retry_after=reply.get("retry_after"),
                estimate=(
                    CostEstimate.from_dict(estimate)
                    if estimate is not None
                    else None
                ),
            )
        if kind == "error":
            cause = reply.get("exception")
            if isinstance(cause, BaseException):
                raise cause
            raise ServiceError(f"request failed remotely: {reply.get('error')}")
        raise ServiceError(f"unexpected reply {kind!r}")

    def _exchange(self, message: dict) -> dict:
        """One send/recv with reconnect-and-resend.  Caller holds the lock.

        Safe to resend because every mutating request carries a
        client-generated idempotency key: the coordinator serves a
        memoised reply (or the original ticket) for a duplicate instead
        of executing or charging twice.  A ``draining`` rejection is also
        retried here — backed off, against the coordinator's successor
        once it takes over the address.
        """
        drain_retries = 0
        while True:
            try:
                self._transport.send(message)
                reply = self._recv()
            except (ConnectionError, OSError):
                if not self._reconnect or self._closed:
                    raise
                self._reconnect_locked()
                continue
            if (
                reply.get("type") == "rejected"
                and reply.get("reason") == "draining"
                and self._reconnect
                and drain_retries < self._max_reconnects
            ):
                drain_retries += 1
                time.sleep(
                    backoff_delay(
                        drain_retries,
                        max(self._reconnect_backoff,
                            float(reply.get("retry_after") or 0.0)),
                        self._reconnect_backoff_cap,
                        self._rng,
                    )
                )
                continue
            return reply

    def _roundtrip(self, message: dict, expect: str) -> dict:
        with self._lock:
            reply = self._exchange(message)
        if reply.get("type") != expect:
            self._raise_reply(reply)
        return reply

    # -- the SuperSim surface ------------------------------------------------

    def run(self, circuit, keep_qubits=None, cuts=None):
        """Remote ``SuperSim.run``: returns the ``SuperSimResult``.

        Bit-for-bit identical to a local run under the same configs;
        distributed faults the service survived (worker crashes,
        redispatches, degrade-to-local) are in ``result.faults``.
        """
        reply = self._roundtrip(
            {
                "type": "run",
                "circuit": circuit,
                "keep_qubits": keep_qubits,
                "cuts": cuts,
                "idempotency": uuid.uuid4().hex,
                **self._request_fields(),
            },
            expect="result",
        )
        return reply["result"]

    def probabilities(self, circuit):
        return self.run(circuit).distribution

    def estimate(self, circuit, keep_qubits=None, cuts=None) -> CostEstimate:
        """The coordinator's cost quote for a circuit — no admission charge."""
        reply = self._roundtrip(
            {
                "type": "estimate",
                "circuit": circuit,
                "keep_qubits": keep_qubits,
                "cuts": cuts,
                **self._request_fields(),
            },
            expect="estimate",
        )
        return CostEstimate.from_dict(reply["estimate"])

    def sweep(
        self,
        circuit_factory,
        param_grid,
        keep_qubits=None,
        reuse_cuts: bool = True,
    ):
        """Remote ``SuperSim.sweep``: yields ``SweepResult`` per point.

        Circuits are materialised client-side (the factory may close over
        local state) and executed server-side with the sweep's sharing
        semantics — adopted cuts, the service-wide variant cache, one
        engine across all points.
        """
        params = list(param_grid)
        circuits = [_materialize(circuit_factory, p) for p in params]
        if not circuits:
            return
        message = {
            "type": "sweep",
            "circuits": circuits,
            "params": params,
            "keep_qubits": keep_qubits,
            "reuse_cuts": reuse_cuts,
            "idempotency": uuid.uuid4().hex,
            **self._request_fields(),
        }
        # on a mid-stream connection loss the whole sweep is resent (the
        # idempotency key stops a second quota charge; already-computed
        # points replay as server-side cache hits) and points already
        # yielded are deduplicated by index
        seen: set[int] = set()
        drain_retries = 0
        with self._lock:
            while True:
                try:
                    self._transport.send(message)
                    while True:
                        reply = self._recv()
                        kind = reply.get("type")
                        if kind == "sweep_point":
                            point = reply["point"]
                            if point.index not in seen:
                                seen.add(point.index)
                                yield point
                        elif kind == "sweep_done":
                            return
                        elif (
                            kind == "rejected"
                            and reply.get("reason") == "draining"
                            and self._reconnect
                            and drain_retries < self._max_reconnects
                        ):
                            drain_retries += 1
                            time.sleep(
                                backoff_delay(
                                    drain_retries,
                                    max(self._reconnect_backoff,
                                        float(reply.get("retry_after") or 0.0)),
                                    self._reconnect_backoff_cap,
                                    self._rng,
                                )
                            )
                            break  # resend the sweep against the successor
                        else:
                            self._raise_reply(reply)
                except (ConnectionError, OSError):
                    if not self._reconnect or self._closed:
                        raise
                    self._reconnect_locked()

    def submit(self, circuit, keep_qubits=None, cuts=None) -> str:
        """Fire-and-forget ``run``: returns a ticket for :meth:`poll`.

        The request carries a client-generated idempotency key, so a
        resend after a dropped reply returns the *same* ticket — the
        submit neither executes twice nor is charged twice.
        """
        reply = self._roundtrip(
            {
                "type": "submit",
                "circuit": circuit,
                "keep_qubits": keep_qubits,
                "cuts": cuts,
                "idempotency": uuid.uuid4().hex,
                **self._request_fields(),
            },
            expect="submitted",
        )
        return reply["ticket"]

    def poll(self, ticket: str):
        """The submitted run's result, or ``None`` while still executing.

        Raises exactly what :meth:`run` would have once the request has
        failed or been rejected.  A delivered terminal reply is
        acknowledged back to the coordinator (best-effort) so it can
        drop the retained result; an unacknowledged ticket stays
        pollable until the coordinator's TTL expires it.
        """
        with self._lock:
            reply = self._exchange({"type": "poll", "ticket": ticket})
        kind = reply.get("type")
        if kind == "pending":
            return None
        self._ack(ticket)
        if kind == "result":
            return reply["result"]
        self._raise_reply(reply)

    def _ack(self, ticket: str) -> None:
        try:
            with self._lock:
                self._exchange({"type": "ack", "ticket": ticket})
        except (ConnectionError, OSError, ServiceError):
            pass  # best-effort: the TTL sweep covers a lost acknowledgement

    # -- service introspection ----------------------------------------------

    def stats(self) -> dict:
        """The coordinator's full stats snapshot (workers, queue, cache)."""
        return self._roundtrip({"type": "stats"}, expect="stats")["stats"]

    def cache_stats(self) -> dict:
        return self._roundtrip({"type": "cache_stats"}, expect="cache_stats")[
            "stats"
        ]

    def ping(self) -> bool:
        """Liveness probe: True iff the coordinator answered a ping."""
        try:
            reply = self._roundtrip({"type": "ping"}, expect="pong")
        except (ConnectionError, OSError, ServiceError):
            return False
        return reply.get("type") == "pong"

    def drain_coordinator(self, timeout: float = 30.0) -> dict:
        """Gracefully drain the coordinator: stop admitting, finish
        in-flight work, flush the journal.  Returns its final stats."""
        reply = self._roundtrip(
            {"type": "drain", "timeout": timeout}, expect="drained"
        )
        return reply["stats"]

    def shutdown_coordinator(self) -> None:
        """Ask the coordinator to stop (tests, demos, ops scripts)."""
        self._roundtrip({"type": "shutdown"}, expect="bye")

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._transport.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ServiceClient(tenant={self.tenant!r}, "
            f"transport={self._transport!r})"
        )
