"""The service wire protocol: framed JSON/pickle messages over a Transport.

Every message is one Python dict with a string ``"type"``.  On the wire a
message is a *frame*:

.. code-block:: text

    +-----+----------------+----------------------+
    | tag | uint32 length  |  payload (length B)  |
    +-----+----------------+----------------------+

``tag`` selects the codec — ``1`` for UTF-8 JSON (control messages:
hellos, stats, acknowledgements), ``2`` for pickle (anything carrying
engine objects: jobs, variant results, configs, circuits, exceptions).
The sender picks JSON whenever the message survives a JSON round-trip
unchanged, so the cheap messages stay language-agnostic and inspectable
on the wire while the data plane keeps full Python fidelity.  Length is
big-endian and capped (:data:`MAX_FRAME_BYTES`) so a corrupt or
malicious peer cannot make the receiver allocate unbounded memory.

Transports come in two flavours sharing the same frame format:

* :class:`TcpTransport` — a blocking socket wrapper for the synchronous
  sides (client, worker, remote cache tier).  ``send`` and ``recv`` each
  take their own lock, so one thread may stream results out while
  another reads commands.
* :func:`read_message` / :func:`write_message` — asyncio-stream helpers
  for the coordinator's event loop.

Pickle implies trust in the peer — see the package docstring; the
coordinator binds localhost by default.
"""

from __future__ import annotations

import json
import pickle
import random
import socket
import struct
import threading
from typing import Protocol, runtime_checkable

__all__ = [
    "Transport",
    "TcpTransport",
    "connect",
    "parse_address",
    "format_address",
    "encode_frame",
    "decode_payload",
    "read_message",
    "write_message",
    "backoff_delay",
    "MAX_FRAME_BYTES",
]

_TAG_JSON = 1
_TAG_PICKLE = 2
_HEADER = struct.Struct(">BI")

#: refuse frames larger than this (a wide sampled sweep point stays far
#: below it; anything bigger is a protocol error, not a workload)
MAX_FRAME_BYTES = 1 << 30


def encode_frame(message: dict) -> bytes:
    """One wire frame for ``message`` (header + payload)."""
    payload = None
    try:
        text = json.dumps(message)
        # only take the JSON path when decoding returns the same object:
        # tuples, bytes, numpy scalars etc. must fall through to pickle
        if json.loads(text) == message:
            payload = text.encode()
            tag = _TAG_JSON
    except (TypeError, ValueError):
        pass
    if payload is None:
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        tag = _TAG_PICKLE
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame cap"
        )
    return _HEADER.pack(tag, len(payload)) + payload


def decode_payload(tag: int, payload: bytes) -> dict:
    """Decode one frame's payload back into its message dict."""
    if tag == _TAG_JSON:
        message = json.loads(payload.decode())
    elif tag == _TAG_PICKLE:
        message = pickle.loads(payload)
    else:
        raise ValueError(f"unknown frame tag {tag}")
    if not isinstance(message, dict):
        raise ValueError(f"expected a message dict, got {type(message).__name__}")
    return message


def parse_address(address) -> tuple[str, int]:
    """``"host:port"`` / ``(host, port)`` -> ``(host, port)``."""
    if isinstance(address, str):
        host, _, port = address.rpartition(":")
        if not host or not port:
            raise ValueError(f"expected 'host:port', got {address!r}")
        return host, int(port)
    host, port = address
    return str(host), int(port)


def format_address(address) -> str:
    host, port = parse_address(address)
    return f"{host}:{port}"


@runtime_checkable
class Transport(Protocol):
    """A bidirectional message channel: what every service peer holds.

    ``send`` writes one message dict; ``recv`` blocks for the next one,
    returning ``None`` on orderly EOF (peer closed); ``close`` tears the
    channel down.  The TCP implementation below is the only one shipped,
    but everything above the framing — client, worker, remote cache
    tier — types against this protocol, so an in-process loopback or a
    TLS wrapper slot in without touching them.
    """

    def send(self, message: dict) -> None: ...

    def recv(self) -> dict | None: ...

    def close(self) -> None: ...


class TcpTransport:
    """Blocking socket transport for the synchronous service peers.

    Thread-safe for one reader plus any number of writers: ``send`` is
    serialised by a write lock (one frame hits the wire atomically) and
    ``recv`` by a read lock.  ``recv`` returns ``None`` when the peer
    closed the connection cleanly between frames; a close *mid*-frame
    raises ``ConnectionError`` — the distinction lets the coordinator
    tell a finished worker from a crashed one.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        try:
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - not every family supports it
            pass

    def send(self, message: dict) -> None:
        frame = encode_frame(message)
        with self._send_lock:
            self._sock.sendall(frame)

    def _read_exact(self, n: int) -> bytes | None:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                if remaining == n and not chunks:
                    return None  # clean EOF on a frame boundary
                raise ConnectionError("peer closed the connection mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self) -> dict | None:
        with self._recv_lock:
            header = self._read_exact(_HEADER.size)
            if header is None:
                return None
            tag, length = _HEADER.unpack(header)
            if length > MAX_FRAME_BYTES:
                raise ValueError(f"frame of {length} bytes exceeds the cap")
            payload = self._read_exact(length) if length else b""
            if payload is None:
                raise ConnectionError("peer closed the connection mid-frame")
        return decode_payload(tag, payload)

    def set_deadline(self, seconds: float | None) -> None:
        """Bound every blocking socket operation (``None`` = forever).

        With a deadline set, a silently dead peer (half-open socket,
        frozen process, network partition) surfaces as ``socket.timeout``
        — an ``OSError`` the reconnect loops already handle — instead of
        a hang.  The worker derives its deadline from the coordinator's
        advertised heartbeat interval.
        """
        self._sock.settimeout(seconds)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __repr__(self) -> str:
        try:
            peer = self._sock.getpeername()
            return f"TcpTransport(peer={peer[0]}:{peer[1]})"
        except OSError:
            return "TcpTransport(closed)"


def backoff_delay(
    attempt: int,
    base: float = 0.5,
    cap: float = 5.0,
    rng: random.Random | None = None,
) -> float:
    """Jittered exponential backoff for reconnect loops.

    Attempt 1, 2, 3, ... maps to ``min(cap, base * 2**(attempt-1))``
    scaled by a uniform jitter in [0.5, 1.0) — the jitter is what keeps
    a fleet of workers orphaned by one coordinator death from stampeding
    its successor in lockstep.
    """
    delay = min(float(cap), float(base) * (2.0 ** max(0, attempt - 1)))
    draw = rng.random() if rng is not None else random.random()
    return delay * (0.5 + 0.5 * draw)


def connect(address, timeout: float | None = 10.0) -> TcpTransport:
    """Open a transport to a coordinator at ``"host:port"`` / ``(host, port)``.

    ``timeout`` bounds connection establishment only; the established
    transport blocks indefinitely (results legitimately take a while).
    """
    host, port = parse_address(address)
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    return TcpTransport(sock)


# -- asyncio side (coordinator) ---------------------------------------------


async def read_message(reader) -> dict | None:
    """Read one frame from an ``asyncio.StreamReader`` (``None`` on EOF)."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ConnectionError("peer closed the connection mid-frame") from exc
    tag, length = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {length} bytes exceeds the cap")
    try:
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as exc:
        raise ConnectionError("peer closed the connection mid-frame") from exc
    return decode_payload(tag, payload)


async def write_message(writer, message: dict) -> None:
    """Write one frame to an ``asyncio.StreamWriter`` and drain."""
    writer.write(encode_frame(message))
    await writer.drain()
