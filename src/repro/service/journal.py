"""The coordinator's durable journal: accepted work survives a restart.

A coordinator without a journal loses everything a process death can
lose: submitted tickets (the client polls a fresh coordinator and gets
"unknown ticket"), completed-but-unfetched results, and every tenant's
quota bucket level (a restart would hand every tenant a free full
burst).  :class:`CoordinatorJournal` writes each of those to SQLite in
WAL mode — the same durability substrate as
:class:`~repro.backends.tiers.SQLiteCacheTier` — so a coordinator
restarted with ``--journal-db`` picks up exactly where the dead one
stopped:

* **Requests.**  Every accepted ``run`` / ``sweep`` / ``submit`` is
  recorded *before* it executes (the pickled request message, its kind,
  tenant, and the client's idempotency key when it sent one) and marked
  ``done`` when it completes, with the pickled reply retained for
  ``submit`` tickets and idempotent ``run`` requests.  On recovery,
  pending ``submit`` tickets are **re-executed** — fingerprint-derived
  job seeds make the re-run bit-for-bit identical to what the dead
  coordinator would have produced — while pending ``run`` / ``sweep``
  entries are marked ``abandoned`` (their client's reply channel died
  with the old process; the client's own reconnect-and-retry resends
  them, and the journaled idempotency key guarantees the retry is not
  charged twice).
* **Tickets.**  ``done`` replies stay journaled until the client
  acknowledges the ticket or the TTL expires, so a poll reply lost on
  the wire — or a coordinator death between completion and poll — never
  turns into "unknown ticket".
* **Quota.**  Per-tenant token-bucket levels are snapshotted on every
  admission decision.  Restoration is conservative: no refill is
  credited for the downtime, so a restart never mints tokens.

The journal is small and bounded: replies are garbage-collected by the
coordinator's TTL sweep (:meth:`expire`), and ``flush`` checkpoints the
WAL for a clean handoff on graceful drain.

All methods are thread-safe (the coordinator touches the journal from
its event loop and from request threads).
"""

from __future__ import annotations

import pickle
import threading
import time

__all__ = ["CoordinatorJournal"]


class CoordinatorJournal:
    """SQLite-backed durable state for one coordinator.

    ``path`` may be ``":memory:"`` for tests that only need the API
    surface (an in-memory journal obviously does not survive a process
    death, but it does survive a :class:`Coordinator` object's death
    when the journal instance is handed to its successor).
    """

    def __init__(self, path):
        import sqlite3

        self.path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS requests ("
            " ticket TEXT PRIMARY KEY,"
            " kind TEXT NOT NULL,"
            " tenant TEXT NOT NULL,"
            " idempotency TEXT,"
            " state TEXT NOT NULL,"
            " request BLOB,"
            " reply BLOB,"
            " created REAL NOT NULL,"
            " finished REAL)"
        )
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_requests_idem"
            " ON requests(idempotency)"
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS quota ("
            " tenant TEXT PRIMARY KEY,"
            " tokens REAL NOT NULL,"
            " admitted INTEGER NOT NULL,"
            " rejected INTEGER NOT NULL,"
            " spent REAL NOT NULL,"
            " updated REAL NOT NULL)"
        )
        self._conn.commit()

    # -- requests ------------------------------------------------------------

    def record_request(
        self,
        ticket: str,
        kind: str,
        tenant: str,
        message: dict | None = None,
        idempotency: str | None = None,
    ) -> None:
        """Journal one accepted request *before* it executes."""
        blob = (
            pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
            if message is not None
            else None
        )
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO requests"
                " (ticket, kind, tenant, idempotency, state, request, reply,"
                "  created, finished)"
                " VALUES (?, ?, ?, ?, 'pending', ?, NULL, ?, NULL)",
                (ticket, kind, tenant, idempotency, blob, time.time()),
            )
            self._conn.commit()

    def record_reply(self, ticket: str, reply: dict | None = None) -> None:
        """Mark a request ``done``; retain the reply when one is given.

        Replies are retained for ``submit`` tickets (served to late
        polls, including polls against a restarted coordinator) and for
        idempotent ``run`` requests (served to a client retry after a
        dropped reply frame).  Streamed ``sweep`` replies pass ``None``:
        only the completion is durable, not the stream.
        """
        blob = (
            pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
            if reply is not None
            else None
        )
        with self._lock:
            self._conn.execute(
                "UPDATE requests SET state = 'done', reply = ?, finished = ?"
                " WHERE ticket = ?",
                (blob, time.time(), ticket),
            )
            self._conn.commit()

    def abandon(self, ticket: str) -> None:
        """Mark a pending request whose reply channel died with the old
        coordinator; kept (until TTL) purely for idempotency lookups."""
        with self._lock:
            self._conn.execute(
                "UPDATE requests SET state = 'abandoned', finished = ?"
                " WHERE ticket = ? AND state = 'pending'",
                (time.time(), ticket),
            )
            self._conn.commit()

    def acknowledge(self, ticket: str) -> None:
        """The client confirmed receipt: the reply need not be durable."""
        with self._lock:
            self._conn.execute(
                "DELETE FROM requests WHERE ticket = ?", (ticket,)
            )
            self._conn.commit()

    def entries(self) -> list[tuple]:
        """Every journaled request, decoded:
        ``(ticket, kind, tenant, idempotency, state, message, reply)``.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT ticket, kind, tenant, idempotency, state, request,"
                " reply FROM requests ORDER BY created"
            ).fetchall()
        return [
            (
                ticket,
                kind,
                tenant,
                idempotency,
                state,
                pickle.loads(request) if request is not None else None,
                pickle.loads(reply) if reply is not None else None,
            )
            for ticket, kind, tenant, idempotency, state, request, reply in rows
        ]

    def lookup_idempotency(self, key: str) -> str | None:
        """The ticket a client idempotency key was already accepted under."""
        with self._lock:
            row = self._conn.execute(
                "SELECT ticket FROM requests WHERE idempotency = ?", (key,)
            ).fetchone()
        return row[0] if row else None

    def expire(self, ttl: float, now: float | None = None) -> int:
        """Drop finished (done/abandoned) entries older than ``ttl`` seconds.

        Pending entries never expire here — they are either executing or
        awaiting recovery, and dropping them would lose accepted work.
        """
        cutoff = (now if now is not None else time.time()) - ttl
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM requests"
                " WHERE state != 'pending' AND finished IS NOT NULL"
                " AND finished < ?",
                (cutoff,),
            )
            self._conn.commit()
        return cursor.rowcount

    # -- quota ---------------------------------------------------------------

    def save_quota(self, snapshot: dict) -> None:
        """Persist per-tenant bucket levels (an admission-time snapshot)."""
        now = time.time()
        with self._lock:
            for tenant, bucket in snapshot.items():
                self._conn.execute(
                    "INSERT OR REPLACE INTO quota"
                    " (tenant, tokens, admitted, rejected, spent, updated)"
                    " VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        tenant,
                        float(bucket["tokens"]),
                        int(bucket.get("admitted", 0)),
                        int(bucket.get("rejected", 0)),
                        float(bucket.get("spent", 0.0)),
                        now,
                    ),
                )
            self._conn.commit()

    def load_quota(self) -> dict:
        """The last saved per-tenant bucket levels."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT tenant, tokens, admitted, rejected, spent FROM quota"
            ).fetchall()
        return {
            tenant: {
                "tokens": tokens,
                "admitted": admitted,
                "rejected": rejected,
                "spent": spent,
            }
            for tenant, tokens, admitted, rejected, spent in rows
        }

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        """Commit and checkpoint the WAL (graceful-drain handoff)."""
        with self._lock:
            self._conn.commit()
            try:
                self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except Exception:  # pragma: no cover - non-WAL fallback (":memory:")
                pass

    def stats(self) -> dict:
        with self._lock:
            by_state = dict(
                self._conn.execute(
                    "SELECT state, COUNT(*) FROM requests GROUP BY state"
                ).fetchall()
            )
            tenants = self._conn.execute(
                "SELECT COUNT(*) FROM quota"
            ).fetchone()[0]
        return {
            "path": self.path,
            "pending": by_state.get("pending", 0),
            "done": by_state.get("done", 0),
            "abandoned": by_state.get("abandoned", 0),
            "quota_tenants": tenants,
        }

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __repr__(self) -> str:
        return f"CoordinatorJournal({self.path!r})"
