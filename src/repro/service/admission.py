"""Admission control: per-tenant token buckets priced in cost units.

The coordinator prices every incoming request with the engine's own
zero-simulation dry run (:meth:`ExecutionPlan.estimate`) before any
simulation is admitted — with a calibrated router the estimate's units
are approximately seconds of this machine's compute, so a quota of
``rate=2.0`` reads as "this tenant may consume about two compute-seconds
per wall-second, with bursts up to ``capacity``".

The bucket admits a request when it holds at least
``min(cost, capacity)`` tokens — a single request dearer than the whole
burst capacity would otherwise never be admittable — and then deducts
the *full* cost, letting the balance go negative: an expensive admitted
request puts the tenant in debt and throttles its follow-ups, which is
the behaviour that keeps one tenant's 61-qubit sweep from starving
everyone else's interactive runs.  A rejection carries a ``retry_after``
hint computed from the refill rate (the 429 idiom), surfaced client-side
as :class:`~repro.errors.QuotaExceededError`.

The clock is injectable so tests drive refill deterministically.
"""

from __future__ import annotations

import threading
import time

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """One tenant's budget: ``rate`` cost-units/second, burst ``capacity``."""

    def __init__(self, rate: float, capacity: float, clock=time.monotonic):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._clock = clock
        self.tokens = float(capacity)
        self._last = clock()
        self.admitted = 0
        self.rejected = 0
        self.spent = 0.0

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        self._last = now
        if elapsed > 0:
            self.tokens = min(self.capacity, self.tokens + elapsed * self.rate)

    def admit(self, cost: float) -> tuple[bool, float]:
        """Try to admit a request of ``cost`` units.

        Returns ``(True, 0.0)`` on admission (the full cost is deducted,
        possibly into debt) or ``(False, retry_after_seconds)``.
        """
        if cost < 0:
            raise ValueError("cost must be non-negative")
        self._refill()
        needed = min(cost, self.capacity)
        if self.tokens >= needed:
            self.tokens -= cost
            self.admitted += 1
            self.spent += cost
            return True, 0.0
        self.rejected += 1
        return False, (needed - self.tokens) / self.rate

    def stats(self) -> dict:
        self._refill()
        return {
            "tokens": self.tokens,
            "rate": self.rate,
            "capacity": self.capacity,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "spent": self.spent,
        }

    def restore(self, state: dict) -> None:
        """Adopt a journaled bucket level (coordinator restart).

        ``_last`` is reset to *now*, so no refill is credited for the
        coordinator's downtime — a restart can never mint tokens.
        """
        self.tokens = min(float(state["tokens"]), self.capacity)
        self.admitted = int(state.get("admitted", 0))
        self.rejected = int(state.get("rejected", 0))
        self.spent = float(state.get("spent", 0.0))
        self._last = self._clock()


class AdmissionController:
    """Per-tenant token buckets behind one thread-safe front door.

    ``rate=None`` disables quotas entirely (every request admits) —
    the default for a private coordinator; a shared deployment passes
    explicit ``rate`` / ``capacity``.  Buckets are created lazily per
    tenant name on first sight.
    """

    def __init__(
        self,
        rate: float | None = None,
        capacity: float | None = None,
        clock=time.monotonic,
    ):
        self.rate = rate
        self.capacity = capacity if capacity is not None else (
            rate * 10 if rate is not None else None
        )
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self.admitted = 0
        self.rejected = 0

    @property
    def enabled(self) -> bool:
        return self.rate is not None

    def admit(self, tenant: str, cost: float) -> tuple[bool, float]:
        if not self.enabled:
            self.admitted += 1
            return True, 0.0
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.rate, self.capacity, clock=self._clock
                )
            ok, retry_after = bucket.admit(cost)
        if ok:
            self.admitted += 1
        else:
            self.rejected += 1
        return ok, retry_after

    def stats(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "tenants": {
                    name: bucket.stats()
                    for name, bucket in self._buckets.items()
                },
            }

    def snapshot(self) -> dict:
        """Per-tenant bucket levels in journal form (no rate/capacity —
        those are deployment configuration, not durable state)."""
        if not self.enabled:
            return {}
        with self._lock:
            out = {}
            for name, bucket in self._buckets.items():
                bucket._refill()
                out[name] = {
                    "tokens": bucket.tokens,
                    "admitted": bucket.admitted,
                    "rejected": bucket.rejected,
                    "spent": bucket.spent,
                }
            return out

    def restore(self, snapshot: dict) -> None:
        """Adopt journaled bucket levels on coordinator restart.

        Tenants unseen in the snapshot are unaffected; snapshotted
        tenants get their bucket recreated at the journaled level (with
        downtime refill deliberately not credited — see
        :meth:`TokenBucket.restore`).
        """
        if not self.enabled or not snapshot:
            return
        with self._lock:
            for tenant, state in snapshot.items():
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    bucket = self._buckets[tenant] = TokenBucket(
                        self.rate, self.capacity, clock=self._clock
                    )
                bucket.restore(state)
                self.admitted += bucket.admitted
                self.rejected += bucket.rejected
