"""The distributed execution service: coordinator, workers, clients.

``SuperSim`` is a library — one process plans, evaluates and
reconstructs.  This package stretches the same pipeline across
processes, turning the engine into a long-running shared service:

* :mod:`repro.service.protocol` — the length-prefixed JSON/pickle wire
  protocol and the :class:`~repro.service.protocol.Transport`
  abstraction both sides speak;
* :mod:`repro.service.coordinator` — the asyncio coordinator: admission
  control priced by :meth:`ExecutionPlan.estimate`, a priority job
  queue with per-worker back-pressure, the shared variant-cache tier,
  and the fold-back of streamed variant results into tomography /
  reconstruction;
* :mod:`repro.service.worker` — the worker process
  (``python -m repro.service.worker --connect host:port``) that pulls
  variant jobs and executes them through the engine's own
  fault-tolerant job machinery;
* :mod:`repro.service.client` — :class:`ServiceClient`, whose ``run()``
  / ``sweep()`` / ``submit()`` mirror ``SuperSim`` and return
  bit-for-bit the results a local engine would.

The split point is deliberately the *variant job*: jobs are pure
(seeded by content fingerprints, not submission order), so distributing
them changes where work happens but never what it computes — a seeded
service run is bit-for-bit identical to a local one.  Worker loss maps
onto the engine's existing fault taxonomy ("crash" / "quarantine" /
"fallback" events in ``SuperSimResult.faults``), so callers observe
distributed faults through exactly the ledger they already know.

The wire protocol carries pickles and therefore trusts its peers: bind
the coordinator to localhost (the default) or an equally trusted
network only.
"""

__all__ = [
    "Coordinator",
    "CoordinatorJournal",
    "ServiceClient",
    "Transport",
    "connect",
    "run_worker",
]

_EXPORTS = {
    "Coordinator": ("repro.service.coordinator", "Coordinator"),
    "CoordinatorJournal": ("repro.service.journal", "CoordinatorJournal"),
    "ServiceClient": ("repro.service.client", "ServiceClient"),
    "Transport": ("repro.service.protocol", "Transport"),
    "connect": ("repro.service.protocol", "connect"),
    "run_worker": ("repro.service.worker", "run_worker"),
}


def __getattr__(name: str):
    # lazy exports: `python -m repro.service.worker` must not import the
    # worker module through the package first (runpy would then execute
    # it twice), and clients should not pay for asyncio/coordinator
    # imports they never use
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
