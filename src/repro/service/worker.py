"""The service worker: pull variant jobs, simulate, stream results back.

``python -m repro.service.worker --connect host:port [--slots N]``
joins a coordinator's fleet.  A worker is deliberately thin — it owns no
policy.  It announces a *slot count* (its concurrency; the coordinator
never keeps more than that many of this worker's jobs in flight), then
loops: receive a pickled engine :class:`~repro.core.evaluator._Job`,
execute it through the same module-level ``_execute_job`` the local
pools use, send the :class:`~repro.core.evaluator.VariantData` back.

The one policy fragment that *does* live here is exception retry: a
transient backend failure is cheapest to retry where the job already is,
so the worker retries locally up to the budget shipped with the job
(same capped exponential backoff as the local scheduler) and reports the
survived attempts as ``FaultEvent("retry")`` records alongside the
result.  Everything else — crash accounting, quarantine, timeouts,
degrade fallbacks — is the coordinator's job, because only it can see a
worker die.

A worker outlives its coordinator: on connection loss it rejoins with
jittered exponential backoff (see :func:`run_worker`), answering the
coordinator's heartbeat pings and bounding its blocking reads by the
advertised heartbeat so a silently dead coordinator surfaces as a
reconnect, not a hang.  Only an explicit ``stop`` ends the worker.

Jobs run with ``in_process=True``: a chaos-schedule "crash" action is a
real ``os._exit`` that kills this whole process mid-batch, which is
exactly the failure the coordinator's crash accounting is tested
against.  Determinism is untouched by any of this: job seeds are derived
from content fingerprints before dispatch, so *which* worker runs a job
never changes its output.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ConnectionLostError, FaultEvent
from repro.service.protocol import Transport, backoff_delay, connect

__all__ = ["run_worker", "main"]


def _execute_with_retries(job, policy: dict):
    """Run one job with worker-local exception retries.

    Returns ``(value, fault_events, failures)``; raises the last
    exception once the shipped retry budget is exhausted (the
    coordinator turns that into a policy decision).  A chaos-simulated
    crash is never caught here — with ``in_process=True`` it is an
    ``os._exit`` and the process is already gone.
    """
    from repro.core.evaluator import _execute_job

    max_retries = int(policy.get("max_retries", 0))
    backoff = float(policy.get("retry_backoff", 0.0))
    backoff_cap = float(policy.get("retry_backoff_cap", 0.0))
    base_attempt = job.attempt
    events: list[FaultEvent] = []
    failures = 0
    while True:
        job.attempt = base_attempt + failures
        try:
            return _execute_job(job), events, failures
        except Exception as exc:
            failures += 1
            if failures > max_retries:
                raise
            events.append(
                FaultEvent(
                    kind="retry",
                    fragment_index=job.fragment_index,
                    backend=job.backend.name,
                    attempt=job.attempt,
                    detail=f"{type(exc).__name__}: {exc} (worker-local)",
                )
            )
            if backoff > 0:
                time.sleep(min(backoff_cap, backoff * (2.0 ** (failures - 1))))


def _serve_session(transport: Transport, name: str, slots: int) -> str:
    """One connected session: handshake, then serve jobs until the
    connection ends.  Returns ``"stop"`` (coordinator said stop — do not
    reconnect) or ``"lost"`` (connection died — reconnect may retry)."""
    transport.send(
        {"type": "hello", "role": "worker", "name": name, "slots": slots, "pid": os.getpid()}
    )
    welcome = transport.recv()
    if not welcome or welcome.get("type") != "welcome":
        raise ConnectionError(f"coordinator refused worker handshake: {welcome!r}")
    heartbeat = welcome.get("heartbeat")
    if heartbeat:
        # a coordinator that heartbeats promises regular traffic: bound
        # our blocking reads so a silently dead coordinator (partition,
        # frozen process) surfaces as a timeout -> reconnect, not a hang
        misses = int(welcome.get("heartbeat_misses", 3) or 3)
        set_deadline = getattr(transport, "set_deadline", None)
        if set_deadline is not None:
            set_deadline(max(10.0, float(heartbeat) * misses * 4.0))

    pool = ThreadPoolExecutor(max_workers=slots, thread_name_prefix=name)
    stop = threading.Event()
    outcome = "lost"

    def handle(jid, job, policy):
        job.in_process = True  # a chaos crash here is a real os._exit
        started = time.monotonic()
        try:
            value, events, failures = _execute_with_retries(job, policy)
        except Exception as exc:
            if stop.is_set():
                return
            transport.send(
                {
                    "type": "job_error",
                    "jid": jid,
                    "error": f"{type(exc).__name__}: {exc}",
                    "exception": exc,
                    "traceback": traceback.format_exc(),
                    "failures": int(policy.get("max_retries", 0)) + 1,
                    "worker": name,
                }
            )
            return
        if stop.is_set():
            return
        transport.send(
            {
                "type": "job_result",
                "jid": jid,
                "value": value,
                "faults": events,
                "failures": failures,
                "elapsed": time.monotonic() - started,
                "worker": name,
            }
        )

    try:
        while True:
            try:
                message = transport.recv()
            except (ConnectionError, OSError):
                break
            if message is None:
                break
            kind = message.get("type")
            if kind == "stop":
                outcome = "stop"
                break
            if kind == "ping":
                transport.send({"type": "pong", "worker": name})
                continue
            if kind == "job":
                pool.submit(
                    handle,
                    message["jid"],
                    message["job"],
                    message.get("policy", {}),
                )
                continue
            # unknown message: protocol drift — say so rather than hang
            transport.send(
                {"type": "worker_error", "error": f"unknown message type {kind!r}"}
            )
    finally:
        stop.set()
        pool.shutdown(wait=False, cancel_futures=True)
        # bounded join so in-flight job threads (and any process-pool
        # children a backend spawned) are not orphaned past this session
        deadline = time.monotonic() + 5.0
        for thread in list(getattr(pool, "_threads", ())):
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        transport.close()
    return outcome


def run_worker(
    address,
    slots: int = 2,
    name: str | None = None,
    transport: Transport | None = None,
    *,
    reconnect: bool = True,
    reconnect_attempts: int = 10,
    reconnect_backoff: float = 0.5,
    reconnect_backoff_cap: float = 5.0,
) -> None:
    """Join the coordinator at ``address`` and serve jobs until told to stop.

    Blocks for the life of the fleet membership; returns when the
    coordinator sends ``stop``.  ``slots`` is the number of jobs this
    worker executes concurrently (a thread pool — the engine's backends
    release the GIL in their numpy kernels; CPU-bound fleets simply run
    more single-slot workers).

    When the connection dies any other way — coordinator restart,
    network fault — the worker reconnects with jittered exponential
    backoff (``reconnect_backoff`` doubling up to
    ``reconnect_backoff_cap``, at most ``reconnect_attempts``
    consecutive failed connection attempts before giving up with
    :class:`~repro.errors.ConnectionLostError`).  Passing an explicit
    ``transport`` serves exactly one session on it, no reconnection.
    """
    name = name or f"worker-{os.getpid()}"
    slots = max(1, int(slots))
    if transport is not None:
        _serve_session(transport, name, slots)
        return
    rng = random.Random()
    attempt = 0
    while True:
        try:
            session = connect(address)
        except (ConnectionError, OSError) as exc:
            attempt += 1
            if not reconnect or attempt > reconnect_attempts:
                raise ConnectionLostError(
                    f"could not reach coordinator at {address} after "
                    f"{attempt} attempts: {exc!r}"
                ) from exc
            time.sleep(
                backoff_delay(
                    attempt, reconnect_backoff, reconnect_backoff_cap, rng
                )
            )
            continue
        attempt = 0
        outcome = "lost"
        try:
            outcome = _serve_session(session, name, slots)
        except (ConnectionError, OSError):
            pass  # handshake raced a dying coordinator: retry below
        if outcome == "stop" or not reconnect:
            return
        attempt = 1
        time.sleep(
            backoff_delay(attempt, reconnect_backoff, reconnect_backoff_cap, rng)
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="repro execution-service worker",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address to join",
    )
    parser.add_argument(
        "--slots",
        type=int,
        default=2,
        help="concurrent jobs this worker executes (default: 2)",
    )
    parser.add_argument("--name", default=None, help="worker name in stats")
    parser.add_argument(
        "--no-reconnect",
        action="store_true",
        help="exit on connection loss instead of backing off and rejoining",
    )
    parser.add_argument(
        "--reconnect-attempts",
        type=int,
        default=10,
        help="consecutive failed connection attempts before giving up",
    )
    parser.add_argument(
        "--reconnect-backoff",
        type=float,
        default=0.5,
        help="initial reconnect backoff in seconds (doubles, jittered)",
    )
    parser.add_argument(
        "--reconnect-backoff-cap",
        type=float,
        default=5.0,
        help="upper bound on the reconnect backoff in seconds",
    )
    args = parser.parse_args(argv)
    run_worker(
        args.connect,
        slots=args.slots,
        name=args.name,
        reconnect=not args.no_reconnect,
        reconnect_attempts=args.reconnect_attempts,
        reconnect_backoff=args.reconnect_backoff,
        reconnect_backoff_cap=args.reconnect_backoff_cap,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(main())
