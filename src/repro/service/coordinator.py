"""The asyncio coordinator: admission, dispatch, shared cache, fold-back.

One coordinator process owns the service: it accepts client requests and
worker registrations on a single listening socket (peers declare a role
in their hello), and runs the *control plane* of distributed execution
while the engine's own pipeline stays intact end to end:

1. **Admission.**  Every ``run`` / ``sweep`` is priced with the engine's
   zero-simulation dry run (``ExecutionPlan.estimate()`` — calibrated
   cost units) and offered to the per-tenant token buckets of
   :class:`~repro.service.admission.AdmissionController`.  A rejection
   is a 429-style reply carrying a ``retry_after`` hint and the quote
   itself; the client raises
   :class:`~repro.errors.QuotaExceededError`.
2. **Dispatch.**  An admitted request executes the normal
   ``plan → evaluate → reconstruct`` pipeline on a request thread, with
   one override: the evaluator's deduplicated variant jobs are handed to
   this coordinator (``FragmentEvaluator.evaluate_all(job_runner=...)``)
   instead of a local pool.  Jobs enter a priority queue (lower
   ``priority`` first, FIFO within a level) and flow to workers with
   free credit — at most ``min(worker slots, max_inflight_per_worker)``
   of a worker's jobs are ever in flight, which is the back-pressure
   that keeps one wide request from burying the fleet.
3. **Fault mapping.**  A worker disconnect charges each of its in-flight
   jobs one "crash" (the engine's heuristic attribution — innocent
   bystanders are requeued, a job that outlives
   ``max_job_crashes`` worker losses is quarantined); soft deadlines
   become "timeout" events with redispatch (first result wins, late
   duplicates are dropped); with no live workers at all the coordinator
   degrades to local execution and records "fallback".  All of it lands
   in the request's ``SuperSimResult.faults`` — the same ledger local
   runs use.
4. **Shared cache.**  Every request's engine is pointed at the
   coordinator's cache tier (any
   :class:`~repro.backends.tiers.CacheTier`), so concurrent sweeps from
   different clients deduplicate simulation work; the tier is also
   served directly over ``cache_get`` / ``cache_put`` for
   :class:`~repro.backends.tiers.RemoteCacheTier` clients.

5. **Resilience.**  With ``--journal-db`` the coordinator journals every
   accepted request, completed reply, idempotency key and quota level to
   SQLite (:class:`~repro.service.journal.CoordinatorJournal`) *before*
   executing, so a restarted coordinator recovers pending tickets and
   re-executes them; heartbeat ping/pong detects dead workers even on
   half-open sockets and requeues their jobs through the crash taxonomy;
   a peer sending garbage frames is disconnected alone (``peer_error``
   fault) instead of tearing down the loop; and ``drain()`` / SIGTERM
   stops admitting, finishes in-flight work and flushes the journal.

Determinism survives distribution because job seeds derive from content
fingerprints before dispatch: *where* a job runs, how often it was
retried, and in what order results return never change a single bit of
the output.  That same invariant is what makes journal-replay recovery
exact: a re-executed ticket produces the bit-identical result the dead
coordinator would have returned.

``python -m repro.service.coordinator [--port P] [--quota-rate R] ...``
runs a standalone coordinator; tests and notebooks use
:meth:`Coordinator.start_in_thread`.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import heapq
import itertools
import signal
import sys
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor

from repro.backends.cache import resolve_cache
from repro.errors import (
    BackendExecutionError,
    FaultEvent,
    FaultReport,
    JobTimeoutError,
    ServiceError,
    WorkerCrashError,
)
from repro.service.admission import AdmissionController
from repro.service.journal import CoordinatorJournal
from repro.service.protocol import read_message, write_message

__all__ = ["Coordinator", "main"]


class _WorkerHandle:
    """Coordinator-side state for one connected worker."""

    __slots__ = (
        "wid",
        "name",
        "slots",
        "writer",
        "wlock",
        "inflight",
        "peak_inflight",
        "completed",
        "alive",
        "last_seen",
    )

    def __init__(self, wid: int, name: str, slots: int, writer, now: float):
        self.wid = wid
        self.name = name
        self.slots = max(1, int(slots))
        self.writer = writer
        # jobs and heartbeat pings share the stream: serialise writes
        self.wlock = asyncio.Lock()
        self.inflight: set[int] = set()
        self.peak_inflight = 0
        self.completed = 0
        self.alive = True
        self.last_seen = now


class _PendingJob:
    """One variant job in the coordinator's queue or in flight."""

    __slots__ = (
        "jid",
        "job",
        "ctx",
        "future",
        "events",
        "failures",
        "crashes",
        "worker",
        "deadline",
    )

    def __init__(self, jid: int, job, ctx, future):
        self.jid = jid
        self.job = job
        self.ctx = ctx
        self.future = future
        self.events: list[FaultEvent] = []
        self.failures = 0
        self.crashes = 0
        self.worker: int | None = None  # wid currently responsible
        self.deadline: float | None = None

    def record(self, kind: str, detail: str = "") -> None:
        self.events.append(
            FaultEvent(
                kind=kind,
                fragment_index=self.job.fragment_index,
                backend=self.job.backend.name,
                attempt=self.job.attempt,
                detail=detail,
            )
        )


class _RequestContext:
    """Everything one admitted request carries through execution."""

    __slots__ = ("tenant", "priority", "execution")

    def __init__(self, tenant: str, priority: int, execution):
        self.tenant = tenant
        self.priority = int(priority)
        self.execution = execution

    @property
    def policy(self) -> str:
        return self.execution.failure_policy

    def worker_policy(self) -> dict:
        """The retry budget shipped to workers with each job."""
        retries = 0 if self.policy == "raise" else self.execution.max_retries
        return {
            "max_retries": retries,
            "retry_backoff": self.execution.retry_backoff,
            "retry_backoff_cap": self.execution.retry_backoff_cap,
        }


class Coordinator:
    """The service control plane.  See the module docstring for the model.

    ``cache`` accepts anything :func:`~repro.backends.cache.resolve_cache`
    does — ``True`` (default: a fresh in-memory LRU), an existing
    :class:`~repro.backends.tiers.CacheTier` (e.g. a ``TieredCache`` over
    SQLite for durability), or ``False`` to disable sharing.
    ``quota_rate`` / ``quota_capacity`` enable admission control
    (cost units per second / burst); ``None`` admits everything.

    ``journal`` accepts a path (or an existing
    :class:`~repro.service.journal.CoordinatorJournal`) to make accepted
    work durable: a coordinator restarted on the same journal recovers
    pending tickets, completed-but-unacknowledged replies, idempotency
    keys and per-tenant quota levels.  ``heartbeat_interval`` /
    ``heartbeat_misses`` configure proactive worker liveness (``None``
    disables pings and falls back to TCP disconnect detection);
    ``ticket_ttl`` bounds how long completed tickets and idempotency
    keys are retained awaiting a client acknowledgement.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        quota_rate: float | None = None,
        quota_capacity: float | None = None,
        max_inflight_per_worker: int = 4,
        cache=True,
        clock=time.monotonic,
        request_threads: int = 8,
        journal=None,
        ticket_ttl: float = 600.0,
        heartbeat_interval: float | None = 5.0,
        heartbeat_misses: int = 3,
    ):
        self.host = host
        self.port = port
        self.cache = resolve_cache(cache)
        self.admission = AdmissionController(
            quota_rate, quota_capacity, clock=clock
        )
        self.max_inflight_per_worker = max(1, int(max_inflight_per_worker))
        if journal is None or journal is False:
            self.journal = None
            self._owns_journal = False
        elif isinstance(journal, CoordinatorJournal):
            self.journal = journal
            self._owns_journal = False
        else:
            self.journal = CoordinatorJournal(journal)
            self._owns_journal = True
        self.ticket_ttl = float(ticket_ttl)
        self.heartbeat_interval = (
            float(heartbeat_interval) if heartbeat_interval else None
        )
        self.heartbeat_misses = max(1, int(heartbeat_misses))
        self.faults = FaultReport()  # coordinator-level ledger (peer faults)
        self.address: str | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self._server = None
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, request_threads), thread_name_prefix="svc-req"
        )
        self._workers: dict[int, _WorkerHandle] = {}
        self._jobs: dict[int, _PendingJob] = {}
        self._queue: list[tuple[int, int, int]] = []  # (priority, seq, jid)
        self._seq = itertools.count()
        self._ids = itertools.count(1)
        self._kick: asyncio.Event | None = None
        self._stopping: asyncio.Event | None = None
        self._tickets: dict[str, dict] = {}
        self._ticket_done: dict[str, float] = {}  # ticket -> completion time
        self._idem_tickets: dict[str, str] = {}  # idempotency key -> ticket
        self._idem_done: dict[str, tuple[dict, float]] = {}  # key -> (reply, t)
        self._idem_futures: dict[str, asyncio.Future] = {}  # key -> in flight
        self._idem_admitted: dict[str, float] = {}  # key -> admission time
        self._draining = False
        self._active_requests = 0
        self._tasks: set[asyncio.Task] = set()
        self._thread: threading.Thread | None = None
        self.counters = {
            "requests": 0,
            "completed": 0,
            "errors": 0,
            "rejected": 0,
            "jobs_dispatched": 0,
            "jobs_completed": 0,
            "jobs_local": 0,
            "jobs_requeued": 0,
            "workers_lost": 0,
            "peer_errors": 0,
            "heartbeat_deaths": 0,
            "recovered_tickets": 0,
            "acks": 0,
            "idempotent_hits": 0,
            "expired_tickets": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> str:
        """Bind the listening socket; returns the bound ``host:port``."""
        self.loop = asyncio.get_running_loop()
        self._kick = asyncio.Event()
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        bound = self._server.sockets[0].getsockname()
        self.address = f"{bound[0]}:{bound[1]}"
        self._spawn(self._dispatch_loop())
        self._spawn(self._deadline_loop())
        if self.heartbeat_interval is not None:
            self._spawn(self._heartbeat_loop())
        if self.ticket_ttl > 0:
            self._spawn(self._gc_loop())
        self._recover()
        return self.address

    def _recover(self) -> None:
        """Adopt the journal of a dead predecessor (same ``--journal-db``).

        Quota levels and idempotency keys are restored first — so
        recovered re-executions and client retries are never charged a
        second time — then ``done`` submit replies go back into the
        ticket table awaiting their poll, and ``pending`` submits are
        re-executed from the journaled request (fingerprint-derived job
        seeds make the re-run bit-identical to what the dead coordinator
        would have produced).  Pending ``run`` / ``sweep`` entries are
        abandoned: their reply channel died with the old process and the
        client's own reconnect-and-retry resends them.
        """
        if self.journal is None:
            return
        quota = self.journal.load_quota()
        if quota:
            self.admission.restore(quota)
        now = time.monotonic()
        for ticket, kind, tenant, idem, state, msg, reply in (
            self.journal.entries()
        ):
            if state == "done":
                rejected = (
                    isinstance(reply, dict) and reply.get("type") == "rejected"
                )
                if idem and not rejected:
                    self._idem_admitted[idem] = now
                    if kind == "submit":
                        self._idem_tickets[idem] = ticket
                    elif kind == "run" and reply is not None:
                        self._idem_done[idem] = (reply, now)
                if kind == "submit" and reply is not None:
                    self._tickets[ticket] = reply
                    self._ticket_done[ticket] = now
            elif state == "pending":
                if idem:
                    self._idem_admitted[idem] = now
                if kind == "submit" and msg is not None:
                    if idem:
                        self._idem_tickets[idem] = ticket
                    self._tickets[ticket] = {"type": "pending"}
                    self.counters["recovered_tickets"] += 1
                    self.faults.record(
                        "recovery",
                        detail=(
                            f"re-executing journaled ticket {ticket} "
                            f"(tenant {tenant})"
                        ),
                    )
                    self._spawn(self._complete_submit(ticket, msg, idem))
                else:
                    # run/sweep reply channels died with the old process;
                    # the reconnecting client retries them itself
                    self.journal.abandon(ticket)

    async def serve_forever(self) -> None:
        await self._stopping.wait()
        await self._shutdown_async()

    async def _shutdown_async(self) -> None:
        self._stopping.set()
        for handle in list(self._workers.values()):
            try:
                await write_message(handle.writer, {"type": "stop"})
                handle.writer.close()
            except (ConnectionError, OSError, RuntimeError):
                pass
        for pending in list(self._jobs.values()):
            if not pending.future.done():
                pending.future.set_exception(
                    ServiceError("coordinator shut down with jobs pending")
                )
        self._jobs.clear()
        self._queue.clear()
        for task in list(self._tasks):
            task.cancel()
        self._server.close()
        await self._server.wait_closed()
        self._executor.shutdown(wait=False, cancel_futures=True)
        # bounded join of request threads so no process-pool children are
        # orphaned; joined off-loop so pending run_coroutine_threadsafe
        # results can still flush back to the threads being joined
        threads = list(getattr(self._executor, "_threads", ()))
        if threads:
            def _join_all():
                deadline = time.monotonic() + 5.0
                for thread in threads:
                    thread.join(timeout=max(0.0, deadline - time.monotonic()))
            await self.loop.run_in_executor(None, _join_all)
        if self.journal is not None:
            self.journal.flush()
            if self._owns_journal:
                self.journal.close()

    def _spawn(self, coro) -> asyncio.Task:
        task = self.loop.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    def start_in_thread(self) -> str:
        """Run the coordinator on a daemon thread; returns its address.

        The idiom for tests, notebooks and the demo: start, connect
        clients/workers, and :meth:`shutdown` when done.
        """
        started = threading.Event()
        failure: list[BaseException] = []

        def runner():
            async def body():
                try:
                    await self.start()
                finally:
                    started.set()
                await self.serve_forever()

            try:
                asyncio.run(body())
            except BaseException as exc:  # pragma: no cover - startup failure
                failure.append(exc)
                started.set()

        self._thread = threading.Thread(
            target=runner, name="svc-coordinator", daemon=True
        )
        self._thread.start()
        started.wait(timeout=30)
        if failure:
            raise failure[0]
        if self.address is None:
            raise ServiceError("coordinator failed to start within 30s")
        return self.address

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop a coordinator started with :meth:`start_in_thread`."""
        if self.loop is not None and self.loop.is_running():
            self.loop.call_soon_threadsafe(self._stopping.set)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    async def _drain_async(self, timeout: float = 30.0) -> None:
        """Graceful drain: stop admitting, finish in-flight, flush journal.

        New ``run`` / ``sweep`` / ``submit`` requests are rejected with
        ``reason="draining"`` (a retryable rejection — reconnecting
        clients back off and try the successor); requests and jobs
        already accepted run to completion (bounded by ``timeout``).
        """
        self._draining = True
        deadline = self.loop.time() + max(0.0, timeout)
        while self._active_requests > 0 or self._jobs or self._queue:
            if self.loop.time() >= deadline:
                break
            await asyncio.sleep(0.05)
        if self.journal is not None:
            self.journal.flush()

    def drain(self, timeout: float = 30.0) -> None:
        """Thread-safe :meth:`_drain_async` (pairs with ``shutdown``)."""
        if self.loop is None or not self.loop.is_running():
            return
        asyncio.run_coroutine_threadsafe(
            self._drain_async(timeout), self.loop
        ).result(timeout=timeout + 10.0)

    def __enter__(self) -> "Coordinator":
        self.start_in_thread()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- connection handling -------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        try:
            hello = await read_message(reader)
            if not hello or hello.get("type") != "hello":
                writer.close()
                return
            await write_message(writer, {
                "type": "welcome",
                "version": 1,
                "heartbeat": self.heartbeat_interval,
                "heartbeat_misses": self.heartbeat_misses,
            })
            if hello.get("role") == "worker":
                await self._worker_loop(hello, reader, writer)
            else:
                await self._client_loop(hello, reader, writer)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        except Exception as exc:
            # a corrupt/oversize/garbage frame from one peer must never
            # tear down the coordinator: disconnect that peer, keep serving
            self._peer_error(exc)
        finally:
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - loop tearing down
                pass

    def _peer_error(self, exc: BaseException) -> None:
        self.counters["peer_errors"] += 1
        self.faults.record(
            "peer_error",
            detail=f"{type(exc).__name__}: {exc}; peer disconnected",
        )

    # -- worker side ---------------------------------------------------------

    async def _worker_loop(self, hello, reader, writer) -> None:
        wid = next(self._ids)
        handle = _WorkerHandle(
            wid,
            name=str(hello.get("name", f"worker-{wid}")),
            slots=int(hello.get("slots", 1)),
            writer=writer,
            now=self.loop.time(),
        )
        self._workers[wid] = handle
        self._kick.set()
        try:
            while True:
                message = await read_message(reader)
                if message is None:
                    break
                handle.last_seen = self.loop.time()
                kind = message.get("type")
                if kind == "job_result":
                    self._on_job_result(handle, message)
                elif kind == "job_error":
                    self._on_job_error(handle, message)
                # pong / worker_error need no bookkeeping beyond last_seen
        except (ConnectionError, OSError):
            pass
        finally:
            self._on_worker_lost(handle)

    def _credit(self, handle: _WorkerHandle) -> int:
        limit = min(handle.slots, self.max_inflight_per_worker)
        return limit - len(handle.inflight)

    def _on_job_result(self, handle: _WorkerHandle, message: dict) -> None:
        jid = message["jid"]
        handle.inflight.discard(jid)
        handle.completed += 1
        self._kick.set()
        pending = self._jobs.pop(jid, None)
        if pending is None:
            return  # late duplicate after a timeout redispatch: first wins
        pending.failures += int(message.get("failures", 0))
        pending.events.extend(message.get("faults", ()))
        self.counters["jobs_completed"] += 1
        if not pending.future.done():
            pending.future.set_result(message["value"])

    def _on_job_error(self, handle: _WorkerHandle, message: dict) -> None:
        jid = message["jid"]
        handle.inflight.discard(jid)
        self._kick.set()
        pending = self._jobs.pop(jid, None)
        if pending is None:
            return
        pending.failures += int(message.get("failures", 1))
        pending.events.extend(message.get("faults", ()))
        cause = message.get("exception")
        if pending.ctx.policy == "degrade":
            # the worker exhausted its retry budget on the assigned
            # backend; last resort is the coordinator's own CPU
            pending.record(
                "fallback",
                detail=(
                    f"worker {handle.name} exhausted retries "
                    f"({message.get('error', '?')}); re-running on coordinator"
                ),
            )
            self._spawn(self._run_local(pending))
            return
        exc = BackendExecutionError(
            f"worker-side execution failed: {message.get('error', '?')}",
            fragment_index=pending.job.fragment_index,
            backend=pending.job.backend.name,
            attempts=pending.failures + pending.crashes,
        )
        if isinstance(cause, BaseException):
            exc.__cause__ = cause
        if not pending.future.done():
            pending.future.set_exception(exc)

    def _on_worker_lost(self, handle: _WorkerHandle) -> None:
        if not handle.alive:
            return
        handle.alive = False
        self._workers.pop(handle.wid, None)
        if self._stopping.is_set():
            return
        if handle.inflight:
            self.counters["workers_lost"] += 1
        for jid in list(handle.inflight):
            pending = self._jobs.get(jid)
            if pending is None:
                continue
            pending.worker = None
            pending.deadline = None
            pending.crashes += 1
            pending.record(
                "crash",
                detail=(
                    f"worker {handle.name} disconnected with this job in "
                    f"flight"
                ),
            )
            self._after_crash(pending, f"worker {handle.name} lost")
        handle.inflight.clear()
        self._kick.set()

    def _after_crash(self, pending: _PendingJob, detail: str) -> None:
        """Apply the crash policy to one charged job (engine semantics)."""
        ctx = pending.ctx
        if ctx.policy == "raise":
            if not pending.future.done():
                pending.future.set_exception(
                    WorkerCrashError(
                        f"worker crashed with this job in flight ({detail})",
                        fragment_index=pending.job.fragment_index,
                        backend=pending.job.backend.name,
                        attempts=pending.failures + pending.crashes,
                    )
                )
            self._jobs.pop(pending.jid, None)
            return
        if pending.crashes <= ctx.execution.max_job_crashes:
            self._requeue(pending)
            return
        pending.record(
            "quarantine",
            detail=f"{pending.crashes} worker losses with this job in flight",
        )
        if ctx.policy == "degrade":
            pending.record(
                "fallback", detail="quarantined job re-running on coordinator"
            )
            self._spawn(self._run_local(pending))
            return
        if not pending.future.done():
            pending.future.set_exception(
                WorkerCrashError(
                    f"job quarantined after {pending.crashes} worker losses "
                    f"({detail})",
                    fragment_index=pending.job.fragment_index,
                    backend=pending.job.backend.name,
                    attempts=pending.failures + pending.crashes,
                )
            )
        self._jobs.pop(pending.jid, None)

    # -- dispatch ------------------------------------------------------------

    def _requeue(self, pending: _PendingJob) -> None:
        # known prior failures feed the attempt counter, so a chaos
        # schedule bounded by fail_attempts converges on redispatch
        pending.job.attempt = pending.failures + pending.crashes
        self.counters["jobs_requeued"] += 1
        heapq.heappush(
            self._queue, (pending.ctx.priority, next(self._seq), pending.jid)
        )
        self._kick.set()

    async def _dispatch_loop(self) -> None:
        while not self._stopping.is_set():
            await self._kick.wait()
            self._kick.clear()
            await self._pump()

    def _pick_worker(self) -> _WorkerHandle | None:
        best = None
        best_credit = 0
        for handle in self._workers.values():
            credit = self._credit(handle)
            if credit > best_credit:
                best, best_credit = handle, credit
        return best

    async def _pump(self) -> None:
        while self._queue:
            if not self._workers:
                # degrade-to-local: no fleet, the coordinator is the fleet
                _, _, jid = heapq.heappop(self._queue)
                pending = self._jobs.get(jid)
                if pending is None or pending.worker is not None:
                    continue
                pending.record(
                    "fallback",
                    detail="no live workers; executing on coordinator",
                )
                self._spawn(self._run_local(pending))
                continue
            handle = self._pick_worker()
            if handle is None:
                return  # every worker at its in-flight bound: back-pressure
            _, _, jid = heapq.heappop(self._queue)
            pending = self._jobs.get(jid)
            if pending is None or pending.worker is not None:
                continue  # cancelled batch or duplicate queue entry
            await self._send_job(handle, pending)

    async def _send_job(self, handle: _WorkerHandle, pending: _PendingJob) -> None:
        pending.worker = handle.wid
        handle.inflight.add(pending.jid)
        handle.peak_inflight = max(handle.peak_inflight, len(handle.inflight))
        if pending.job.timeout is not None:
            pending.deadline = self.loop.time() + pending.job.timeout
        self.counters["jobs_dispatched"] += 1
        try:
            async with handle.wlock:
                await write_message(
                    handle.writer,
                    {
                        "type": "job",
                        "jid": pending.jid,
                        "job": pending.job,
                        "policy": pending.ctx.worker_policy(),
                    },
                )
        except (ConnectionError, OSError):
            self._on_worker_lost(handle)

    async def _deadline_loop(self) -> None:
        """Soft-deadline monitor: redispatch overdue jobs (first result wins)."""
        while not self._stopping.is_set():
            await asyncio.sleep(0.05)
            now = self.loop.time()
            for pending in list(self._jobs.values()):
                if pending.deadline is None or pending.deadline > now:
                    continue
                handle = self._workers.get(pending.worker)
                if handle is not None:
                    handle.inflight.discard(pending.jid)
                pending.worker = None
                pending.deadline = None
                ctx = pending.ctx
                if ctx.policy == "raise":
                    self._jobs.pop(pending.jid, None)
                    if not pending.future.done():
                        pending.future.set_exception(
                            JobTimeoutError(
                                "variant exceeded its soft deadline on a "
                                "worker",
                                timeout=pending.job.timeout,
                                fragment_index=pending.job.fragment_index,
                                backend=pending.job.backend.name,
                            )
                        )
                    continue
                pending.failures += 1
                pending.record(
                    "timeout",
                    detail=(
                        f"soft deadline {pending.job.timeout:.3g}s exceeded "
                        f"on worker; redispatching"
                    ),
                )
                if pending.failures <= ctx.execution.max_retries:
                    self._requeue(pending)
                else:
                    self._jobs.pop(pending.jid, None)
                    if not pending.future.done():
                        pending.future.set_exception(
                            JobTimeoutError(
                                "soft deadline exceeded and retries "
                                "exhausted",
                                timeout=pending.job.timeout,
                                fragment_index=pending.job.fragment_index,
                                backend=pending.job.backend.name,
                                attempts=pending.failures + pending.crashes,
                            )
                        )

    # -- liveness & garbage collection ----------------------------------------

    async def _heartbeat_loop(self) -> None:
        """Proactive worker liveness: ping every interval, declare a worker
        dead after ``heartbeat_misses`` silent intervals (even when the TCP
        connection is still nominally up — half-open sockets, frozen
        processes) and requeue its in-flight jobs through the crash path."""
        interval = self.heartbeat_interval
        while not self._stopping.is_set():
            await asyncio.sleep(interval)
            now = self.loop.time()
            for handle in list(self._workers.values()):
                if now - handle.last_seen > interval * self.heartbeat_misses:
                    self.counters["heartbeat_deaths"] += 1
                    self.faults.record(
                        "heartbeat_miss",
                        detail=(
                            f"worker {handle.name} silent for "
                            f"{now - handle.last_seen:.2f}s "
                            f"(> {self.heartbeat_misses} x {interval:.2f}s); "
                            f"declared dead"
                        ),
                    )
                    try:
                        handle.writer.close()
                    except (RuntimeError, OSError):
                        pass
                    self._on_worker_lost(handle)
                    continue
                self._spawn(self._ping_worker(handle))

    async def _ping_worker(self, handle: _WorkerHandle) -> None:
        try:
            async with handle.wlock:
                await write_message(handle.writer, {"type": "ping"})
        except (ConnectionError, OSError, RuntimeError):
            self._on_worker_lost(handle)

    async def _gc_loop(self) -> None:
        """TTL sweep: expire completed-but-unacknowledged tickets, stale
        idempotency keys, and finished journal entries."""
        period = min(1.0, max(0.05, self.ticket_ttl / 4))
        while not self._stopping.is_set():
            await asyncio.sleep(period)
            now = time.monotonic()
            ttl = self.ticket_ttl
            for ticket, done_at in list(self._ticket_done.items()):
                if now - done_at > ttl:
                    self._ticket_done.pop(ticket, None)
                    if self._tickets.pop(ticket, None) is not None:
                        self.counters["expired_tickets"] += 1
                    if self.journal is not None:
                        self.journal.acknowledge(ticket)
            for key, stamp in list(self._idem_admitted.items()):
                if now - stamp > ttl:
                    self._idem_admitted.pop(key, None)
            for key, (_, stamp) in list(self._idem_done.items()):
                if now - stamp > ttl:
                    self._idem_done.pop(key, None)
            for key, ticket in list(self._idem_tickets.items()):
                if ticket not in self._tickets:
                    self._idem_tickets.pop(key, None)
            if self.journal is not None:
                self.journal.expire(ttl, now=time.time())

    # -- local (degraded) execution -----------------------------------------

    def _execute_local(self, pending: _PendingJob):
        from repro.core.evaluator import _execute_job

        ctx = pending.ctx
        job = pending.job
        job.in_process = False  # a chaos crash must not kill the coordinator
        retries = 0 if ctx.policy == "raise" else ctx.execution.max_retries
        local_failures = 0
        while True:
            job.attempt = pending.failures + pending.crashes
            try:
                return _execute_job(job)
            except Exception as exc:
                pending.failures += 1
                local_failures += 1
                if local_failures > retries:
                    raise
                pending.record(
                    "retry",
                    detail=f"{type(exc).__name__}: {exc} (coordinator-local)",
                )
                backoff = ctx.execution.retry_backoff
                if backoff > 0:
                    time.sleep(
                        min(
                            ctx.execution.retry_backoff_cap,
                            backoff * (2.0 ** (local_failures - 1)),
                        )
                    )

    async def _run_local(self, pending: _PendingJob) -> None:
        self.counters["jobs_local"] += 1
        try:
            value = await self.loop.run_in_executor(
                self._executor, self._execute_local, pending
            )
        except Exception as exc:
            self._jobs.pop(pending.jid, None)
            if not pending.future.done():
                pending.future.set_exception(
                    BackendExecutionError(
                        f"coordinator-local execution failed: {exc!r}",
                        fragment_index=pending.job.fragment_index,
                        backend=pending.job.backend.name,
                        attempts=pending.failures + pending.crashes,
                    )
                )
            return
        self._jobs.pop(pending.jid, None)
        self.counters["jobs_completed"] += 1
        if not pending.future.done():
            pending.future.set_result(value)

    # -- the job_runner bridge (request threads <-> event loop) --------------

    def _job_runner_for(self, ctx: _RequestContext):
        def runner(jobs, faults):
            if not jobs:
                return {}
            future = asyncio.run_coroutine_threadsafe(
                self._run_batch(ctx, list(jobs)), self.loop
            )
            results, events = future.result()
            faults.events.extend(events)
            return results

        return runner

    async def _run_batch(self, ctx: _RequestContext, jobs) -> tuple[dict, list]:
        pendings: list[_PendingJob] = []
        for job in jobs:
            jid = next(self._ids)
            pending = _PendingJob(jid, job, ctx, self.loop.create_future())
            self._jobs[jid] = pending
            heapq.heappush(self._queue, (ctx.priority, next(self._seq), jid))
            pendings.append(pending)
        self._kick.set()
        outcomes = await asyncio.gather(
            *[p.future for p in pendings], return_exceptions=True
        )
        failure = next(
            (o for o in outcomes if isinstance(o, BaseException)), None
        )
        if failure is not None:
            # abandon the rest of this batch: queued entries are skipped at
            # dispatch, in-flight results for dropped jids are ignored
            for pending in pendings:
                self._jobs.pop(pending.jid, None)
            raise failure
        events = [event for p in pendings for event in p.events]
        return (
            {p.job.key: value for p, value in zip(pendings, outcomes)},
            events,
        )

    # -- request execution (thread side) -------------------------------------

    def _build_sim(self, msg: dict, ctx: _RequestContext):
        from repro.core.supersim import SuperSim

        sim = SuperSim(
            cut=msg.get("cut"),
            sampling=msg.get("sampling"),
            execution=ctx.execution,
            reconstruction=msg.get("reconstruction"),
        )
        sim.variant_cache = self.cache
        sim._job_runner = self._job_runner_for(ctx)
        return sim

    def _make_ctx(self, msg: dict) -> _RequestContext:
        from repro.core.config import ExecutionConfig

        execution = msg.get("execution") or ExecutionConfig()
        return _RequestContext(
            tenant=str(msg.get("tenant", "default")),
            priority=int(msg.get("priority", 0)),
            execution=execution,
        )

    def _admit(self, ctx: _RequestContext, estimate, points: int = 1,
               key: str | None = None):
        # a client retry of an already-admitted request (idempotency key
        # seen before, possibly journaled by a dead predecessor) is not
        # charged a second time
        if key is not None and key in self._idem_admitted:
            self.counters["idempotent_hits"] += 1
            return None
        cost = estimate.total_cost * max(1, points)
        ok, retry_after = self.admission.admit(ctx.tenant, cost)
        if ok:
            if key is not None:
                self._idem_admitted[key] = time.monotonic()
            if self.journal is not None and self.admission.enabled:
                self.journal.save_quota(self.admission.snapshot())
            return None
        self.counters["rejected"] += 1
        return {
            "type": "rejected",
            "retry_after": retry_after,
            "estimate": estimate.to_dict(),
            "cost": cost,
        }

    def _execute_run(self, msg: dict) -> dict:
        ctx = self._make_ctx(msg)
        sim = self._build_sim(msg, ctx)
        try:
            plan = sim.plan(
                msg["circuit"],
                keep_qubits=msg.get("keep_qubits"),
                cuts=msg.get("cuts"),
            )
            estimate = plan.estimate()
            rejection = self._admit(
                ctx, estimate, key=msg.get("idempotency")
            )
            if rejection is not None:
                return rejection
            result = plan.execute()
        finally:
            sim.close()  # release any coordinator-local pools per request
        self.counters["completed"] += 1
        return {
            "type": "result",
            "result": result,
            "estimate": estimate.to_dict(),
        }

    def _execute_estimate(self, msg: dict) -> dict:
        ctx = self._make_ctx(msg)
        sim = self._build_sim(msg, ctx)
        try:
            plan = sim.plan(
                msg["circuit"],
                keep_qubits=msg.get("keep_qubits"),
                cuts=msg.get("cuts"),
            )
            return {"type": "estimate", "estimate": plan.estimate().to_dict()}
        finally:
            sim.close()

    def _execute_sweep(self, msg: dict, send) -> bool:
        """Returns True when the sweep was admitted and ran (False =
        quota-rejected, so the caller must not journal it as done)."""
        ctx = self._make_ctx(msg)
        sim = self._build_sim(msg, ctx)
        try:
            circuits = msg["circuits"]
            params = msg.get("params") or list(range(len(circuits)))
            estimate = sim.plan(
                circuits[0], keep_qubits=msg.get("keep_qubits")
            ).estimate()
            rejection = self._admit(
                ctx, estimate, points=len(circuits),
                key=msg.get("idempotency"),
            )
            if rejection is not None:
                send(rejection)
                return False
            count = 0
            for point in sim.sweep(
                lambda i: circuits[i],
                range(len(circuits)),
                keep_qubits=msg.get("keep_qubits"),
                reuse_cuts=msg.get("reuse_cuts", True),
            ):
                point = dataclasses.replace(point, params=params[point.index])
                send({"type": "sweep_point", "point": point})
                count += 1
        finally:
            sim.close()
        self.counters["completed"] += 1
        send({"type": "sweep_done", "count": count})
        return True

    # -- client side ---------------------------------------------------------

    async def _client_loop(self, hello, reader, writer) -> None:
        lock = asyncio.Lock()
        while True:
            message = await read_message(reader)
            if message is None:
                break
            kind = message.get("type")
            handler = getattr(self, f"_msg_{kind}", None)
            if handler is None:
                await self._send(writer, lock, {
                    "type": "error",
                    "error": f"unknown message type {kind!r}",
                })
                continue
            try:
                await handler(message, writer, lock)
            except (ConnectionError, OSError):
                raise
            except Exception as exc:
                self.counters["errors"] += 1
                await self._send(writer, lock, {
                    "type": "error",
                    "error": f"{type(exc).__name__}: {exc}",
                    "exception": exc,
                })

    async def _send(self, writer, lock, message: dict) -> None:
        async with lock:
            await write_message(writer, message)

    def _thread_sender(self, writer, lock):
        """A sync callable request threads use to stream replies out."""

        def send(message: dict) -> None:
            asyncio.run_coroutine_threadsafe(
                self._send(writer, lock, message), self.loop
            ).result()

        return send

    def _new_ticket(self) -> str:
        # uuid-based so tickets from a dead coordinator can never collide
        # with its successor's (a counter restarts at 1)
        return f"t-{uuid.uuid4().hex[:12]}"

    def _drain_rejection(self) -> dict | None:
        if not self._draining:
            return None
        self.counters["rejected"] += 1
        return {"type": "rejected", "reason": "draining", "retry_after": 1.0}

    async def _msg_run(self, message, writer, lock) -> None:
        key = message.get("idempotency")
        if key is not None:
            done = self._idem_done.get(key)
            if done is not None:
                # retry after a dropped reply frame: serve the memoised
                # reply, execute nothing, charge nothing
                self.counters["idempotent_hits"] += 1
                await self._send(writer, lock, done[0])
                return
            inflight = self._idem_futures.get(key)
            if inflight is not None:
                self.counters["idempotent_hits"] += 1
                reply = await asyncio.shield(inflight)
                await self._send(writer, lock, reply)
                return
        rejection = self._drain_rejection()
        if rejection is not None:
            await self._send(writer, lock, rejection)
            return
        self.counters["requests"] += 1
        ticket = self._new_ticket()
        if self.journal is not None:
            self.journal.record_request(
                ticket, "run", str(message.get("tenant", "default")),
                message, idempotency=key,
            )
        future = self.loop.create_future() if key is not None else None
        if future is not None:
            self._idem_futures[key] = future
        self._active_requests += 1
        try:
            try:
                reply = await self.loop.run_in_executor(
                    self._executor, self._execute_run, message
                )
            except Exception as exc:
                self.counters["errors"] += 1
                reply = {
                    "type": "error",
                    "error": f"{type(exc).__name__}: {exc}",
                    "exception": exc,
                }
        finally:
            self._active_requests -= 1
            if key is not None:
                self._idem_futures.pop(key, None)
        if reply.get("type") == "rejected":
            # rejections are not memoised: a later retry re-attempts
            if self.journal is not None:
                self.journal.acknowledge(ticket)
        else:
            if key is not None:
                self._idem_done[key] = (reply, time.monotonic())
            if self.journal is not None:
                self.journal.record_reply(
                    ticket, reply if key is not None else None
                )
        if future is not None and not future.done():
            future.set_result(reply)
        await self._send(writer, lock, reply)

    async def _msg_estimate(self, message, writer, lock) -> None:
        reply = await self.loop.run_in_executor(
            self._executor, self._execute_estimate, message
        )
        await self._send(writer, lock, reply)

    async def _msg_sweep(self, message, writer, lock) -> None:
        rejection = self._drain_rejection()
        if rejection is not None:
            await self._send(writer, lock, rejection)
            return
        self.counters["requests"] += 1
        ticket = self._new_ticket()
        if self.journal is not None:
            # the stream is client-driven (a retry resends the circuits and
            # dedupes points), so only admission is journaled, not the batch
            self.journal.record_request(
                ticket, "sweep", str(message.get("tenant", "default")),
                None, idempotency=message.get("idempotency"),
            )
        send = self._thread_sender(writer, lock)
        self._active_requests += 1
        try:
            try:
                admitted = await self.loop.run_in_executor(
                    self._executor, self._execute_sweep, message, send
                )
            except Exception as exc:
                self.counters["errors"] += 1
                if self.journal is not None:
                    self.journal.abandon(ticket)
                await self._send(writer, lock, {
                    "type": "error",
                    "error": f"{type(exc).__name__}: {exc}",
                    "exception": exc,
                })
                return
        finally:
            self._active_requests -= 1
        if self.journal is not None:
            if admitted:
                self.journal.record_reply(ticket, None)
            else:
                self.journal.acknowledge(ticket)

    async def _complete_submit(self, ticket: str, message: dict,
                               key: str | None = None) -> None:
        self._active_requests += 1
        try:
            try:
                reply = await self.loop.run_in_executor(
                    self._executor, self._execute_run, message
                )
            except Exception as exc:
                self.counters["errors"] += 1
                reply = {
                    "type": "error",
                    "error": f"{type(exc).__name__}: {exc}",
                    "exception": exc,
                }
        finally:
            self._active_requests -= 1
        self._tickets[ticket] = reply
        self._ticket_done[ticket] = time.monotonic()
        if reply.get("type") == "rejected" and key is not None:
            # quota rejections are not idempotent: a later resubmit with
            # the same key must get a fresh admission attempt
            if self._idem_tickets.get(key) == ticket:
                self._idem_tickets.pop(key, None)
        if self.journal is not None:
            self.journal.record_reply(ticket, reply)

    async def _msg_submit(self, message, writer, lock) -> None:
        key = message.get("idempotency")
        if key is not None:
            existing = self._idem_tickets.get(key)
            if existing is not None:
                # a retried submit after a dropped reply: same ticket, no
                # second execution, no second quota charge
                self.counters["idempotent_hits"] += 1
                await self._send(writer, lock, {
                    "type": "submitted",
                    "ticket": existing,
                    "duplicate": True,
                })
                return
        rejection = self._drain_rejection()
        if rejection is not None:
            await self._send(writer, lock, rejection)
            return
        self.counters["requests"] += 1
        ticket = self._new_ticket()
        self._tickets[ticket] = {"type": "pending"}
        if key is not None:
            self._idem_tickets[key] = ticket
        if self.journal is not None:
            self.journal.record_request(
                ticket, "submit", str(message.get("tenant", "default")),
                message, idempotency=key,
            )
        self._spawn(self._complete_submit(ticket, message, key))
        await self._send(writer, lock, {"type": "submitted", "ticket": ticket})

    async def _msg_poll(self, message, writer, lock) -> None:
        ticket = message.get("ticket")
        reply = self._tickets.get(ticket)
        if reply is None:
            # the ticket is kept until acknowledged or TTL-expired, so an
            # unknown ticket here really is unknown (or expired), not a
            # completed result discarded by an earlier dropped poll reply
            reply = {"type": "error", "error": f"unknown ticket {ticket!r}"}
        await self._send(writer, lock, dict(reply, ticket=ticket))

    async def _msg_ack(self, message, writer, lock) -> None:
        ticket = message.get("ticket")
        if self._tickets.pop(ticket, None) is not None:
            self.counters["acks"] += 1
        self._ticket_done.pop(ticket, None)
        if self.journal is not None:
            self.journal.acknowledge(ticket)
        await self._send(writer, lock, {"type": "acked", "ticket": ticket})

    async def _msg_ping(self, message, writer, lock) -> None:
        await self._send(writer, lock, {"type": "pong"})

    async def _msg_drain(self, message, writer, lock) -> None:
        await self._drain_async(timeout=float(message.get("timeout", 30.0)))
        await self._send(writer, lock, {
            "type": "drained",
            "stats": self.stats(),
        })

    async def _msg_stats(self, message, writer, lock) -> None:
        await self._send(writer, lock, {"type": "stats", "stats": self.stats()})

    async def _msg_shutdown(self, message, writer, lock) -> None:
        await self._send(writer, lock, {"type": "bye"})
        self._stopping.set()

    # -- cache tier service --------------------------------------------------

    async def _msg_cache_get(self, message, writer, lock) -> None:
        value = None
        if self.cache is not None:
            value = self.cache.get(tuple(message["key"]))
        await self._send(writer, lock, {"type": "cache_value", "value": value})

    async def _msg_cache_put(self, message, writer, lock) -> None:
        if self.cache is not None:
            self.cache.put(tuple(message["key"]), message["value"])
        await self._send(writer, lock, {"type": "cache_ok"})

    async def _msg_cache_contains(self, message, writer, lock) -> None:
        found = self.cache is not None and tuple(message["key"]) in self.cache
        await self._send(writer, lock, {"type": "cache_found", "found": found})

    async def _msg_cache_clear(self, message, writer, lock) -> None:
        if self.cache is not None:
            self.cache.clear()
        await self._send(writer, lock, {"type": "cache_ok"})

    async def _msg_cache_stats(self, message, writer, lock) -> None:
        stats = self.cache.stats() if self.cache is not None else {}
        await self._send(writer, lock, {"type": "cache_stats", "stats": stats})

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """A JSON-able snapshot of the whole service's state."""
        return {
            **self.counters,
            "queue_depth": len(self._queue),
            "jobs_pending": len(self._jobs),
            "tickets": len(self._tickets),
            "draining": self._draining,
            "workers": {
                handle.name: {
                    "slots": handle.slots,
                    "inflight": len(handle.inflight),
                    "peak_inflight": handle.peak_inflight,
                    "completed": handle.completed,
                }
                for handle in self._workers.values()
            },
            "max_inflight_per_worker": self.max_inflight_per_worker,
            "heartbeat": {
                "interval": self.heartbeat_interval,
                "misses": self.heartbeat_misses,
            },
            "faults": self.faults.summary(),
            "admission": self.admission.stats(),
            "journal": (
                self.journal.stats() if self.journal is not None else None
            ),
            "cache": self.cache.stats() if self.cache is not None else None,
        }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="repro execution-service coordinator",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument(
        "--quota-rate",
        type=float,
        default=None,
        help="per-tenant admission rate in cost units/second (default: off)",
    )
    parser.add_argument("--quota-capacity", type=float, default=None)
    parser.add_argument("--max-inflight-per-worker", type=int, default=4)
    parser.add_argument(
        "--cache-db",
        default=None,
        metavar="PATH",
        help="back the shared cache tier with a SQLite file",
    )
    parser.add_argument(
        "--journal-db",
        default=None,
        metavar="PATH",
        help=(
            "durable coordinator journal (SQLite WAL): accepted tickets, "
            "idempotency keys and quota levels survive a restart"
        ),
    )
    parser.add_argument(
        "--ticket-ttl",
        type=float,
        default=600.0,
        help="seconds completed tickets await acknowledgement before GC",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=5.0,
        help="worker liveness ping period in seconds (0 disables)",
    )
    parser.add_argument(
        "--heartbeat-misses",
        type=int,
        default=3,
        help="silent intervals before a worker is declared dead",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="SIGTERM grace: seconds to finish in-flight work before exit",
    )
    args = parser.parse_args(argv)

    cache = True
    if args.cache_db:
        from repro.backends.tiers import SQLiteCacheTier, TieredCache

        cache = TieredCache(back=SQLiteCacheTier(args.cache_db))

    coordinator = Coordinator(
        host=args.host,
        port=args.port,
        quota_rate=args.quota_rate,
        quota_capacity=args.quota_capacity,
        max_inflight_per_worker=args.max_inflight_per_worker,
        cache=cache,
        journal=args.journal_db,
        ticket_ttl=args.ticket_ttl,
        heartbeat_interval=args.heartbeat_interval or None,
        heartbeat_misses=args.heartbeat_misses,
    )

    async def serve():
        address = await coordinator.start()
        print(f"coordinator listening on {address}", flush=True)

        def on_sigterm():
            async def graceful():
                await coordinator._drain_async(timeout=args.drain_timeout)
                coordinator._stopping.set()

            coordinator._spawn(graceful())

        try:
            asyncio.get_running_loop().add_signal_handler(
                signal.SIGTERM, on_sigterm
            )
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-POSIX loop: SIGTERM stays a hard kill
        await coordinator.serve_forever()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(main())
