"""The asyncio coordinator: admission, dispatch, shared cache, fold-back.

One coordinator process owns the service: it accepts client requests and
worker registrations on a single listening socket (peers declare a role
in their hello), and runs the *control plane* of distributed execution
while the engine's own pipeline stays intact end to end:

1. **Admission.**  Every ``run`` / ``sweep`` is priced with the engine's
   zero-simulation dry run (``ExecutionPlan.estimate()`` — calibrated
   cost units) and offered to the per-tenant token buckets of
   :class:`~repro.service.admission.AdmissionController`.  A rejection
   is a 429-style reply carrying a ``retry_after`` hint and the quote
   itself; the client raises
   :class:`~repro.errors.QuotaExceededError`.
2. **Dispatch.**  An admitted request executes the normal
   ``plan → evaluate → reconstruct`` pipeline on a request thread, with
   one override: the evaluator's deduplicated variant jobs are handed to
   this coordinator (``FragmentEvaluator.evaluate_all(job_runner=...)``)
   instead of a local pool.  Jobs enter a priority queue (lower
   ``priority`` first, FIFO within a level) and flow to workers with
   free credit — at most ``min(worker slots, max_inflight_per_worker)``
   of a worker's jobs are ever in flight, which is the back-pressure
   that keeps one wide request from burying the fleet.
3. **Fault mapping.**  A worker disconnect charges each of its in-flight
   jobs one "crash" (the engine's heuristic attribution — innocent
   bystanders are requeued, a job that outlives
   ``max_job_crashes`` worker losses is quarantined); soft deadlines
   become "timeout" events with redispatch (first result wins, late
   duplicates are dropped); with no live workers at all the coordinator
   degrades to local execution and records "fallback".  All of it lands
   in the request's ``SuperSimResult.faults`` — the same ledger local
   runs use.
4. **Shared cache.**  Every request's engine is pointed at the
   coordinator's cache tier (any
   :class:`~repro.backends.tiers.CacheTier`), so concurrent sweeps from
   different clients deduplicate simulation work; the tier is also
   served directly over ``cache_get`` / ``cache_put`` for
   :class:`~repro.backends.tiers.RemoteCacheTier` clients.

Determinism survives distribution because job seeds derive from content
fingerprints before dispatch: *where* a job runs, how often it was
retried, and in what order results return never change a single bit of
the output.

``python -m repro.service.coordinator [--port P] [--quota-rate R] ...``
runs a standalone coordinator; tests and notebooks use
:meth:`Coordinator.start_in_thread`.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import heapq
import itertools
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.backends.cache import resolve_cache
from repro.errors import (
    BackendExecutionError,
    FaultEvent,
    JobTimeoutError,
    ServiceError,
    WorkerCrashError,
)
from repro.service.admission import AdmissionController
from repro.service.protocol import read_message, write_message

__all__ = ["Coordinator", "main"]


class _WorkerHandle:
    """Coordinator-side state for one connected worker."""

    __slots__ = (
        "wid",
        "name",
        "slots",
        "writer",
        "inflight",
        "peak_inflight",
        "completed",
        "alive",
    )

    def __init__(self, wid: int, name: str, slots: int, writer):
        self.wid = wid
        self.name = name
        self.slots = max(1, int(slots))
        self.writer = writer
        self.inflight: set[int] = set()
        self.peak_inflight = 0
        self.completed = 0
        self.alive = True


class _PendingJob:
    """One variant job in the coordinator's queue or in flight."""

    __slots__ = (
        "jid",
        "job",
        "ctx",
        "future",
        "events",
        "failures",
        "crashes",
        "worker",
        "deadline",
    )

    def __init__(self, jid: int, job, ctx, future):
        self.jid = jid
        self.job = job
        self.ctx = ctx
        self.future = future
        self.events: list[FaultEvent] = []
        self.failures = 0
        self.crashes = 0
        self.worker: int | None = None  # wid currently responsible
        self.deadline: float | None = None

    def record(self, kind: str, detail: str = "") -> None:
        self.events.append(
            FaultEvent(
                kind=kind,
                fragment_index=self.job.fragment_index,
                backend=self.job.backend.name,
                attempt=self.job.attempt,
                detail=detail,
            )
        )


class _RequestContext:
    """Everything one admitted request carries through execution."""

    __slots__ = ("tenant", "priority", "execution")

    def __init__(self, tenant: str, priority: int, execution):
        self.tenant = tenant
        self.priority = int(priority)
        self.execution = execution

    @property
    def policy(self) -> str:
        return self.execution.failure_policy

    def worker_policy(self) -> dict:
        """The retry budget shipped to workers with each job."""
        retries = 0 if self.policy == "raise" else self.execution.max_retries
        return {
            "max_retries": retries,
            "retry_backoff": self.execution.retry_backoff,
            "retry_backoff_cap": self.execution.retry_backoff_cap,
        }


class Coordinator:
    """The service control plane.  See the module docstring for the model.

    ``cache`` accepts anything :func:`~repro.backends.cache.resolve_cache`
    does — ``True`` (default: a fresh in-memory LRU), an existing
    :class:`~repro.backends.tiers.CacheTier` (e.g. a ``TieredCache`` over
    SQLite for durability), or ``False`` to disable sharing.
    ``quota_rate`` / ``quota_capacity`` enable admission control
    (cost units per second / burst); ``None`` admits everything.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        quota_rate: float | None = None,
        quota_capacity: float | None = None,
        max_inflight_per_worker: int = 4,
        cache=True,
        clock=time.monotonic,
        request_threads: int = 8,
    ):
        self.host = host
        self.port = port
        self.cache = resolve_cache(cache)
        self.admission = AdmissionController(
            quota_rate, quota_capacity, clock=clock
        )
        self.max_inflight_per_worker = max(1, int(max_inflight_per_worker))
        self.address: str | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self._server = None
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, request_threads), thread_name_prefix="svc-req"
        )
        self._workers: dict[int, _WorkerHandle] = {}
        self._jobs: dict[int, _PendingJob] = {}
        self._queue: list[tuple[int, int, int]] = []  # (priority, seq, jid)
        self._seq = itertools.count()
        self._ids = itertools.count(1)
        self._kick: asyncio.Event | None = None
        self._stopping: asyncio.Event | None = None
        self._tickets: dict[str, dict] = {}
        self._tasks: set[asyncio.Task] = set()
        self._thread: threading.Thread | None = None
        self.counters = {
            "requests": 0,
            "completed": 0,
            "errors": 0,
            "rejected": 0,
            "jobs_dispatched": 0,
            "jobs_completed": 0,
            "jobs_local": 0,
            "workers_lost": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> str:
        """Bind the listening socket; returns the bound ``host:port``."""
        self.loop = asyncio.get_running_loop()
        self._kick = asyncio.Event()
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        bound = self._server.sockets[0].getsockname()
        self.address = f"{bound[0]}:{bound[1]}"
        self._spawn(self._dispatch_loop())
        self._spawn(self._deadline_loop())
        return self.address

    async def serve_forever(self) -> None:
        await self._stopping.wait()
        await self._shutdown_async()

    async def _shutdown_async(self) -> None:
        self._stopping.set()
        for handle in list(self._workers.values()):
            try:
                await write_message(handle.writer, {"type": "stop"})
                handle.writer.close()
            except (ConnectionError, OSError, RuntimeError):
                pass
        for pending in list(self._jobs.values()):
            if not pending.future.done():
                pending.future.set_exception(
                    ServiceError("coordinator shut down with jobs pending")
                )
        self._jobs.clear()
        self._queue.clear()
        for task in list(self._tasks):
            task.cancel()
        self._server.close()
        await self._server.wait_closed()
        self._executor.shutdown(wait=False, cancel_futures=True)

    def _spawn(self, coro) -> asyncio.Task:
        task = self.loop.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    def start_in_thread(self) -> str:
        """Run the coordinator on a daemon thread; returns its address.

        The idiom for tests, notebooks and the demo: start, connect
        clients/workers, and :meth:`shutdown` when done.
        """
        started = threading.Event()
        failure: list[BaseException] = []

        def runner():
            async def body():
                try:
                    await self.start()
                finally:
                    started.set()
                await self.serve_forever()

            try:
                asyncio.run(body())
            except BaseException as exc:  # pragma: no cover - startup failure
                failure.append(exc)
                started.set()

        self._thread = threading.Thread(
            target=runner, name="svc-coordinator", daemon=True
        )
        self._thread.start()
        started.wait(timeout=30)
        if failure:
            raise failure[0]
        if self.address is None:
            raise ServiceError("coordinator failed to start within 30s")
        return self.address

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop a coordinator started with :meth:`start_in_thread`."""
        if self.loop is not None and self.loop.is_running():
            self.loop.call_soon_threadsafe(self._stopping.set)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def __enter__(self) -> "Coordinator":
        self.start_in_thread()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- connection handling -------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        try:
            hello = await read_message(reader)
            if not hello or hello.get("type") != "hello":
                writer.close()
                return
            await write_message(writer, {"type": "welcome", "version": 1})
            if hello.get("role") == "worker":
                await self._worker_loop(hello, reader, writer)
            else:
                await self._client_loop(hello, reader, writer)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - loop tearing down
                pass

    # -- worker side ---------------------------------------------------------

    async def _worker_loop(self, hello, reader, writer) -> None:
        wid = next(self._ids)
        handle = _WorkerHandle(
            wid,
            name=str(hello.get("name", f"worker-{wid}")),
            slots=int(hello.get("slots", 1)),
            writer=writer,
        )
        self._workers[wid] = handle
        self._kick.set()
        try:
            while True:
                message = await read_message(reader)
                if message is None:
                    break
                kind = message.get("type")
                if kind == "job_result":
                    self._on_job_result(handle, message)
                elif kind == "job_error":
                    self._on_job_error(handle, message)
                # pong / worker_error need no bookkeeping
        except (ConnectionError, OSError):
            pass
        finally:
            self._on_worker_lost(handle)

    def _credit(self, handle: _WorkerHandle) -> int:
        limit = min(handle.slots, self.max_inflight_per_worker)
        return limit - len(handle.inflight)

    def _on_job_result(self, handle: _WorkerHandle, message: dict) -> None:
        jid = message["jid"]
        handle.inflight.discard(jid)
        handle.completed += 1
        self._kick.set()
        pending = self._jobs.pop(jid, None)
        if pending is None:
            return  # late duplicate after a timeout redispatch: first wins
        pending.failures += int(message.get("failures", 0))
        pending.events.extend(message.get("faults", ()))
        self.counters["jobs_completed"] += 1
        if not pending.future.done():
            pending.future.set_result(message["value"])

    def _on_job_error(self, handle: _WorkerHandle, message: dict) -> None:
        jid = message["jid"]
        handle.inflight.discard(jid)
        self._kick.set()
        pending = self._jobs.pop(jid, None)
        if pending is None:
            return
        pending.failures += int(message.get("failures", 1))
        pending.events.extend(message.get("faults", ()))
        cause = message.get("exception")
        if pending.ctx.policy == "degrade":
            # the worker exhausted its retry budget on the assigned
            # backend; last resort is the coordinator's own CPU
            pending.record(
                "fallback",
                detail=(
                    f"worker {handle.name} exhausted retries "
                    f"({message.get('error', '?')}); re-running on coordinator"
                ),
            )
            self._spawn(self._run_local(pending))
            return
        exc = BackendExecutionError(
            f"worker-side execution failed: {message.get('error', '?')}",
            fragment_index=pending.job.fragment_index,
            backend=pending.job.backend.name,
            attempts=pending.failures + pending.crashes,
        )
        if isinstance(cause, BaseException):
            exc.__cause__ = cause
        if not pending.future.done():
            pending.future.set_exception(exc)

    def _on_worker_lost(self, handle: _WorkerHandle) -> None:
        if not handle.alive:
            return
        handle.alive = False
        self._workers.pop(handle.wid, None)
        if self._stopping.is_set():
            return
        if handle.inflight:
            self.counters["workers_lost"] += 1
        for jid in list(handle.inflight):
            pending = self._jobs.get(jid)
            if pending is None:
                continue
            pending.worker = None
            pending.deadline = None
            pending.crashes += 1
            pending.record(
                "crash",
                detail=(
                    f"worker {handle.name} disconnected with this job in "
                    f"flight"
                ),
            )
            self._after_crash(pending, f"worker {handle.name} lost")
        handle.inflight.clear()
        self._kick.set()

    def _after_crash(self, pending: _PendingJob, detail: str) -> None:
        """Apply the crash policy to one charged job (engine semantics)."""
        ctx = pending.ctx
        if ctx.policy == "raise":
            if not pending.future.done():
                pending.future.set_exception(
                    WorkerCrashError(
                        f"worker crashed with this job in flight ({detail})",
                        fragment_index=pending.job.fragment_index,
                        backend=pending.job.backend.name,
                        attempts=pending.failures + pending.crashes,
                    )
                )
            self._jobs.pop(pending.jid, None)
            return
        if pending.crashes <= ctx.execution.max_job_crashes:
            self._requeue(pending)
            return
        pending.record(
            "quarantine",
            detail=f"{pending.crashes} worker losses with this job in flight",
        )
        if ctx.policy == "degrade":
            pending.record(
                "fallback", detail="quarantined job re-running on coordinator"
            )
            self._spawn(self._run_local(pending))
            return
        if not pending.future.done():
            pending.future.set_exception(
                WorkerCrashError(
                    f"job quarantined after {pending.crashes} worker losses "
                    f"({detail})",
                    fragment_index=pending.job.fragment_index,
                    backend=pending.job.backend.name,
                    attempts=pending.failures + pending.crashes,
                )
            )
        self._jobs.pop(pending.jid, None)

    # -- dispatch ------------------------------------------------------------

    def _requeue(self, pending: _PendingJob) -> None:
        # known prior failures feed the attempt counter, so a chaos
        # schedule bounded by fail_attempts converges on redispatch
        pending.job.attempt = pending.failures + pending.crashes
        heapq.heappush(
            self._queue, (pending.ctx.priority, next(self._seq), pending.jid)
        )
        self._kick.set()

    async def _dispatch_loop(self) -> None:
        while not self._stopping.is_set():
            await self._kick.wait()
            self._kick.clear()
            await self._pump()

    def _pick_worker(self) -> _WorkerHandle | None:
        best = None
        best_credit = 0
        for handle in self._workers.values():
            credit = self._credit(handle)
            if credit > best_credit:
                best, best_credit = handle, credit
        return best

    async def _pump(self) -> None:
        while self._queue:
            if not self._workers:
                # degrade-to-local: no fleet, the coordinator is the fleet
                _, _, jid = heapq.heappop(self._queue)
                pending = self._jobs.get(jid)
                if pending is None or pending.worker is not None:
                    continue
                pending.record(
                    "fallback",
                    detail="no live workers; executing on coordinator",
                )
                self._spawn(self._run_local(pending))
                continue
            handle = self._pick_worker()
            if handle is None:
                return  # every worker at its in-flight bound: back-pressure
            _, _, jid = heapq.heappop(self._queue)
            pending = self._jobs.get(jid)
            if pending is None or pending.worker is not None:
                continue  # cancelled batch or duplicate queue entry
            await self._send_job(handle, pending)

    async def _send_job(self, handle: _WorkerHandle, pending: _PendingJob) -> None:
        pending.worker = handle.wid
        handle.inflight.add(pending.jid)
        handle.peak_inflight = max(handle.peak_inflight, len(handle.inflight))
        if pending.job.timeout is not None:
            pending.deadline = self.loop.time() + pending.job.timeout
        self.counters["jobs_dispatched"] += 1
        try:
            await write_message(
                handle.writer,
                {
                    "type": "job",
                    "jid": pending.jid,
                    "job": pending.job,
                    "policy": pending.ctx.worker_policy(),
                },
            )
        except (ConnectionError, OSError):
            self._on_worker_lost(handle)

    async def _deadline_loop(self) -> None:
        """Soft-deadline monitor: redispatch overdue jobs (first result wins)."""
        while not self._stopping.is_set():
            await asyncio.sleep(0.05)
            now = self.loop.time()
            for pending in list(self._jobs.values()):
                if pending.deadline is None or pending.deadline > now:
                    continue
                handle = self._workers.get(pending.worker)
                if handle is not None:
                    handle.inflight.discard(pending.jid)
                pending.worker = None
                pending.deadline = None
                ctx = pending.ctx
                if ctx.policy == "raise":
                    self._jobs.pop(pending.jid, None)
                    if not pending.future.done():
                        pending.future.set_exception(
                            JobTimeoutError(
                                "variant exceeded its soft deadline on a "
                                "worker",
                                timeout=pending.job.timeout,
                                fragment_index=pending.job.fragment_index,
                                backend=pending.job.backend.name,
                            )
                        )
                    continue
                pending.failures += 1
                pending.record(
                    "timeout",
                    detail=(
                        f"soft deadline {pending.job.timeout:.3g}s exceeded "
                        f"on worker; redispatching"
                    ),
                )
                if pending.failures <= ctx.execution.max_retries:
                    self._requeue(pending)
                else:
                    self._jobs.pop(pending.jid, None)
                    if not pending.future.done():
                        pending.future.set_exception(
                            JobTimeoutError(
                                "soft deadline exceeded and retries "
                                "exhausted",
                                timeout=pending.job.timeout,
                                fragment_index=pending.job.fragment_index,
                                backend=pending.job.backend.name,
                                attempts=pending.failures + pending.crashes,
                            )
                        )

    # -- local (degraded) execution -----------------------------------------

    def _execute_local(self, pending: _PendingJob):
        from repro.core.evaluator import _execute_job

        ctx = pending.ctx
        job = pending.job
        job.in_process = False  # a chaos crash must not kill the coordinator
        retries = 0 if ctx.policy == "raise" else ctx.execution.max_retries
        local_failures = 0
        while True:
            job.attempt = pending.failures + pending.crashes
            try:
                return _execute_job(job)
            except Exception as exc:
                pending.failures += 1
                local_failures += 1
                if local_failures > retries:
                    raise
                pending.record(
                    "retry",
                    detail=f"{type(exc).__name__}: {exc} (coordinator-local)",
                )
                backoff = ctx.execution.retry_backoff
                if backoff > 0:
                    time.sleep(
                        min(
                            ctx.execution.retry_backoff_cap,
                            backoff * (2.0 ** (local_failures - 1)),
                        )
                    )

    async def _run_local(self, pending: _PendingJob) -> None:
        self.counters["jobs_local"] += 1
        try:
            value = await self.loop.run_in_executor(
                self._executor, self._execute_local, pending
            )
        except Exception as exc:
            self._jobs.pop(pending.jid, None)
            if not pending.future.done():
                pending.future.set_exception(
                    BackendExecutionError(
                        f"coordinator-local execution failed: {exc!r}",
                        fragment_index=pending.job.fragment_index,
                        backend=pending.job.backend.name,
                        attempts=pending.failures + pending.crashes,
                    )
                )
            return
        self._jobs.pop(pending.jid, None)
        self.counters["jobs_completed"] += 1
        if not pending.future.done():
            pending.future.set_result(value)

    # -- the job_runner bridge (request threads <-> event loop) --------------

    def _job_runner_for(self, ctx: _RequestContext):
        def runner(jobs, faults):
            if not jobs:
                return {}
            future = asyncio.run_coroutine_threadsafe(
                self._run_batch(ctx, list(jobs)), self.loop
            )
            results, events = future.result()
            faults.events.extend(events)
            return results

        return runner

    async def _run_batch(self, ctx: _RequestContext, jobs) -> tuple[dict, list]:
        pendings: list[_PendingJob] = []
        for job in jobs:
            jid = next(self._ids)
            pending = _PendingJob(jid, job, ctx, self.loop.create_future())
            self._jobs[jid] = pending
            heapq.heappush(self._queue, (ctx.priority, next(self._seq), jid))
            pendings.append(pending)
        self._kick.set()
        outcomes = await asyncio.gather(
            *[p.future for p in pendings], return_exceptions=True
        )
        failure = next(
            (o for o in outcomes if isinstance(o, BaseException)), None
        )
        if failure is not None:
            # abandon the rest of this batch: queued entries are skipped at
            # dispatch, in-flight results for dropped jids are ignored
            for pending in pendings:
                self._jobs.pop(pending.jid, None)
            raise failure
        events = [event for p in pendings for event in p.events]
        return (
            {p.job.key: value for p, value in zip(pendings, outcomes)},
            events,
        )

    # -- request execution (thread side) -------------------------------------

    def _build_sim(self, msg: dict, ctx: _RequestContext):
        from repro.core.supersim import SuperSim

        sim = SuperSim(
            cut=msg.get("cut"),
            sampling=msg.get("sampling"),
            execution=ctx.execution,
            reconstruction=msg.get("reconstruction"),
        )
        sim.variant_cache = self.cache
        sim._job_runner = self._job_runner_for(ctx)
        return sim

    def _make_ctx(self, msg: dict) -> _RequestContext:
        from repro.core.config import ExecutionConfig

        execution = msg.get("execution") or ExecutionConfig()
        return _RequestContext(
            tenant=str(msg.get("tenant", "default")),
            priority=int(msg.get("priority", 0)),
            execution=execution,
        )

    def _admit(self, ctx: _RequestContext, estimate, points: int = 1):
        cost = estimate.total_cost * max(1, points)
        ok, retry_after = self.admission.admit(ctx.tenant, cost)
        if ok:
            return None
        self.counters["rejected"] += 1
        return {
            "type": "rejected",
            "retry_after": retry_after,
            "estimate": estimate.to_dict(),
            "cost": cost,
        }

    def _execute_run(self, msg: dict) -> dict:
        ctx = self._make_ctx(msg)
        sim = self._build_sim(msg, ctx)
        plan = sim.plan(
            msg["circuit"],
            keep_qubits=msg.get("keep_qubits"),
            cuts=msg.get("cuts"),
        )
        estimate = plan.estimate()
        rejection = self._admit(ctx, estimate)
        if rejection is not None:
            return rejection
        result = plan.execute()
        self.counters["completed"] += 1
        return {
            "type": "result",
            "result": result,
            "estimate": estimate.to_dict(),
        }

    def _execute_estimate(self, msg: dict) -> dict:
        ctx = self._make_ctx(msg)
        sim = self._build_sim(msg, ctx)
        plan = sim.plan(
            msg["circuit"],
            keep_qubits=msg.get("keep_qubits"),
            cuts=msg.get("cuts"),
        )
        return {"type": "estimate", "estimate": plan.estimate().to_dict()}

    def _execute_sweep(self, msg: dict, send) -> None:
        ctx = self._make_ctx(msg)
        sim = self._build_sim(msg, ctx)
        circuits = msg["circuits"]
        params = msg.get("params") or list(range(len(circuits)))
        estimate = sim.plan(
            circuits[0], keep_qubits=msg.get("keep_qubits")
        ).estimate()
        rejection = self._admit(ctx, estimate, points=len(circuits))
        if rejection is not None:
            send(rejection)
            return
        count = 0
        for point in sim.sweep(
            lambda i: circuits[i],
            range(len(circuits)),
            keep_qubits=msg.get("keep_qubits"),
            reuse_cuts=msg.get("reuse_cuts", True),
        ):
            point = dataclasses.replace(point, params=params[point.index])
            send({"type": "sweep_point", "point": point})
            count += 1
        self.counters["completed"] += 1
        send({"type": "sweep_done", "count": count})

    # -- client side ---------------------------------------------------------

    async def _client_loop(self, hello, reader, writer) -> None:
        lock = asyncio.Lock()
        while True:
            message = await read_message(reader)
            if message is None:
                break
            kind = message.get("type")
            handler = getattr(self, f"_msg_{kind}", None)
            if handler is None:
                await self._send(writer, lock, {
                    "type": "error",
                    "error": f"unknown message type {kind!r}",
                })
                continue
            try:
                await handler(message, writer, lock)
            except (ConnectionError, OSError):
                raise
            except Exception as exc:
                self.counters["errors"] += 1
                await self._send(writer, lock, {
                    "type": "error",
                    "error": f"{type(exc).__name__}: {exc}",
                    "exception": exc,
                })

    async def _send(self, writer, lock, message: dict) -> None:
        async with lock:
            await write_message(writer, message)

    def _thread_sender(self, writer, lock):
        """A sync callable request threads use to stream replies out."""

        def send(message: dict) -> None:
            asyncio.run_coroutine_threadsafe(
                self._send(writer, lock, message), self.loop
            ).result()

        return send

    async def _msg_run(self, message, writer, lock) -> None:
        self.counters["requests"] += 1
        try:
            reply = await self.loop.run_in_executor(
                self._executor, self._execute_run, message
            )
        except Exception as exc:
            self.counters["errors"] += 1
            reply = {
                "type": "error",
                "error": f"{type(exc).__name__}: {exc}",
                "exception": exc,
            }
        await self._send(writer, lock, reply)

    async def _msg_estimate(self, message, writer, lock) -> None:
        reply = await self.loop.run_in_executor(
            self._executor, self._execute_estimate, message
        )
        await self._send(writer, lock, reply)

    async def _msg_sweep(self, message, writer, lock) -> None:
        self.counters["requests"] += 1
        send = self._thread_sender(writer, lock)
        try:
            await self.loop.run_in_executor(
                self._executor, self._execute_sweep, message, send
            )
        except Exception as exc:
            self.counters["errors"] += 1
            await self._send(writer, lock, {
                "type": "error",
                "error": f"{type(exc).__name__}: {exc}",
                "exception": exc,
            })

    async def _msg_submit(self, message, writer, lock) -> None:
        self.counters["requests"] += 1
        ticket = f"t{next(self._ids)}"
        self._tickets[ticket] = {"type": "pending"}

        async def complete():
            try:
                reply = await self.loop.run_in_executor(
                    self._executor, self._execute_run, message
                )
            except Exception as exc:
                self.counters["errors"] += 1
                reply = {
                    "type": "error",
                    "error": f"{type(exc).__name__}: {exc}",
                    "exception": exc,
                }
            self._tickets[ticket] = reply

        self._spawn(complete())
        await self._send(writer, lock, {"type": "submitted", "ticket": ticket})

    async def _msg_poll(self, message, writer, lock) -> None:
        ticket = message.get("ticket")
        reply = self._tickets.get(ticket)
        if reply is None:
            reply = {"type": "error", "error": f"unknown ticket {ticket!r}"}
        elif reply.get("type") != "pending":
            self._tickets.pop(ticket, None)
        await self._send(writer, lock, dict(reply, ticket=ticket))

    async def _msg_stats(self, message, writer, lock) -> None:
        await self._send(writer, lock, {"type": "stats", "stats": self.stats()})

    async def _msg_shutdown(self, message, writer, lock) -> None:
        await self._send(writer, lock, {"type": "bye"})
        self._stopping.set()

    # -- cache tier service --------------------------------------------------

    async def _msg_cache_get(self, message, writer, lock) -> None:
        value = None
        if self.cache is not None:
            value = self.cache.get(tuple(message["key"]))
        await self._send(writer, lock, {"type": "cache_value", "value": value})

    async def _msg_cache_put(self, message, writer, lock) -> None:
        if self.cache is not None:
            self.cache.put(tuple(message["key"]), message["value"])
        await self._send(writer, lock, {"type": "cache_ok"})

    async def _msg_cache_contains(self, message, writer, lock) -> None:
        found = self.cache is not None and tuple(message["key"]) in self.cache
        await self._send(writer, lock, {"type": "cache_found", "found": found})

    async def _msg_cache_clear(self, message, writer, lock) -> None:
        if self.cache is not None:
            self.cache.clear()
        await self._send(writer, lock, {"type": "cache_ok"})

    async def _msg_cache_stats(self, message, writer, lock) -> None:
        stats = self.cache.stats() if self.cache is not None else {}
        await self._send(writer, lock, {"type": "cache_stats", "stats": stats})

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """A JSON-able snapshot of the whole service's state."""
        return {
            **self.counters,
            "queue_depth": len(self._queue),
            "jobs_pending": len(self._jobs),
            "workers": {
                handle.name: {
                    "slots": handle.slots,
                    "inflight": len(handle.inflight),
                    "peak_inflight": handle.peak_inflight,
                    "completed": handle.completed,
                }
                for handle in self._workers.values()
            },
            "max_inflight_per_worker": self.max_inflight_per_worker,
            "admission": self.admission.stats(),
            "cache": self.cache.stats() if self.cache is not None else None,
        }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="repro execution-service coordinator",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument(
        "--quota-rate",
        type=float,
        default=None,
        help="per-tenant admission rate in cost units/second (default: off)",
    )
    parser.add_argument("--quota-capacity", type=float, default=None)
    parser.add_argument("--max-inflight-per-worker", type=int, default=4)
    parser.add_argument(
        "--cache-db",
        default=None,
        metavar="PATH",
        help="back the shared cache tier with a SQLite file",
    )
    args = parser.parse_args(argv)

    cache = True
    if args.cache_db:
        from repro.backends.tiers import SQLiteCacheTier, TieredCache

        cache = TieredCache(back=SQLiteCacheTier(args.cache_db))

    coordinator = Coordinator(
        host=args.host,
        port=args.port,
        quota_rate=args.quota_rate,
        quota_capacity=args.quota_capacity,
        max_inflight_per_worker=args.max_inflight_per_worker,
        cache=cache,
    )

    async def serve():
        address = await coordinator.start()
        print(f"coordinator listening on {address}", flush=True)
        await coordinator.serve_forever()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(main())
