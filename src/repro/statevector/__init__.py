"""Exact dense statevector simulation (the paper's SV baseline)."""

from repro.statevector.simulator import StatevectorSimulator

__all__ = ["StatevectorSimulator"]
