"""Dense statevector simulator.

The exact reference backend: stores all ``2^n`` amplitudes, so it is the
ground truth for every other simulator's tests and the "SV simulator"
baseline of the paper's Figs. 1, 3, 6 and 7.  Memory grows as ``2^n``; the
simulator refuses circuits wider than ``max_qubits`` (default 26).
"""

from __future__ import annotations

import numpy as np

from repro._tensor import apply_matrix_to_axes
from repro.analysis.distributions import Distribution
from repro.circuits.circuit import Circuit
from repro.paulis.pauli import PauliString


class StatevectorSimulator:
    """Exact simulation by dense state evolution."""

    name = "statevector"

    def __init__(self, max_qubits: int = 26):
        self.max_qubits = max_qubits

    def state(
        self, circuit: Circuit, initial_state: np.ndarray | None = None
    ) -> np.ndarray:
        """Final state as a flat array of ``2^n`` amplitudes (qubit 0 = MSB)."""
        n = circuit.n_qubits
        if n > self.max_qubits:
            raise ValueError(
                f"{n} qubits exceeds statevector limit of {self.max_qubits}"
            )
        if initial_state is None:
            psi = np.zeros((2,) * n, dtype=complex)
            psi[(0,) * n] = 1.0
        else:
            psi = np.asarray(initial_state, dtype=complex).reshape((2,) * n).copy()
        for op in circuit.ops:
            psi = apply_matrix_to_axes(psi, op.gate.matrix, op.qubits)
        return psi.reshape(-1)

    def probabilities(self, circuit: Circuit) -> Distribution:
        """Exact outcome distribution over the circuit's measured qubits."""
        n = circuit.n_qubits
        psi = self.state(circuit).reshape((2,) * n)
        probs = np.abs(psi) ** 2
        measured = circuit.measured_qubits
        drop = tuple(q for q in range(n) if q not in measured)
        if drop:
            probs = probs.sum(axis=drop)
        return Distribution.from_array(probs.reshape(-1))

    def sample(
        self,
        circuit: Circuit,
        shots: int,
        rng: np.random.Generator | int | None = None,
    ) -> Distribution:
        """Empirical distribution from ``shots`` samples (a sampler, per §VI)."""
        return self.probabilities(circuit).resample(shots, rng)

    def expectation(self, circuit: Circuit, pauli: PauliString) -> float:
        """Exact ``<psi| P |psi>`` of the final state (must be real)."""
        if pauli.n != circuit.n_qubits:
            raise ValueError("Pauli width does not match circuit")
        psi = self.state(circuit)
        phi = psi.reshape((2,) * circuit.n_qubits)
        for q in range(pauli.n):
            label = pauli.label()[q]
            if label == "I":
                continue
            from repro.circuits import gates

            mat = {"X": gates.X, "Y": gates.Y, "Z": gates.Z}[label].matrix
            phi = apply_matrix_to_axes(phi, mat, (q,))
        value = np.vdot(psi, phi.reshape(-1)) * pauli.scalar()
        return float(value.real)
