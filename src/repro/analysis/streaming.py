"""Online accumulation of outcome streams at fixed memory.

Wide cut circuits produce more distinct outcomes than any joint object
can hold, but what analyses actually consume is small: a handful of
marginals (QAOA edges, per-qubit readout) and the heaviest outcomes.
:class:`StreamingAccumulator` folds batches of sampled bit rows — e.g.
per-variant shot matrices straight off a sampler — into exactly those
summaries, never building the joint distribution:

* each tracked *marginal* is a dense ``2**len(positions)`` float array
  updated with one ``np.bincount`` per batch;
* the *top-k* tracker is a bounded counter table (the classic
  space-saving sketch shape): when it outgrows ``capacity`` the lightest
  entries are evicted, and ``evicted_weight`` bounds how much mass any
  surviving count may be missing.

Determinism: ``update`` folds batches with pure array addition, so a
fixed sequence of batches gives bit-for-bit identical state regardless
of batch sizes.  For parallel producers, give each worker its *own*
accumulator and :meth:`merge` the partials in a canonical (batch-index)
order — merging is array addition plus a key-sorted top-table fold, so
the merged state is identical to the serial run whenever no eviction
occurred, and reproducible for a fixed merge order always.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.distributions import Distribution, pack_bit_rows

#: widest dense marginal array the accumulator will allocate (2^26 floats)
_MAX_MARGINAL_BITS = 26


class StreamingAccumulator:
    """Fold sampled outcome batches into marginals and top-k counts.

    Parameters
    ----------
    n_bits:
        Width of the incoming outcomes (bits per row / key).
    marginals:
        Iterable of bit-position sequences to track dense marginals over
        (each at most 26 positions; more can be added later with
        :meth:`track_marginal`).
    top_k:
        How many heaviest outcomes :meth:`top_distribution` should be
        able to return; 0 disables outcome tracking entirely (marginals
        only — then memory is independent of the stream).
    capacity:
        Size of the bounded outcome-counter table (default
        ``max(4 * top_k, 1024)``).  Larger capacity tightens the
        ``evicted_weight`` error bound.
    """

    def __init__(
        self,
        n_bits: int,
        marginals=(),
        top_k: int = 0,
        capacity: int | None = None,
    ):
        self.n_bits = int(n_bits)
        if self.n_bits < 1:
            raise ValueError("n_bits must be at least 1")
        if top_k < 0:
            raise ValueError("top_k must be non-negative")
        self.top_k = int(top_k)
        if capacity is None:
            capacity = max(4 * self.top_k, 1024) if self.top_k else 0
        if self.top_k and capacity < self.top_k:
            raise ValueError("capacity must be at least top_k")
        self.capacity = int(capacity)
        self._marginals: dict[tuple[int, ...], np.ndarray] = {}
        for positions in marginals:
            self.track_marginal(positions)
        self._top: dict[int, float] = {}
        self.total_weight = 0.0
        self.num_records = 0
        #: upper bound on the mass any surviving top count may be missing
        #: (grows only when the bounded counter table evicts entries)
        self.evicted_weight = 0.0

    # -- configuration -------------------------------------------------------

    def track_marginal(self, positions) -> tuple[int, ...]:
        """Start tracking the marginal over ``positions`` (idempotent).

        Must be called before any batch whose mass should count toward
        it; returns the canonical key usable with :meth:`marginal`.
        """
        key = tuple(int(p) for p in positions)
        if not key:
            raise ValueError("marginal needs at least one bit position")
        if len(set(key)) != len(key):
            raise ValueError("marginal positions contain duplicates")
        for p in key:
            if not 0 <= p < self.n_bits:
                raise ValueError(f"bit position {p} out of range")
        if len(key) > _MAX_MARGINAL_BITS:
            raise ValueError(
                f"marginal over {len(key)} bits needs a dense 2**{len(key)} "
                f"array (limit: {_MAX_MARGINAL_BITS}); track narrower windows"
            )
        self._marginals.setdefault(key, np.zeros(2 ** len(key)))
        return key

    # -- folding -------------------------------------------------------------

    def update(self, bits=None, keys=None, weights=None) -> None:
        """Fold one batch of outcomes.

        ``bits`` is a ``(rows, n_bits)`` bool matrix (the native shape of
        sampled variant data); alternatively ``keys`` is an iterable of
        integer outcomes (any width — Python ints beyond 62 bits).
        ``weights`` defaults to one per row (shot counting).
        """
        if (bits is None) == (keys is None):
            raise ValueError("pass exactly one of bits= or keys=")
        if bits is not None:
            bits = np.asarray(bits, dtype=bool)
            if bits.ndim != 2 or bits.shape[1] != self.n_bits:
                raise ValueError(
                    f"expected a (rows, {self.n_bits}) bit matrix, "
                    f"got shape {bits.shape}"
                )
            rows = bits.shape[0]
        else:
            keys = [int(k) for k in keys]
            rows = len(keys)
        if weights is None:
            weights = np.ones(rows)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (rows,):
                raise ValueError("weights length does not match batch rows")
        if rows == 0:
            return

        for positions, acc in self._marginals.items():
            if bits is not None:
                idx = pack_bit_rows(bits[:, positions]).astype(np.int64)
            else:
                width = len(positions)
                idx = np.fromiter(
                    (
                        sum(
                            ((key >> (self.n_bits - 1 - p)) & 1)
                            << (width - 1 - j)
                            for j, p in enumerate(positions)
                        )
                        for key in keys
                    ),
                    dtype=np.int64,
                    count=rows,
                )
            acc += np.bincount(idx, weights=weights, minlength=acc.size)

        if self.top_k:
            if bits is not None:
                batch_keys = pack_bit_rows(bits)  # object ints beyond 62 bits
            else:
                batch_keys = keys
            folded, sums = self._fold_batch(batch_keys, weights)
            top = self._top
            for key, weight in zip(folded, sums):
                top[key] = top.get(key, 0.0) + weight
            if len(top) > self.capacity:
                self._evict()

        self.total_weight += float(weights.sum())
        self.num_records += rows

    @staticmethod
    def _fold_batch(batch_keys, weights):
        """Within-batch deduplication in ascending key order."""
        sums: dict[int, float] = {}
        for key, weight in zip(batch_keys, weights):
            key = int(key)
            sums[key] = sums.get(key, 0.0) + float(weight)
        folded = sorted(sums)
        return folded, [sums[k] for k in folded]

    def _evict(self) -> None:
        """Shrink the counter table to the heaviest ``capacity // 2`` keys.

        Survivors are chosen by (weight desc, key asc) — fully
        deterministic — and the heaviest evicted count raises
        ``evicted_weight``, the standard space-saving error bound on any
        later-reported top count.
        """
        keep = max(self.capacity // 2, self.top_k)
        ranked = sorted(self._top.items(), key=lambda kv: (-kv[1], kv[0]))
        evicted = ranked[keep:]
        if evicted:
            self.evicted_weight = max(self.evicted_weight, evicted[0][1])
        self._top = dict(ranked[:keep])

    def merge(self, other: "StreamingAccumulator") -> "StreamingAccumulator":
        """Fold another accumulator's state into this one (in place).

        The partner must track the same width and marginal set.  Merging
        per-worker partials in a canonical order (e.g. ascending batch
        index) gives bit-for-bit reproducible totals at any parallelism.
        """
        if other.n_bits != self.n_bits:
            raise ValueError("cannot merge accumulators of different widths")
        if set(other._marginals) != set(self._marginals):
            raise ValueError("cannot merge accumulators tracking different marginals")
        for positions, acc in self._marginals.items():
            acc += other._marginals[positions]
        top = self._top
        for key in sorted(other._top):
            top[key] = top.get(key, 0.0) + other._top[key]
        if self.capacity and len(top) > self.capacity:
            self._evict()
        self.total_weight += other.total_weight
        self.num_records += other.num_records
        self.evicted_weight = max(self.evicted_weight, other.evicted_weight)
        return self

    # -- summaries -----------------------------------------------------------

    def marginal(self, positions) -> Distribution:
        """The tracked marginal over ``positions``, normalised."""
        key = tuple(int(p) for p in positions)
        if key not in self._marginals:
            raise KeyError(f"marginal {key} was not tracked")
        if self.total_weight <= 0:
            raise ValueError("no mass accumulated yet")
        return Distribution.from_array(self._marginals[key] / self.total_weight)

    def marginal_array(self, positions) -> np.ndarray:
        """Raw (unnormalised) accumulated mass over ``positions``."""
        key = tuple(int(p) for p in positions)
        if key not in self._marginals:
            raise KeyError(f"marginal {key} was not tracked")
        return self._marginals[key].copy()

    def top_distribution(self, k: int | None = None) -> Distribution:
        """The ``k`` (default ``top_k``) heaviest outcomes, as probabilities.

        Calibrated, not renormalised: values sum to the covered fraction
        of the stream, and each value may undercount by at most
        ``evicted_weight / total_weight``.
        """
        if not self.top_k:
            raise ValueError("top-k tracking is disabled (top_k=0)")
        if self.total_weight <= 0:
            raise ValueError("no mass accumulated yet")
        k = self.top_k if k is None else int(k)
        ranked = sorted(self._top.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
        return Distribution(
            self.n_bits,
            {key: weight / self.total_weight for key, weight in ranked},
        )
