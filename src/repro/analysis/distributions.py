"""Probability distributions over measurement outcomes.

A :class:`Distribution` maps bitstrings to probabilities.  Bitstrings are
stored as Python integers with the **first measured qubit in the most
significant bit** — the same big-endian convention used by the statevector
simulator (qubit 0 is the most significant index bit).

The paper quantifies accuracy with the Hellinger fidelity, evaluated on the
complete distribution for sparse outputs and on single-qubit marginals for
dense (VQA-style) outputs; both metrics live here.

Storage is array-native: a distribution holds packed parallel arrays —
sorted outcome keys plus ``float64`` probabilities — instead of a Python
dict, so the hot operations (marginalisation, sampling, per-bit marginals,
fidelity metrics) are single NumPy kernels.  Outcomes up to 62 bits pack
into one ``uint64`` key per entry; wider outcomes use the chunked-key
scheme of :func:`pack_bit_rows_chunked` (62 bits per ``uint64`` column,
most-significant chunk first).  The mapping-like surface (``probs``,
``__getitem__``, iteration over ``(outcome, p)`` pairs) is preserved on
top of the arrays.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro import kernels as _kernels

#: bits per packed key chunk (62 keeps every per-chunk dot product exact
#: in uint64 arithmetic, with headroom for the weight accumulation)
CHUNK_BITS = 62


def _num_chunks(n_bits: int) -> int:
    return max(1, -(-n_bits // CHUNK_BITS))


def _chunk_widths(n_bits: int) -> list[int]:
    """Bit widths of each key chunk, most-significant chunk first."""
    return [
        min(CHUNK_BITS, n_bits - CHUNK_BITS * j) for j in range(_num_chunks(n_bits))
    ]


def pack_bit_rows(bits: np.ndarray) -> np.ndarray:
    """Per-row big-endian integer keys of a ``(rows, width)`` bit matrix.

    A packed-bits dot product replaces per-row Python loops: widths below
    63 use a ``uint64`` weight vector; wider selections fall back to
    object-dtype Python integers (matrix width is unbounded here).
    """
    bits = np.asarray(bits, dtype=bool)
    width = bits.shape[1]
    if width < 63:
        weights = (1 << np.arange(width - 1, -1, -1)).astype(np.uint64)
        return bits.astype(np.uint64) @ weights
    # wide rows: uint64 dot products per 62-bit chunk, then shift-or the
    # chunk keys into Python ints — far cheaper than an object-dtype matmul
    acc = None
    for start in range(0, width, CHUNK_BITS):
        sub = bits[:, start : start + CHUNK_BITS]
        w = sub.shape[1]
        weights = (1 << np.arange(w - 1, -1, -1)).astype(np.uint64)
        vals = sub.astype(np.uint64) @ weights
        acc = vals.astype(object) if acc is None else (acc << w) | vals.astype(object)
    return acc


def pack_bit_rows_chunked(bits: np.ndarray) -> np.ndarray:
    """``(rows, chunks)`` uint64 keys of a ``(rows, width)`` bit matrix.

    The chunked twin of :func:`pack_bit_rows`: instead of shift-or-ing the
    per-chunk values into Python ints, the 62-bit chunk columns are kept as
    a 2-D ``uint64`` array (most-significant chunk first) so downstream
    ``np.unique(..., axis=0)`` accumulation stays fully vectorised at any
    width.
    """
    bits = np.asarray(bits, dtype=bool)
    width = bits.shape[1]
    columns = []
    for start in range(0, max(width, 1), CHUNK_BITS):
        sub = bits[:, start : start + CHUNK_BITS]
        w = sub.shape[1]
        weights = (1 << np.arange(w - 1, -1, -1)).astype(np.uint64)
        columns.append(sub.astype(np.uint64) @ weights)
    return np.stack(columns, axis=1)


def enumerated_bit_rows(n: int) -> np.ndarray:
    """All ``2^n`` big-endian bit rows as a ``(2^n, n)`` bool matrix.

    The standard operand for batch-enumerated readout (dense CH-form /
    extended-stabilizer probabilities, ``to_statevector``).
    """
    index = np.arange(2**n, dtype=np.uint64)
    shifts = np.arange(n - 1, -1, -1, dtype=np.uint64)
    return ((index[:, None] >> shifts[None, :]) & np.uint64(1)).astype(bool)


def pack_bit_cols(bits_t: np.ndarray) -> np.ndarray:
    """Keys of a **bit-major** ``(width, rows)`` matrix (row = one bit).

    The transposed twin of :func:`pack_bit_rows` /
    :func:`pack_bit_rows_chunked`: samplers that build their outcome bits
    one *bit position* at a time (each position a contiguous vector over
    shots) can pack without ever materialising the shot-major layout.
    Returns 1-D ``uint64`` keys below 63 bits, chunked ``(rows, c)`` keys
    beyond.
    """
    bits_t = np.asarray(bits_t, dtype=bool)
    width = bits_t.shape[0]
    if width < 63:
        weights = (1 << np.arange(width - 1, -1, -1)).astype(np.uint64)
        return weights @ bits_t.astype(np.uint64)
    columns = []
    for start in range(0, width, CHUNK_BITS):
        sub = bits_t[start : start + CHUNK_BITS]
        w = sub.shape[0]
        weights = (1 << np.arange(w - 1, -1, -1)).astype(np.uint64)
        columns.append(weights @ sub.astype(np.uint64))
    return np.stack(columns, axis=1)


def chunked_keys_to_ints(keys: np.ndarray, n_bits: int) -> list[int]:
    """Python-int outcomes of a ``(rows, chunks)`` chunked key array."""
    widths = _chunk_widths(n_bits)
    acc = keys[:, 0].astype(object)
    for j in range(1, keys.shape[1]):
        acc = (acc << widths[j]) | keys[:, j].astype(object)
    return list(acc)


def ints_to_chunked_keys(outcomes: Iterable[int], n_bits: int) -> np.ndarray:
    """``(rows, chunks)`` chunked key array of an iterable of outcomes."""
    widths = _chunk_widths(n_bits)
    shifts = np.cumsum([0] + widths[::-1][:-1])[::-1]  # shift of each chunk
    outcomes = list(outcomes)
    out = np.empty((len(outcomes), len(widths)), dtype=np.uint64)
    for j, (width, shift) in enumerate(zip(widths, shifts)):
        mask = (1 << width) - 1
        out[:, j] = [int((key >> int(shift)) & mask) for key in outcomes]
    return out


def counts_from_bit_rows(bits: np.ndarray) -> dict[int, int]:
    """Outcome-key counts of a ``(shots, width)`` bit matrix."""
    keys, counts = np.unique(pack_bit_rows(bits), return_counts=True)
    return {int(k): int(c) for k, c in zip(keys, counts)}


def _sort_order(keys: np.ndarray) -> np.ndarray:
    """Ascending-outcome argsort of a 1-D or chunked key array.

    For chunked keys ``np.lexsort`` with the most-significant chunk as the
    primary key is exactly ascending numeric order.
    """
    if keys.ndim == 1:
        return np.argsort(keys, kind="stable")
    return np.lexsort(tuple(keys[:, j] for j in range(keys.shape[1] - 1, -1, -1)))


def _sorted_group_starts(keys: np.ndarray):
    """``(sorted_keys, group_start_indices)`` of a chunked key array.

    Row-sorts in ascending outcome order and finds group boundaries with
    one row comparison — substantially faster than ``np.unique(axis=0)``'s
    structured-dtype sort.
    """
    order = _sort_order(keys)
    sk = keys[order]
    if not len(sk):
        return sk, np.empty(0, dtype=np.intp), order
    change = np.empty(len(sk), dtype=bool)
    change[0] = True
    np.any(sk[1:] != sk[:-1], axis=1, out=change[1:])
    return sk, np.flatnonzero(change), order


def _unique_accumulate(keys: np.ndarray, weights: np.ndarray):
    """Sum ``weights`` over equal keys; returns sorted ``(keys, sums)``.

    ``keys`` is either a 1-D ``uint64`` array or a 2-D chunked key array;
    both come back sorted in ascending outcome order.
    """
    if keys.ndim == 1:
        unique, inverse = np.unique(keys, return_inverse=True)
        sums = np.bincount(inverse, weights=weights, minlength=len(unique))
        return unique, sums
    sk, starts, order = _sorted_group_starts(keys)
    if not len(sk):
        return sk, np.zeros(0)
    sums = np.add.reduceat(np.asarray(weights, dtype=np.float64)[order], starts)
    return sk[starts], sums


def _unique_counts(keys: np.ndarray):
    """Sorted unique keys and multiplicities (1-D or chunked rows)."""
    if keys.ndim == 1:
        return np.unique(keys, return_counts=True)
    sk, starts, _order = _sorted_group_starts(keys)
    if not len(sk):
        return sk, np.zeros(0, dtype=np.intp)
    counts = np.diff(np.append(starts, len(sk)))
    return sk[starts], counts


class Distribution:
    """A (sparse) probability distribution over ``n_bits``-bit outcomes.

    Internally key/probability parallel arrays (see the module docstring);
    externally still mapping-like: ``dist[outcome]``, ``len(dist)``,
    ``for outcome, p in dist`` and the ``probs`` dict view all work as
    before.
    """

    __slots__ = ("n_bits", "_keys", "_vals", "_dict")

    def __init__(self, n_bits: int, probs: Mapping[int, float]):
        self.n_bits = int(n_bits)
        items = [(int(k), float(v)) for k, v in probs.items() if v != 0.0]
        vals = np.array([v for _, v in items], dtype=np.float64)
        if self.n_bits <= CHUNK_BITS:
            keys = np.array([k for k, _ in items], dtype=np.uint64)
        else:
            keys = ints_to_chunked_keys((k for k, _ in items), self.n_bits)
        order = _sort_order(keys)
        self._keys = keys[order]
        self._vals = vals[order]
        self._dict: dict[int, float] | None = None

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        n_bits: int,
        keys: np.ndarray,
        vals: np.ndarray,
        *,
        dedupe: bool = False,
        assume_sorted: bool = False,
        filter_zeros: bool = True,
    ) -> "Distribution":
        """Build directly from key/value arrays — the hot constructor.

        ``keys`` is 1-D ``uint64`` (``n_bits <= 62``) or 2-D chunked;
        ``dedupe`` accumulates duplicate keys, ``assume_sorted`` skips the
        canonical sort when the caller already produced ascending keys.
        """
        self = cls.__new__(cls)
        self.n_bits = int(n_bits)
        keys = np.asarray(keys)
        vals = np.asarray(vals, dtype=np.float64)
        if self.n_bits > CHUNK_BITS and keys.ndim == 1:
            # wide outcomes handed over as plain ints: re-chunk so the
            # stored representation always matches ``chunked``
            keys = ints_to_chunked_keys([int(k) for k in keys], self.n_bits)
        if dedupe:
            keys, vals = _unique_accumulate(keys, vals)
        elif not assume_sorted:
            order = _sort_order(keys)
            keys = keys[order]
            vals = vals[order]
        if filter_zeros and len(vals):
            live = vals != 0.0
            if not live.all():
                keys = keys[live]
                vals = vals[live]
        self._keys = keys
        self._vals = vals
        self._dict = None
        return self

    @classmethod
    def from_bit_rows(
        cls,
        bits: np.ndarray,
        weights: np.ndarray | None = None,
        n_bits: int | None = None,
    ) -> "Distribution":
        """Distribution of a ``(rows, width)`` bit matrix — no dict round trip.

        Without ``weights`` each row counts ``1/rows`` (the empirical
        distribution of a shot matrix); with ``weights`` each row carries
        its own probability mass (duplicated rows accumulate).
        """
        bits = np.asarray(bits, dtype=bool)
        rows, width = bits.shape
        if n_bits is None:
            n_bits = width
        if n_bits <= CHUNK_BITS:
            keys = pack_bit_rows(bits)
        else:
            keys = pack_bit_rows_chunked(bits)
        if weights is None:
            # integer counts divided once — exact where 1/rows weights
            # would accumulate float error
            if rows == 0:
                raise ValueError("empty bit matrix")
            unique, counts = _unique_counts(keys)
            return cls.from_arrays(
                n_bits, unique, counts / rows, assume_sorted=True
            )
        return cls.from_arrays(n_bits, keys, weights, dedupe=True)

    @classmethod
    def from_bit_cols(cls, bits_t: np.ndarray) -> "Distribution":
        """Empirical distribution of a bit-major ``(width, rows)`` matrix.

        The transposed twin of :meth:`from_bit_rows` for samplers that
        produce one contiguous vector per bit position (see
        :func:`pack_bit_cols`).
        """
        width, rows = np.asarray(bits_t).shape
        if rows == 0:
            raise ValueError("empty bit matrix")
        unique, counts = _unique_counts(pack_bit_cols(bits_t))
        return cls.from_arrays(width, unique, counts / rows, assume_sorted=True)

    @classmethod
    def from_counts(cls, n_bits: int, counts: Mapping[int, int]) -> "Distribution":
        total = sum(counts.values())
        if total <= 0:
            raise ValueError("empty counts")
        return cls(n_bits, {k: v / total for k, v in counts.items()})

    @classmethod
    def from_array(cls, probabilities: np.ndarray) -> "Distribution":
        """From a dense array of length ``2^n`` (index = big-endian bits)."""
        probabilities = np.asarray(probabilities, dtype=np.float64)
        size = len(probabilities)
        n_bits = size.bit_length() - 1
        if 2**n_bits != size:
            raise ValueError("array length must be a power of 2")
        nz = np.flatnonzero(probabilities)
        return cls.from_arrays(
            n_bits, nz.astype(np.uint64), probabilities[nz], assume_sorted=True
        )

    @classmethod
    def point(cls, n_bits: int, outcome: int) -> "Distribution":
        return cls(n_bits, {outcome: 1.0})

    # -- array views ----------------------------------------------------------

    @property
    def keys_array(self) -> np.ndarray:
        """Sorted outcome keys: ``uint64 (m,)`` or chunked ``uint64 (m, c)``."""
        return self._keys

    @property
    def values_array(self) -> np.ndarray:
        """Probabilities aligned with :attr:`keys_array`."""
        return self._vals

    @property
    def chunked(self) -> bool:
        """Whether keys are stored as multi-chunk rows (``n_bits > 62``)."""
        return self._keys.ndim == 2

    def key_ints(self) -> list[int]:
        """Outcome keys as Python ints (sorted ascending)."""
        if self.chunked:
            return chunked_keys_to_ints(self._keys, self.n_bits)
        return self._keys.tolist()

    @property
    def probs(self) -> dict[int, float]:
        """Dict view ``{outcome: probability}`` (built lazily, cached)."""
        if self._dict is None:
            self._dict = dict(zip(self.key_ints(), self._vals.tolist()))
        return self._dict

    # -- queries --------------------------------------------------------------

    def __getitem__(self, outcome: int) -> float:
        outcome = int(outcome)
        if self.chunked:
            if outcome < 0 or outcome >> self.n_bits:
                return 0.0
            row = ints_to_chunked_keys([outcome], self.n_bits)[0]
            hits = np.flatnonzero((self._keys == row).all(axis=1))
            return float(self._vals[hits[0]]) if len(hits) else 0.0
        if outcome < 0 or outcome >> CHUNK_BITS:
            return 0.0
        i = int(np.searchsorted(self._keys, np.uint64(outcome)))
        if i < len(self._keys) and int(self._keys[i]) == outcome:
            return float(self._vals[i])
        return 0.0

    def __len__(self) -> int:
        return len(self._vals)

    def __iter__(self):
        return iter(zip(self.key_ints(), self._vals.tolist()))

    def total(self) -> float:
        return float(self._vals.sum())

    def to_array(self) -> np.ndarray:
        if self.n_bits > 26:
            raise ValueError("distribution too wide for dense conversion")
        out = np.zeros(2**self.n_bits)
        out[self._keys.astype(np.int64)] = self._vals
        return out

    def bits(self, outcome: int) -> tuple[int, ...]:
        """Bit tuple of an outcome (first measured qubit first)."""
        return tuple(
            (outcome >> (self.n_bits - 1 - i)) & 1 for i in range(self.n_bits)
        )

    def bit_matrix(self, positions: Iterable[int] | None = None) -> np.ndarray:
        """``(m, len(positions))`` bool matrix of the support's bits.

        ``positions`` (default: all bit positions, in order) indexes bits
        with the usual convention — position 0 is the first measured qubit,
        i.e. the most significant key bit.
        """
        positions = (
            list(range(self.n_bits)) if positions is None else list(positions)
        )
        out = np.empty((len(self._vals), len(positions)), dtype=bool)
        if not self.chunked:
            for col, pos in enumerate(positions):
                shift = np.uint64(self.n_bits - 1 - pos)
                out[:, col] = (self._keys >> shift) & np.uint64(1)
            return out
        widths = _chunk_widths(self.n_bits)
        for col, pos in enumerate(positions):
            chunk = pos // CHUNK_BITS
            shift = np.uint64(widths[chunk] - 1 - (pos - chunk * CHUNK_BITS))
            out[:, col] = (self._keys[:, chunk] >> shift) & np.uint64(1)
        return out

    # -- transformations --------------------------------------------------------

    def normalized(self) -> "Distribution":
        total = self.total()
        if total <= 0:
            raise ValueError("cannot normalise an all-zero distribution")
        return Distribution.from_arrays(
            self.n_bits, self._keys, self._vals / total, assume_sorted=True
        )

    def clipped(self) -> "Distribution":
        """Drop negative quasi-probabilities (reconstruction noise) and renormalise."""
        positive = self._vals > 0
        return Distribution.from_arrays(
            self.n_bits, self._keys[positive], self._vals[positive],
            assume_sorted=True,
        ).normalized()

    def marginal(self, keep: Iterable[int]) -> "Distribution":
        """Marginalise onto bit positions ``keep`` (in the given order)."""
        keep = list(keep)
        nk = len(keep)
        if not self.chunked and nk <= CHUNK_BITS:
            # single-word fast path: gather each kept bit straight from the
            # packed keys into its output position — no bit matrix at all
            srcs = np.array(
                [self.n_bits - 1 - pos for pos in keep], dtype=np.uint64
            )
            dsts = np.array(
                [nk - 1 - out_pos for out_pos in range(nk)], dtype=np.uint64
            )
            new_keys = _kernels.bit_gather(self._keys, srcs, dsts)
            return Distribution.from_arrays(nk, new_keys, self._vals, dedupe=True)
        return Distribution.from_bit_rows(
            self.bit_matrix(keep), weights=self._vals, n_bits=nk
        )

    def single_bit_marginals(self) -> np.ndarray:
        """Array of shape ``(n_bits, 2)`` with per-bit outcome probabilities."""
        ones = self.bit_matrix().astype(np.float64).T @ self._vals
        out = np.empty((self.n_bits, 2))
        out[:, 1] = ones
        out[:, 0] = self._vals.sum() - ones
        return out

    def _draw_indices(self, shots: int, rng) -> np.ndarray:
        """``shots`` support indices ~ the distribution, via inverse CDF.

        One cumsum + one uniform batch + one ``searchsorted`` — noticeably
        cheaper than ``rng.choice(p=...)``, which re-validates and
        re-normalises its probability vector on every call.  The uniforms
        are sorted before the lookup (draws are exchangeable, both callers
        immediately aggregate them), which keeps the binary searches
        cache-local and returns the indices pre-sorted for ``np.unique``.
        """
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        if not len(self._vals):
            raise ValueError("cannot sample from an empty distribution")
        if np.any(self._vals < 0):
            raise ValueError("cannot sample from negative quasi-probabilities")
        cdf = np.cumsum(self._vals)
        total = cdf[-1]
        if not total > 0:
            raise ValueError("cannot sample from an all-zero distribution")
        uniforms = rng.random(shots)
        uniforms.sort()
        uniforms *= total
        return _kernels.inverse_cdf_indices(cdf, uniforms)

    def sample(self, shots: int, rng: np.random.Generator | int | None = None):
        """Draw ``shots`` outcomes; returns a counts dict."""
        chosen, counts = np.unique(self._draw_indices(shots, rng), return_counts=True)
        if self.chunked:
            picked = chunked_keys_to_ints(self._keys[chosen], self.n_bits)
        else:
            picked = self._keys[chosen].tolist()
        return dict(zip(picked, counts.tolist()))

    def resample(self, shots: int, rng: np.random.Generator | int | None = None):
        """Empirical :class:`Distribution` of ``shots`` draws (array-native)."""
        chosen, counts = np.unique(self._draw_indices(shots, rng), return_counts=True)
        return Distribution.from_arrays(
            self.n_bits, self._keys[chosen], counts / shots, assume_sorted=True
        )

    def parity_expectation(self) -> float:
        """``sum_x p(x) (-1)^{popcount(x)}`` — the all-Z Pauli expectation."""
        if self.chunked:
            pops = np.bitwise_count(self._keys).sum(axis=1)
        else:
            pops = np.bitwise_count(self._keys)
        signs = 1.0 - 2.0 * (pops.astype(np.int64) & 1)
        return float(signs @ self._vals)

    def __repr__(self) -> str:
        preview = ", ".join(
            f"{k:0{self.n_bits}b}: {v:.4f}"
            for k, v in list(zip(self.key_ints(), self._vals))[:6]
        )
        more = "..." if len(self._vals) > 6 else ""
        return f"Distribution({self.n_bits} bits; {preview}{more})"


def _union_values(p: Distribution, q: Distribution):
    """Aligned value arrays of two distributions over their union support."""
    if p.n_bits != q.n_bits:
        raise ValueError("distributions have different widths")
    pk, qk = p.keys_array, q.keys_array
    if pk.ndim == 1:
        union, inverse = np.unique(np.concatenate([pk, qk]), return_inverse=True)
    else:
        union, inverse = np.unique(
            np.concatenate([pk, qk], axis=0), axis=0, return_inverse=True
        )
    pv = np.zeros(len(union))
    qv = np.zeros(len(union))
    pv[inverse[: len(p.values_array)]] = p.values_array
    qv[inverse[len(p.values_array) :]] = q.values_array
    return pv, qv


def hellinger_fidelity(p: Distribution, q: Distribution) -> float:
    """``(sum_i sqrt(p_i q_i))**2`` — 1.0 for identical distributions."""
    pv, qv = _union_values(p, q)
    overlap = np.sqrt(np.where((pv > 0) & (qv > 0), pv * qv, 0.0)).sum()
    return float(overlap**2)


def total_variation_distance(p: Distribution, q: Distribution) -> float:
    pv, qv = _union_values(p, q)
    return float(0.5 * np.abs(pv - qv).sum())


def mean_marginal_fidelity(p: Distribution, q: Distribution) -> float:
    """Mean single-bit-marginal Hellinger fidelity (the paper's dense metric)."""
    if p.n_bits != q.n_bits:
        raise ValueError("distributions have different widths")
    pm = p.single_bit_marginals()
    qm = q.single_bit_marginals()
    fids = (np.sqrt(pm * qm).sum(axis=1)) ** 2
    return float(fids.mean())


def kl_divergence(p: Distribution, q: Distribution) -> float:
    """``D(p || q)``; infinite when p has support outside q's."""
    pv, qv = _union_values(p, q)
    support = pv > 0
    if np.any(support & (qv <= 0.0)):
        return float("inf")
    pv, qv = pv[support], qv[support]
    return float((pv * np.log(pv / qv)).sum())


def cross_entropy(p: Distribution, q: Distribution) -> float:
    """``-sum_x p(x) log q(x)`` (nats); infinite outside q's support."""
    pv, qv = _union_values(p, q)
    support = pv > 0
    if np.any(support & (qv <= 0.0)):
        return float("inf")
    return float(-(pv[support] * np.log(qv[support])).sum())


def marginal_fidelity_from_arrays(
    pm: np.ndarray, qm: np.ndarray
) -> float:
    """Mean Hellinger fidelity between two ``(n, 2)`` marginal arrays."""
    fids = (np.sqrt(np.clip(pm, 0, None) * np.clip(qm, 0, None)).sum(axis=1)) ** 2
    return float(fids.mean())
